"""The serving session's distance cache.

An SSSP solve is expensive; its output — the full distance array from
one source — answers *every* point-to-point query from that source.  The
cache therefore stores full solves keyed ``(graph_id, source)`` and
treats each cached source as a **landmark**: a target query ``(s, t)``
is answered by indexing the cached array of ``s``, never by a separate
solve (:meth:`DistanceCache.targets`).  Because the repo's solvers are
deterministic, a cached array is bit-identical to what a fresh solve
would produce, so serving from cache never changes an answer.

Eviction is plain LRU over whole entries (an entry is one ``(graph,
source)`` solve — arrays are never partially dropped), bounded by
``max_entries``.  ``invalidate(graph_id)`` drops every entry of one
graph, the hook a session calls when a graph is replaced or removed;
there is no time-based expiry because graphs only change through the
session's explicit load/invalidate API.

Cached arrays are handed out as read-only views so one caller's
mutation cannot silently corrupt every later answer; callers that need
to write take an explicit ``.copy()``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DistanceCache"]


class DistanceCache:
    """LRU cache of full single-source distance arrays.

    Not thread-safe by itself — the owning :class:`~repro.serve.session.
    Session` serializes access under its queue lock.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 (got {max_entries})")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, int], np.ndarray]" = OrderedDict()
        #: Lookup outcomes (landmark target lookups included).
        self.hits = 0
        self.misses = 0
        #: Entries dropped by LRU pressure (invalidation counts separately).
        self.evictions = 0
        self.invalidated = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._entries

    # -- lookups ------------------------------------------------------------ #

    def get(self, graph_id: str, source: int) -> Optional[np.ndarray]:
        """The cached full distance array for ``(graph_id, source)``, or
        ``None``.  A hit refreshes the entry's LRU position."""
        key = (graph_id, int(source))
        dist = self._entries.get(key)
        if dist is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return dist

    def peek(self, graph_id: str, source: int) -> Optional[np.ndarray]:
        """Like :meth:`get` but touching neither counters nor LRU order
        (for introspection and tests)."""
        return self._entries.get((graph_id, int(source)))

    def targets(
        self, graph_id: str, source: int, targets: Sequence[int]
    ) -> Optional[np.ndarray]:
        """Landmark reuse: distances ``source -> targets`` sliced out of
        the cached full solve of ``source``, or ``None`` on miss.  The
        slice is a fresh (writable) array; the cached full array stays
        read-only and resident.

        Target ids are bounds-checked against the cached array *before*
        indexing: an out-of-range id raises :class:`~repro.errors.
        ServeError` naming the offending id, instead of letting numpy's
        negative-index wraparound silently answer for vertex ``n + t``.
        """
        dist = self.get(graph_id, source)
        if dist is None:
            return None
        idx = np.asarray(list(targets), dtype=np.int64)
        bad = (idx < 0) | (idx >= dist.size)
        if bad.any():
            from repro.errors import ServeError

            offender = int(idx[bad][0])
            raise ServeError(
                f"target vertex {offender} out of range for graph "
                f"{graph_id!r} with {dist.size} vertices"
            )
        return dist[idx]

    # -- updates ------------------------------------------------------------ #

    def put(
        self, graph_id: str, source: int, dist: np.ndarray, *, own: bool = False
    ) -> np.ndarray:
        """Insert (or refresh) one full solve; returns the read-only
        array the cache retains.  Inserting past capacity evicts the
        least-recently-used entry.

        ``own=True`` declares the array is the cache's now (e.g. a
        solver result nobody else holds): it is frozen in place without
        copying.  By default the cache assumes the caller keeps using
        their array and stores a frozen *copy* — freezing a view, as an
        earlier version did, left the caller's base array writable and
        the "read-only" cache entry silently mutable through it.
        """
        key = (graph_id, int(source))
        stored = np.asarray(dist)
        if stored.flags.writeable:
            if own and stored.base is None:
                # freeze in place: the array owns its buffer, and any
                # reference the producer kept goes read-only with it
                stored.flags.writeable = False
            else:
                # a copy is the only way to sever the caller's handle —
                # freezing a view would leave the base array writable
                stored = stored.copy()
                stored.flags.writeable = False
        self._entries[key] = stored
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        return stored

    def sources(self, graph_id: str) -> list:
        """The sources currently cached for ``graph_id`` (insertion
        order), for selective invalidation sweeps."""
        return [src for (gid, src) in self._entries if gid == graph_id]

    def drop(self, graph_id: str, source: int) -> bool:
        """Drop one entry (selective invalidation); returns whether it
        existed.  Counts toward ``invalidated``, not ``evictions``."""
        existed = self._entries.pop((graph_id, int(source)), None) is not None
        if existed:
            self.invalidated += 1
        return existed

    def invalidate(self, graph_id: str) -> int:
        """Drop every entry of ``graph_id``; returns how many were
        dropped.  Unknown ids are a no-op (0), not an error."""
        doomed = [k for k in self._entries if k[0] == graph_id]
        for k in doomed:
            del self._entries[k]
        self.invalidated += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self.invalidated += len(self._entries)
        self._entries.clear()

    # -- reporting ----------------------------------------------------------- #

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
        }
