"""Query coalescing: turn a drained pending queue into batched solves.

The serving analogue of the paper's lazy batching (and of Dong et al.'s
stepping observation that batching pending work amortizes per-item
overhead): instead of paying solver setup per query, the session lets
queries accumulate for a short window, then the batcher groups everything
that arrived by graph, deduplicates sources, and emits
:class:`BatchPlan`\\ s — one dispatch per graph per ``max_batch`` unique
sources.  Each *unique* source in a plan is solved once (a full
single-source solve, so answers stay bit-identical to direct solves —
see :mod:`repro.serve.cache` for why full solves, not a merged
multi-source envelope: the solvers' native ``sources=`` mode computes a
min-over-sources *nearest-facility* envelope, which is a different
answer than per-source distances); every query of that source is then
demultiplexed from the one result.

The batcher is pure planning — no threads, no clocks of its own, no
solver calls — which is what makes coalescing unit-testable: feed
queries and a ``now``, assert on the plans.  The session supplies the
window timing and executes the plans.
"""

from __future__ import annotations

import itertools
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Batcher", "BatchPlan", "Query"]

_query_ids = itertools.count(1)


@dataclass
class Query:
    """One submitted request, from admission to future resolution.

    ``deadline`` is in the session's monotonic clock (``None`` = no
    per-request timeout).  ``submitted_at`` (epoch) and
    ``submitted_mono`` are both recorded so results can report
    wall-clock timestamps while latencies are computed monotonic-only.
    """

    graph_id: str
    source: int
    targets: Optional[Tuple[int, ...]]
    submitted_at: float
    submitted_mono: float
    deadline: Optional[float] = None
    future: Future = field(default_factory=Future, repr=False)
    id: int = field(default_factory=lambda: next(_query_ids))

    def expired(self, now_mono: float) -> bool:
        return self.deadline is not None and now_mono > self.deadline


@dataclass
class BatchPlan:
    """One coalesced dispatch: a set of same-graph queries and the
    unique sources that must be solved (or fetched) to answer them."""

    graph_id: str
    #: Live queries, in submission order.
    queries: List[Query]
    #: Unique sources among :attr:`queries`, in first-seen order.  The
    #: executor solves exactly these; demux fans each solve back out.
    sources: List[int]

    @property
    def size(self) -> int:
        """Batch size as reported in the histogram: queries coalesced
        into this one dispatch."""
        return len(self.queries)


class Batcher:
    """Group a drained queue into :class:`BatchPlan`\\ s.

    Parameters
    ----------
    window_s:
        How long the session lets queries accumulate before draining
        (carried here so session and bench read one knob; the batcher
        itself never sleeps).
    max_batch:
        Upper bound on *unique sources* per plan — the unit that bounds
        solver work.  A graph's queries spill into as many plans as
        needed; queries always land in the plan that solves their
        source.
    """

    def __init__(self, *, window_s: float = 0.005, max_batch: int = 32) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0 (got {window_s})")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1 (got {max_batch})")
        self.window_s = window_s
        self.max_batch = max_batch

    def plan(
        self, queries: Sequence[Query], now_mono: float
    ) -> Tuple[List[BatchPlan], List[Query]]:
        """Partition drained ``queries`` into plans plus the expired.

        Returns ``(plans, expired)``: expired queries (deadline already
        past at planning time) never reach a solver — the session fails
        their futures with :class:`~repro.errors.ServeTimeout`.  Order
        is preserved throughout: graphs appear in first-submission
        order, queries within a plan in submission order.
        """
        expired: List[Query] = []
        by_graph: Dict[str, List[Query]] = {}
        for q in queries:
            if q.expired(now_mono):
                expired.append(q)
            else:
                by_graph.setdefault(q.graph_id, []).append(q)

        plans: List[BatchPlan] = []
        for graph_id, group in by_graph.items():
            # chunk the unique-source list, then route each query to the
            # chunk that solves its source
            order: List[int] = []
            seen: Dict[int, int] = {}
            for q in group:
                if q.source not in seen:
                    seen[q.source] = len(order)
                    order.append(q.source)
            n_chunks = (len(order) + self.max_batch - 1) // self.max_batch
            chunk_queries: List[List[Query]] = [[] for _ in range(n_chunks)]
            for q in group:
                chunk_queries[seen[q.source] // self.max_batch].append(q)
            for i in range(n_chunks):
                plans.append(
                    BatchPlan(
                        graph_id=graph_id,
                        queries=chunk_queries[i],
                        sources=order[i * self.max_batch : (i + 1) * self.max_batch],
                    )
                )
        return plans, expired
