"""The long-lived serving session: graphs loaded once, queries batched.

A :class:`Session` is the front-end of :mod:`repro.serve`:

1. **Load time** — :meth:`Session.add_graph` registers a graph under an
   id and calls :meth:`~repro.graphs.csr.CSRGraph.prepare` on it, so the
   int64/float64 CSR twins and the adjacency cache are built once, at
   load, instead of lazily inside the first solve (PR 4 built them per
   solve).
2. **Admission** — :meth:`Session.submit` enqueues a query and returns a
   :class:`~concurrent.futures.Future`.  Past ``max_pending`` waiting
   queries it raises :class:`~repro.errors.AdmissionError` immediately:
   back-pressure at the door, not a deferred failure.
3. **Batching** — queries accumulate for ``window_s``; the
   :class:`~repro.serve.batcher.Batcher` then coalesces same-graph
   queries into :class:`~repro.serve.batcher.BatchPlan`\\ s (unique
   sources deduplicated, ≤ ``max_batch`` solves per dispatch).
4. **Execution** — each plan's uncached sources are dispatched through
   the engine's :class:`~repro.engine.executor.QueryExecutor` as
   ordinary cells; cached sources are served from the
   :class:`~repro.serve.cache.DistanceCache` (landmark reuse: one full
   solve answers every later query from that source).
5. **Demux** — every query's future resolves to a :class:`QueryResult`
   carrying the full distance array (read-only), sliced target
   distances when requested, and latency metadata.  A query whose
   deadline passed resolves exceptionally with
   :class:`~repro.errors.ServeTimeout` — before dispatch when possible
   (planning drops it), after the solve otherwise (the answer arrived
   too late; it still warms the cache).

Two drive modes share all of that machinery: ``autostart=True`` (the
default) runs a daemon batcher thread — submit from anywhere, futures
complete asynchronously; ``autostart=False`` is the synchronous mode
used by tests and the bench replay — the caller invokes
:meth:`Session.serve_pending` to drain deterministically.

Graphs are not necessarily static: :meth:`Session.apply_updates` feeds
an edge-update batch (:mod:`repro.dynamic`) to a loaded graph.  Weight
changes patch in place with *selective* cache invalidation (a cached
source survives when :func:`~repro.dynamic.frontier.changes_affect`
proves nothing moved); topology changes swap in a rebuilt graph and
drop the whole graph's cache.  Invalidated entries are stashed as warm
starts — old distances plus net deltas — so the next solve of that
source is incremental when the solver ``accepts_updates``.  Every
update bumps the graph's generation, and answers whose solve straddled
a generation change are failed at demux instead of served or cached.

Counters (``SERVE_COUNTER_KEYS``) live in a
:class:`~repro.trace.MetricsRegistry`: every submission increments
``serve_admitted`` or ``serve_rejected``; every answered query
increments exactly one of ``serve_cache_hits`` (source was cached at
planning time), ``serve_batched`` (source solved by this dispatch) or
``serve_timeouts``.  Batch sizes are additionally kept as raw samples
(:attr:`Session.batch_sizes`) because the registry's streaming
histogram keeps no shape.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.common import get_solver_info
from repro.engine.executor import QueryExecutor
from repro.engine.scheduler import Cell
from repro.errors import AdmissionError, ServeError, ServeTimeout
from repro.graphs.csr import CSRGraph
from repro.serve.batcher import Batcher, BatchPlan, Query
from repro.serve.cache import DistanceCache
from repro.trace import SERVE_COUNTER_KEYS, MetricsRegistry

__all__ = ["QueryResult", "Session"]


@dataclass(frozen=True)
class QueryResult:
    """What a query's future resolves to."""

    graph_id: str
    source: int
    #: Full distance array from ``source`` (read-only, shared with the
    #: cache) — bit-identical to a direct single-source solve.
    dist: np.ndarray
    #: ``dist[targets]`` when the query named targets, else ``None``.
    target_dist: Optional[np.ndarray]
    targets: Optional[Tuple[int, ...]]
    #: Whether the answer came from the distance cache (landmark reuse)
    #: rather than a solve dispatched for this batch.
    from_cache: bool
    #: Queries coalesced into the dispatch that served this one.
    batch_size: int
    #: Submission→completion, on the session's monotonic clock.
    latency_s: float
    #: Wall-clock epoch timestamps (submission / completion).
    submitted_at: float
    completed_at: float


class Session:
    """A serving session over a fixed set of prebuilt graphs.

    Parameters
    ----------
    solver:
        Registry name every query is answered with (default
        ``"dijkstra"``, the fast exact CPU reference; any registered
        solver works — device solvers get ``spec``/``cost``).
    scheduler:
        Optional registered WorkScheduler name applied to every solve
        this session dispatches.  Only meaningful with an
        ``accepts_scheduler`` solver (e.g. ``adds``); naming one for any
        other solver raises :class:`~repro.errors.ServeError` at
        construction, not per query.
    window_s / max_batch:
        Batching window and per-dispatch unique-source cap (see
        :class:`~repro.serve.batcher.Batcher`).
    max_pending:
        Admission limit on *waiting* queries; submissions beyond it
        raise :class:`AdmissionError`.
    default_timeout_s:
        Per-request deadline applied when ``submit`` gets no explicit
        ``timeout_s``; ``None`` = no deadline.
    cache_entries:
        Distance-cache capacity (full solves retained across batches).
    jobs:
        Worker processes in the underlying
        :class:`~repro.engine.executor.QueryExecutor`; the default ``1``
        solves inline on the serving thread — deterministic, and the
        prepared in-memory graphs are never pickled.
    spec / cost / solver_options:
        Forwarded to each dispatched :class:`SolveRequest` (device model
        for device solvers, per-solver keyword extras).
    metrics:
        A shared :class:`MetricsRegistry` to wire the serve counters
        into; a fresh one is created by default.
    autostart:
        Start the daemon batcher thread (asynchronous mode).  With
        ``False`` the caller drains via :meth:`serve_pending`.
    store_path:
        Optional JSONL query log (see :class:`QueryExecutor`).
    incremental:
        Allow warm (incremental) re-solves after :meth:`apply_updates`
        when the solver ``accepts_updates`` (default).  ``False`` forces
        every invalidated source back through a from-scratch solve —
        the baseline ``serve-bench --updates`` compares against.
    """

    def __init__(
        self,
        *,
        solver: str = "dijkstra",
        scheduler: Optional[str] = None,
        window_s: float = 0.005,
        max_batch: int = 32,
        max_pending: int = 1024,
        default_timeout_s: Optional[float] = None,
        cache_entries: int = 64,
        jobs: int = 1,
        spec=None,
        cost=None,
        solver_options: Optional[dict] = None,
        metrics: Optional[MetricsRegistry] = None,
        autostart: bool = True,
        store_path=None,
        incremental: bool = True,
    ) -> None:
        info = get_solver_info(solver)  # fail at construction, not first query
        if scheduler is not None:
            from repro.core.scheduler import get_scheduler_info

            get_scheduler_info(scheduler)  # unknown names fail here too
            if not info.accepts_scheduler:
                raise ServeError(
                    f"solver {solver!r} does not take a scheduler; "
                    f"drop --scheduler or serve with an ADDS-family solver"
                )
        if max_pending < 1:
            raise ServeError(f"max_pending must be >= 1 (got {max_pending})")
        self.solver = solver
        self.scheduler = scheduler
        #: Warm re-solves need both a capable solver and the session-level
        #: opt-in (``incremental=False`` forces from-scratch re-solves —
        #: the comparison baseline ``serve-bench --updates`` measures).
        self._accepts_updates = bool(info.accepts_updates) and incremental
        self.max_pending = max_pending
        self.default_timeout_s = default_timeout_s
        self.spec = spec
        self.cost = cost
        self.solver_options = dict(solver_options or {})
        self.batcher = Batcher(window_s=window_s, max_batch=max_batch)
        self.cache = DistanceCache(cache_entries)
        self.executor = QueryExecutor(jobs=jobs, store_path=store_path)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        for key in SERVE_COUNTER_KEYS:
            self.metrics.counter(key)  # exist-at-zero, so snapshots are total
        #: Raw batch-size samples (one per dispatched plan), the shape
        #: the registry's min/max/mean histogram cannot keep.
        self.batch_sizes: List[int] = []
        self._graphs: Dict[str, CSRGraph] = {}
        #: Per-graph update generation, bumped by any mutation of the
        #: registry (add/remove/apply_updates).  A solve dispatched under
        #: one generation whose graph changed before it finished is
        #: discarded at demux — an in-place weight patch can tear a
        #: concurrent solve, so its answer cannot be trusted or cached.
        self._generation: Dict[str, int] = {}
        #: Warm-start stash: invalidated cache entries kept as
        #: ``(old dist, net EdgeDeltas since)`` so the next solve of that
        #: (graph, source) can re-seed incrementally instead of from
        #: scratch.  Bounded like the cache; only used when the session
        #: solver ``accepts_updates``.
        self._warm: "OrderedDict[Tuple[str, int], Tuple[np.ndarray, object]]" = (
            OrderedDict()
        )
        self._pending: Deque[Query] = deque()
        self._lock = threading.Condition()
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        if autostart:
            self._thread = threading.Thread(
                target=self._serve_loop, name="repro-serve-batcher", daemon=True
            )
            self._thread.start()

    # -- graph registry ----------------------------------------------------- #

    def add_graph(self, graph_id: str, graph: CSRGraph) -> CSRGraph:
        """Register ``graph`` under ``graph_id`` and prepare it (64-bit
        CSR twins + adjacency cache built now, at load time).  Replacing
        an existing id invalidates its cached distances."""
        with self._lock:
            if self._closed:
                raise ServeError("session is closed")
            if graph_id in self._graphs:
                self.cache.invalidate(graph_id)
            self._graphs[graph_id] = graph.prepare()
            self._bump_generation(graph_id)
        return graph

    def remove_graph(self, graph_id: str) -> None:
        with self._lock:
            self._graphs.pop(graph_id, None)
            self.cache.invalidate(graph_id)
            self._bump_generation(graph_id)

    def apply_updates(self, graph_id: str, batch) -> "object":
        """Apply an :class:`~repro.dynamic.updates.UpdateBatch` to a
        loaded graph; returns the :class:`~repro.dynamic.updates.
        UpdateResult`.

        Weight-only batches patch the prepared graph in place and
        invalidate **selectively**: each cached source is kept when
        :func:`~repro.dynamic.frontier.changes_affect` proves the batch
        cannot move any of its distances.  Topology-changing batches
        swap in the rebuilt (re-prepared) graph and drop the whole
        graph's cache.  Either way, every invalidated entry is stashed
        with the net deltas since it was computed, so a later query for
        that source re-solves incrementally from the warm distances
        (when the session solver ``accepts_updates``).  Any update bumps
        the graph's generation: solves already in flight on the old
        state are discarded at demux rather than served or cached.
        """
        from repro.dynamic.frontier import changes_affect
        from repro.dynamic.updates import apply_updates as _apply

        with self._lock:
            if self._closed:
                raise ServeError("session is closed")
            graph = self.graph(graph_id)
            result = _apply(graph, batch)  # raises DynamicError untouched
            self._bump_generation(graph_id, drop_warm=False)
            # stashed entries predate this batch: extend their deltas
            if result.deltas.size:
                for key in list(self._warm):
                    if key[0] == graph_id:
                        d0, acc = self._warm[key]
                        self._warm[key] = (d0, acc.merge(result.deltas))
            if result.topology_changed:
                self._graphs[graph_id] = result.graph.prepare()
                for src in self.cache.sources(graph_id):
                    self._stash_warm(graph_id, src, result.deltas)
                self.cache.invalidate(graph_id)
            elif result.deltas.size:
                for src in self.cache.sources(graph_id):
                    dist = self.cache.peek(graph_id, src)
                    if changes_affect(dist, result.deltas):
                        self._stash_warm(graph_id, src, result.deltas)
                        self.cache.drop(graph_id, src)
            return result

    def _bump_generation(self, graph_id: str, *, drop_warm: bool = True) -> None:
        self._generation[graph_id] = self._generation.get(graph_id, 0) + 1
        if drop_warm:
            # replacement/removal severs the delta chain: stashed warm
            # starts no longer describe any loaded graph
            for key in [k for k in self._warm if k[0] == graph_id]:
                del self._warm[key]

    def _stash_warm(self, graph_id: str, source: int, deltas) -> None:
        key = (graph_id, int(source))
        dist = self.cache.peek(graph_id, source)
        if dist is None:
            return
        # a prior stash for this key is superseded: the cached distances
        # are newer, and need only this batch's deltas
        self._warm.pop(key, None)
        self._warm[key] = (dist, deltas)
        while len(self._warm) > self.cache.max_entries:
            self._warm.popitem(last=False)

    def invalidate(self, graph_id: str) -> int:
        """Drop all cached distances of ``graph_id`` (e.g. after its
        weights changed upstream); the graph itself stays loaded."""
        with self._lock:
            return self.cache.invalidate(graph_id)

    def graph(self, graph_id: str) -> CSRGraph:
        try:
            return self._graphs[graph_id]
        except KeyError:
            raise ServeError(
                f"unknown graph id {graph_id!r}; loaded: {sorted(self._graphs)}"
            ) from None

    @property
    def graph_ids(self) -> List[str]:
        return sorted(self._graphs)

    # -- admission ----------------------------------------------------------- #

    def submit(
        self,
        graph_id: str,
        source: int,
        targets: Optional[Sequence[int]] = None,
        *,
        timeout_s: Optional[float] = None,
    ) -> "Future[QueryResult]":
        """Enqueue one query; the future resolves to a
        :class:`QueryResult` (or :class:`ServeTimeout` /
        :class:`ServeError` exceptionally).

        Raises :class:`AdmissionError` synchronously when the pending
        queue is full and :class:`ServeError` for unknown graph ids or
        out-of-range vertices — bad requests never consume queue space.
        """
        with self._lock:
            if self._closed:
                raise ServeError("session is closed")
            graph = self.graph(graph_id)
            n = graph.num_vertices
            if not 0 <= int(source) < n:
                raise ServeError(
                    f"source {source} out of range for {graph_id!r} ({n} vertices)"
                )
            tgt: Optional[Tuple[int, ...]] = None
            if targets is not None:
                tgt = tuple(int(t) for t in targets)
                bad = [t for t in tgt if not 0 <= t < n]
                if bad:
                    raise ServeError(
                        f"targets {bad} out of range for {graph_id!r} ({n} vertices)"
                    )
            if len(self._pending) >= self.max_pending:
                self.metrics.inc("serve_rejected")
                raise AdmissionError(
                    f"pending queue full ({self.max_pending} queries); "
                    f"retry after the current window drains"
                )
            if timeout_s is None:
                timeout_s = self.default_timeout_s
            now_mono = time.monotonic()
            q = Query(
                graph_id=graph_id,
                source=int(source),
                targets=tgt,
                submitted_at=time.time(),
                submitted_mono=now_mono,
                deadline=None if timeout_s is None else now_mono + timeout_s,
            )
            self._pending.append(q)
            self.metrics.inc("serve_admitted")
            self._lock.notify_all()
            return q.future

    def query(
        self,
        graph_id: str,
        source: int,
        targets: Optional[Sequence[int]] = None,
        *,
        timeout_s: Optional[float] = None,
    ) -> QueryResult:
        """Synchronous convenience: submit and wait for the answer.

        In synchronous mode (``autostart=False``) this also drains the
        queue itself, so single-query callers need no extra plumbing.
        """
        fut = self.submit(graph_id, source, targets, timeout_s=timeout_s)
        if self._thread is None:
            self.serve_pending()
        return fut.result()

    # -- serving ------------------------------------------------------------- #

    def serve_pending(self) -> int:
        """Drain the pending queue now: plan batches, solve, demux.

        Returns how many queries reached a final state (answered, timed
        out, or errored).  The synchronous drive mode for tests and the
        bench replay; the batcher thread calls the same method.
        """
        with self._lock:
            drained = list(self._pending)
            self._pending.clear()
        if not drained:
            return 0
        plans, expired = self.batcher.plan(drained, time.monotonic())
        settled = 0
        for q in expired:
            self._fail_timeout(q)
            settled += 1
        for plan in plans:
            settled += self._execute_plan(plan)
        return settled

    def flush(self, timeout_s: float = 30.0) -> None:
        """Block until every query admitted so far has settled."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending:
                    return
                if self._thread is None:
                    break  # synchronous mode: drain ourselves below
            time.sleep(self.batcher.window_s or 0.001)
        if self._thread is None:
            self.serve_pending()
            return
        raise ServeError(f"flush timed out after {timeout_s:g}s")

    def _serve_loop(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._lock.wait()
                if self._closed and not self._pending:
                    return
            # let the coalescing window fill before draining
            if self.batcher.window_s:
                time.sleep(self.batcher.window_s)
            self.serve_pending()

    def _execute_plan(self, plan: BatchPlan) -> int:
        # snapshot graph + generation together: answers computed on this
        # snapshot are only served (and cached) if the graph is still on
        # the same generation when the solve returns
        with self._lock:
            graph = self._graphs.get(plan.graph_id)
            generation = self._generation.get(plan.graph_id, 0)
        if graph is None:  # unloaded between admission and dispatch
            for q in plan.queries:
                q.future.set_exception(
                    ServeError(f"graph {plan.graph_id!r} was removed")
                )
            return len(plan.queries)

        self.batch_sizes.append(plan.size)
        self.metrics.observe("serve_batch_size", plan.size)

        # one full solve per unique uncached source; cached sources are
        # the landmark-reuse path, stashed warm starts the incremental one
        dists: Dict[int, np.ndarray] = {}
        cached: Dict[int, bool] = {}
        errors: Dict[int, str] = {}
        to_solve: List[int] = []
        warm: Dict[int, Tuple[np.ndarray, object]] = {}
        with self._lock:
            for src in plan.sources:
                hit = self.cache.get(plan.graph_id, src)
                if hit is not None:
                    dists[src] = hit
                    cached[src] = True
                else:
                    to_solve.append(src)
                    if self._accepts_updates:
                        entry = self._warm.pop((plan.graph_id, src), None)
                        if entry is not None:
                            warm[src] = entry
        futures = [
            (
                src,
                self.executor.submit(
                    Cell(
                        graph_name=plan.graph_id,
                        category="serve",
                        solver=self.solver,
                        source=src,
                        graph=graph,
                        spec=self.spec,
                        cost=self.cost,
                        scheduler=self.scheduler,
                        warm_from=warm[src][0] if src in warm else None,
                        updates=warm[src][1] if src in warm else None,
                        options=dict(self.solver_options),
                    )
                ),
            )
            for src in to_solve
        ]
        for src in warm:
            self.metrics.inc("serve_incremental")
        for src, fut in futures:
            kind, detail, _elapsed, _span = fut.result()
            if kind != "ok":
                errors[src] = f"{kind}: {detail}"
                continue
            with self._lock:
                if self._generation.get(plan.graph_id, 0) != generation:
                    # the graph was updated while this solve ran; an
                    # in-place patch may have torn it mid-relaxation, so
                    # the answer is untrustworthy — fail, don't cache
                    self.metrics.inc("serve_stale")
                    errors[src] = (
                        "stale: the graph was updated while the solve "
                        "was in flight; resubmit against the new state"
                    )
                    continue
                dists[src] = self.cache.put(
                    plan.graph_id, src, detail.dist, own=True
                )
            cached[src] = False

        # demux: every query resolves from its source's single solve
        settled = 0
        now_mono = time.monotonic()
        for q in plan.queries:
            settled += 1
            if q.source in errors:
                q.future.set_exception(
                    ServeError(
                        f"solve for ({plan.graph_id!r}, source {q.source}) "
                        f"failed — {errors[q.source]}"
                    )
                )
                continue
            if q.expired(now_mono):
                # the answer exists (and warmed the cache) but came too
                # late for this caller — timeout degradation, not an error
                self._fail_timeout(q)
                continue
            dist = dists[q.source]
            target_dist = (
                dist[np.asarray(q.targets, dtype=np.int64)]
                if q.targets is not None
                else None
            )
            if cached[q.source]:
                self.metrics.inc("serve_cache_hits")
            else:
                self.metrics.inc("serve_batched")
            q.future.set_result(
                QueryResult(
                    graph_id=plan.graph_id,
                    source=q.source,
                    dist=dist,
                    target_dist=target_dist,
                    targets=q.targets,
                    from_cache=cached[q.source],
                    batch_size=plan.size,
                    latency_s=now_mono - q.submitted_mono,
                    submitted_at=q.submitted_at,
                    completed_at=time.time(),
                )
            )
        return settled

    def _fail_timeout(self, q: Query) -> None:
        self.metrics.inc("serve_timeouts")
        q.future.set_exception(
            ServeTimeout(
                f"query ({q.graph_id!r}, source {q.source}) missed its "
                f"deadline before an answer was served"
            )
        )

    # -- reporting / lifecycle ----------------------------------------------- #

    def counters(self) -> Dict[str, float]:
        """The serve counters as a plain dict (all keys always present)."""
        return {k: self.metrics.value(k) for k in SERVE_COUNTER_KEYS}

    def close(self) -> None:
        """Settle outstanding queries, stop the thread, free the pool.

        Queries still pending at close are drained (served, not
        abandoned) before the executor shuts down.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._lock.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        self.serve_pending()  # anything the thread didn't get to
        self.executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
