"""``python -m repro serve-bench``: replay a synthetic query trace.

The serving analogue of :mod:`repro.bench`: where ``bench`` times
*solves*, ``serve-bench`` exercises the whole serving path — admission,
window batching, multi-query coalescing, the distance cache — by
replaying a deterministic synthetic trace (default ~10k queries) over
suite graphs and reporting service-level numbers: latency percentiles,
throughput, the batch-size histogram, and cache hit rate, as a
schema-versioned JSON payload (see ``docs/schema.md``).

The trace is seeded and skewed the way query traffic actually is: most
queries come from a small *hot set* of sources per graph (hit the
cache), the rest are uniform cold sources (force solves); about half
name explicit targets (exercise landmark target slicing).  Replay
happens in bursts through a synchronous session
(``autostart=False``), so runs are deterministic — no thread timing in
the numbers.

With verification on (the default), every distinct ``(graph, source)``
that was served is re-solved **directly** — fresh, unprepared graph
build, straight solver call, no session, no cache — and compared
bit-for-bit against the served full distance array.  Zero tolerated
mismatches: this is the acceptance gate that serving infrastructure
never changes an answer.

``--updates`` adds a dynamic-graph dimension (see ``docs/dynamic.md``):
edge-update batches are interleaved through the replay via
:meth:`Session.apply_updates`, the whole mix is replayed twice (warm
incremental re-solves vs forced from-scratch re-solves), the two passes
must answer bit-identically, and direct verification runs per *(graph,
generation, source)* against an independently rebuilt copy of each
generation.  The payload's ``updates`` block reports the
incremental-vs-full wall ratio.
"""

from __future__ import annotations

import time
from collections import Counter as TallyCounter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.common import SolveRequest, get_solver_info
from repro.errors import ServeError
from repro.graphs.csr import CSRGraph
from repro.graphs.suite import SuiteEntry, build_suite
from repro.serve.session import Session

__all__ = [
    "SERVE_BENCH_SCHEMA_VERSION",
    "run_serve_bench",
    "synthesize_trace",
]

#: Version of the JSON payload emitted by :func:`run_serve_bench`.
SERVE_BENCH_SCHEMA_VERSION = 1

#: (graph_id, source, targets-or-None) — one query of a replay trace.
TraceQuery = Tuple[str, int, Optional[Tuple[int, ...]]]


def synthesize_trace(
    graphs: Dict[str, int],
    n_queries: int,
    *,
    seed: int = 0,
    hot_sources: int = 8,
    hot_fraction: float = 0.8,
    target_fraction: float = 0.5,
    max_targets: int = 4,
) -> List[TraceQuery]:
    """Generate a deterministic skewed query trace.

    ``graphs`` maps graph id -> vertex count.  Per graph a hot set of
    ``hot_sources`` vertices is drawn once; each query picks a graph
    uniformly, then a hot source with probability ``hot_fraction`` (the
    cache-friendly mass) or a uniform cold source otherwise, and with
    probability ``target_fraction`` asks for 1..``max_targets`` explicit
    targets instead of the full array.
    """
    if not graphs:
        raise ServeError("synthesize_trace needs at least one graph")
    rng = np.random.default_rng(seed)
    ids = sorted(graphs)
    hot: Dict[str, np.ndarray] = {
        gid: rng.choice(graphs[gid], size=min(hot_sources, graphs[gid]), replace=False)
        for gid in ids
    }
    trace: List[TraceQuery] = []
    for _ in range(n_queries):
        gid = ids[int(rng.integers(len(ids)))]
        n = graphs[gid]
        if rng.random() < hot_fraction:
            source = int(hot[gid][int(rng.integers(hot[gid].size))])
        else:
            source = int(rng.integers(n))
        targets: Optional[Tuple[int, ...]] = None
        if rng.random() < target_fraction:
            k = int(rng.integers(1, max_targets + 1))
            targets = tuple(int(t) for t in rng.integers(0, n, size=k))
        trace.append((gid, source, targets))
    return trace


def _percentiles_ms(latencies_s: Sequence[float]) -> Dict[str, float]:
    arr = np.asarray(latencies_s, dtype=np.float64) * 1e3
    if arr.size == 0:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }


def _fresh_graph(entry: SuiteEntry):
    """An independent, *unprepared* build of a suite entry — the verify
    path must not share arrays (or prepared state) with the session."""
    if entry.spec is not None:
        g = entry.spec.build()
    else:
        g = entry.factory()
    return g


def run_serve_bench(
    *,
    queries: int = 10_000,
    scale: float = 0.25,
    max_graphs: int = 4,
    categories: Optional[List[str]] = None,
    solver: str = "dijkstra",
    scheduler: Optional[str] = None,
    window_s: float = 0.0,
    max_batch: int = 32,
    cache_entries: int = 64,
    burst: int = 32,
    seed: int = 0,
    jobs: int = 1,
    spec=None,
    cost=None,
    tag: Optional[str] = None,
    verify: bool = True,
    updates: int = 0,
    update_size: int = 8,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Replay a synthetic trace through a :class:`Session`; return the
    schema-versioned payload.

    Defaults are sized so the full 10k-query replay finishes in seconds:
    a handful of quarter-scale suite graphs and the ``dijkstra`` CPU
    reference.  ``burst`` is how many submissions accumulate before each
    synchronous drain — the deterministic stand-in for the wall-clock
    window an asynchronous session would use (``window_s`` is recorded
    in the payload but the replay never sleeps).

    ``updates > 0`` turns the replay into a sustained **update + query
    mix**: per graph, ``updates`` edge-update batches of ``update_size``
    updates (seeded from ``seed``) are applied through
    :meth:`Session.apply_updates` at evenly spaced points of the trace.
    The same trace and update schedule then run **twice** — once with
    incremental (warm) re-solves, once forcing from-scratch re-solves —
    and the payload's ``updates`` block reports both walls and their
    ratio (the incremental-vs-full speedup), after checking the two
    passes answered every query bit-identically.  Direct verification
    re-solves each distinct ``(graph, generation, source)`` on an
    independently rebuilt copy of that generation's graph.

    A verification mismatch is reported in the payload, not raised — the
    CLI turns a nonzero mismatch count into a nonzero exit.
    """
    if queries < 1:
        raise ServeError(f"queries must be >= 1 (got {queries})")
    if burst < 1:
        raise ServeError(f"burst must be >= 1 (got {burst})")
    if updates < 0:
        raise ServeError(f"updates must be >= 0 (got {updates})")
    if update_size < 1:
        raise ServeError(f"update_size must be >= 1 (got {update_size})")
    get_solver_info(solver)  # fail fast on typos
    say = progress or (lambda msg: None)

    entries = build_suite(scale=scale, categories=categories, max_graphs=max_graphs)
    if not entries:
        raise ServeError("suite selection produced no graphs")
    by_id: Dict[str, SuiteEntry] = {e.name: e for e in entries}

    def _make_session(incremental: bool = True) -> Session:
        session = Session(
            solver=solver,
            scheduler=scheduler,
            window_s=window_s,
            max_batch=max_batch,
            max_pending=max(burst * 2, 64),
            cache_entries=cache_entries,
            jobs=jobs,
            spec=spec,
            cost=cost,
            autostart=False,
            incremental=incremental,
        )
        for e in entries:
            # each session gets an independent build: SuiteEntry.graph()
            # memoizes, and apply_updates patches weights in place, so a
            # shared object would leak pass-1 updates into pass 2
            g = _fresh_graph(e)
            session.add_graph(
                e.name,
                CSRGraph(
                    row_offsets=g.row_offsets,
                    col_indices=g.col_indices,
                    weights=g.weights,
                    name=e.name,
                ),
            )
        return session

    session = _make_session()
    graphs_meta = []
    sizes: Dict[str, int] = {}
    for e in entries:
        g = session.graph(e.name)
        sizes[e.name] = g.num_vertices
        graphs_meta.append(
            {
                "id": e.name,
                "category": e.category,
                "vertices": int(g.num_vertices),
                "edges": int(g.num_edges),
            }
        )
    say(f"loaded {len(entries)} graphs (scale {scale:g})")

    trace = synthesize_trace(sizes, queries, seed=seed)

    # update schedule: (trace index -> [(graph id, batch)]), batches
    # generated per graph from its pristine build so they chain in order
    events: Dict[int, List[Tuple[str, object]]] = {}
    streams: Dict[str, list] = {}
    if updates:
        from repro.graphs.generators import update_stream

        ids = sorted(sizes)
        for j, gid in enumerate(ids):
            streams[gid] = update_stream(
                _fresh_graph(by_id[gid]),
                batches=updates,
                batch_size=update_size,
                seed=seed * 7919 + j,
            )
        total = updates * len(ids)
        for k in range(total):
            pos = min(len(trace) - 1, (k + 1) * len(trace) // (total + 1))
            gid = ids[k % len(ids)]
            events.setdefault(pos, []).append(
                (gid, streams[gid][k // len(ids)])
            )
    say(
        f"replaying {len(trace)} queries in bursts of {burst}"
        + (f" with {updates * len(sizes)} update batches" if updates else "")
    )

    def _replay(sess: Session):
        """One full pass; returns (results, generation-at-answer, wall)."""
        applied: Dict[str, int] = {gid: 0 for gid in sizes}
        results = []
        gens: List[int] = []
        t0 = time.monotonic()
        pending: List[Tuple[object, str]] = []

        def drain():
            sess.serve_pending()
            for f, gid in pending:
                results.append(f.result())
                gens.append(applied[gid])
            pending.clear()

        for i, (gid, source, targets) in enumerate(trace):
            pending.append((sess.submit(gid, source, targets), gid))
            if len(pending) >= burst or i == len(trace) - 1:
                drain()
            if i in events:
                drain()  # answers before the update keep their generation
                for egid, batch in events[i]:
                    sess.apply_updates(egid, batch)
                    applied[egid] += 1
        drain()
        return results, gens, time.monotonic() - t0

    updates_block: Optional[dict] = None
    with session:
        results, gens, wall_s = _replay(session)

        if updates:
            say("re-replaying with incremental re-solves disabled")
            with _make_session(incremental=False) as full_session:
                full_results, _full_gens, full_wall_s = _replay(full_session)
            pass_mismatches = sum(
                1
                for a, b in zip(results, full_results)
                if not np.array_equal(a.dist, b.dist)
            )
            updates_block = {
                "batches": updates * len(sizes),
                "update_size": update_size,
                "incremental_wall_s": wall_s,
                "full_wall_s": full_wall_s,
                "speedup": (full_wall_s / wall_s) if wall_s > 0 else 0.0,
                "incremental_solves": session.counters()["serve_incremental"],
                "pass_mismatches": int(pass_mismatches),
            }

        latencies = [r.latency_s for r in results]
        hist = TallyCounter(session.batch_sizes)
        cache_stats = session.cache.stats()
        counters = session.counters()

        verify_block: dict = {"enabled": bool(verify), "checked": 0, "mismatches": []}
        if verify:
            served: Dict[Tuple[str, int, int], np.ndarray] = {}
            for r, gen in zip(results, gens):
                served.setdefault((r.graph_id, gen, r.source), r.dist)
            say(
                f"verifying {len(served)} distinct (graph, generation, "
                f"source) solves directly"
            )
            info = get_solver_info(solver)
            fresh: Dict[Tuple[str, int], object] = {}
            for gid in sorted(sizes):
                g = _fresh_graph(by_id[gid])
                fresh[(gid, 0)] = g
                for gen in range(1, len(streams.get(gid, ())) + 1):
                    from repro.dynamic import apply_updates as _apply

                    prev = fresh[(gid, gen - 1)]
                    # weight-only batches patch in place: clone so each
                    # generation keeps an independent snapshot
                    clone = CSRGraph(
                        prev.row_offsets.copy(),
                        prev.col_indices.copy(),
                        prev.weights.copy(),
                        name=prev.name,
                    )
                    fresh[(gid, gen)] = _apply(clone, streams[gid][gen - 1]).graph
            mismatches = []
            for (gid, gen, source), dist in sorted(served.items()):
                direct = info.solve(
                    SolveRequest(
                        graph=fresh[(gid, gen)], source=source,
                        spec=spec, cost=cost, scheduler=scheduler,
                    )
                )
                if not np.array_equal(direct.dist, dist):
                    bad = int(np.flatnonzero(direct.dist != dist)[0])
                    mismatches.append(
                        {
                            "graph": gid,
                            "generation": gen,
                            "source": source,
                            "first_vertex": bad,
                            "served": float(dist[bad]),
                            "direct": float(direct.dist[bad]),
                        }
                    )
            verify_block["checked"] = len(served)
            verify_block["mismatches"] = mismatches

    return {
        "schema_version": SERVE_BENCH_SCHEMA_VERSION,
        "kind": "serve-bench",
        "tag": tag,
        "config": {
            "queries": queries,
            "scale": scale,
            "max_graphs": max_graphs,
            "categories": categories,
            "solver": solver,
            "scheduler": scheduler,
            "window_s": window_s,
            "max_batch": max_batch,
            "cache_entries": cache_entries,
            "burst": burst,
            "seed": seed,
            "jobs": jobs,
            "updates": updates,
            "update_size": update_size,
        },
        "graphs": graphs_meta,
        "results": {
            "served": len(results),
            "wall_s": wall_s,
            "throughput_qps": len(results) / wall_s if wall_s > 0 else 0.0,
            "latency_ms": _percentiles_ms(latencies),
            "batch_size_hist": {str(k): int(v) for k, v in sorted(hist.items())},
            "batch_mean": (
                float(np.mean(session.batch_sizes)) if session.batch_sizes else 0.0
            ),
            "cache": cache_stats,
            "counters": counters,
        },
        "updates": updates_block,
        "verify": verify_block,
    }
