"""``repro.serve`` — the batched SSSP query service.

The ROADMAP's serving layer: everything below this package answers *one*
solve at a time; this package turns the stack into a query service for
heavy traffic.  A :class:`Session` holds graphs prepared at load time
(:meth:`~repro.graphs.csr.CSRGraph.prepare` hoists the 64-bit CSR twins
and adjacency cache out of the solver hot path), admits queries through
a bounded queue (``submit`` → future, :class:`~repro.errors.
AdmissionError` past the limit), coalesces same-graph queries within a
batching window (:class:`~repro.serve.batcher.Batcher`), answers
repeated sources from an LRU :class:`~repro.serve.cache.DistanceCache`
(one full solve is the landmark that answers every later ``(s, t)``
query), and dispatches the rest through the engine's
:class:`~repro.engine.executor.QueryExecutor`.

Served answers are *exact by construction*: every distance handed out is
a full single-source solve (fresh or cached), bit-identical to calling
the solver directly — verified end-to-end by ``python -m repro
serve-bench`` (:func:`~repro.serve.bench.run_serve_bench`), which
replays a ~10k-query synthetic trace and re-solves every served
``(graph, source)`` directly.

See ``docs/serving.md`` for the lifecycle, batching-window semantics and
the cache/invalidation contract.
"""

from repro.serve.batcher import Batcher, BatchPlan, Query
from repro.serve.bench import (
    SERVE_BENCH_SCHEMA_VERSION,
    run_serve_bench,
    synthesize_trace,
)
from repro.serve.cache import DistanceCache
from repro.serve.session import QueryResult, Session

__all__ = [
    "Batcher",
    "BatchPlan",
    "DistanceCache",
    "Query",
    "QueryResult",
    "SERVE_BENCH_SCHEMA_VERSION",
    "Session",
    "run_serve_bench",
    "synthesize_trace",
]
