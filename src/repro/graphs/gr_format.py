"""DIMACS challenge-9 / Galois binary ``.gr`` graph format.

The paper's artifact ships its 226 inputs as binary GR files ("This format
is used by Galois as well as ADDS", Appendix A.3).  The binary layout is
the Galois v1 CSR-on-disk format:

====== ======================= =============================================
offset field                   meaning
====== ======================= =============================================
0      uint64 version          must be 1
8      uint64 edge_data_size   bytes per edge weight (4, or 0 if unweighted)
16     uint64 num_nodes
24     uint64 num_edges
32     uint64 out_idx[n]       *end* offset of each vertex's edge range
..     uint32 outs[m]          destination vertex ids
..     uint32 padding          present iff ``m`` is odd (8-byte alignment)
..     edge_data[m]            uint32 or float32 weights (absent if size 0)
====== ======================= =============================================

We also support the text DIMACS ``.dimacs`` format (``p sp n m`` header and
1-indexed ``a u v w`` arc lines) for small hand-written inputs.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.csr import CSRGraph, from_edge_list

__all__ = ["read_gr", "write_gr", "read_dimacs", "write_dimacs"]

_HEADER = struct.Struct("<QQQQ")
_VERSION = 1


def write_gr(
    graph: CSRGraph,
    path: Union[str, Path],
    *,
    float_weights: Optional[bool] = None,
    unweighted: bool = False,
) -> None:
    """Serialize ``graph`` to a Galois v1 binary ``.gr`` file.

    ``float_weights`` overrides the on-disk weight type; by default it
    follows the graph's weight dtype (int32 → uint32 file, float32 → float
    file, matching the artifact's ``sssp-int`` / ``sssp-float`` pairing).

    ``unweighted`` writes ``edge_data_size = 0`` and no weight payload —
    the form :func:`read_gr` reads back as all-ones weights.  The two
    flags conflict: an unweighted file has no weight type to pick.
    """
    if unweighted:
        if float_weights is not None:
            raise GraphFormatError(
                "write_gr: unweighted=True writes no weight payload; "
                "float_weights must be left unset"
            )
    elif float_weights is None:
        float_weights = not graph.is_integer_weighted
    n, m = graph.num_vertices, graph.num_edges
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(_VERSION, 0 if unweighted else 4, n, m))
        # Galois stores *end* offsets, i.e. row_offsets[1:].
        fh.write(graph.row_offsets[1:].astype("<u8").tobytes())
        fh.write(graph.col_indices.astype("<u4").tobytes())
        if m % 2 == 1:
            fh.write(b"\x00\x00\x00\x00")
        if unweighted:
            return
        if float_weights:
            fh.write(graph.weights.astype("<f4").tobytes())
        else:
            fh.write(graph.weights.astype("<u4").tobytes())


def read_gr(
    path: Union[str, Path], *, float_weights: bool = False, name: str = None
) -> CSRGraph:
    """Parse a Galois v1 binary ``.gr`` file into a :class:`CSRGraph`.

    ``float_weights`` selects how the 4-byte edge payload is interpreted —
    the file itself does not distinguish (the artifact keeps int and float
    graphs in separate directories for the same reason).
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise GraphFormatError(f"{path}: truncated header")
    version, edata_size, n, m = _HEADER.unpack_from(data, 0)
    if version != _VERSION:
        raise GraphFormatError(f"{path}: unsupported GR version {version}")
    if edata_size not in (0, 4):
        raise GraphFormatError(f"{path}: unsupported edge data size {edata_size}")
    off = _HEADER.size
    need = off + 8 * n + 4 * m
    if m % 2 == 1:
        need += 4
    if edata_size == 4:
        need += 4 * m
    if len(data) < need:
        raise GraphFormatError(
            f"{path}: file too short ({len(data)} bytes, need {need})"
        )
    ends = np.frombuffer(data, dtype="<u8", count=n, offset=off).astype(np.int64)
    off += 8 * n
    raw_cols = np.frombuffer(data, dtype="<u4", count=m, offset=off)
    oob = raw_cols >= n
    if np.any(oob):
        j = int(np.argmax(oob))
        raise GraphFormatError(
            f"{path}: col_indices[{j}] = {int(raw_cols[j])} out of range "
            f"for {n} nodes"
        )
    cols = raw_cols.astype(np.int32)
    off += 4 * m
    if m % 2 == 1:
        off += 4
    if edata_size == 4:
        if float_weights:
            weights = np.frombuffer(data, dtype="<f4", count=m, offset=off).astype(
                np.float32
            )
        else:
            weights = np.frombuffer(data, dtype="<u4", count=m, offset=off).astype(
                np.int32
            )
    else:
        weights = np.ones(m, dtype=np.float32 if float_weights else np.int32)
    ro = np.zeros(n + 1, dtype=np.int64)
    ro[1:] = ends
    if n and (ends[-1] != m or np.any(np.diff(ro) < 0)):
        raise GraphFormatError(f"{path}: corrupt out_idx array")
    return CSRGraph(
        row_offsets=ro,
        col_indices=cols,
        weights=weights,
        name=name or path.stem,
    )


def write_dimacs(graph: CSRGraph, path: Union[str, Path]) -> None:
    """Write the text DIMACS shortest-path format (1-indexed arcs)."""
    with open(path, "w") as fh:
        fh.write("c generated by repro\n")
        fh.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for u, v, w in graph.edges():
            if graph.is_integer_weighted:
                fh.write(f"a {u + 1} {v + 1} {int(w)}\n")
            else:
                fh.write(f"a {u + 1} {v + 1} {w!r}\n")


def read_dimacs(
    source: Union[str, Path, io.TextIOBase], *, dtype: str = "int32", name: str = None
) -> CSRGraph:
    """Parse a text DIMACS shortest-path file."""
    if isinstance(source, (str, Path)):
        fh = open(source, "r")
        close = True
        label = name or Path(source).stem
    else:
        fh = source
        close = False
        label = name or "dimacs"
    try:
        n = None
        edges = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphFormatError(f"line {lineno}: bad problem line")
                n = int(parts[2])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphFormatError(f"line {lineno}: bad arc line")
                edges.append((int(parts[1]) - 1, int(parts[2]) - 1, float(parts[3])))
            else:
                raise GraphFormatError(f"line {lineno}: unknown record {parts[0]!r}")
        if n is None:
            raise GraphFormatError("missing 'p sp' problem line")
        return from_edge_list(n, edges, dtype=dtype, name=label)
    finally:
        if close:
            fh.close()
