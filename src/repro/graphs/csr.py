"""Compressed-sparse-row graph storage.

All SSSP solvers in this repository consume :class:`CSRGraph`.  The layout
mirrors what the GPU implementations in the paper use: a ``row_offsets``
array of length ``n + 1``, a ``col_indices`` array of length ``m`` and a
parallel ``weights`` array.  Topology arrays are ``int32`` (the artifact's
GR format is 32-bit) and weights are either ``int32`` or ``float32`` —
matching the paper's ``*_int`` / ``*_float`` build pair.

Weights must be non-negative; like the paper (§6.1.1) we convert negative
weights to positive magnitudes at construction time when asked to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphConstructionError

__all__ = ["CSRGraph", "PreparedArrays", "from_edge_list", "expand_frontier"]

#: Sentinel "infinite" distance for int32 solvers (same role as the
#: artifact's ``MYINFINITY``).  Chosen so that ``INF_INT32 + max_weight``
#: cannot overflow int64 accumulation buffers.
INF_INT32 = np.int32(2**31 - 1)

#: Sentinel distance for float solvers.
INF_FLOAT32 = np.float32(np.inf)


@dataclass
class PreparedArrays:
    """Solver-side derived arrays of one graph, built by
    :meth:`CSRGraph.prepare`.

    ``col64``/``w64`` are the int64/float64 twins the relax hot path
    gathers from (int32→int64 and int32/float32→float64 are exact, so a
    solve over the twins is bit-identical to one over the originals);
    ``adj`` is the per-vertex adjacency cache — ``adj[v]`` is
    ``(srcs, cols, ws)`` with the latter two views into the twins, filled
    lazily on first expansion and reused across every subsequent solve on
    the same graph.  All three are pure functions of the topology and
    weights, never of any solve's distances, which is what makes sharing
    them across solves (and serving sessions) safe.
    """

    col64: np.ndarray
    w64: np.ndarray
    adj: list


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph with non-negative edge weights in CSR form.

    Attributes
    ----------
    row_offsets:
        ``int64`` array of length ``n + 1``; out-edges of vertex ``v`` are
        the half-open slice ``col_indices[row_offsets[v]:row_offsets[v+1]]``.
        (int64 so edge counts above 2**31 remain representable, although
        generated inputs stay far below that.)
    col_indices:
        ``int32`` array of length ``m`` of destination vertex ids.
    weights:
        length-``m`` array of edge weights; dtype ``int32`` or ``float32``.
    name:
        Optional label used by the suite, benches and reports.
    """

    row_offsets: np.ndarray
    col_indices: np.ndarray
    weights: np.ndarray
    name: str = "graph"
    _stats_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        ro, ci, w = self.row_offsets, self.col_indices, self.weights
        if ro.ndim != 1 or ci.ndim != 1 or w.ndim != 1:
            raise GraphConstructionError("CSR arrays must be one-dimensional")
        if ro.size == 0:
            raise GraphConstructionError("row_offsets must have length n + 1 >= 1")
        if ci.size != w.size:
            raise GraphConstructionError(
                f"col_indices ({ci.size}) and weights ({w.size}) differ in length"
            )
        if int(ro[0]) != 0 or int(ro[-1]) != ci.size:
            raise GraphConstructionError(
                "row_offsets must start at 0 and end at the edge count"
            )
        if ro.size > 1 and np.any(np.diff(ro) < 0):
            raise GraphConstructionError("row_offsets must be non-decreasing")
        if ci.size and (int(ci.min()) < 0 or int(ci.max()) >= self.num_vertices):
            raise GraphConstructionError("col_indices out of range")
        if w.size and w.dtype.kind in "if" and float(w.min()) < 0:
            raise GraphConstructionError(
                "negative edge weight; pass negate_negative_weights=True to the builder"
            )
        if w.dtype not in (np.dtype(np.int32), np.dtype(np.float32)):
            raise GraphConstructionError(
                f"weights must be int32 or float32, got {w.dtype}"
            )

    # -- basic properties ---------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.row_offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self.col_indices.size

    @property
    def is_integer_weighted(self) -> bool:
        """True for the ``*_int`` flavour, False for ``*_float``."""
        return self.weights.dtype == np.dtype(np.int32)

    @property
    def infinity(self):
        """The sentinel distance value appropriate for this weight dtype."""
        return INF_INT32 if self.is_integer_weighted else INF_FLOAT32

    def dist_dtype(self) -> np.dtype:
        """Dtype of distance arrays produced by solvers for this graph."""
        return np.dtype(np.int64) if self.is_integer_weighted else np.dtype(np.float64)

    # -- views --------------------------------------------------------------

    def out_degree(self, v: Optional[int] = None):
        """Out-degree of ``v``, or the full int64 degree vector if ``v`` is None."""
        if v is None:
            return np.diff(self.row_offsets)
        return int(self.row_offsets[v + 1] - self.row_offsets[v])

    def neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(destinations, weights)`` views for vertex ``v`` (no copies)."""
        lo, hi = int(self.row_offsets[v]), int(self.row_offsets[v + 1])
        return self.col_indices[lo:hi], self.weights[lo:hi]

    def edges(self) -> Iterable[Tuple[int, int, float]]:
        """Iterate ``(src, dst, weight)`` triples (test/debug helper)."""
        for v in range(self.num_vertices):
            dsts, ws = self.neighbors(v)
            for d, w in zip(dsts.tolist(), ws.tolist()):
                yield v, d, w

    # -- statistics used by the Delta heuristic ------------------------------

    def average_weight(self) -> float:
        """Mean edge weight ``W`` (the paper's profile-kernel statistic)."""
        if "avg_weight" not in self._stats_cache:
            self._stats_cache["avg_weight"] = (
                float(self.weights.mean()) if self.num_edges else 0.0
            )
        return self._stats_cache["avg_weight"]

    def average_degree(self) -> float:
        """Mean out-degree ``D``."""
        n = self.num_vertices
        return self.num_edges / n if n else 0.0

    def max_weight(self) -> float:
        if "max_weight" not in self._stats_cache:
            self._stats_cache["max_weight"] = (
                float(self.weights.max()) if self.num_edges else 0.0
            )
        return self._stats_cache["max_weight"]

    # -- solver-side preparation ----------------------------------------------

    def prepare(self) -> "CSRGraph":
        """Prebuild the solver-side derived arrays, once, on the graph.

        Hoists the int64/float64 CSR twin casts (and the container for
        the per-vertex adjacency cache) out of the solve path: a prepared
        graph pays the cast cost here — e.g. at session load time — and
        every subsequent solve reuses the same arrays instead of
        re-casting.  Unprepared graphs keep the historic behavior (each
        solve casts privately), and prepared solves are bit-identical to
        unprepared ones.  Idempotent; returns ``self`` for chaining.
        """
        if "prepared" not in self._stats_cache:
            self._stats_cache["prepared"] = PreparedArrays(
                col64=self.col_indices.astype(np.int64),
                w64=self.weights.astype(np.float64),
                adj=[None] * self.num_vertices,
            )
        return self

    def prepared(self) -> Optional[PreparedArrays]:
        """The cached :class:`PreparedArrays`, or None if never prepared."""
        return self._stats_cache.get("prepared")

    # -- dynamic updates ------------------------------------------------------

    def apply_updates(self, batch):
        """Apply one :class:`~repro.dynamic.updates.UpdateBatch`.

        Weight-only batches patch ``weights`` (and the prepared float64
        twin, whose adjacency-cache views update for free) **in place**
        and drop the cached weight statistics; batches with inserts or
        deletes rebuild the CSR and return a fresh, unprepared graph.
        Returns an :class:`~repro.dynamic.updates.UpdateResult` carrying
        the post-batch graph and the net per-edge deltas the incremental
        re-solve path consumes.  See ``docs/dynamic.md``.
        """
        from repro.dynamic.updates import apply_updates

        return apply_updates(self, batch)

    # -- transforms -----------------------------------------------------------

    def reversed(self) -> "CSRGraph":
        """The transpose graph (used by reachability checks on directed inputs)."""
        n, m = self.num_vertices, self.num_edges
        src = np.repeat(
            np.arange(n, dtype=np.int32), np.diff(self.row_offsets).astype(np.int64)
        )
        order = np.argsort(self.col_indices, kind="stable")
        new_src = self.col_indices[order]
        counts = np.bincount(new_src, minlength=n).astype(np.int64)
        ro = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=ro[1:])
        return CSRGraph(
            row_offsets=ro,
            col_indices=src[order].astype(np.int32),
            weights=self.weights[order].copy(),
            name=f"{self.name}^T",
        )

    def with_weights(self, weights: np.ndarray, name: Optional[str] = None) -> "CSRGraph":
        """Same topology with a different weight vector."""
        return CSRGraph(
            row_offsets=self.row_offsets,
            col_indices=self.col_indices,
            weights=np.ascontiguousarray(weights),
            name=name or self.name,
        )

    def as_float(self) -> "CSRGraph":
        """The float32-weighted twin of an int graph (artifact's ``*_float``)."""
        if not self.is_integer_weighted:
            return self
        return self.with_weights(
            self.weights.astype(np.float32), name=f"{self.name}-float"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges}, dtype={self.weights.dtype})"
        )


def from_edge_list(
    num_vertices: int,
    edges: Sequence[Tuple[int, int, float]] | np.ndarray,
    *,
    dtype: str = "int32",
    name: str = "graph",
    negate_negative_weights: bool = False,
    dedupe: bool = False,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from ``(src, dst, weight)`` triples.

    Parameters
    ----------
    num_vertices:
        Vertex count; vertex ids must lie in ``[0, num_vertices)``.
    edges:
        Sequence of triples or an ``(m, 3)`` array.
    dtype:
        ``"int32"`` or ``"float32"`` weight storage.
    negate_negative_weights:
        Apply the paper's §6.1.1 rule: convert negative weights to their
        absolute value instead of rejecting them.
    dedupe:
        Keep only the minimum-weight copy of each parallel edge.
    """
    if num_vertices < 0:
        raise GraphConstructionError("num_vertices must be non-negative")
    arr = np.asarray(edges, dtype=np.float64)
    if arr.size == 0:
        arr = arr.reshape(0, 3)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise GraphConstructionError("edges must be (m, 3) of (src, dst, weight)")
    src = arr[:, 0].astype(np.int64)
    dst = arr[:, 1].astype(np.int64)
    w = arr[:, 2]
    if arr.shape[0]:
        if src.min() < 0 or src.max() >= num_vertices:
            raise GraphConstructionError("edge source out of range")
        if dst.min() < 0 or dst.max() >= num_vertices:
            raise GraphConstructionError("edge destination out of range")
    if negate_negative_weights:
        w = np.abs(w)
    if dedupe and arr.shape[0]:
        key = src * num_vertices + dst
        order = np.lexsort((w, key))
        key_s, w_s = key[order], w[order]
        first = np.ones(key_s.size, dtype=bool)
        first[1:] = key_s[1:] != key_s[:-1]
        keep = order[first]
        src, dst, w = src[keep], dst[keep], w[keep]

    order = np.lexsort((dst, src))
    src, dst, w = src[order], dst[order], w[order]
    counts = np.bincount(src, minlength=num_vertices).astype(np.int64)
    ro = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=ro[1:])
    wdt = np.dtype(dtype)
    if wdt == np.dtype(np.int32):
        wout = np.rint(w).astype(np.int32)
    elif wdt == np.dtype(np.float32):
        wout = w.astype(np.float32)
    else:
        raise GraphConstructionError(f"unsupported weight dtype {dtype!r}")
    return CSRGraph(
        row_offsets=ro,
        col_indices=dst.astype(np.int32),
        weights=wout,
        name=name,
    )


def expand_frontier(
    graph: CSRGraph, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather all out-edges of ``frontier`` vertices in one vectorized pass.

    Returns ``(sources, destinations, weights)`` where ``sources[i]`` is the
    frontier vertex whose edge produced ``destinations[i]``.  This is the
    shared "edge expansion" primitive every frontier-based solver uses; it
    is the ragged-gather idiom (repeat + cumulative offsets) so the hot
    path stays inside NumPy.
    """
    frontier = np.asarray(frontier)
    if frontier.size == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.astype(np.int32), np.empty(0, dtype=graph.weights.dtype)
    ro = graph.row_offsets
    if frontier.size <= 12:
        # Small frontiers (ADDS chunks are a handful of vertices): per-
        # vertex slices + one concatenate beat the ragged-gather below,
        # whose fixed cost is ~10 NumPy dispatches.
        cols = []
        ws = []
        counts = []
        ro_item = ro.item
        ci = graph.col_indices
        wt = graph.weights
        for v in frontier.tolist():
            s = ro_item(v)
            e = ro_item(v + 1)
            cols.append(ci[s:e])
            ws.append(wt[s:e])
            counts.append(e - s)
        f64 = frontier if frontier.dtype == np.int64 else frontier.astype(np.int64)
        sources = np.repeat(f64, counts)
        if sources.size == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e.astype(np.int32), np.empty(0, dtype=graph.weights.dtype)
        return sources, np.concatenate(cols), np.concatenate(ws)
    starts = ro[frontier]
    counts = ro[frontier + 1] - starts
    cum = np.cumsum(counts)
    total = int(cum[-1])
    if total == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.astype(np.int32), np.empty(0, dtype=graph.weights.dtype)
    # flat[i] walks each vertex's edge range contiguously: a global arange
    # plus one repeated per-vertex offset (start minus the running total of
    # preceding counts) — the same ragged gather with one repeat fewer.
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - cum + counts, counts)
    f64 = frontier if frontier.dtype == np.int64 else frontier.astype(np.int64)
    sources = np.repeat(f64, counts)
    return sources, graph.col_indices[flat], graph.weights[flat]
