"""Synthetic graph generators covering the paper's structural classes.

The paper's corpus (§6.1.1) draws from three families it analyzes
explicitly, plus general SuiteSparse matrices:

- **road networks** — "relatively uniform graphs with low bounded degree
  that are approximately planar, so they have high diameters";
  → :func:`grid_road` and :func:`random_geometric`.
- **power-law graphs** (``rmat22`` etc.) — "a small number of vertices have
  extremely high degree, while the vast majority have low degree";
  → :func:`rmat`.
- **random graphs** — "typically use a binomial distribution of node
  degrees"; → :func:`random_gnm`.
- **FEM / discretization matrices** (``msdoor``, ``BenElechi1``) — banded,
  regular, mid diameter; → :func:`fem_mesh`.
- **optimization matrices** (``c-big``) — a few huge rows over a cloud of
  small ones, very low diameter, tiny total runtime; → :func:`clique_chain`.

All generators are deterministic given ``seed`` and return int32-weighted
:class:`~repro.graphs.csr.CSRGraph` objects (call :meth:`CSRGraph.as_float`
for the float flavour).  Every generator emits each undirected edge in both
directions, as Lonestar's ``.gr`` road/rmat inputs do.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphConstructionError
from repro.graphs.csr import CSRGraph, from_edge_list

__all__ = [
    "grid_road",
    "rmat",
    "random_gnm",
    "random_geometric",
    "fem_mesh",
    "clique_chain",
    "update_stream",
]


def _weights(
    rng: np.random.Generator, m: int, max_weight: int, style: str = "uniform"
) -> np.ndarray:
    """Integer edge weights in ``[1, max_weight]``.

    ``"uniform"`` is the Lonestar convention.  ``"heavy"`` draws from a
    lognormal (median ≈ 4, σ = 3.0) clipped to the range — the
    decades-spanning value distribution of SuiteSparse FEM/optimization
    matrices.  Heavy tails matter to this paper specifically: they inflate
    the *average* weight, so the Davidson Δ = C·(W/D) heuristic lands far
    from the typical edge weight and Near-Far's band ordering collapses —
    the regime where ADDS's dynamic Δ recovers the lost work efficiency.
    """
    if max_weight < 1:
        raise GraphConstructionError("max_weight must be >= 1")
    if style == "uniform":
        return rng.integers(1, max_weight + 1, size=m).astype(np.float64)
    if style == "heavy":
        w = np.exp(rng.normal(np.log(4.0), 3.0, size=m))
        return np.clip(np.rint(w), 1, max_weight).astype(np.float64)
    raise GraphConstructionError(f"unknown weight style {style!r}")


def _bidirect(src: np.ndarray, dst: np.ndarray, w: np.ndarray):
    """Duplicate every edge in the reverse direction with the same weight."""
    return (
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        np.concatenate([w, w]),
    )


def grid_road(
    width: int,
    height: int,
    *,
    max_weight: int = 8192,
    diagonal_fraction: float = 0.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> CSRGraph:
    """A road-network analog: a ``width × height`` 4-connected grid.

    Grids reproduce the properties the paper leans on for road graphs:
    bounded degree (≤ 4), approximate planarity and diameter
    Θ(width + height).  ``diagonal_fraction`` optionally adds a sprinkling
    of diagonal shortcuts, roughly modelling highways.

    The default ``max_weight`` mirrors the wide weight range of DIMACS road
    inputs (travel times), which is what makes Δ selection interesting.
    """
    if width < 1 or height < 1:
        raise GraphConstructionError("grid dimensions must be positive")
    rng = np.random.default_rng(seed)
    n = width * height
    idx = np.arange(n, dtype=np.int64)
    x = idx % width
    y = idx // width

    right_src = idx[x < width - 1]
    right_dst = right_src + 1
    down_src = idx[y < height - 1]
    down_dst = down_src + width
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])

    if diagonal_fraction > 0:
        cand = idx[(x < width - 1) & (y < height - 1)]
        take = rng.random(cand.size) < diagonal_fraction
        d_src = cand[take]
        src = np.concatenate([src, d_src])
        dst = np.concatenate([dst, d_src + width + 1])

    w = _weights(rng, src.size, max_weight)
    src, dst, w = _bidirect(src, dst, w)
    return from_edge_list(
        n,
        np.stack([src, dst, w], axis=1),
        name=name or f"road-{width}x{height}",
    )


def rmat(
    scale: int,
    *,
    edge_factor: int = 8,
    a: float = 0.45,
    b: float = 0.15,
    c: float = 0.15,
    max_weight: int = 100,
    weight_style: str = "uniform",
    bidirectional: bool = False,
    seed: int = 0,
    name: Optional[str] = None,
) -> CSRGraph:
    """An R-MAT power-law graph with ``2**scale`` vertices.

    Uses the classic recursive-matrix construction with GTgraph's default
    quadrant probabilities (0.45/0.15/0.15/0.25 — the generator behind the
    Lonestar ``rmat*`` inputs), which keep ≥75 % of vertices reachable from
    the hub as the paper's selection criterion requires.  Directed by
    default, like the Lonestar rmat inputs; duplicate edges are collapsed
    to their minimum-weight copy.
    """
    if scale < 1 or scale > 26:
        raise GraphConstructionError("rmat scale must be in [1, 26]")
    if min(a, b, c) < 0 or a + b + c >= 1.0:
        raise GraphConstructionError("rmat probabilities must satisfy a+b+c < 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Each bit level picks a quadrant independently (vectorized over edges).
    for level in range(scale):
        r = rng.random(m)
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        src = src * 2 + go_down
        dst = dst * 2 + go_right
    w = _weights(rng, m, max_weight, weight_style)
    # Drop self loops; they never affect SSSP but inflate edge counts.
    keep = src != dst
    src, dst, w = src[keep], dst[keep], w[keep]
    if bidirectional:
        src, dst, w = _bidirect(src, dst, w)
    return from_edge_list(
        n,
        np.stack([src, dst, w], axis=1),
        name=name or f"rmat{scale}",
        dedupe=True,
    )


def random_gnm(
    n: int,
    m: int,
    *,
    max_weight: int = 100,
    weight_style: str = "uniform",
    bidirectional: bool = True,
    seed: int = 0,
    name: Optional[str] = None,
) -> CSRGraph:
    """A uniform random graph with ``n`` vertices and ~``m`` distinct edges.

    Degree distribution is binomial, matching the paper's description of
    "random graphs".  Low diameter (Θ(log n / log(m/n))).
    """
    if n < 2:
        raise GraphConstructionError("random_gnm needs n >= 2")
    rng = np.random.default_rng(seed)
    # Oversample then dedupe; for the sparse regimes used here the
    # collision rate is tiny.
    over = int(m * 1.1) + 16
    src = rng.integers(0, n, size=over)
    dst = rng.integers(0, n, size=over)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    key = src * n + dst
    _, first = np.unique(key, return_index=True)
    first = np.sort(first)[:m]
    src, dst = src[first], dst[first]
    w = _weights(rng, src.size, max_weight, weight_style)
    if bidirectional:
        src, dst, w = _bidirect(src, dst, w)
    return from_edge_list(
        n,
        np.stack([src, dst, w], axis=1),
        name=name or f"gnm-{n}-{m}",
        dedupe=True,
    )


def random_geometric(
    n: int,
    *,
    k: int = 6,
    max_weight: int = 4096,
    seed: int = 0,
    name: Optional[str] = None,
) -> CSRGraph:
    """A k-nearest-neighbour graph of random points in the unit square.

    An irregular road-network analog: low bounded degree, spatially local
    edges, high diameter (Θ(sqrt(n / k))).  Weights scale with Euclidean
    distance so that priority order correlates with geometry, as it does
    for real road travel times.
    """
    if n < k + 1:
        raise GraphConstructionError("random_geometric needs n > k")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    # Bucket points into a grid so neighbour search is near-linear.
    cells = max(1, int(np.sqrt(n / max(k, 1))))
    cell_of = np.minimum((pts * cells).astype(np.int64), cells - 1)
    cell_id = cell_of[:, 0] * cells + cell_of[:, 1]
    order = np.argsort(cell_id, kind="stable")
    src_list, dst_list, w_list = [], [], []
    starts = np.searchsorted(cell_id[order], np.arange(cells * cells + 1))
    for cx in range(cells):
        for cy in range(cells):
            cid = cx * cells + cy
            mine = order[starts[cid] : starts[cid + 1]]
            if mine.size == 0:
                continue
            cand = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    nx, ny = cx + dx, cy + dy
                    if 0 <= nx < cells and 0 <= ny < cells:
                        nid = nx * cells + ny
                        cand.append(order[starts[nid] : starts[nid + 1]])
            cand = np.concatenate(cand)
            d2 = ((pts[mine, None, :] - pts[None, cand, :]) ** 2).sum(axis=2)
            kk = min(k + 1, cand.size)
            nearest = np.argpartition(d2, kk - 1, axis=1)[:, :kk]
            for i, v in enumerate(mine):
                for j in nearest[i]:
                    u = cand[j]
                    if u != v:
                        src_list.append(v)
                        dst_list.append(u)
                        w_list.append(np.sqrt(d2[i, j]))
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    dist = np.asarray(w_list)
    scale = max_weight / max(dist.max(), 1e-12)
    w = np.maximum(1, np.rint(dist * scale))
    src, dst, w = _bidirect(src, dst, w)
    return from_edge_list(
        n,
        np.stack([src, dst, w], axis=1),
        name=name or f"geo-{n}-k{k}",
        dedupe=True,
    )


def fem_mesh(
    n: int,
    *,
    band: int = 24,
    stride: int = 5,
    max_weight: int = 64,
    weight_style: str = "uniform",
    seed: int = 0,
    name: Optional[str] = None,
) -> CSRGraph:
    """A banded finite-element-style mesh (``msdoor`` / ``BenElechi1`` analog).

    Vertex ``v`` connects to ``v + j*stride`` for ``j = 1 .. band/stride``
    plus its immediate successor, giving the regular mid-degree, mid-diameter
    band structure of FEM discretization matrices.  Weights are drawn from a
    narrow range, as matrix-derived weights typically are.
    """
    if n < band + 2:
        raise GraphConstructionError("fem_mesh needs n > band + 1")
    if stride < 1:
        raise GraphConstructionError("stride must be >= 1")
    rng = np.random.default_rng(seed)
    idx = np.arange(n, dtype=np.int64)
    offsets = [1] + [j * stride for j in range(1, band // stride + 1)]
    src_parts, dst_parts = [], []
    for off in sorted(set(offsets)):
        s = idx[: n - off]
        src_parts.append(s)
        dst_parts.append(s + off)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    w = _weights(rng, src.size, max_weight, weight_style)
    src, dst, w = _bidirect(src, dst, w)
    return from_edge_list(
        n,
        np.stack([src, dst, w], axis=1),
        name=name or f"mesh-{n}-b{band}",
    )


def clique_chain(
    num_cliques: int,
    clique_size: int,
    *,
    max_weight: int = 16,
    weight_style: str = "uniform",
    seed: int = 0,
    name: Optional[str] = None,
) -> CSRGraph:
    """A chain of dense cliques (``c-big`` analog).

    Optimization matrices like ``c-big`` mix a few very dense rows with
    many sparse ones and have tiny diameters, so the whole SSSP finishes in
    a few waves — the regime where the paper says ADDS's dynamic Δ cannot
    ramp up quickly enough (Figure 15).  A chain of cliques reproduces
    this: huge intra-clique parallelism, a short critical path across the
    chain.
    """
    if num_cliques < 1 or clique_size < 2:
        raise GraphConstructionError("need num_cliques >= 1 and clique_size >= 2")
    rng = np.random.default_rng(seed)
    n = num_cliques * clique_size
    local = np.arange(clique_size, dtype=np.int64)
    a, b = np.meshgrid(local, local, indexing="ij")
    mask = a < b
    ca, cb = a[mask], b[mask]
    src_parts, dst_parts = [], []
    for c in range(num_cliques):
        base = c * clique_size
        src_parts.append(ca + base)
        dst_parts.append(cb + base)
        if c + 1 < num_cliques:
            # one bridge edge to the next clique
            src_parts.append(np.array([base + clique_size - 1], dtype=np.int64))
            dst_parts.append(np.array([base + clique_size], dtype=np.int64))
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    w = _weights(rng, src.size, max_weight, weight_style)
    src, dst, w = _bidirect(src, dst, w)
    return from_edge_list(
        n,
        np.stack([src, dst, w], axis=1),
        name=name or f"cliques-{num_cliques}x{clique_size}",
    )


def update_stream(
    graph: CSRGraph,
    *,
    batches: int = 4,
    batch_size: int = 8,
    seed: int = 0,
    p_insert: float = 0.1,
    p_delete: float = 0.1,
    max_weight: Optional[int] = None,
    name: Optional[str] = None,
):
    """A deterministic stream of edge-update batches for ``graph``.

    The time-varying analogue of the graph generators above: given a
    (typically suite-generated) graph, produce ``batches`` sequential
    :class:`~repro.dynamic.updates.UpdateBatch` objects — mostly weight
    increases/decreases (the congestion model), with ``p_insert`` /
    ``p_delete`` fractions of topology changes — that are valid when
    applied **in order** starting from ``graph``.  The caller's graph is
    never touched: the generator tracks the evolving state on a private
    copy.  Weights stay integral for int32 graphs and within
    ``[1, max_weight]`` (default: the graph's current max weight).

    Deterministic given ``seed``; ``name`` only labels error messages.
    """
    # late import: repro.dynamic depends on repro.graphs.csr, so the
    # package-level import here would be cyclic
    from repro.dynamic.updates import EdgeUpdate, UpdateBatch, apply_updates

    if batches < 0 or batch_size < 1:
        raise GraphConstructionError(
            "need batches >= 0 and batch_size >= 1 for an update stream"
        )
    if not 0.0 <= p_insert + p_delete <= 1.0:
        raise GraphConstructionError(
            "p_insert + p_delete must lie in [0, 1]"
        )
    rng = np.random.default_rng(seed)
    mw = int(max_weight) if max_weight is not None else max(2, int(graph.max_weight()))
    # private evolving copy (weight-only batches patch arrays in place)
    state = CSRGraph(
        row_offsets=graph.row_offsets.copy(),
        col_indices=graph.col_indices.copy(),
        weights=graph.weights.copy(),
        name=name or f"{graph.name}-stream",
    )

    def has_edge(g: CSRGraph, u: int, v: int) -> bool:
        lo, hi = int(g.row_offsets[u]), int(g.row_offsets[u + 1])
        return bool(np.any(g.col_indices[lo:hi] == v))

    def edge_at(g: CSRGraph, pos: int):
        u = int(np.searchsorted(g.row_offsets, pos, side="right")) - 1
        return u, int(g.col_indices[pos]), float(g.weights[pos])

    out = []
    for _ in range(batches):
        used = set()
        updates = []
        attempts = 0
        while len(updates) < batch_size and attempts < batch_size * 20:
            attempts += 1
            n, m = state.num_vertices, state.num_edges
            r = float(rng.random())
            if r < p_insert or m == 0:
                u = int(rng.integers(n))
                v = int(rng.integers(n))
                if u == v or (u, v) in used or has_edge(state, u, v):
                    continue
                w = int(rng.integers(1, mw + 1))
                updates.append(EdgeUpdate("insert", u, v, w))
            elif r < p_insert + p_delete:
                u, v, _w = edge_at(state, int(rng.integers(m)))
                if (u, v) in used:
                    continue
                updates.append(EdgeUpdate("delete", u, v))
            else:
                u, v, w = edge_at(state, int(rng.integers(m)))
                if (u, v) in used:
                    continue
                if w > 1 and rng.random() < 0.5:
                    new = int(rng.integers(1, int(w)))  # strict decrease
                    updates.append(EdgeUpdate("decrease", u, v, new))
                else:
                    new = int(w) + int(rng.integers(1, mw + 1))
                    updates.append(EdgeUpdate("increase", u, v, new))
            used.add((updates[-1].src, updates[-1].dst))
        batch = UpdateBatch(updates)
        state = apply_updates(state, batch).graph
        out.append(batch)
    return out
