"""Graph statistics used for suite selection and the paper's Table 2.

The paper bins its 226 inputs by average degree (<4, 4–8, 8–32, 32–64,
>=64) and diameter (<40, 40–320, 320–640, >=640) and requires ≥75 % of the
vertices to be reachable (§6.1.1).  ``pseudo_diameter`` is the standard
double-sweep BFS lower bound (hop distance), which is how diameters of
large graphs are reported in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.graphs.csr import CSRGraph, expand_frontier

__all__ = [
    "GraphStats",
    "bfs_levels",
    "pseudo_diameter",
    "reachable_fraction",
    "compute_stats",
    "DEGREE_BINS",
    "DIAMETER_BINS",
    "degree_bin",
    "diameter_bin",
]

#: Table 2 degree bin edges (right-open intervals, last unbounded).
DEGREE_BINS: Tuple[float, ...] = (4.0, 8.0, 32.0, 64.0)
#: Table 2 diameter bin edges.
DIAMETER_BINS: Tuple[float, ...] = (40.0, 320.0, 640.0)


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (-1 if unreachable)."""
    n = graph.num_vertices
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        _, dsts, _ = expand_frontier(graph, frontier)
        if dsts.size == 0:
            break
        cand = np.unique(dsts.astype(np.int64))
        new = cand[level[cand] < 0]
        if new.size == 0:
            break
        level[new] = depth
        frontier = new
    return level


def reachable_fraction(graph: CSRGraph, source: int = 0) -> float:
    """Fraction of vertices reachable from ``source`` (paper requires ≥0.75)."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    level = bfs_levels(graph, source)
    return float((level >= 0).sum()) / n


def pseudo_diameter(graph: CSRGraph, source: int = 0, sweeps: int = 2) -> int:
    """Double-sweep BFS pseudo-diameter (hop count).

    Runs BFS from ``source``, restarts from the farthest reached vertex,
    and repeats ``sweeps`` times; returns the largest eccentricity seen.
    A lower bound on the true diameter that is tight for the graph classes
    used here (grids, meshes, power-law).
    """
    best = 0
    start = source
    for _ in range(max(1, sweeps)):
        level = bfs_levels(graph, start)
        reached = level >= 0
        if not reached.any():
            break
        ecc = int(level[reached].max())
        best = max(best, ecc)
        far = np.flatnonzero(level == ecc)
        start = int(far[-1])
    return best


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for one graph, as used by Table 2 and Figures 8–9."""

    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    avg_weight: float
    max_weight: float
    diameter: int
    reachable: float

    def degree_bin_label(self) -> str:
        return degree_bin(self.avg_degree)

    def diameter_bin_label(self) -> str:
        return diameter_bin(self.diameter)


def degree_bin(avg_degree: float) -> str:
    """Bin label for Table 2's degree row."""
    lo = 0.0
    labels = ["<4", "4-8", "8-32", "32-64", ">=64"]
    for edge, label in zip(DEGREE_BINS, labels):
        if avg_degree < edge:
            return label
        lo = edge
    return labels[-1]


def diameter_bin(diameter: float) -> str:
    """Bin label for Table 2's diameter row."""
    labels = ["<40", "40-320", "320-640", ">=640"]
    for edge, label in zip(DIAMETER_BINS, labels):
        if diameter < edge:
            return label
    return labels[-1]


def compute_stats(graph: CSRGraph, source: int = 0) -> GraphStats:
    """Compute the full :class:`GraphStats` record for one graph."""
    deg = graph.out_degree()
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=graph.average_degree(),
        max_degree=int(deg.max()) if deg.size else 0,
        avg_weight=graph.average_weight(),
        max_weight=graph.max_weight(),
        diameter=pseudo_diameter(graph, source),
        reachable=reachable_fraction(graph, source),
    )
