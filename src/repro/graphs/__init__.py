"""Graph substrate: CSR storage, generators, GR format I/O, metrics, suite.

The paper evaluates on 226 graphs from Lonestar 4.0 and the SuiteSparse
Matrix Collection.  This package provides:

- :class:`~repro.graphs.csr.CSRGraph` — the compressed-sparse-row graph
  every solver consumes (int32 topology, int32 or float32 weights, exactly
  like the artifact's int/float build pair);
- :mod:`~repro.graphs.generators` — synthetic generators for each
  structural class the paper analyzes (road grids, RMAT power-law, uniform
  random, FEM banded meshes, clique chains);
- :mod:`~repro.graphs.gr_format` — the DIMACS challenge-9 binary ``.gr``
  format used by Galois/Lonestar and the paper's artifact;
- :mod:`~repro.graphs.metrics` — degree/weight statistics and the
  BFS pseudo-diameter used to bin graphs as in the paper's Table 2;
- :mod:`~repro.graphs.suite` — the deterministic synthetic corpus standing
  in for the paper's 226-graph collection.
"""

from repro.graphs.csr import CSRGraph, from_edge_list
from repro.graphs.generators import (
    clique_chain,
    fem_mesh,
    grid_road,
    random_geometric,
    random_gnm,
    rmat,
    update_stream,
)
from repro.graphs.gr_format import read_gr, write_gr
from repro.graphs.metrics import GraphStats, compute_stats, pseudo_diameter, reachable_fraction
from repro.graphs.suite import SuiteEntry, build_suite, named_graph

__all__ = [
    "CSRGraph",
    "from_edge_list",
    "grid_road",
    "rmat",
    "random_gnm",
    "random_geometric",
    "fem_mesh",
    "clique_chain",
    "update_stream",
    "read_gr",
    "write_gr",
    "GraphStats",
    "compute_stats",
    "pseudo_diameter",
    "reachable_fraction",
    "SuiteEntry",
    "build_suite",
    "named_graph",
]
