"""The benchmark corpus: a deterministic stand-in for the paper's 226 graphs.

The paper evaluates on 226 inputs from Lonestar 4.0 and SuiteSparse with at
least 100 K vertices / 1 M edges each.  Those collections are not available
offline and are too large for a Python-level device simulator, so this
module builds a *scaled* corpus with the same structural spread (see
DESIGN.md §4.4): road grids, geometric road analogs, RMAT power-law graphs,
uniform random graphs, FEM banded meshes and clique chains, across several
sizes, weight ranges and seeds.

Five named stand-ins anchor the per-figure analyses:

========== ============================ =================================
name       stands in for                paper role
========== ============================ =================================
road-usa-mini   road-USA (Lonestar)     Figure 11, high diameter extreme
benelechi1-mini BenElechi1 (SuiteSparse) Figure 12, mid utilization
msdoor-mini     msdoor (SuiteSparse)    Figures 7c/13, FEM mesh
rmat22-mini     rmat22 (Lonestar)       Figures 7a/14, power law
c-big-mini      c-big (SuiteSparse)     Figure 15, tiny-runtime extreme
========== ============================ =================================

Entries are built lazily and cached, so iterating metadata is cheap.

Corpus entries are described by :class:`GraphSpec` — a *picklable* value
(generator name + parameters) rather than a closure — so the experiment
engine can ship "which graph" across process boundaries and key its
on-disk graph cache on a stable content hash.  ``SuiteEntry`` still
accepts a ``factory`` callable for ad-hoc, in-process suites (the
pre-engine API), but factory-based entries cannot be cached or built in
worker processes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GraphConstructionError
from repro.graphs import generators as _generators
from repro.graphs.csr import CSRGraph

__all__ = [
    "GraphSpec",
    "SuiteEntry",
    "build_suite",
    "named_graph",
    "NAMED_STANDINS",
]


@dataclass(frozen=True)
class GraphSpec:
    """A picklable recipe for one corpus graph.

    ``generator`` names a function in :mod:`repro.graphs.generators`;
    ``params`` is its keyword arguments as a sorted tuple of pairs (kept
    hashable so specs can be dict keys); ``as_float`` applies the
    ``sssp-float`` twin conversion after generation.  Only explicitly
    given parameters are recorded — generator defaults stay implicit, and
    :meth:`cache_key` therefore changes exactly when the recipe does.
    """

    generator: str
    params: Tuple[Tuple[str, object], ...] = ()
    as_float: bool = False

    @classmethod
    def make(cls, generator: str, *, as_float: bool = False, **params) -> "GraphSpec":
        """Build a spec from plain keyword arguments."""
        return cls(
            generator=generator,
            params=tuple(sorted(params.items())),
            as_float=as_float,
        )

    def build(self) -> CSRGraph:
        """Generate the graph (deterministic: same spec → same arrays)."""
        if self.generator not in _generators.__all__:
            raise GraphConstructionError(
                f"unknown generator {self.generator!r}; "
                f"choose from {sorted(_generators.__all__)}"
            )
        g = getattr(_generators, self.generator)(**dict(self.params))
        return g.as_float() if self.as_float else g

    def cache_key(self) -> str:
        """A stable content hash for the on-disk graph cache."""
        payload = json.dumps(
            {
                "generator": self.generator,
                "params": list(self.params),
                "as_float": self.as_float,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class SuiteEntry:
    """One corpus graph: metadata plus a lazily-built :class:`CSRGraph`.

    Exactly one of ``spec`` (picklable recipe, preferred) or ``factory``
    (arbitrary callable, legacy) must be provided.
    """

    name: str
    category: str
    spec: Optional[GraphSpec] = field(default=None, repr=False)
    factory: Optional[Callable[[], CSRGraph]] = field(default=None, repr=False)
    source: int = 0
    _graph: Optional[CSRGraph] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if (self.spec is None) == (self.factory is None):
            raise GraphConstructionError(
                f"suite entry {self.name!r} needs exactly one of spec/factory"
            )

    def graph(self) -> CSRGraph:
        """Build (once) and return the graph."""
        if self._graph is None:
            g = self.factory() if self.factory is not None else self.spec.build()
            # Re-label with the suite name so reports line up.
            self._graph = CSRGraph(
                row_offsets=g.row_offsets,
                col_indices=g.col_indices,
                weights=g.weights,
                name=self.name,
            )
        return self._graph


def _scaled(value: int, scale: float, floor: int = 8) -> int:
    return max(floor, int(round(value * scale)))


def _named_specs(scale: float) -> Dict[str, GraphSpec]:
    s = scale
    return {
        # road-USA: huge diameter, degree ~2.4, wide travel-time weights.
        "road-usa-mini": GraphSpec.make(
            "grid_road",
            width=_scaled(160, s**0.5, 12), height=_scaled(90, s**0.5, 12),
            max_weight=8192, seed=11,
        ),
        # BenElechi1: FEM matrix, avg degree ~26, mid diameter.  Heavy-
        # tailed values (like the real matrix) push the Davidson Δ far
        # from the typical weight — the regime where NF loses ordering.
        "benelechi1-mini": GraphSpec.make(
            "fem_mesh",
            n=_scaled(9000, s, 200), band=36, stride=3, max_weight=65535,
            weight_style="heavy", seed=21,
        ),
        # msdoor: FEM mesh, avg degree ~46, heavy-tailed values.
        "msdoor-mini": GraphSpec.make(
            "fem_mesh",
            n=_scaled(8000, s, 200), band=44, stride=2, max_weight=65535,
            weight_style="heavy", seed=31,
        ),
        # rmat22: power law, avg degree ~8 directed.  Slightly stronger
        # skew than the suite default so the hub structure the paper
        # analyzes is unmistakable, while staying ≥75 % reachable.
        "rmat22-mini": GraphSpec.make(
            "rmat",
            scale=max(8, int(round(13 + (s - 1)))),
            edge_factor=8,
            a=0.48,
            b=0.19,
            c=0.19,
            seed=41,
        ),
        # c-big: near-flat optimization matrix, tiny runtime; heavy-tailed
        # values like the real LP matrix.
        "c-big-mini": GraphSpec.make(
            "clique_chain",
            num_cliques=_scaled(24, s, 2), clique_size=_scaled(70, s**0.5, 6),
            max_weight=2048, weight_style="heavy", seed=51,
        ),
    }


#: Names of the five per-figure stand-in graphs.
NAMED_STANDINS = tuple(sorted(_named_specs(1.0).keys()))


def named_graph(name: str, *, scale: float = 1.0) -> CSRGraph:
    """Build one of the named stand-in graphs (see module docstring)."""
    specs = _named_specs(scale)
    if name not in specs:
        raise GraphConstructionError(
            f"unknown named graph {name!r}; choose from {sorted(specs)}"
        )
    g = specs[name].build()
    return CSRGraph(
        row_offsets=g.row_offsets,
        col_indices=g.col_indices,
        weights=g.weights,
        name=name,
    )


def build_suite(
    *,
    scale: float = 1.0,
    categories: Optional[List[str]] = None,
    include_named: bool = True,
    include_float: bool = True,
    max_graphs: Optional[int] = None,
) -> List[SuiteEntry]:
    """Construct the corpus.

    Parameters
    ----------
    scale:
        Multiplies vertex counts (1.0 ≈ 2 K–30 K vertices per graph —
        sized for a Python discrete-event simulator; the paper's inputs
        are 100 K+ but structurally identical).
    categories:
        Restrict to a subset of
        ``{"road", "geo", "rmat", "random", "mesh", "clique", "float"}``.
    include_named:
        Include the five per-figure stand-ins.
    include_float:
        Include float32-weighted twins of a few graphs (the artifact's
        ``sssp-float`` set).
    max_graphs:
        Truncate the corpus (after ordering) for quick runs.
    """
    if scale <= 0:
        raise GraphConstructionError("scale must be positive")
    s = scale
    entries: List[SuiteEntry] = []

    def add(name: str, category: str, spec: GraphSpec) -> None:
        entries.append(SuiteEntry(name=name, category=category, spec=spec))

    # --- road grids: high diameter, degree <4 -------------------------------
    road_specs = [
        (40, 40, 8192, 1),
        (64, 64, 8192, 2),
        (96, 48, 8192, 3),
        (128, 64, 4096, 4),
        (160, 80, 8192, 5),
        (220, 40, 16384, 6),
        (300, 24, 8192, 7),
        (90, 90, 1024, 8),
    ]
    for w_, h_, mw, seed in road_specs:
        wd, ht = _scaled(w_, s**0.5, 8), _scaled(h_, s**0.5, 8)
        add(
            f"road-{wd}x{ht}-w{mw}",
            "road",
            GraphSpec.make(
                "grid_road", width=wd, height=ht, max_weight=mw, seed=seed
            ),
        )
    # a couple of grids with diagonal shortcuts (highway-ish)
    for frac, seed in [(0.05, 9), (0.15, 10)]:
        wd, ht = _scaled(100, s**0.5, 8), _scaled(60, s**0.5, 8)
        add(
            f"road-diag{int(frac * 100)}-{wd}x{ht}",
            "road",
            GraphSpec.make(
                "grid_road", width=wd, height=ht, max_weight=8192,
                diagonal_fraction=frac, seed=seed,
            ),
        )

    # --- geometric road analogs ---------------------------------------------
    for n_, k, seed in [(3000, 5, 12), (6000, 6, 13), (9000, 7, 14), (5000, 4, 15)]:
        n = _scaled(n_, s, 64)
        add(
            f"geo-{n}-k{k}",
            "geo",
            GraphSpec.make("random_geometric", n=n, k=k, seed=seed),
        )

    # --- RMAT power-law ------------------------------------------------------
    base_scale = 10 + max(0, int(round((s - 1))))
    for sc_off, ef, mw, seed in [
        (0, 8, 100, 16),
        (1, 8, 100, 17),
        (2, 8, 100, 18),
        (3, 8, 100, 19),
        (1, 16, 100, 20),
        (2, 16, 1000, 21),
        (0, 24, 100, 22),
        (2, 8, 10, 23),
    ]:
        sc = base_scale + sc_off
        add(
            f"rmat{sc}-ef{ef}-w{mw}",
            "rmat",
            GraphSpec.make(
                "rmat", scale=sc, edge_factor=ef, max_weight=mw, seed=seed
            ),
        )

    # --- uniform random -------------------------------------------------------
    for n_, deg, mw, seed in [
        (4000, 4, 100, 24),
        (8000, 8, 100, 25),
        (16000, 8, 100, 26),
        (6000, 16, 100, 27),
        (12000, 32, 100, 28),
        (3000, 64, 100, 29),
        (8000, 8, 10000, 30),
        (8000, 8, 4, 31),
    ]:
        n = _scaled(n_, s, 64)
        m = n * deg // 2
        add(
            f"gnm-{n}-d{deg}-w{mw}",
            "random",
            GraphSpec.make("random_gnm", n=n, m=m, max_weight=mw, seed=seed),
        )

    # --- FEM banded meshes -----------------------------------------------------
    for n_, band, stride, mw, seed in [
        (6000, 24, 3, 64, 32),
        (12000, 36, 3, 64, 33),
        (20000, 44, 2, 64, 34),
        (9000, 16, 2, 512, 35),
        (15000, 60, 4, 64, 36),
        (8000, 30, 5, 2048, 37),
    ]:
        n = _scaled(n_, s, 256)
        add(
            f"mesh-{n}-b{band}s{stride}-w{mw}",
            "mesh",
            GraphSpec.make(
                "fem_mesh", n=n, band=band, stride=stride, max_weight=mw,
                seed=seed,
            ),
        )

    # --- value-skewed graphs (SuiteSparse-style heavy-tailed entries) -------
    # These are the Figure 4 regime: the Davidson heuristic's average
    # weight is dominated by the tail, so a fixed C lands far from the
    # per-graph optimum — the graphs where runtime Δ selection matters.
    skew_specs = [
        ("mesh-heavy-10000", GraphSpec.make(
            "fem_mesh", n=_scaled(10000, s, 256), band=36, stride=3,
            max_weight=65535, weight_style="heavy", seed=61)),
        ("mesh-heavy-14000", GraphSpec.make(
            "fem_mesh", n=_scaled(14000, s, 256), band=24, stride=2,
            max_weight=65535, weight_style="heavy", seed=62)),
        ("gnm-heavy-8000", GraphSpec.make(
            "random_gnm", n=_scaled(8000, s, 64), m=_scaled(32000, s, 256),
            max_weight=65535, weight_style="heavy", seed=63)),
        ("gnm-heavy-12000", GraphSpec.make(
            "random_gnm", n=_scaled(12000, s, 64), m=_scaled(48000, s, 256),
            max_weight=65535, weight_style="heavy", seed=64)),
        ("cliques-heavy-20x50", GraphSpec.make(
            "clique_chain", num_cliques=_scaled(20, s, 2),
            clique_size=_scaled(50, s**0.5, 6), max_weight=65535,
            weight_style="heavy", seed=65)),
        ("rmat-heavy-12", GraphSpec.make(
            "rmat", scale=10 + max(0, int(round((s - 1)))) + 2, edge_factor=8,
            max_weight=65535, weight_style="heavy", seed=66)),
    ]
    for nm, spec in skew_specs:
        add(nm, "skew", spec)

    # --- clique chains -----------------------------------------------------------
    for nc_, cs_, seed in [(12, 40, 38), (30, 60, 39), (8, 90, 40), (50, 25, 41)]:
        nc, cs = _scaled(nc_, s, 2), _scaled(cs_, s**0.5, 6)
        add(
            f"cliques-{nc}x{cs}",
            "clique",
            GraphSpec.make("clique_chain", num_cliques=nc, clique_size=cs, seed=seed),
        )

    # --- float twins ---------------------------------------------------------------
    if include_float:
        float_bases = [
            ("road-float", GraphSpec.make(
                "grid_road", width=_scaled(80, s**0.5, 8),
                height=_scaled(80, s**0.5, 8), max_weight=8192, seed=42,
                as_float=True)),
            ("rmat-float", GraphSpec.make(
                "rmat", scale=base_scale + 1, edge_factor=8, seed=43,
                as_float=True)),
            ("mesh-float", GraphSpec.make(
                "fem_mesh", n=_scaled(10000, s, 256), band=30, stride=3,
                seed=44, as_float=True)),
            ("gnm-float", GraphSpec.make(
                "random_gnm", n=_scaled(8000, s, 64), m=_scaled(32000, s, 256),
                seed=45, as_float=True)),
        ]
        for nm, spec in float_bases:
            add(nm, "float", spec)

    if include_named:
        for nm, spec in _named_specs(s).items():
            add(nm, "named", spec)

    if categories is not None:
        allowed = set(categories)
        entries = [e for e in entries if e.category in allowed]
    if max_graphs is not None:
        entries = entries[:max_graphs]
    return entries
