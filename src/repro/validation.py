"""Result verification: the artifact's ``verify_against_*`` / ``verify.py``.

The artifact validates performance results by "comparing whether two
implementations produce the same final node distances" and reports a
"mismatch" for any line that differs.  ``verify_results`` does the same
over in-memory results; ``write_dist_file`` / ``verify_dist_files`` mirror
the on-disk ``*_final_dist`` workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.baselines.common import SSSPResult
from repro.errors import ValidationError

__all__ = [
    "Mismatch",
    "MismatchReport",
    "verify_results",
    "assert_results_match",
    "write_dist_file",
    "read_dist_file",
    "verify_dist_files",
]


@dataclass(frozen=True)
class Mismatch:
    """One disagreeing vertex between two distance vectors."""

    vertex: int
    dist_a: float
    dist_b: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"mismatch at vertex {self.vertex}: {self.dist_a} != {self.dist_b}"


class MismatchReport(List[Mismatch]):
    """Mismatches reported by :func:`verify_results`, plus the real count.

    The list itself is capped at ``max_report`` entries; ``total`` is the
    untruncated mismatch count, so a 91204-vertex disagreement is never
    mistaken for a 50-vertex one.  Still a plain list to existing callers.
    """

    def __init__(self, mismatches=(), total: int = None) -> None:
        super().__init__(mismatches)
        self.total = len(self) if total is None else int(total)

    @property
    def truncated(self) -> bool:
        return self.total > len(self)


def verify_results(
    a: SSSPResult,
    b: SSSPResult,
    *,
    atol: float = 0.0,
    rtol: float = 0.0,
    max_report: int = 50,
) -> MismatchReport:
    """Compare two results' distances; returns the mismatching vertices.

    ``atol``/``rtol`` cover float solvers and the artifact's NV caveat
    ("distances differing by 1 between NV and other implementations");
    unreachable (inf) must agree exactly.
    """
    if a.graph_name != b.graph_name:
        raise ValidationError(
            f"comparing results for different graphs: "
            f"{a.graph_name!r} vs {b.graph_name!r}"
        )
    if a.source != b.source:
        raise ValidationError(f"different sources: {a.source} vs {b.source}")
    da, db = np.asarray(a.dist), np.asarray(b.dist)
    if da.shape != db.shape:
        raise ValidationError(f"distance vectors differ in length: {da.size} vs {db.size}")
    fa, fb = np.isfinite(da), np.isfinite(db)
    # NaN mismatches everything, including NaN: a solver emitting NaN is
    # corrupt, and NaN must never pass as "unreachable" just because
    # isfinite lumps it with INF.
    bad = (fa != fb) | np.isnan(da) | np.isnan(db)
    both = fa & fb
    tol = atol + rtol * np.maximum(np.abs(da[both]), np.abs(db[both]))
    bad_vals = np.zeros_like(bad)
    bad_vals[both] = np.abs(da[both] - db[both]) > tol
    bad |= bad_vals
    idx = np.flatnonzero(bad)
    out = [
        Mismatch(vertex=int(v), dist_a=float(da[v]), dist_b=float(db[v]))
        for v in idx[:max_report]
    ]
    return MismatchReport(out, total=int(idx.size))


def assert_results_match(a: SSSPResult, b: SSSPResult, **kw) -> None:
    """Raise :class:`ValidationError` listing mismatches, if any."""
    mism = verify_results(a, b, **kw)
    if mism.total:
        listing = "\n".join(str(m) for m in mism[:10])
        raise ValidationError(
            f"{a.solver} vs {b.solver} on {a.graph_name}: "
            f"{mism.total} mismatches\n{listing}"
        )


def write_dist_file(result: SSSPResult, path: Union[str, Path]) -> None:
    """The artifact's ``*_final_dist`` format: one ``vertex distance``
    line per vertex, ``INF`` for unreachable."""
    with open(path, "w") as fh:
        for v, d in enumerate(result.dist):
            if np.isfinite(d):
                text = str(int(d)) if float(d).is_integer() else repr(float(d))
            else:
                text = "INF"
            fh.write(f"{v} {text}\n")


def read_dist_file(path: Union[str, Path]) -> np.ndarray:
    """Inverse of :func:`write_dist_file`."""
    dists = []
    with open(path) as fh:
        for lineno, line in enumerate(fh):
            parts = line.split()
            if len(parts) != 2:
                raise ValidationError(f"{path}:{lineno + 1}: bad dist line {line!r}")
            dists.append(np.inf if parts[1] == "INF" else float(parts[1]))
    return np.asarray(dists, dtype=np.float64)


def verify_dist_files(
    path_a: Union[str, Path], path_b: Union[str, Path], *, atol: float = 0.0
) -> List[Mismatch]:
    """The on-disk comparison ``verify.py`` performs."""
    da, db = read_dist_file(path_a), read_dist_file(path_b)
    if da.size != db.size:
        raise ValidationError(
            f"{path_a} and {path_b} differ in vertex count: {da.size} vs {db.size}"
        )
    fa, fb = np.isfinite(da), np.isfinite(db)
    both = fa & fb
    diff = np.zeros_like(da)
    diff[both] = np.abs(da[both] - db[both])
    # NaN is a mismatch against anything, including NaN (see verify_results).
    bad = (fa != fb) | (both & (diff > atol)) | np.isnan(da) | np.isnan(db)
    return [
        Mismatch(vertex=int(v), dist_a=float(da[v]), dist_b=float(db[v]))
        for v in np.flatnonzero(bad)
    ]
