"""Batch execution mode: fused same-timestamp WTB relaxation dispatches.

The event engine steps one block at a time, so at host level every WTB
dispatch pays its own numpy fixed costs on arrays of a few dozen
elements.  But whenever several workers' dispatch resumes share one
timestamp — the common case, because the MTB assigns a burst of chunks
in one pass and every woken worker reschedules exactly
``af_poll_cycles`` later — their relaxation phases are, on the simulated
hardware, *concurrent*.  This module exploits that: it executes the
maximal run of same-timestamp dispatches as fused numpy operations over
the concatenated frontiers, while the event heap keeps sole authority
over every cross-block protocol point (reserve/publish/rotate, capacity
waits, fences, completion counters).

Correctness argument, pinned bit-identically by the PR 5 schedule
fuzzer, the PR 7 scheduler-conformance suite and the bench ``--compare``
gate:

- **Which steps may fuse.**  A worker arms itself just before parking on
  its AF wait.  An armed worker with ``AF_ASSIGNED`` whose event sits in
  the heap is exactly "about to execute its dispatch": the coordinator
  takes the maximal *prefix* of the current timestamp's pop order
  consisting of such workers (``Device.ready_peers`` reproduces pop
  order bit-exactly).  Stopping at the first non-dispatch event is what
  makes early execution safe: every fused dispatch would in any case run
  before that event pops.
- **Why early application is invisible.**  Between consecutive pops of
  the prefix only wake-predicate evaluation runs, and no wait predicate
  reads the distance array; dispatches mutate only ``dist``/``pred`` and
  host-side counters.  So executing the whole prefix during the first
  dispatch's step produces states indistinguishable, event by event,
  from sequential stepping.
- **Why fusing the atomics is exact.**  Within the prefix the
  coordinator greedily groups dispatches whose *read* set (the assigned
  vertices) avoids the group's pending *write* set (the destination
  indices) and whose write sets are pairwise disjoint — tracked with a
  token-stamped scratch array, flushing a group whenever the next
  dispatch conflicts.  Disjoint writes mean one
  ``atomic_min_batch`` over the concatenation dedups exactly as the
  per-worker calls would, so the sliced winner masks, the distance
  array, and every counter the call bumps are bit-identical.

The engine sees the very same yields, heap pushes, RNG draws and wake
orders in both modes — canonical and perturbed — which is why
``work_count``, ``time_us`` and the distance hash cannot move.

When a protocol checker is attached, the coordinator still harvests and
executes the prefix early but commits each worker solo, in pop order and
attributed to its own block (``Device.attribute_to``), so the checker
observes the exact event-mode operation sequence.  The fused path is
then covered by ``repro check``'s unchecked replay, which pins its
outputs against the checked run bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.wtb import AF_ASSIGNED

__all__ = ["BatchCoordinator"]


class BatchCoordinator:
    """Shared dispatcher for the batch execution mode of one solve.

    Workers call :meth:`arm` before parking on their AF and
    :meth:`take` when their dispatch resume is stepped; the first
    ``take`` of a same-timestamp run harvests the whole fusable prefix
    via :meth:`~repro.gpu.device.Device.ready_peers`, executes it, and
    parks the peers' results for their own ``take`` calls.
    """

    def __init__(self, state, kernel) -> None:
        self.state = state
        self.kernel = kernel
        self.device = state.device
        self.armed = bytearray(state.af_state.size)
        self._wids: dict = {}   # id(ctx) -> wid
        self._ctxs: dict = {}   # wid -> ctx, for checker attribution
        self._ready: dict = {}  # wid -> finished dispatch result
        # Token-stamped conflict scratch: stamp[v] == current token marks
        # v as written by the pending fused group.
        self._stamp = np.zeros(state.graph.num_vertices, dtype=np.int64)
        self._token = 0
        # With a checker attached every commit stays solo + attributed so
        # the checker sees the event-mode operation sequence.
        self._solo = getattr(state, "checker", None) is not None
        #: fused-commit telemetry (reported in the solver stats)
        self.fused_groups = 0
        self.fused_blocks = 0

    def register(self, ctx, wid: int) -> None:
        """Map an engine block context to its worker id."""
        self._wids[id(ctx)] = wid
        self._ctxs[wid] = ctx

    def arm(self, wid: int) -> None:
        """Worker ``wid`` is parking on its AF: its next heap entry is a
        dispatch resume."""
        self.armed[wid] = 1

    def take(self, wid: int):
        """Result of worker ``wid``'s dispatch, executing the fusable
        same-timestamp prefix on first demand.

        Returns ``None`` when there is nothing to fuse with — the caller
        then dispatches solo through the kernel, which is the identical
        computation.
        """
        armed = self.armed
        armed[wid] = 0
        res = self._ready.pop(wid, None)
        if res is not None:
            return res
        af_state = self.state.af_state
        wids = self._wids
        prefix = [wid]
        for ctx in self.device.ready_peers():
            w = wids.get(id(ctx))
            if w is None or not armed[w] or af_state[w] != AF_ASSIGNED:
                break
            prefix.append(w)
        if len(prefix) == 1:
            return None
        self._execute(prefix)
        return self._ready.pop(wid)

    # ------------------------------------------------------------------ #

    def _execute(self, prefix) -> None:
        """Run every dispatch in ``prefix`` (in pop order), fusing
        conflict-free commit groups."""
        kernel = self.kernel
        ready = self._ready
        if self._solo:
            dispatch = kernel.dispatch
            device = self.device
            ctxs = self._ctxs
            for w in prefix:
                prev = device.attribute_to(ctxs[w])
                try:
                    ready[w] = dispatch(w)
                finally:
                    device.attribute_to(prev)
            return

        begin = kernel.begin
        expand = kernel.expand
        commit = kernel.commit
        commit_group = kernel.commit_group
        stamp = self._stamp
        token = self._token + 1
        pending: list = []  # (wid, expanded entry) awaiting one fused commit

        def flush() -> None:
            if len(pending) == 1:
                w, e = pending[0]
                ready[w] = commit(e)
            else:
                self.fused_groups += 1
                self.fused_blocks += len(pending)
                for (w, _), res in zip(
                    pending, commit_group([e for _, e in pending])
                ):
                    ready[w] = res
            pending.clear()

        for w in prefix:
            b = begin(w)
            # (a) read-vs-pending-write conflict: the stale check and the
            # candidate gather read dist[assigned vertices], so they must
            # not run ahead of a pending write to any of them.
            if pending and (stamp[b[5]] == token).any():
                flush()
                token += 1
            e = expand(b)
            if not e[4]:  # no live edges: nothing to write, commit is free
                ready[w] = commit(e)
                continue
            # (d) write-vs-pending-write conflict: overlapping destination
            # sets must not share one fused atomic-min (dedup would cross
            # worker boundaries).  The expand above is still valid after
            # the flush: check (a) proved pending writes miss its reads.
            if pending and (stamp[e[8]] == token).any():
                flush()
                token += 1
            pending.append((w, e))
            stamp[e[8]] = token
        if pending:
            flush()
        self._token = token
