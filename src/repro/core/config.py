"""ADDS configuration: paper defaults plus the Table 5 ablation switches."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import SolverError

__all__ = ["AddsConfig"]


@dataclass(frozen=True)
class AddsConfig:
    """Tunables for the ADDS solver.

    Defaults follow the paper: 32 buckets (§5.4), N-word segments for the
    WCC protocol (§5.2), the Davidson heuristic for the initial Δ, and the
    dynamic Δ controller on.  The two ablation rows of Table 5 are
    ``dynamic_delta=False`` (Static-Δ) and additionally ``n_buckets=2``
    (2-Buckets).
    """

    #: Number of buckets in the circular work queue (paper: "a fixed
    #: number of 32 buckets").  Table 5's 2-Buckets ablation sets 2.
    n_buckets: int = 32

    #: Slots per WCC segment — the paper's N-word segment; one MTB thread
    #: handles one segment, a warp of 32 reads 32 segments per access.
    segment_size: int = 32

    #: Slots per allocator block.  The paper uses 64 Ki words; the
    #: simulation default is smaller in proportion to the scaled corpus
    #: (DESIGN.md §4.4) so that growth/shrink actually exercises the
    #: allocator.  The 16/16-bit index split generalizes to
    #: (block index, offset) with this block size.
    slots_per_block: int = 2048

    #: Blocks in the pre-allocated arena.  None (default) auto-sizes the
    #: arena to the graph (a few times |E| worth of slots); an explicit
    #: count is honored exactly — undersize it and the allocator raises
    #: :class:`~repro.errors.AllocationError`, as the real pre-allocated
    #: GPU arena would overflow.
    pool_blocks: Optional[int] = None

    #: Worker thread blocks.  None → all resident blocks minus the MTB.
    n_wtbs: Optional[int] = None

    #: Cap on work items handed to a WTB per assignment.  The actual chunk
    #: is sized by *edges* (see ``target_chunk_edges``) so that a burst of
    #: published work spreads across many WTBs regardless of degree —
    #: a 256-thread block serializes a high-degree chunk into waves, so
    #: handing one WTB the whole burst would forfeit the device to a
    #: single block exactly when parallelism is scarce.
    max_chunk: int = 256

    #: Edge budget per assignment chunk; defaults to one wave of a thread
    #: block (``threads_per_block``) when None.
    target_chunk_edges: Optional[int] = None

    #: §5.5 dynamic Δ on/off (off = Table 5 "Static-Δ" ablation).
    dynamic_delta: bool = True

    #: Starting Δ; None → Davidson heuristic (same as the baselines).
    initial_delta: Optional[float] = None

    #: C for the initial-Δ heuristic.
    delta_constant: float = 32.0

    #: Utilization band, in in-flight edges per hardware thread.  The MTB
    #: keeps assigned work inside [util_low, util_high] × total_threads ×
    #: divergence-adjustment (§5.5 "correlating the number of threads with
    #: the average degree").
    util_low: float = 0.25
    util_high: float = 0.55

    #: Head-bucket switches to wait between Δ adjustments (§5.5 settling).
    settle_switches: int = 2

    #: Fallback settling horizon in MTB passes, for executions that rotate
    #: rarely or never (e.g. when Δ already covers the whole distance
    #: range).  The paper counts head-bucket switches only; at simulation
    #: scale some graphs finish within a couple of rotations, so the
    #: controller is also allowed to act after this many passes.
    settle_passes: int = 60

    #: MTB passes before the controller may make its first adjustment.
    #: Early execution is dominated by the BFS-like ramp-up from the
    #: source, whose transient starvation says nothing about the graph
    #: (the paper: "when a new bucket ... is first being processed,
    #: utilization will temporally jump and then gradually fall ...
    #: adjusting is likely to be counterproductive").
    warmup_passes: int = 150

    #: Smoothing factor for the utilization signal (EWMA of in-flight
    #: edges sampled each MTB pass) — the paper's "some utilization
    #: fluctuations will dampen" made concrete.
    ewma_alpha: float = 0.15

    #: Clip guard: if the tail bucket received at least this fraction of
    #: pushes since the last check, Δ is below the clipping bound (§5.5:
    #: "the tail bucket contains at least 65% of the total number of
    #: assigned work items").
    clip_fraction: float = 0.65

    #: Multiplicative Δ step for the controller.
    delta_growth: float = 2.0

    #: Hard floor for Δ.  None → a quarter of the smallest positive edge
    #: weight (below that, every band boundary falls between weights and
    #: shrinking further only mints empty buckets and clipping).
    delta_floor: Optional[float] = None

    #: Bounds for the dynamic number of high-priority buckets the MTB
    #: assigns from (§5.4 optimization / §5.5 fine-grained mechanism).
    min_active_buckets: int = 1
    max_active_buckets: int = 8

    #: Consecutive empty sweeps of the work queue before terminating
    #: (§5.4: "two sweeps are needed").
    termination_sweeps: int = 2

    #: Idle MTB pass interval, cycles (how often the manager re-scans when
    #: nothing changed).
    mtb_idle_cycles: float = 400.0

    #: TESTS ONLY — §5.4's failure mode: rotate the head bucket as soon as
    #: it looks empty, without waiting for its CWC to match resv_ptr.
    #: Demonstrates the "continuous cramming of work into ever fewer
    #: buckets" the paper warns about.
    unsafe_rotation: bool = False

    def __post_init__(self) -> None:
        if self.n_buckets < 2:
            raise SolverError("ADDS needs at least 2 buckets")
        if self.segment_size < 1:
            raise SolverError("segment_size must be >= 1")
        if self.slots_per_block < self.segment_size:
            raise SolverError("slots_per_block must hold at least one segment")
        if self.slots_per_block % self.segment_size != 0:
            raise SolverError("slots_per_block must be a multiple of segment_size")
        if self.pool_blocks is not None and self.pool_blocks < self.n_buckets:
            raise SolverError("pool needs at least one block per bucket")
        if self.max_chunk < 1:
            raise SolverError("max_chunk must be positive")
        if not (0 < self.util_low <= self.util_high):
            raise SolverError("need 0 < util_low <= util_high")
        if not (0 < self.clip_fraction <= 1):
            raise SolverError("clip_fraction must be in (0, 1]")
        if self.delta_growth <= 1:
            raise SolverError("delta_growth must exceed 1")
        if not (1 <= self.min_active_buckets <= self.max_active_buckets <= self.n_buckets):
            raise SolverError("invalid active-bucket bounds")
        if self.termination_sweeps < 1:
            raise SolverError("termination_sweeps must be >= 1")
        if self.settle_passes < 1:
            raise SolverError("settle_passes must be >= 1")
        if self.warmup_passes < 0:
            raise SolverError("warmup_passes must be >= 0")
        if not (0 < self.ewma_alpha <= 1):
            raise SolverError("ewma_alpha must be in (0, 1]")

    def replace(self, **kw) -> "AddsConfig":
        """A copy with fields overridden (ablations, sweeps)."""
        return replace(self, **kw)

    def static_delta_ablation(self) -> "AddsConfig":
        """Table 5 row 3: the dynamic mechanism off, heuristic Δ kept.

        §5.5 presents *two* dynamic knobs — the low-frequency Δ loop and
        the high-frequency active-bucket-count variation — so this
        ablation disables both: Δ stays at the Davidson value and the MTB
        assigns from the head bucket only (the §5.4 base design).
        """
        return self.replace(
            dynamic_delta=False, min_active_buckets=1, max_active_buckets=1
        )

    def two_buckets_ablation(self) -> "AddsConfig":
        """Table 5 row 4: static Δ *and* only two buckets."""
        return self.replace(
            dynamic_delta=False,
            n_buckets=2,
            min_active_buckets=1,
            max_active_buckets=1,
        )
