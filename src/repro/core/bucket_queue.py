"""§5.2/§5.4: the circular multi-bucket priority queue with SRMW access.

Data structure recap from the paper:

- an ordered circular queue of ``n_buckets`` (32) buckets; priorities
  increase with distance; the *head* bucket holds the lowest-distance band
  ``[base_dist, base_dist + Δ)``;
- WTBs (the many writers) add work with an atomic bump of the bucket's
  **resv_ptr**, write their items into the reserved slots, execute a
  memory fence, and atomically increment the **WCC** of each touched
  N-slot segment;
- the MTB (the single reader) derives the *readable range* from segment
  WCCs: a segment with ``WCC == N`` is fully written; for a partial
  segment, ``segment_base + WCC == resv_ptr`` (checked after a fence)
  proves everything up to ``resv_ptr`` is written; otherwise nothing past
  the previous segment boundary may be trusted (§5.2 verbatim);
- a per-bucket **CWC** counts completed work items; the head bucket may
  only rotate once ``CWC == resv_ptr`` *and* everything was read —
  rotating earlier causes the "continuous cramming of work into ever
  fewer buckets" failure (§5.4), reproducible here via
  ``AddsConfig.unsafe_rotation``;
- distances outside the 32-band window are **clipped** into the tail (or
  head) bucket, losing ordering but never correctness (§5.5 / Figure 6b).

Distance payloads are float64 bit-cast into the int64 slot lane, so the
same storage serves int- and float-weighted graphs (like the artifact's
single GR payload word).

The SRMW slot machinery itself (resv/WCC/read/CWC protocol, storage,
band clipping, tracing/checking attachment) lives in the scheduler base
class — see :mod:`repro.core.scheduler` — so rival designs such as
:mod:`repro.core.mlmq` share it; this module keeps only the bucket
queue's *policy*: the circular head-relative band→slot mapping and
single-bucket rotation.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import AddsConfig
from repro.core.scheduler import (
    WorkScheduler,
    decode_dist,
    encode_dist,
    register_scheduler,
)
from repro.gpu.memory import GlobalPool, SimMemory

__all__ = ["BucketQueue", "encode_dist", "decode_dist"]


@register_scheduler(
    "bucket",
    description="the paper's circular 32-bucket Δ-band queue (§5.2/§5.4)",
)
class BucketQueue(WorkScheduler):
    """The ADDS work queue: 32 circular buckets plus their metadata."""

    def __init__(
        self,
        mem: SimMemory,
        pool: GlobalPool,
        config: AddsConfig,
        *,
        initial_delta: float,
    ) -> None:
        super().__init__(
            mem, pool, config,
            initial_delta=initial_delta, n_slots=config.n_buckets,
        )
        self._band_limit = self.n_buckets - 1
        self.max_rotate_burst = self.n_buckets - 1

    # ------------------------------------------------------------------ #
    # priority mapping: band ``rel`` lives in physical slot
    # ``(head + rel) % n_buckets``
    # ------------------------------------------------------------------ #

    def slot_of(self, rel: int) -> int:
        """Physical bucket index of the ``rel``-th band from the head."""
        return (self.head + rel) % self.n_buckets

    def rel_of(self, slot: int) -> int:
        return (slot - self.head) % self.n_buckets

    def _is_tail_slot(self, slot: int) -> bool:
        return (slot - self.head) % self.n_buckets == self.n_buckets - 1

    def push_slots_list(self, vertices: np.ndarray, dists: np.ndarray) -> list:
        head = self.head
        nb = self.n_buckets
        out = self.rel_bands_list(dists)
        for i, r in enumerate(out):
            out[i] = (head + r) % nb
        return out

    def head_slots(self):
        return (self.head,)

    def assign_slots(self, active: int):
        head = self.head
        nb = self.n_buckets
        return tuple((head + rel) % nb for rel in range(active))

    def seed_slot(self) -> int:
        return self.head

    def rotate(self) -> None:
        """Recycle the head bucket as the new farthest band (§5.4)."""
        self._recycle_slot(self.head)
        self.head = (self.head + 1) % self.n_buckets
        self.base_dist += self.delta
        self.rotations += 1
        if self._tracer.enabled:
            self._tracer.instant(
                "queue", "rotate", self._clock(), cat="queue",
                new_head=self.head, base_dist=self.base_dist,
                rotation=self.rotations,
            )
