"""§5.2/§5.4: the circular multi-bucket priority queue with SRMW access.

Data structure recap from the paper:

- an ordered circular queue of ``n_buckets`` (32) buckets; priorities
  increase with distance; the *head* bucket holds the lowest-distance band
  ``[base_dist, base_dist + Δ)``;
- WTBs (the many writers) add work with an atomic bump of the bucket's
  **resv_ptr**, write their items into the reserved slots, execute a
  memory fence, and atomically increment the **WCC** of each touched
  N-slot segment;
- the MTB (the single reader) derives the *readable range* from segment
  WCCs: a segment with ``WCC == N`` is fully written; for a partial
  segment, ``segment_base + WCC == resv_ptr`` (checked after a fence)
  proves everything up to ``resv_ptr`` is written; otherwise nothing past
  the previous segment boundary may be trusted (§5.2 verbatim);
- a per-bucket **CWC** counts completed work items; the head bucket may
  only rotate once ``CWC == resv_ptr`` *and* everything was read —
  rotating earlier causes the "continuous cramming of work into ever
  fewer buckets" failure (§5.4), reproducible here via
  ``AddsConfig.unsafe_rotation``;
- distances outside the 32-band window are **clipped** into the tail (or
  head) bucket, losing ordering but never correctness (§5.5 / Figure 6b).

Distance payloads are float64 bit-cast into the int64 slot lane, so the
same storage serves int- and float-weighted graphs (like the artifact's
single GR payload word).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.block_alloc import BucketStorage, TranslationCache
from repro.core.config import AddsConfig
from repro.errors import ProtocolError
from repro.gpu.memory import GlobalPool, SimMemory
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["BucketQueue", "encode_dist", "decode_dist"]


def encode_dist(d: np.ndarray) -> np.ndarray:
    """float64 distances → int64 bit patterns (order-preserving for d ≥ 0)."""
    if isinstance(d, np.ndarray) and d.dtype == np.float64 and d.flags.c_contiguous:
        return d.view(np.int64)  # hot path: already the right layout
    return np.ascontiguousarray(np.asarray(d, dtype=np.float64)).view(np.int64)


def decode_dist(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_dist`."""
    if (
        isinstance(bits, np.ndarray)
        and bits.dtype == np.int64
        and bits.flags.c_contiguous
    ):
        return bits.view(np.float64)
    return np.ascontiguousarray(np.asarray(bits, dtype=np.int64)).view(np.float64)


class BucketQueue:
    """The ADDS work queue: 32 circular buckets plus their metadata."""

    def __init__(
        self,
        mem: SimMemory,
        pool: GlobalPool,
        config: AddsConfig,
        *,
        initial_delta: float,
    ) -> None:
        if initial_delta <= 0:
            raise ProtocolError("initial delta must be positive")
        self.mem = mem
        self.pool = pool
        self.config = config
        nb = config.n_buckets
        self.n_buckets = nb
        self.segment_size = config.segment_size

        # shared metadata arrays (global memory on the real device)
        self.resv = np.zeros(nb, dtype=np.int64)
        self.read = np.zeros(nb, dtype=np.int64)
        self.cwc = np.zeros(nb, dtype=np.int64)
        # Bucket reuse epoch: the simulator's stand-in for the monotonic
        # 32-bit circular index.  A completion that arrives after its
        # bucket rotated (possible only under unsafe_rotation) is dropped
        # from the recycled bucket's CWC but still counts globally.
        self.epoch = np.zeros(nb, dtype=np.int64)
        # Per-bucket segment WCC counters, indexed by segment number.
        # Dense int64 arrays (grown on demand as buckets gain capacity)
        # instead of dicts: publish and readable_upper operate on whole
        # segment ranges, which a dict forces into per-segment Python
        # loops on the hottest writer/reader paths.
        self.wcc: List[np.ndarray] = [
            np.zeros(self._initial_segments(), dtype=np.int64)
            for _ in range(nb)
        ]
        self.storage = [
            BucketStorage(pool, config.slots_per_block, name=f"b{i}")
            for i in range(nb)
        ]
        self.mtb_cache = TranslationCache()
        # Wake-channel keys for capacity waiters, one per bucket; WTBs
        # register on cap_keys[slot] and ensure_capacity notifies it.
        self.cap_keys = tuple(("cap", s) for s in range(nb))
        self._device = None

        # priority window state (owned by the MTB)
        self.head = 0
        self.base_dist = 0.0
        self.delta = float(initial_delta)
        self.rotations = 0

        # counters feeding termination and the Δ controller
        self.total_pushed = 0
        self.total_completed = 0
        self.pushes_since_check = 0
        self.tail_pushes_since_check = 0
        self.low_clips = 0
        self.high_clips = 0

        # observability (zero-cost unless attach_tracer enables it)
        self._tracer: Tracer = NULL_TRACER
        self._clock: Callable[[], float] = lambda: 0.0
        # dynamic protocol checker (repro.check); one branch per op when
        # detached, full SRMW invariant enforcement when attached
        self._checker = None

    def _initial_segments(self) -> int:
        """WCC array size covering one storage block's worth of slots."""
        return max(1, -(-self.config.slots_per_block // self.segment_size))

    def _wcc_through(self, slot: int, last_seg: int) -> np.ndarray:
        """The bucket's WCC array, grown (×2 amortized) to index ``last_seg``."""
        wcc = self.wcc[slot]
        if last_seg >= wcc.size:
            grown = np.zeros(max(last_seg + 1, 2 * wcc.size), dtype=np.int64)
            grown[: wcc.size] = wcc
            self.wcc[slot] = wcc = grown
        return wcc

    def attach_tracer(
        self, tracer: Optional[Tracer], clock: Callable[[], float]
    ) -> None:
        """Emit bucket push/pop/rotate events on the ``queue`` track.

        ``clock`` supplies the simulated time in µs (the queue itself has
        no device reference; the ADDS solver wires it to
        ``device.now_us``)."""
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock

    def attach_checker(self, checker) -> None:
        """Route every protocol operation through a
        :class:`repro.check.ProtocolChecker` (or None to detach).

        The checker learns who performed each operation from the bound
        device's :meth:`~repro.gpu.device.Device.current_block_name`, so
        attach it via :meth:`ProtocolChecker.attach`, which wires both
        sides."""
        self._checker = checker

    def bind_device(self, device) -> None:
        """Wire capacity-channel notifications to ``device.notify``.

        Without a bound device the queue still works — capacity waiters
        just fall back to the engine's rescue rescan (tests exercising
        the queue standalone rely on this)."""
        self._device = device

    # ------------------------------------------------------------------ #
    # priority mapping
    # ------------------------------------------------------------------ #

    def slot_of(self, rel: int) -> int:
        """Physical bucket index of the ``rel``-th band from the head."""
        return (self.head + rel) % self.n_buckets

    def rel_of(self, slot: int) -> int:
        return (slot - self.head) % self.n_buckets

    def rel_bands_for(self, dists: np.ndarray) -> np.ndarray:
        """Band index (0 = head) for each distance, with clipping.

        Below-window distances clip to the head band (work spawned for an
        already-rotated band, §5.4); beyond-window distances clip to the
        tail band (Figure 6(b)).  Clip counts feed the Δ controller.
        """
        nb1 = self.n_buckets - 1
        if dists.size == 1:
            # scalar path: one ufunc dispatch instead of three full-array
            # ones (the modal WTB push is one winner).  Must stay the
            # numpy kernel — its fmod-corrected floor division differs
            # from floor(a/b) at band boundaries.
            r = int(np.floor_divide(dists.item() - self.base_dist, self.delta))
            if r < 0:
                self.low_clips += 1
                r = 0
            elif r > nb1:
                self.high_clips += 1
                r = nb1
            return np.array([r], dtype=np.int64)
        rel = np.floor_divide(dists - self.base_dist, self.delta).astype(np.int64)
        if 0 <= int(rel.min()) and int(rel.max()) <= nb1:
            return rel  # common case: nothing clips
        low = rel < 0
        high = rel > nb1
        n_low = int(np.count_nonzero(low))
        n_high = int(np.count_nonzero(high))
        if n_low:
            self.low_clips += n_low
            rel[low] = 0
        if n_high:
            self.high_clips += n_high
            rel[high] = nb1
        return rel

    def rel_bands_list(self, dists: np.ndarray) -> list:
        """:meth:`rel_bands_for` as a plain list (hot WTB push path).

        The WTB groups its pushes by band with scalar code, so handing it
        a list skips the int64 cast, the min/max early-out reduction and
        the clip masks of the array variant.  The division itself stays
        the ``np.floor_divide`` kernel (same boundary semantics); its
        float results are integral and far below 2**53, so ``int()`` on
        them is exact, and clips are counted per element exactly as the
        array variant counts them.
        """
        nb1 = self.n_buckets - 1
        out = np.floor_divide(dists - self.base_dist, self.delta).tolist()
        for i, r in enumerate(out):
            r = int(r)
            if r < 0:
                self.low_clips += 1
                r = 0
            elif r > nb1:
                self.high_clips += 1
                r = nb1
            out[i] = r
        return out

    # ------------------------------------------------------------------ #
    # writer (WTB) side
    # ------------------------------------------------------------------ #

    def reserve(self, slot: int, k: int) -> int:
        """Atomically reserve ``k`` slots; returns the starting index."""
        if k <= 0:
            raise ProtocolError("reserve of non-positive count")
        start = int(self.mem.atomic_add(self.resv, slot, k))
        self.total_pushed += k
        self.pushes_since_check += k
        if (slot - self.head) % self.n_buckets == self.n_buckets - 1:
            self.tail_pushes_since_check += k
        if self._checker is not None:
            self._checker.on_reserve(slot, start, k)
        return start

    def capacity(self, slot: int) -> int:
        """Allocated capacity (virtual slots) of a bucket."""
        return self.storage[slot].capacity

    def ensure_capacity(self, slot: int, slots: int) -> int:
        """Grow a bucket's block table to ``slots`` (MTB allocator path).

        Returns blocks added; growth notifies the bucket's capacity wake
        channel so a WTB stalled on an unbacked reservation re-checks.
        """
        if self._checker is not None:
            self._checker.on_ensure_capacity(slot)
        added = self.storage[slot].ensure_capacity(slots)
        if added and self._device is not None:
            self._device.notify(self.cap_keys[slot])
        return added

    def publish(self, slot: int, start: int, vertices: np.ndarray, dists: np.ndarray) -> int:
        """Write reserved slots, fence, bump segment WCCs (§5.2 writer path).

        Returns the number of segments touched (for cost accounting).
        """
        k = int(vertices.size)
        if k == 0:
            return 0
        if self._checker is not None:
            # before the write: a publish outside the writer's own
            # reservation must fail before it corrupts storage
            self._checker.on_publish(slot, int(start), k)
        self.storage[slot].write_range(start, vertices, encode_dist(dists))
        self.mem.fence()  # items fully written before WCC increments
        ss = self.segment_size
        first = start // ss
        last = (start + k - 1) // ss
        wcc = self._wcc_through(slot, last)
        if first == last:
            old = self.mem.atomic_add(wcc, first, k)
            if old + k > ss:
                raise ProtocolError(
                    f"bucket {slot}: segment {first} WCC {old + k} exceeds N"
                )
        else:
            # contribution per touched segment: partial ends, full middle
            counts = np.full(last - first + 1, ss, dtype=np.int64)
            counts[0] = (first + 1) * ss - start
            counts[-1] = (start + k) - last * ss
            self.mem.atomic_add_batch(
                wcc, np.arange(first, last + 1), counts
            )
            seg_counts = wcc[first : last + 1]
            if int(seg_counts.max()) > ss:
                seg = first + int((seg_counts > ss).argmax())
                raise ProtocolError(
                    f"bucket {slot}: segment {seg} WCC {wcc[seg]} exceeds N"
                )
        if self._tracer.enabled:
            self._tracer.instant(
                "queue", "bucket_push", self._clock(), cat="queue",
                bucket=slot, rel=self.rel_of(slot), items=k,
            )
            self._tracer.counter(
                "queue_outstanding", self._clock(), self.outstanding()
            )
        return last - first + 1

    def complete(self, slot: int, k: int, epoch: int) -> None:
        """WTB finished ``k`` assigned items: bump the bucket's CWC.

        ``epoch`` is the bucket epoch captured at assignment time; a
        mismatch (bucket recycled meanwhile — unsafe rotation only) drops
        the per-bucket update but keeps the global completion count sound.
        """
        if k < 0:
            raise ProtocolError("negative completion count")
        if self._checker is not None:
            self._checker.on_complete(slot, k, epoch)
        self.mem.fence()  # spawned pushes visible before the CWC update
        if self.epoch.item(slot) == epoch:
            self.mem.atomic_add(self.cwc, slot, k)
        self.total_completed += k

    # ------------------------------------------------------------------ #
    # reader (MTB) side
    # ------------------------------------------------------------------ #

    def readable_upper(self, slot: int) -> Tuple[int, int]:
        """§5.2's readable-range computation.

        Returns ``(upper, segments_scanned)``: all slots in
        ``[read_ptr, upper)`` are guaranteed fully written.
        """
        r = self.read.item(slot)
        self.mem.fence()
        resv = self.resv.item(slot)
        if r >= resv:
            return r, 0
        ss = self.segment_size
        wcc = self.wcc[slot]
        seg0 = r // ss
        seg_end = -(-resv // ss)  # exclusive: ceil(resv / ss)
        # The leading run of fully-written segments is safe wholesale; a
        # reservation-only segment past the WCC array's extent counts 0.
        window = wcc[seg0 : min(seg_end, wcc.size)]
        if window.size:
            not_full = window != ss
            i = int(not_full.argmax())
            n_full = i if not_full[i] else int(window.size)
        else:
            n_full = 0
        scanned = n_full
        upper = max(r, (seg0 + n_full) * ss)
        if upper < resv:
            # partial segment: trust it only if WCC accounts for every
            # reservation made in it (re-read resv after a fence so the
            # comparison is not against a stale pointer)
            scanned += 1
            seg = seg0 + n_full
            count = wcc.item(seg) if seg < wcc.size else 0
            self.mem.fence()
            resv = self.resv.item(slot)
            if seg * ss + count == resv and resv > upper:
                upper = resv
        if upper > resv:
            raise ProtocolError(
                f"bucket {slot}: readable upper {upper} beyond resv {resv}"
            )
        if self._checker is not None:
            self._checker.on_readable_upper(slot, int(r), int(upper))
        return upper, scanned

    def advance_read(self, slot: int, upto: int) -> None:
        if upto < self.read[slot]:
            raise ProtocolError("read_ptr may not move backwards")
        if self._checker is not None:
            self._checker.on_advance_read(slot, int(upto))
        self.read[slot] = upto

    def read_items(self, slot: int, start: int, end: int) -> Tuple[np.ndarray, np.ndarray]:
        """Fetch items (vertices, distances) from a readable range."""
        if self._checker is not None:
            self._checker.on_read(slot, int(start), int(end))
        verts, bits = self.storage[slot].read_range(start, end)
        spb = self.storage[slot].slots_per_block
        for vb in range(start // spb, max(start, end - 1) // spb + 1):
            self.mtb_cache.access(vb)
        if self._tracer.enabled:
            self._tracer.instant(
                "queue", "bucket_pop", self._clock(), cat="queue",
                bucket=slot, rel=self.rel_of(slot), items=end - start,
            )
        return verts, decode_dist(bits)

    def bucket_drained(self, slot: int) -> bool:
        """Everything reserved has been read *and* completed."""
        resv = self.resv.item(slot)
        if self.read.item(slot) != resv:
            return False
        self.mem.fence()
        return self.cwc.item(slot) == self.resv.item(slot)

    def bucket_read_out(self, slot: int) -> bool:
        """Everything reserved has been read (completion not required)."""
        return self.read.item(slot) == self.resv.item(slot)

    def rotate(self) -> None:
        """Recycle the head bucket as the new farthest band (§5.4)."""
        slot = self.head
        if self._checker is not None:
            # before any guard: the checker must see the pre-rotation
            # counters to diagnose an unsafe rotation precisely
            self._checker.on_rotate(slot)
        if not self.bucket_read_out(slot):
            raise ProtocolError("rotation with unread work in the head bucket")
        if not self.config.unsafe_rotation and int(self.cwc[slot]) != int(self.resv[slot]):
            raise ProtocolError(
                "rotation before the head bucket's CWC matched resv_ptr"
            )
        # CWC may lag resv under unsafe rotation; the epoch bump reroutes
        # those late completions to the global counter only.
        self.storage[slot].reset()
        self.wcc[slot].fill(0)
        self.resv[slot] = 0
        self.read[slot] = 0
        self.cwc[slot] = 0
        self.epoch[slot] += 1
        self.head = (self.head + 1) % self.n_buckets
        self.base_dist += self.delta
        self.rotations += 1
        if self._tracer.enabled:
            self._tracer.instant(
                "queue", "rotate", self._clock(), cat="queue",
                new_head=self.head, base_dist=self.base_dist,
                rotation=self.rotations,
            )

    def retire_read_blocks(self, slot: int) -> int:
        """Free whole blocks below both read_ptr and CWC (FIFO shrink)."""
        if self._checker is not None:
            self._checker.on_retire(slot)
        safe = min(self.read.item(slot), self.cwc.item(slot))
        return self.storage[slot].retire_below(safe)

    # ------------------------------------------------------------------ #
    # controller hooks
    # ------------------------------------------------------------------ #

    def set_delta(self, new_delta: float) -> None:
        if new_delta <= 0:
            raise ProtocolError("delta must stay positive")
        self.delta = float(new_delta)

    def reset_push_window(self) -> None:
        self.pushes_since_check = 0
        self.tail_pushes_since_check = 0

    def tail_push_fraction(self) -> float:
        if self.pushes_since_check == 0:
            return 0.0
        return self.tail_pushes_since_check / self.pushes_since_check

    def outstanding(self) -> int:
        """Items pushed but not yet completed (device-wide)."""
        return self.total_pushed - self.total_completed

    def snapshot(self) -> dict:
        """Debug/report view of the queue metadata."""
        return {
            "head": self.head,
            "base_dist": self.base_dist,
            "delta": self.delta,
            "rotations": self.rotations,
            "resv": self.resv.copy(),
            "read": self.read.copy(),
            "cwc": self.cwc.copy(),
            "total_pushed": self.total_pushed,
            "total_completed": self.total_completed,
            "pool_high_water": self.pool.high_water,
        }
