"""§5.1: the worker thread block (WTB) program.

Each WTB loops forever:

1. spin on its **assignment flag** (AF) in scratchpad — "Each idle WTB
   polls its respective AF ... and thus receives work from the MTB
   without contention with other WTBs";
2. on assignment ``(bucket, start, end)``: read the work items, drop
   stale ones (their vertex has improved since the push), expand the rest
   and atomically relax their out-edges on the shared distance array;
3. push every *winning* relaxation as a new work item: compute its band
   under the current Δ, atomically reserve slots (``resv_ptr``), write,
   fence, bump the segment WCCs — the multi-writer half of §5.2.  If the
   reservation outruns the allocated blocks the WTB waits for the MTB's
   allocator to catch up (§5.3: all memory management is the MTB's job);
4. report completion: bump the source bucket's CWC by the full assignment
   size (stale items included — they were assigned work), then clear the
   AF.

The relaxation itself is one vectorized batch priced by the cost model;
its memory effects land when the batch *finishes*, so concurrent WTBs
genuinely race on the distance array and redundant work arises exactly as
it does on hardware.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.graphs.csr import expand_frontier

__all__ = ["wtb_program", "AF_IDLE", "AF_ASSIGNED", "AF_STOP"]

AF_IDLE = 0
AF_ASSIGNED = 1
AF_STOP = 2


def wtb_program(state, wid: int):
    """Generator program for worker ``wid`` over the shared solver state."""
    dev = state.device
    cost = dev.cost
    mem = dev.mem
    q = state.queue
    graph = state.graph
    dist = state.dist
    pred_out = state.pred
    af_state = state.af_state
    af_slot = state.af_slot
    af_start = state.af_start
    af_end = state.af_end
    af_epoch = state.af_epoch
    float_weights = state.float_weights
    avg_deg = max(graph.average_degree(), 1.0)
    tracer = dev.tracer
    track = f"WTB{wid}"
    # Pre-cast CSR view: expand_frontier's output feeds float64 distance
    # math and int64 atomics, so gathering from 64-bit twins of the CSR
    # arrays skips two per-batch ``astype`` copies.  Values are identical
    # (int32→int64 and int32/float32→float64 are exact).
    col64 = state.col64 if state.col64 is not None else graph.col_indices.astype(np.int64)
    w64 = state.w64 if state.w64 is not None else graph.weights.astype(np.float64)
    exp_graph = SimpleNamespace(
        row_offsets=graph.row_offsets, col_indices=col64, weights=w64
    )
    assigned = lambda: af_state[wid] != AF_IDLE  # noqa: E731 - hot predicate

    while True:
        yield ("wait", assigned)
        if af_state[wid] == AF_STOP:
            return

        slot = int(af_slot[wid])
        start = int(af_start[wid])
        end = int(af_end[wid])
        epoch = int(af_epoch[wid])
        k = end - start

        verts, pushed = q.read_items(slot, start, end)
        # stale check: the pushed distance is current iff the vertex has
        # not improved since (distances only decrease)
        cur = dist[verts]
        live = pushed <= cur
        n_live = int(np.count_nonzero(live))
        live_verts = verts if n_live == k else verts[live]

        srcs, dsts, ws = expand_frontier(exp_graph, live_verts)
        edges = int(dsts.size)
        latency = cost.wtb_batch_latency(edges, float_weights=float_weights)
        nbytes = cost.wtb_batch_bytes(edges, avg_deg)
        # Distance updates commit as the batch runs (hardware atomics are
        # visible to concurrently running blocks), so they are applied at
        # dispatch; the *work items* this batch spawns only become visible
        # when the push instructions + WCC increments execute, i.e. after
        # the batch's duration below.
        state.work_count += n_live
        new_v = np.empty(0, dtype=np.int64)
        if edges:
            cand = dist[srcs] + ws
            winners = mem.atomic_min_batch(
                dist,
                dsts,
                cand,
                payload=srcs,
                payload_out=pred_out,
            )
            new_v = dsts[winners]

        if tracer.enabled:
            dev.annotate(
                "relax_batch", bucket=slot, items=k,
                live=n_live, stale=k - n_live,
                wins=int(new_v.size),
            )
        yield ("relax", latency, edges, nbytes)

        # ---- publication at batch completion ---------------------------------
        if edges:
            if new_v.size:
                new_d = dist[new_v]
                rel = q.rel_bands_for(new_d)
                slots = (q.head + rel) % q.n_buckets
                push_cost = 0.0
                s0 = int(slots[0])
                if not (slots != s0).any():
                    # common case: the whole batch lands in one band
                    groups = ((s0, new_v, new_d),)
                else:
                    groups = tuple(
                        (int(s), new_v[slots == s], new_d[slots == s])
                        for s in np.unique(slots)
                    )
                for s, vs, ds in groups:
                    kk = int(vs.size)
                    idx0 = q.reserve(s, kk)
                    if q.capacity(s) < idx0 + kk:
                        # block not allocated yet: wait for the MTB
                        # (bind loop variables via defaults)
                        if tracer.enabled:
                            tracer.instant(
                                track, "alloc_wait", dev.now_us, cat="alloc",
                                bucket=s, need=idx0 + kk,
                                capacity=q.capacity(s),
                            )
                        yield (
                            "wait",
                            lambda s=s, need=idx0 + kk: q.capacity(s) >= need,
                        )
                    segs = q.publish(s, idx0, vs, ds)
                    push_cost += cost.atomic_cycles * (1 + segs) + 4.0 * kk
                yield ("busy", push_cost)

        q.complete(slot, k, epoch)
        state.outstanding_edges -= float(state.af_edges[wid])
        state.af_edges[wid] = 0.0
        af_state[wid] = AF_IDLE
        if tracer.enabled:
            tracer.instant(
                track, "wtb_complete", dev.now_us, cat="wtb",
                bucket=slot, items=k,
            )
