"""§5.1: the worker thread block (WTB) program.

Each WTB loops forever:

1. spin on its **assignment flag** (AF) in scratchpad — "Each idle WTB
   polls its respective AF ... and thus receives work from the MTB
   without contention with other WTBs";
2. on assignment ``(bucket, start, end)``: read the work items, drop
   stale ones (their vertex has improved since the push), expand the rest
   and atomically relax their out-edges on the shared distance array;
3. push every *winning* relaxation as a new work item: compute its band
   under the current Δ, atomically reserve slots (``resv_ptr``), write,
   fence, bump the segment WCCs — the multi-writer half of §5.2.  If the
   reservation outruns the allocated blocks the WTB waits for the MTB's
   allocator to catch up (§5.3: all memory management is the MTB's job);
4. report completion: bump the source bucket's CWC by the full assignment
   size (stale items included — they were assigned work), then clear the
   AF.

The relaxation itself is one vectorized batch priced by the cost model;
its memory effects land when the batch *finishes*, so concurrent WTBs
genuinely race on the distance array and redundant work arises exactly as
it does on hardware.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import expand_frontier

__all__ = ["wtb_program", "AF_IDLE", "AF_ASSIGNED", "AF_STOP"]

AF_IDLE = 0
AF_ASSIGNED = 1
AF_STOP = 2


def wtb_program(state, wid: int):
    """Generator program for worker ``wid`` over the shared solver state."""
    dev = state.device
    cost = dev.cost
    q = state.queue
    graph = state.graph
    af_state = state.af_state
    avg_deg = max(graph.average_degree(), 1.0)
    tracer = dev.tracer
    track = f"WTB{wid}"

    while True:
        yield ("wait", lambda: af_state[wid] != AF_IDLE)
        if af_state[wid] == AF_STOP:
            return

        slot = int(state.af_slot[wid])
        start = int(state.af_start[wid])
        end = int(state.af_end[wid])
        epoch = int(state.af_epoch[wid])
        k = end - start

        verts, pushed = q.read_items(slot, start, end)
        # stale check: the pushed distance is current iff the vertex has
        # not improved since (distances only decrease)
        cur = state.dist[verts]
        live = pushed <= cur
        live_verts = verts[live]

        srcs, dsts, ws = expand_frontier(graph, live_verts)
        edges = int(dsts.size)
        latency = cost.wtb_batch_latency(edges, float_weights=state.float_weights)
        nbytes = cost.wtb_batch_bytes(edges, avg_deg)
        # Distance updates commit as the batch runs (hardware atomics are
        # visible to concurrently running blocks), so they are applied at
        # dispatch; the *work items* this batch spawns only become visible
        # when the push instructions + WCC increments execute, i.e. after
        # the batch's duration below.
        state.work_count += int(live_verts.size)
        new_v = np.empty(0, dtype=np.int64)
        if edges:
            cand = state.dist[srcs] + ws.astype(np.float64)
            winners = dev.mem.atomic_min_batch(
                state.dist,
                dsts.astype(np.int64),
                cand,
                payload=srcs,
                payload_out=state.pred,
            )
            new_v = dsts[winners].astype(np.int64)

        if tracer.enabled:
            dev.annotate(
                "relax_batch", bucket=slot, items=k,
                live=int(live_verts.size), stale=k - int(live_verts.size),
                wins=int(new_v.size),
            )
        yield ("relax", latency, edges, nbytes)

        # ---- publication at batch completion ---------------------------------
        if edges:
            if new_v.size:
                new_d = state.dist[new_v]
                rel = q.rel_bands_for(new_d)
                slots = (q.head + rel) % q.n_buckets
                push_cost = 0.0
                for s in np.unique(slots):
                    sel = slots == s
                    vs = new_v[sel]
                    ds = new_d[sel]
                    kk = int(vs.size)
                    idx0 = q.reserve(int(s), kk)
                    if q.capacity(int(s)) < idx0 + kk:
                        # block not allocated yet: wait for the MTB
                        # (bind loop variables via defaults)
                        if tracer.enabled:
                            tracer.instant(
                                track, "alloc_wait", dev.now_us, cat="alloc",
                                bucket=int(s), need=idx0 + kk,
                                capacity=q.capacity(int(s)),
                            )
                        yield (
                            "wait",
                            lambda s=int(s), need=idx0 + kk: q.capacity(s) >= need,
                        )
                    segs = q.publish(int(s), idx0, vs, ds)
                    push_cost += cost.atomic_cycles * (1 + segs) + 4.0 * kk
                yield ("busy", push_cost)

        q.complete(slot, k, epoch)
        state.outstanding_edges -= float(state.af_edges[wid])
        state.af_edges[wid] = 0.0
        af_state[wid] = AF_IDLE
        if tracer.enabled:
            tracer.instant(
                track, "wtb_complete", dev.now_us, cat="wtb",
                bucket=slot, items=k,
            )
