"""§5.1: the worker thread block (WTB) program.

Each WTB loops forever:

1. spin on its **assignment flag** (AF) in scratchpad — "Each idle WTB
   polls its respective AF ... and thus receives work from the MTB
   without contention with other WTBs";
2. on assignment ``(bucket, start, end)``: read the work items, drop
   stale ones (their vertex has improved since the push), expand the rest
   and atomically relax their out-edges on the shared distance array;
3. push every *winning* relaxation as a new work item: compute its band
   under the current Δ, atomically reserve slots (``resv_ptr``), write,
   fence, bump the segment WCCs — the multi-writer half of §5.2.  If the
   reservation outruns the allocated blocks the WTB waits for the MTB's
   allocator to catch up (§5.3: all memory management is the MTB's job);
4. report completion: bump the source bucket's CWC by the full assignment
   size (stale items included — they were assigned work), then clear the
   AF.

The relaxation itself is one vectorized batch priced by the cost model;
its memory effects land when the batch *finishes*, so concurrent WTBs
genuinely race on the distance array and redundant work arises exactly as
it does on hardware.

The relaxation phase (steps 1–2) lives in :func:`make_relax_kernel` as
array kernels split at the phase's protocol-visible seams, so the batch
execution mode (:mod:`repro.core.batch`) can run several workers'
phases as fused numpy operations at one timestamp.  The event-mode
program runs the same kernels sequentially — both modes execute
identical array operations against identical state, which is what keeps
the simulated outputs bit-identical between them.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.graphs.csr import expand_frontier

__all__ = [
    "wtb_program",
    "make_relax_kernel",
    "AF_IDLE",
    "AF_ASSIGNED",
    "AF_STOP",
]

AF_IDLE = 0
AF_ASSIGNED = 1
AF_STOP = 2


def make_relax_kernel(state):
    """The WTB relaxation phase as batchable array kernels.

    Returns a namespace of closures sharing one set of per-solve hoisted
    bindings (the int64/float64 CSR twins, the per-vertex adjacency
    cache, the batch price memo):

    - ``begin(wid)`` — decode the AF and read the assigned items (the
      claim + the bucket read);
    - ``expand(b)`` — stale-filter, expand the live frontier, price the
      batch, and compute candidate distances (*reads* ``dist``);
    - ``commit(e)`` — apply the atomic-min batch (*writes* ``dist``);
    - ``commit_group(entries)`` — fuse several workers' batches whose
      destination index sets are pairwise disjoint into **one**
      ``atomic_min_batch`` call, recovering each worker's winner mask by
      slicing.  Disjointness means the dedup never crosses worker
      boundaries, so the sliced masks — and every metric the call bumps
      — are bit-identical to per-worker ``commit`` calls;
    - ``dispatch(wid)`` — the sequential composition
      ``commit(expand(begin(wid)))`` used by the event-mode program and
      by any batch-mode dispatch that could not be fused.

    Entry layouts (plain tuples, hot path):
    ``begin``  → ``(slot, start, end, epoch, k, verts, pushed)``;
    ``expand``/``commit`` input → ``(slot, k, epoch, n_live, edges,
    latency, nbytes, srcs, dsts, cand)``;
    ``commit`` output → ``(slot, k, epoch, n_live, edges, latency,
    nbytes, new_v, nw)``.
    """
    dev = state.device
    cost = dev.cost
    mem = dev.mem
    q = state.queue
    graph = state.graph
    dist = state.dist
    pred_out = state.pred
    float_weights = state.float_weights
    avg_deg = max(graph.average_degree(), 1.0)
    # Pre-cast CSR view: expand_frontier's output feeds float64 distance
    # math and int64 atomics, so gathering from 64-bit twins of the CSR
    # arrays skips two per-batch ``astype`` copies.  Values are identical
    # (int32→int64 and int32/float32→float64 are exact).
    col64 = state.col64 if state.col64 is not None else graph.col_indices.astype(np.int64)
    w64 = state.w64 if state.w64 is not None else graph.weights.astype(np.float64)
    exp_graph = SimpleNamespace(
        row_offsets=graph.row_offsets, col_indices=col64, weights=w64
    )
    # Hoisted hot-path lookups: these closures run once per assignment,
    # tens of thousands of times per solve.
    af_slot_item = state.af_slot.item
    af_start_item = state.af_start.item
    af_end_item = state.af_end.item
    af_epoch_item = state.af_epoch.item
    read_items = q.read_items
    atomic_min_batch = mem.atomic_min_batch
    batch_price = cost.wtb_batch_price
    # Local int-keyed view of the cost model's price memo: avg_deg and
    # float_weights are fixed for the whole solve.
    price_memo: dict = {}
    count_nonzero = np.count_nonzero
    concatenate = np.concatenate
    adj = state.adj
    ro_item = graph.row_offsets.item
    dist_item = dist.item
    # dynamic protocol checker (repro.check); getattr so hand-built test
    # states without the field keep working
    checker = getattr(state, "checker", None)

    def begin(wid: int):
        slot = af_slot_item(wid)
        start = af_start_item(wid)
        end = af_end_item(wid)
        epoch = af_epoch_item(wid)
        k = end - start
        if checker is not None:
            # the claim check: what this WTB decoded from its AF must be
            # exactly what the MTB assigned, in the epoch it was made
            checker.on_claim(wid, slot, start, end, epoch)
        verts, pushed = read_items(slot, start, end)
        return (slot, start, end, epoch, k, verts, pushed)

    def expand(b):
        slot, start, end, epoch, k, verts, pushed = b
        if adj is not None and k <= 12:
            # Fused scalar path for small chunks (the dominant shape on
            # mesh/road graphs): one pass does the stale check and gathers
            # each live vertex's cached adjacency — the same slices
            # ``expand_frontier`` would take, concatenated in the same
            # order, so the batch below is bit-identical.
            src_parts = []
            dst_parts = []
            w_parts = []
            n_live = 0
            verts_l = verts.tolist()
            pushed_l = pushed.tolist()
            for i in range(k):
                v = verts_l[i]
                # stale check: the pushed distance is current iff the
                # vertex has not improved since (distances only decrease)
                if pushed_l[i] <= dist_item(v):
                    n_live += 1
                    ent = adj[v]
                    if ent is None:
                        s = ro_item(v)
                        e = ro_item(v + 1)
                        sv = np.empty(e - s, dtype=np.int64)
                        sv.fill(v)
                        ent = adj[v] = (sv, col64[s:e], w64[s:e])
                    src_parts.append(ent[0])
                    dst_parts.append(ent[1])
                    w_parts.append(ent[2])
            if n_live:
                srcs = concatenate(src_parts)
                dsts = concatenate(dst_parts)
                ws = concatenate(w_parts)
                edges = int(dsts.size)
            else:
                edges = 0
        else:
            # stale check: the pushed distance is current iff the vertex
            # has not improved since (distances only decrease)
            live = pushed <= dist[verts]
            n_live = int(count_nonzero(live))
            live_verts = verts if n_live == k else verts[live]

            srcs, dsts, ws = expand_frontier(exp_graph, live_verts)
            edges = int(dsts.size)
        priced = price_memo.get(edges)
        if priced is None:
            priced = price_memo[edges] = batch_price(
                edges, avg_deg, float_weights=float_weights
            )
        latency, nbytes = priced
        # Distance updates commit as the batch runs (hardware atomics are
        # visible to concurrently running blocks), so they are applied at
        # dispatch; the *work items* this batch spawns only become visible
        # when the push instructions + WCC increments execute, i.e. after
        # the batch's duration.
        state.work_count += n_live
        if edges:
            cand = dist[srcs] + ws
        else:
            srcs = dsts = cand = None
        return (slot, k, epoch, n_live, edges, latency, nbytes, srcs, dsts, cand)

    def commit(e):
        slot, k, epoch, n_live, edges, latency, nbytes, srcs, dsts, cand = e
        nw = 0
        new_v = None
        if edges:
            winners = atomic_min_batch(
                dist, dsts, cand, payload=srcs, payload_out=pred_out
            )
            new_v = dsts[winners]
            nw = int(new_v.size)
        return (slot, k, epoch, n_live, edges, latency, nbytes, new_v, nw)

    def commit_group(entries):
        # entries all have edges > 0 and pairwise-disjoint dst sets (the
        # batch coordinator's conflict grouping guarantees it)
        winners = atomic_min_batch(
            dist,
            concatenate([e[8] for e in entries]),
            concatenate([e[9] for e in entries]),
            payload=concatenate([e[7] for e in entries]),
            payload_out=pred_out,
        )
        out = []
        off = 0
        for e in entries:
            edges = e[4]
            new_v = e[8][winners[off:off + edges]]
            off += edges
            out.append(
                (e[0], e[1], e[2], e[3], edges, e[5], e[6], new_v, int(new_v.size))
            )
        return out

    def dispatch(wid: int):
        return commit(expand(begin(wid)))

    return SimpleNamespace(
        begin=begin,
        expand=expand,
        commit=commit,
        commit_group=commit_group,
        dispatch=dispatch,
    )


def wtb_program(state, wid: int, kernel=None, coord=None):
    """Generator program for worker ``wid`` over the shared solver state.

    ``kernel`` is a shared :func:`make_relax_kernel` namespace (built
    per-worker when omitted, for hand-built test states); ``coord`` is
    the :class:`~repro.core.batch.BatchCoordinator` in batch execution
    mode, or ``None`` for pure event stepping.
    """
    dev = state.device
    q = state.queue
    dist = state.dist
    af_state = state.af_state
    tracer = dev.tracer
    track = f"WTB{wid}"
    if kernel is None:
        kernel = make_relax_kernel(state)
    dispatch = kernel.dispatch
    take = coord.take if coord is not None else None
    arm = coord.arm if coord is not None else None
    assigned = lambda: af_state[wid] != AF_IDLE  # noqa: E731 - hot predicate
    # Wake channel for the assignment flag: the MTB notifies ("af", wid)
    # when it writes this worker's AF, so the engine re-evaluates the
    # predicate O(assignments) times instead of on every event.
    af_key = ("af", wid)
    cap_keys = q.cap_keys
    # Hoisted hot-path lookups: this loop body runs once per assignment,
    # tens of thousands of times per solve.
    trace_on = tracer.enabled
    push_slots_list = q.push_slots_list
    reserve = q.reserve
    capacity = q.capacity
    publish = q.publish
    complete = q.complete
    atomic_cycles = dev.cost.atomic_cycles
    af_edges = state.af_edges

    while True:
        if arm is not None:
            # Tell the coordinator the next event for this block is a
            # dispatch resume: while armed + assigned, its heap entry is
            # eligible for same-timestamp fusion.
            arm(wid)
        yield ("wait", assigned, af_key)
        if af_state[wid] == AF_STOP:
            return

        res = take(wid) if take is not None else None
        if res is None:
            res = dispatch(wid)
        slot, k, epoch, n_live, edges, latency, nbytes, new_v, nw = res

        if trace_on:
            dev.annotate(
                "relax_batch", bucket=slot, items=k,
                live=n_live, stale=k - n_live, wins=nw,
            )
        yield ("relax", latency, edges, nbytes)

        # ---- publication at batch completion ---------------------------------
        if nw:
            new_d = dist[new_v]
            slots_l = push_slots_list(new_v, new_d)
            push_cost = 0.0
            s0 = slots_l[0]
            if nw == 1 or slots_l.count(s0) == nw:
                # common case: the whole batch lands in one slot
                groups = ((s0, new_v, new_d),)
            else:
                # group by physical slot, ascending (reserve/publish
                # order is protocol-visible): a scalar pass beats
                # per-slot boolean masks at these batch sizes
                by_slot: dict = {}
                for pos, s in enumerate(slots_l):
                    bucket = by_slot.get(s)
                    if bucket is None:
                        by_slot[s] = [pos]
                    else:
                        bucket.append(pos)
                groups = tuple(
                    (s, new_v[pos], new_d[pos])
                    for s, pos in sorted(by_slot.items())
                )
            for s, vs, ds in groups:
                kk = int(vs.size)
                idx0 = reserve(s, kk)
                if capacity(s) < idx0 + kk:
                    # block not allocated yet: wait for the MTB
                    # (bind loop variables via defaults)
                    if trace_on:
                        tracer.instant(
                            track, "alloc_wait", dev.now_us, cat="alloc",
                            bucket=s, need=idx0 + kk,
                            capacity=capacity(s),
                        )
                    yield (
                        "wait",
                        lambda s=s, need=idx0 + kk: capacity(s) >= need,
                        cap_keys[s],
                    )
                segs = publish(s, idx0, vs, ds)
                push_cost += atomic_cycles * (1 + segs) + 4.0 * kk
            yield ("busy", push_cost)

        complete(slot, k, epoch)
        state.outstanding_edges -= af_edges.item(wid)
        af_edges[wid] = 0.0
        af_state[wid] = AF_IDLE
        if trace_on:
            tracer.instant(
                track, "wtb_complete", dev.now_us, cat="wtb",
                bucket=slot, items=k,
            )
