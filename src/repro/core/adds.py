"""The ADDS solver: MTB + WTBs + bucket queue assembled on a Device.

``solve_adds`` is the reproduction of the artifact's ``ads_int`` /
``ads_float`` binaries: it builds the shared state (distance array, the
32-bucket queue over a pre-allocated arena, per-WTB assignment flags),
registers one manager and N worker thread-block programs on the simulated
GPU, seeds the source vertex, runs the event loop to termination and
returns the standard :class:`~repro.baselines.common.SSSPResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.common import (
    SSSPResult,
    init_distances,
    init_tree,
    register_solver,
    resolve_sources,
)
from repro.baselines.heuristics import davidson_delta
from repro.calibration import resolve_device
from repro.core.config import AddsConfig
from repro.core.delta_controller import DeltaController
from repro.core.mtb import mtb_program
from repro.core.scheduler import (
    DEFAULT_SCHEDULER,
    WorkScheduler,
    get_scheduler_info,
)
from repro.core.wtb import AF_IDLE, make_relax_kernel, wtb_program
from repro.errors import SolverError
from repro.gpu.costmodel import CostModel
from repro.gpu.device import Device
from repro.gpu.memory import GlobalPool
from repro.gpu.specs import DeviceSpec
from repro.graphs.csr import CSRGraph
from repro.trace import MetricsRegistry, Tracer, coalesce

__all__ = ["solve_adds", "AddsState"]


@dataclass
class AddsState:
    """Shared state the MTB and WTB programs communicate through."""

    graph: CSRGraph
    device: Device
    queue: WorkScheduler
    config: AddsConfig
    controller: DeltaController
    dist: np.ndarray
    pred: np.ndarray
    float_weights: bool
    # per-WTB assignment flags (scratchpad on the real device)
    af_state: np.ndarray
    af_slot: np.ndarray
    af_start: np.ndarray
    af_end: np.ndarray
    af_epoch: np.ndarray
    af_edges: np.ndarray
    # counters
    work_count: int = 0
    outstanding_edges: float = 0.0
    head_switches: int = 0
    delta_trace: List[Tuple[float, float]] = field(default_factory=list)
    #: int64/float64 twins of the CSR arrays — the relax path consumes
    #: these dtypes, so cast once per solve instead of once per batch.
    #: Optional so hand-built states (tests) fall back to per-WTB casts.
    col64: Optional[np.ndarray] = None
    w64: Optional[np.ndarray] = None
    #: per-vertex adjacency cache, lazily filled by the WTB fast path:
    #: ``adj[v] = (srcs, cols, ws)`` where the latter two are views into
    #: the 64-bit twins.  Vertices are re-expanded a handful of times per
    #: solve, so caching the slice objects beats re-slicing the CSR.
    adj: Optional[list] = None
    #: dynamic protocol checker (:class:`repro.check.ProtocolChecker`);
    #: set by ``checker.attach``, consulted by the MTB/WTB programs.
    checker: Optional[object] = None


def _pool_blocks_for(graph: CSRGraph, config: AddsConfig) -> int:
    """Size the arena: live slots are bounded by in-flight + unread
    pushes, which for label-correcting SSSP stays within a small multiple
    of the edge count even in pathological schedules.  An explicit
    ``config.pool_blocks`` is honored exactly (and may overflow)."""
    if config.pool_blocks is not None:
        return config.pool_blocks
    need = (4 * max(graph.num_edges, graph.num_vertices)) // config.slots_per_block
    return max(512, need + 4 * config.n_buckets)


@register_solver(
    "adds",
    needs_device=True,
    traceable=True,
    accepts_delta=True,
    accepts_config=True,
    accepts_scheduler=True,
    accepts_updates=True,
    accepts_exec_mode=True,
)
def solve_adds(
    graph: CSRGraph,
    source: int = 0,
    *,
    sources: Optional[Sequence[int]] = None,
    spec: Optional[DeviceSpec] = None,
    cost: Optional[CostModel] = None,
    config: Optional[AddsConfig] = None,
    delta: Optional[float] = None,
    tracer: Optional[Tracer] = None,
    checker: Optional[object] = None,
    perturb_seed: Optional[int] = None,
    scheduler: Optional[str] = None,
    warm_from: Optional[np.ndarray] = None,
    updates: Optional[object] = None,
    exec_mode: Optional[str] = None,
) -> SSSPResult:
    """Run ADDS on the (simulated) GPU.

    Parameters
    ----------
    spec / cost:
        Device and cost model; default to the calibrated scaled RTX 2080 Ti
        (see :mod:`repro.calibration`).
    config:
        :class:`AddsConfig`; the Table 5 ablations are
        ``config.static_delta_ablation()`` and
        ``config.two_buckets_ablation()``.
    delta:
        Overrides the *initial* Δ (and the static Δ when
        ``config.dynamic_delta`` is False) — the knob the Figure 7 sweep
        turns.  Default: the Davidson heuristic, like the baselines.
    tracer:
        A :class:`~repro.trace.Tracer` to receive structured events
        (MTB passes, WTB relax batches, bucket pushes, Δ retunes, …).
        Disabled by default; tracing never perturbs the simulation, so
        traced and untraced runs produce identical results.
    checker:
        A :class:`repro.check.ProtocolChecker` (one fresh instance per
        solve).  When given, every queue/memory/AF protocol operation is
        validated against the SRMW invariants and the no-lost-work
        oracle runs after termination; any violation raises
        :class:`~repro.errors.InvariantViolation`.
    perturb_seed:
        Seeds the device's schedule perturber (see
        :class:`~repro.gpu.device.Device`): same-timestamp event order
        and simultaneous-wake order are randomized deterministically.
        ``None`` (default) keeps the canonical, bit-reproducible
        schedule.  Final distances are schedule-invariant; ``work_count``
        and timing legitimately vary across seeds (racing relaxations).
    scheduler:
        Registered :class:`~repro.core.scheduler.WorkScheduler` name
        (``"bucket"``, the paper's queue and the default, or
        ``"mlmq"``).  Final distances are scheduler-invariant — only
        the work schedule, and hence work/time, differ.
    warm_from / updates:
        Incremental re-solve (ROADMAP item 2): ``warm_from`` is the
        exact distance array of the same source on the graph *before*
        the edge changes in ``updates`` (an
        :class:`~repro.dynamic.updates.EdgeDeltas`) were applied to it.
        The solver invalidates stale distances, seeds the scheduler
        from the **dirty frontier** (violated-edge tails at their warm
        distances) instead of the source, and converges — by the same
        label-correction property that makes schedules and schedulers
        interchangeable — to distances bit-identical to a from-scratch
        solve.  Works with any registered scheduler.  The predecessor
        tree is rebuilt only for re-relaxed vertices (``-1`` elsewhere).
    exec_mode:
        ``"events"`` (default): every block steps one event at a time.
        ``"batch"``: same-timestamp WTB relaxation dispatches execute as
        fused numpy operations over the concatenated frontiers (see
        :mod:`repro.core.batch`); the event heap keeps sole authority
        over every cross-block protocol point.  Simulated outputs —
        distances, ``work_count``, ``time_us``, every metric — are
        bit-identical between the modes; only host wall-clock differs.
    """
    spec, cost = resolve_device(spec, cost)
    config = config or AddsConfig()
    exec_mode = exec_mode if exec_mode is not None else "events"
    if exec_mode not in ("events", "batch"):
        raise SolverError(
            f"unknown exec_mode {exec_mode!r}: expected 'events' or 'batch'"
        )
    if graph.num_vertices == 0:
        raise SolverError("cannot run SSSP on an empty graph")
    if updates is not None and warm_from is None:
        raise SolverError("updates= requires warm_from= distances")

    initial_delta = (
        delta
        if delta is not None
        else config.initial_delta
        if config.initial_delta is not None
        else davidson_delta(graph, config.delta_constant)
    )
    if initial_delta <= 0:
        raise SolverError("initial delta must be positive")

    tracer = coalesce(tracer)
    device = Device(spec, cost, tracer=tracer, perturb_seed=perturb_seed)
    n_wtbs = config.n_wtbs
    if n_wtbs is None:
        n_wtbs = max(1, spec.max_resident_blocks - 1)
    if n_wtbs < 1:
        raise SolverError("ADDS needs at least one WTB")
    if n_wtbs + 1 > spec.max_resident_blocks:
        raise SolverError(
            f"{n_wtbs} WTBs + 1 MTB exceed the device's "
            f"{spec.max_resident_blocks} resident blocks"
        )

    pool = GlobalPool(
        _pool_blocks_for(graph, config), words_per_block=config.slots_per_block
    )
    scheduler_name = scheduler if scheduler is not None else DEFAULT_SCHEDULER
    queue = get_scheduler_info(scheduler_name).create(
        device.mem, pool, config, initial_delta=initial_delta
    )
    if config.delta_floor is not None:
        delta_floor = config.delta_floor
    else:
        positive = graph.weights[graph.weights > 0]
        delta_floor = float(positive.min()) / 4.0 if positive.size else 1e-9
    controller = DeltaController(
        config=config,
        spec=spec,
        avg_degree=graph.average_degree(),
        delta=initial_delta,
        delta_floor=delta_floor,
    )
    if tracer.enabled:
        clock = lambda: device.now_us  # noqa: E731 - tiny shared closure
        queue.attach_tracer(tracer, clock)
        pool.attach_tracer(tracer, clock)
        controller.attach_tracer(tracer, clock)

    # A prepared graph (CSRGraph.prepare(), e.g. a serving session's load
    # step) supplies the int64/float64 twins and the adjacency cache; the
    # fallback casts per solve, exactly as before — same values either way.
    prep = graph.prepared()
    if prep is None:
        col64 = graph.col_indices.astype(np.int64)
        w64 = graph.weights.astype(np.float64)
        adj: list = [None] * graph.num_vertices
    else:
        col64, w64, adj = prep.col64, prep.w64, prep.adj

    # Incremental mode: start from the warm distances and seed the
    # scheduler from the dirty frontier instead of the source.
    seed_info = None
    if warm_from is not None:
        from repro.dynamic.frontier import incremental_seed

        dist0, frontier, frontier_dists, seed_info = incremental_seed(
            graph, warm_from, updates, source, sources
        )
    else:
        dist0 = init_distances(graph.num_vertices, source, sources)

    state = AddsState(
        graph=graph,
        device=device,
        queue=queue,
        config=config,
        controller=controller,
        dist=dist0,
        pred=init_tree(graph.num_vertices),
        float_weights=not graph.is_integer_weighted,
        af_state=np.full(n_wtbs, AF_IDLE, dtype=np.int64),
        af_slot=np.zeros(n_wtbs, dtype=np.int64),
        af_start=np.zeros(n_wtbs, dtype=np.int64),
        af_end=np.zeros(n_wtbs, dtype=np.int64),
        af_epoch=np.zeros(n_wtbs, dtype=np.int64),
        af_edges=np.zeros(n_wtbs, dtype=np.float64),
        col64=col64,
        w64=w64,
        adj=adj,
    )

    # Seed: each source is one work item in the head bucket at distance 0.
    queue.bind_device(device)
    if checker is not None:
        # attach before seeding so the host-side seed reserve/publish is
        # accounted like any other writer's
        checker.attach(device=device, queue=queue, state=state)
    if warm_from is None:
        seed = resolve_sources(graph.num_vertices, source, sources)
        seed_slot = queue.seed_slot()
        queue.ensure_capacity(
            seed_slot, config.segment_size * (1 + seed.size // config.segment_size)
        )
        start = queue.reserve(seed_slot, int(seed.size))
        queue.publish(seed_slot, start, seed, np.zeros(seed.size))
    elif frontier.size:
        # Warm start: seed the scheduler from the dirty frontier at its
        # warm distances.  base_dist is purely relative, so anchoring it
        # at the nearest frontier vertex avoids spinning through empty
        # bands; push_slots_list maps each item to its physical slot
        # under whichever policy (bucket / mlmq) is installed.
        queue.base_dist = float(frontier_dists.min())
        slots = np.asarray(
            queue.push_slots_list(frontier, frontier_dists), dtype=np.int64
        )
        for slot in np.unique(slots):
            mask = slots == slot
            verts = frontier[mask]
            queue.ensure_capacity(
                int(slot),
                config.segment_size * (1 + verts.size // config.segment_size),
            )
            start = queue.reserve(int(slot), int(verts.size))
            queue.publish(int(slot), start, verts, frontier_dists[mask])
    # (empty frontier: nothing to relax — the MTB terminates on its own)

    kernel = make_relax_kernel(state)
    coord = None
    if exec_mode == "batch":
        from repro.core.batch import BatchCoordinator

        coord = BatchCoordinator(state, kernel)
    device.add_block("MTB", mtb_program(state))
    for w in range(n_wtbs):
        ctx = device.add_block(f"WTB{w}", wtb_program(state, w, kernel, coord))
        if coord is not None:
            coord.register(ctx, w)
    if tracer.enabled:
        # ADDS runs as one persistent kernel (MTB + WTBs, §5.1).
        tracer.instant(
            "device", "kernel_launch", 0.0, cat="kernel",
            blocks=n_wtbs + 1, solver="adds",
        )
    cycles = device.run()
    if checker is not None:
        checker.finalize()  # the no-lost-work oracle

    metrics = MetricsRegistry()
    for key, value in (
        ("atomics", device.mem.stats.atomics),
        ("fences", device.mem.stats.fences),
        ("kernel_launches", 1),  # one persistent kernel
        ("work_count", state.work_count),
        ("delta_adjustments", controller.adjustments),
        ("rotations", queue.rotations),
        ("head_switches", state.head_switches),
        ("total_pushed", queue.total_pushed),
        ("total_completed", queue.total_completed),
        ("high_clips", queue.high_clips),
        ("low_clips", queue.low_clips),
        ("translation_hits", queue.mtb_cache.hits),
        ("translation_misses", queue.mtb_cache.misses),
        ("timeline_clamps", device.timeline.clamps),
        ("wakeups", device.wakeups),
        ("spurious_wakeups", device.spurious_wakeups),
        ("fallback_polls", device.fallback_polls),
        ("missed_wakeups", device.missed_wakeups),
    ):
        metrics.counter(key).inc(value)
    metrics.update(
        {
            "initial_delta": initial_delta,
            "final_delta": queue.delta,
            "pool_high_water": pool.high_water,
            "active_buckets_final": controller.active_buckets,
            "n_wtbs": n_wtbs,
        }
    )
    if perturb_seed is not None:
        # only on perturbed runs, so canonical stats stay bit-identical
        metrics.update({"perturb_seed": perturb_seed})
    if seed_info is not None:
        # only on warm runs, so canonical stats stay bit-identical
        metrics.update(
            {
                "warm_start": True,
                "warm_roots": seed_info["roots"],
                "warm_invalidated": seed_info["invalidated"],
                "warm_frontier": seed_info["frontier"],
            }
        )

    return SSSPResult(
        solver="adds",
        graph_name=graph.name,
        source=source,
        dist=state.dist,
        predecessors=state.pred,
        work_count=state.work_count,
        time_us=spec.cycles_to_us(cycles),
        timeline=device.timeline,
        metrics=metrics,
        stats={
            **metrics.snapshot(),
            "scheduler": scheduler_name,
            "exec_mode": exec_mode,
            "delta_trace": list(state.delta_trace),
            **(
                {
                    "fused_groups": coord.fused_groups,
                    "fused_blocks": coord.fused_blocks,
                }
                if coord is not None
                else {}
            ),
        },
    )
