"""§5.1/§5.4: the manager thread block (MTB) program.

Every management pass the MTB:

1. **allocates** — grows each bucket's block table ahead of its
   ``resv_ptr`` and retires fully-consumed blocks (§5.3: "All memory
   management is performed by the MTB");
2. **scans and assigns** — computes the readable range of each bucket in
   the active window (head first, §5.4: "higher priority buckets are
   considered first and lower priority buckets ... only if there are idle
   WTBs"), carves it into chunks and publishes them to idle WTBs through
   their assignment flags;
3. **rotates** — recycles the head bucket when all of its work has been
   read *and* completed (the CWC guard; skipping it is the paper's
   cramming failure, available as ``unsafe_rotation`` for the tests);
4. **tunes** — feeds the Δ controller the current in-flight work and the
   clip-guard signal, applying active-bucket and Δ adjustments;
5. **terminates** — after ``termination_sweeps`` consecutive passes in
   which the queue is empty, nothing is in flight and every WTB is idle,
   it broadcasts STOP to all AFs and exits (§5.4: two sweeps "to ensure
   that all work in progress has been completed").

Each pass is charged via :meth:`CostModel.mtb_pass_cost`, proportional to
segments scanned and assignments made — the delegation economics of the
paper (warp-wide metadata reads amortized over many work items).
"""

from __future__ import annotations

import numpy as np

from repro.core.wtb import AF_ASSIGNED, AF_IDLE, AF_STOP

__all__ = ["mtb_program"]


def mtb_program(state):
    """Generator program for the manager thread block."""
    dev = state.device
    cost = dev.cost
    q = state.queue
    cfg = state.config
    ctrl = state.controller
    af_state = state.af_state
    n_wtbs = af_state.size
    avg_deg = max(state.graph.average_degree(), 1.0)
    target_edges = (
        cfg.target_chunk_edges
        if cfg.target_chunk_edges is not None
        else dev.spec.threads_per_block
    )
    chunk_items = int(min(cfg.max_chunk, max(4, round(target_edges / avg_deg))))
    lookahead = 2 * cfg.max_chunk
    # Wake-channel keys mirroring the WTB side: writing a worker's AF is
    # followed by a notify on its channel so only that worker's
    # predicate is re-evaluated.
    af_keys = tuple(("af", w) for w in range(n_wtbs))
    notify = dev.notify

    tracer = dev.tracer
    trace_on = tracer.enabled
    # Hoisted hot-path lookups (one pass per few hundred cycles).
    ensure_capacity = q.ensure_capacity
    retire_read_blocks = q.retire_read_blocks
    readable_upper = q.readable_upper
    advance_read = q.advance_read
    assign_slots = q.assign_slots
    head_slots = q.head_slots
    resv = q.resv
    af_slot = state.af_slot
    af_start = state.af_start
    af_end = state.af_end
    af_epoch = state.af_epoch
    af_edges = state.af_edges
    q_epoch = q.epoch
    q_read = q.read
    # dynamic protocol checker (repro.check); getattr so hand-built test
    # states without the field keep working
    checker = getattr(state, "checker", None)

    empty_sweeps = 0
    last_integral = 0.0
    last_now = 0.0
    while True:
        segments_scanned = 0
        assignments = 0
        assigned_items = 0

        # ---- 1. memory management ------------------------------------------
        # Only buckets with reservations (plus the head, which must stay
        # pre-grown) can hold storage blocks: a bucket leaves ``resv == 0``
        # only via reset, which drops its blocks.  Scanning the other ~30
        # empty slots every pass was a top host-side hot spot.
        for slot in resv.nonzero()[0].tolist():
            ensure_capacity(slot, resv.item(slot) + lookahead)
            retire_read_blocks(slot)
        for slot in head_slots():
            if not resv.item(slot):
                ensure_capacity(slot, lookahead)
                retire_read_blocks(slot)

        # ---- 2. scan + assign ------------------------------------------------
        idle = (af_state == AF_IDLE).nonzero()[0].tolist()
        for slot in assign_slots(ctrl.active_buckets):
            if not idle:
                break
            upper, scanned = readable_upper(slot)
            segments_scanned += scanned
            rd = q_read.item(slot)
            epoch_s = q_epoch.item(slot)
            while idle and rd < upper:
                start = rd
                end = min(start + chunk_items, upper)
                advance_read(slot, end)
                rd = end
                wid = idle.pop()
                af_slot[wid] = slot
                af_start[wid] = start
                af_end[wid] = end
                af_epoch[wid] = epoch_s
                est_edges = (end - start) * avg_deg
                af_edges[wid] = est_edges
                state.outstanding_edges += est_edges
                af_state[wid] = AF_ASSIGNED  # the worker's AF poll sees this
                if checker is not None:
                    checker.on_assign(wid, slot, start, end, epoch_s)
                notify(af_keys[wid])
                assignments += 1
                assigned_items += end - start
                if trace_on:
                    tracer.instant(
                        "MTB", "assign", dev.now_us, cat="mtb",
                        wtb=wid, bucket=slot, items=end - start,
                        est_edges=est_edges,
                    )

        # ---- 3. rotation ---------------------------------------------------------
        rotated = 0
        while rotated < q.max_rotate_burst:
            heads = head_slots()
            if not all(q.bucket_read_out(h) for h in heads):
                break
            if cfg.unsafe_rotation:
                # Even the broken variant cannot recycle storage a WTB is
                # still reading from — the paper's failure mode is spawned
                # work landing in a rotated band, not a use-after-free.
                pinned = bool(
                    np.any((af_state == AF_ASSIGNED) & np.isin(af_slot, heads))
                )
                if pinned:
                    break
            elif not all(q.bucket_drained(h) for h in heads):
                break
            unread = resv > q_read
            unread[list(heads)] = False
            pending_elsewhere = bool(unread.any())
            in_flight = state.outstanding_edges > 0 or q.outstanding() > 0
            if not (pending_elsewhere or in_flight):
                break  # nothing left anywhere: rotating forever is pointless
            q.rotate()
            q.reset_push_window()  # clip guard measures the freshest band
            state.head_switches += 1
            rotated += 1

        # ---- 4. Δ controller -----------------------------------------------------
        # The utilization signal is the exact time-average of edges in
        # flight since the previous pass (point samples would alias the
        # burst-idle pattern of small batches).
        integral = dev.relax_edge_integral()
        span = dev.now - last_now
        window_avg = (integral - last_integral) / span if span > 0 else 0.0
        last_integral, last_now = integral, dev.now
        ctrl.observe(window_avg)
        ctrl.adjust_active_buckets()
        if cfg.dynamic_delta:
            old = ctrl.delta
            new = ctrl.maybe_adjust_delta(q.tail_push_fraction(), q.rotations)
            if new != old:
                q.set_delta(new)
                q.reset_push_window()
                state.delta_trace.append((dev.now_us, new))

        # ---- 5. termination ---------------------------------------------------------
        # With no assignments this pass the AF array is unchanged since
        # the idle scan, so the (possibly shrunken) idle list stands in
        # for re-scanning it.
        queue_empty = (
            assignments == 0
            and len(idle) == n_wtbs
            and q.outstanding() == 0
            and bool(np.array_equal(resv, q_read))
        )
        if queue_empty:
            empty_sweeps += 1
            if empty_sweeps >= cfg.termination_sweeps:
                for w in range(n_wtbs):
                    af_state[w] = AF_STOP
                    notify(af_keys[w])
                if trace_on:
                    tracer.instant(
                        "MTB", "stop_broadcast", dev.now_us, cat="mtb",
                        empty_sweeps=empty_sweeps,
                    )
                return
        else:
            empty_sweeps = 0

        # ---- 6. charge the pass ------------------------------------------------------
        if trace_on:
            dev.annotate(
                "mtb_pass", segments=segments_scanned,
                assignments=assignments, items=assigned_items, rotated=rotated,
            )
            tracer.counter("active_buckets", dev.now_us, ctrl.active_buckets)
            tracer.counter(
                "outstanding_edges", dev.now_us, max(0.0, state.outstanding_edges)
            )
        if assignments or rotated:
            yield ("busy", cost.mtb_pass_cost(segments_scanned, assignments))
        else:
            yield ("busy", max(cfg.mtb_idle_cycles, cost.mtb_pass_cost(segments_scanned, 0)))
