"""The ``WorkScheduler`` protocol: pluggable priority work queues.

ADDS (§5 of the paper) is built around one concrete scheduler — the
circular 32-bucket queue of :mod:`repro.core.bucket_queue` — but nothing
in the MTB/WTB programs or the SRMW access protocol actually depends on
*how* distances map to physical slots.  This module extracts the
slot-generic machinery into :class:`WorkScheduler` so rival queue
designs (e.g. :class:`repro.core.mlmq.MLMQScheduler`) drop in with full
checking, tracing, and benching for free, and registers implementations
in a :data:`SCHEDULERS` registry mirroring the solver registry of
:mod:`repro.baselines.common`.

The split of responsibilities:

``WorkScheduler`` (here)
    Everything per-physical-slot: the ``resv_ptr`` / segment ``WCC`` /
    ``read_ptr`` / ``CWC`` arrays and their SRMW protocol operations
    (:meth:`~WorkScheduler.reserve`, :meth:`~WorkScheduler.publish`,
    :meth:`~WorkScheduler.complete`, :meth:`~WorkScheduler.readable_upper`,
    :meth:`~WorkScheduler.read_items`, ...), block-allocator storage,
    capacity wake channels, Δ-band mapping with clip counting, tracer /
    checker / device attachment, termination counters, and
    :meth:`~WorkScheduler.snapshot`.

Subclasses (the scheduling *policy*)
    How distances map to physical slots (:meth:`~WorkScheduler.push_slots_list`),
    which slots the MTB scans and in what priority order
    (:meth:`~WorkScheduler.assign_slots`), which slots form the current
    head band (:meth:`~WorkScheduler.head_slots`), and what
    :meth:`~WorkScheduler.rotate` recycles when the window slides.

Everything a subclass stores per slot is indexed by *physical slot*
``0 .. n_buckets-1``; the :class:`repro.check.ProtocolChecker` sizes its
mirrors from ``n_buckets`` and checks every implementation against the
same invariant set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.core.block_alloc import BucketStorage, TranslationCache
from repro.core.config import AddsConfig
from repro.errors import ProtocolError, SolverError
from repro.gpu.memory import GlobalPool, SimMemory
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = [
    "WorkScheduler",
    "SchedulerInfo",
    "SCHEDULERS",
    "DEFAULT_SCHEDULER",
    "register_scheduler",
    "get_scheduler_info",
    "scheduler_names",
    "encode_dist",
    "decode_dist",
]

DEFAULT_SCHEDULER = "bucket"


def encode_dist(d: np.ndarray) -> np.ndarray:
    """float64 distances → int64 bit patterns (order-preserving for d ≥ 0)."""
    if isinstance(d, np.ndarray) and d.dtype == np.float64 and d.flags.c_contiguous:
        return d.view(np.int64)  # hot path: already the right layout
    return np.ascontiguousarray(np.asarray(d, dtype=np.float64)).view(np.int64)


def decode_dist(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_dist`."""
    if (
        isinstance(bits, np.ndarray)
        and bits.dtype == np.int64
        and bits.flags.c_contiguous
    ):
        return bits.view(np.float64)
    return np.ascontiguousarray(np.asarray(bits, dtype=np.int64)).view(np.float64)


class WorkScheduler:
    """Base class: SRMW slot machinery shared by every scheduler.

    Subclasses must set two attributes in ``__init__`` (after calling
    ``super().__init__``):

    ``_band_limit``
        Highest valid Δ-band index; distances beyond it clip into the
        last band (Figure 6(b)), distances below the window clip to
        band 0.  Clip counts feed the Δ controller.
    ``max_rotate_burst``
        Upper bound on consecutive :meth:`rotate` calls in one MTB pass
        (the bucket queue uses ``n_buckets - 1`` so the head can never
        lap itself).

    and implement the policy hooks :meth:`rel_of`, :meth:`_is_tail_slot`,
    :meth:`push_slots_list`, :meth:`head_slots`, :meth:`assign_slots`,
    :meth:`seed_slot`, and :meth:`rotate`.
    """

    #: registry name, filled in by :func:`register_scheduler`
    name: str = "?"

    def __init__(
        self,
        mem: SimMemory,
        pool: GlobalPool,
        config: AddsConfig,
        *,
        initial_delta: float,
        n_slots: int,
    ) -> None:
        if initial_delta <= 0:
            raise ProtocolError("initial delta must be positive")
        self.mem = mem
        self.pool = pool
        self.config = config
        self.n_buckets = n_slots
        self.segment_size = config.segment_size

        # shared metadata arrays (global memory on the real device)
        self.resv = np.zeros(n_slots, dtype=np.int64)
        self.read = np.zeros(n_slots, dtype=np.int64)
        self.cwc = np.zeros(n_slots, dtype=np.int64)
        # Slot reuse epoch: the simulator's stand-in for the monotonic
        # 32-bit circular index.  A completion that arrives after its
        # slot was recycled (possible only under unsafe_rotation) is
        # dropped from the recycled slot's CWC but still counts globally.
        self.epoch = np.zeros(n_slots, dtype=np.int64)
        # Per-slot segment WCC counters, indexed by segment number.
        # Dense int64 arrays (grown on demand as slots gain capacity)
        # instead of dicts: publish and readable_upper operate on whole
        # segment ranges, which a dict forces into per-segment Python
        # loops on the hottest writer/reader paths.
        self.wcc: List[np.ndarray] = [
            np.zeros(self._initial_segments(), dtype=np.int64)
            for _ in range(n_slots)
        ]
        self.storage = [
            BucketStorage(pool, config.slots_per_block, name=f"b{i}")
            for i in range(n_slots)
        ]
        self.mtb_cache = TranslationCache()
        # Wake-channel keys for capacity waiters, one per slot; WTBs
        # register on cap_keys[slot] and ensure_capacity notifies it.
        self.cap_keys = tuple(("cap", s) for s in range(n_slots))
        self._device = None

        # priority window state (owned by the MTB).  ``head`` is the
        # scheduler's logical head position — the physical head slot for
        # the bucket queue, the head fine band for MLMQ.
        self.head = 0
        self.base_dist = 0.0
        self.delta = float(initial_delta)
        self.rotations = 0

        # counters feeding termination and the Δ controller
        self.total_pushed = 0
        self.total_completed = 0
        self.pushes_since_check = 0
        self.tail_pushes_since_check = 0
        self.low_clips = 0
        self.high_clips = 0

        # observability (zero-cost unless attach_tracer enables it)
        self._tracer: Tracer = NULL_TRACER
        self._clock: Callable[[], float] = lambda: 0.0
        # dynamic protocol checker (repro.check); one branch per op when
        # detached, full SRMW invariant enforcement when attached
        self._checker = None

    def _initial_segments(self) -> int:
        """WCC array size covering one storage block's worth of slots."""
        return max(1, -(-self.config.slots_per_block // self.segment_size))

    def _wcc_through(self, slot: int, last_seg: int) -> np.ndarray:
        """The slot's WCC array, grown (×2 amortized) to index ``last_seg``."""
        wcc = self.wcc[slot]
        if last_seg >= wcc.size:
            grown = np.zeros(max(last_seg + 1, 2 * wcc.size), dtype=np.int64)
            grown[: wcc.size] = wcc
            self.wcc[slot] = wcc = grown
        return wcc

    def attach_tracer(
        self, tracer: Optional[Tracer], clock: Callable[[], float]
    ) -> None:
        """Emit bucket push/pop/rotate events on the ``queue`` track.

        ``clock`` supplies the simulated time in µs (the queue itself has
        no device reference; the ADDS solver wires it to
        ``device.now_us``)."""
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock

    def attach_checker(self, checker) -> None:
        """Route every protocol operation through a
        :class:`repro.check.ProtocolChecker` (or None to detach).

        The checker learns who performed each operation from the bound
        device's :meth:`~repro.gpu.device.Device.current_block_name`, so
        attach it via :meth:`ProtocolChecker.attach`, which wires both
        sides."""
        self._checker = checker

    def bind_device(self, device) -> None:
        """Wire capacity-channel notifications to ``device.notify``.

        Without a bound device the queue still works — capacity waiters
        just fall back to the engine's rescue rescan (tests exercising
        the queue standalone rely on this)."""
        self._device = device

    # ------------------------------------------------------------------ #
    # scheduling policy hooks (subclass responsibility)
    # ------------------------------------------------------------------ #

    def rel_of(self, slot: int) -> int:
        """Logical priority position of a physical slot (0 = head band)."""
        raise NotImplementedError

    def _is_tail_slot(self, slot: int) -> bool:
        """Whether a push into ``slot`` counts toward the Δ controller's
        tail-push fraction (its clip guard, §5.5)."""
        raise NotImplementedError

    def push_slots_list(self, vertices: np.ndarray, dists: np.ndarray) -> list:
        """Physical destination slot for each pushed item (hot WTB path)."""
        raise NotImplementedError

    def head_slots(self) -> Tuple[int, ...]:
        """Physical slots forming the current head (lowest-priority-band)
        group: kept pre-grown by the MTB allocator, and the unit of
        :meth:`rotate`."""
        raise NotImplementedError

    def assign_slots(self, active: int):
        """Physical slots the MTB scans for assignable work, highest
        priority first, given an active window of ``active`` bands."""
        raise NotImplementedError

    def seed_slot(self) -> int:
        """Physical slot that receives the distance-0 seed batch."""
        raise NotImplementedError

    def rotate(self) -> None:
        """Slide the priority window one Δ band forward, recycling the
        head slot group (§5.4).  Implementations recycle each head slot
        via :meth:`_recycle_slot` and then advance head/``base_dist``."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # priority-band mapping (shared; parameterized by ``_band_limit``)
    # ------------------------------------------------------------------ #

    def _clip_bands(self, raw: list) -> list:
        """Clamp raw band indices into ``[0, _band_limit]`` in place,
        counting clips — the one scalar clip rule shared by
        :meth:`rel_bands_for`'s single-item path and
        :meth:`rel_bands_list` (§5.5 / Figure 6(b): below-window clips
        to the head band, beyond-window clips to the tail band)."""
        limit = self._band_limit
        for i, r in enumerate(raw):
            r = int(r)
            if r < 0:
                self.low_clips += 1
                r = 0
            elif r > limit:
                self.high_clips += 1
                r = limit
            raw[i] = r
        return raw

    def rel_bands_for(self, dists: np.ndarray) -> np.ndarray:
        """Band index (0 = head) for each distance, with clipping.

        Below-window distances clip to the head band (work spawned for an
        already-rotated band, §5.4); beyond-window distances clip to the
        tail band (Figure 6(b)).  Clip counts feed the Δ controller.
        """
        limit = self._band_limit
        if dists.size == 1:
            # scalar path: one ufunc dispatch instead of three full-array
            # ones (the modal WTB push is one winner).  Must stay the
            # numpy kernel — its fmod-corrected floor division differs
            # from floor(a/b) at band boundaries.
            r = self._clip_bands(
                [np.floor_divide(dists.item() - self.base_dist, self.delta)]
            )[0]
            return np.array([r], dtype=np.int64)
        rel = np.floor_divide(dists - self.base_dist, self.delta).astype(np.int64)
        if 0 <= int(rel.min()) and int(rel.max()) <= limit:
            return rel  # common case: nothing clips
        # vectorized variant of the _clip_bands rule, same counts
        low = rel < 0
        high = rel > limit
        n_low = int(np.count_nonzero(low))
        n_high = int(np.count_nonzero(high))
        if n_low:
            self.low_clips += n_low
            rel[low] = 0
        if n_high:
            self.high_clips += n_high
            rel[high] = limit
        return rel

    def rel_bands_list(self, dists: np.ndarray) -> list:
        """:meth:`rel_bands_for` as a plain list (hot WTB push path).

        The WTB groups its pushes with scalar code, so handing it a list
        skips the int64 cast, the min/max early-out reduction and the
        clip masks of the array variant.  The division itself stays the
        ``np.floor_divide`` kernel (same boundary semantics); its float
        results are integral and far below 2**53, so ``int()`` on them
        is exact, and clips are counted per element exactly as the array
        variant counts them.
        """
        return self._clip_bands(
            np.floor_divide(dists - self.base_dist, self.delta).tolist()
        )

    # ------------------------------------------------------------------ #
    # writer (WTB) side
    # ------------------------------------------------------------------ #

    def reserve(self, slot: int, k: int) -> int:
        """Atomically reserve ``k`` slots; returns the starting index."""
        if k <= 0:
            raise ProtocolError("reserve of non-positive count")
        start = int(self.mem.atomic_add(self.resv, slot, k))
        self.total_pushed += k
        self.pushes_since_check += k
        if self._is_tail_slot(slot):
            self.tail_pushes_since_check += k
        if self._checker is not None:
            self._checker.on_reserve(slot, start, k)
        return start

    def capacity(self, slot: int) -> int:
        """Allocated capacity (virtual slots) of a bucket."""
        return self.storage[slot].capacity

    def ensure_capacity(self, slot: int, slots: int) -> int:
        """Grow a bucket's block table to ``slots`` (MTB allocator path).

        Returns blocks added; growth notifies the bucket's capacity wake
        channel so a WTB stalled on an unbacked reservation re-checks.
        """
        if self._checker is not None:
            self._checker.on_ensure_capacity(slot)
        added = self.storage[slot].ensure_capacity(slots)
        if added and self._device is not None:
            self._device.notify(self.cap_keys[slot])
        return added

    def publish(self, slot: int, start: int, vertices: np.ndarray, dists: np.ndarray) -> int:
        """Write reserved slots, fence, bump segment WCCs (§5.2 writer path).

        Returns the number of segments touched (for cost accounting).
        """
        k = int(vertices.size)
        if k == 0:
            return 0
        if self._checker is not None:
            # before the write: a publish outside the writer's own
            # reservation must fail before it corrupts storage
            self._checker.on_publish(slot, int(start), k)
        self.storage[slot].write_range(start, vertices, encode_dist(dists))
        self.mem.fence()  # items fully written before WCC increments
        ss = self.segment_size
        first = start // ss
        last = (start + k - 1) // ss
        wcc = self._wcc_through(slot, last)
        if first == last:
            old = self.mem.atomic_add(wcc, first, k)
            if old + k > ss:
                raise ProtocolError(
                    f"bucket {slot}: segment {first} WCC {old + k} exceeds N"
                )
        else:
            # contribution per touched segment: partial ends, full middle
            counts = np.full(last - first + 1, ss, dtype=np.int64)
            counts[0] = (first + 1) * ss - start
            counts[-1] = (start + k) - last * ss
            self.mem.atomic_add_batch(
                wcc, np.arange(first, last + 1), counts
            )
            seg_counts = wcc[first : last + 1]
            if int(seg_counts.max()) > ss:
                seg = first + int((seg_counts > ss).argmax())
                raise ProtocolError(
                    f"bucket {slot}: segment {seg} WCC {wcc[seg]} exceeds N"
                )
        if self._tracer.enabled:
            self._tracer.instant(
                "queue", "bucket_push", self._clock(), cat="queue",
                bucket=slot, rel=self.rel_of(slot), items=k,
            )
            self._tracer.counter(
                "queue_outstanding", self._clock(), self.outstanding()
            )
        return last - first + 1

    def complete(self, slot: int, k: int, epoch: int) -> None:
        """WTB finished ``k`` assigned items: bump the bucket's CWC.

        ``epoch`` is the bucket epoch captured at assignment time; a
        mismatch (bucket recycled meanwhile — unsafe rotation only) drops
        the per-bucket update but keeps the global completion count sound.
        """
        if k < 0:
            raise ProtocolError("negative completion count")
        if self._checker is not None:
            self._checker.on_complete(slot, k, epoch)
        self.mem.fence()  # spawned pushes visible before the CWC update
        if self.epoch.item(slot) == epoch:
            self.mem.atomic_add(self.cwc, slot, k)
        self.total_completed += k

    # ------------------------------------------------------------------ #
    # reader (MTB) side
    # ------------------------------------------------------------------ #

    def readable_upper(self, slot: int) -> Tuple[int, int]:
        """§5.2's readable-range computation.

        Returns ``(upper, segments_scanned)``: all slots in
        ``[read_ptr, upper)`` are guaranteed fully written.
        """
        r = self.read.item(slot)
        self.mem.fence()
        resv = self.resv.item(slot)
        if r >= resv:
            return r, 0
        ss = self.segment_size
        wcc = self.wcc[slot]
        seg0 = r // ss
        seg_end = -(-resv // ss)  # exclusive: ceil(resv / ss)
        # The leading run of fully-written segments is safe wholesale; a
        # reservation-only segment past the WCC array's extent counts 0.
        window = wcc[seg0 : min(seg_end, wcc.size)]
        if window.size:
            not_full = window != ss
            i = int(not_full.argmax())
            n_full = i if not_full[i] else int(window.size)
        else:
            n_full = 0
        scanned = n_full
        upper = max(r, (seg0 + n_full) * ss)
        if upper < resv:
            # partial segment: trust it only if WCC accounts for every
            # reservation made in it (re-read resv after a fence so the
            # comparison is not against a stale pointer)
            scanned += 1
            seg = seg0 + n_full
            count = wcc.item(seg) if seg < wcc.size else 0
            self.mem.fence()
            resv = self.resv.item(slot)
            if seg * ss + count == resv and resv > upper:
                upper = resv
        if upper > resv:
            raise ProtocolError(
                f"bucket {slot}: readable upper {upper} beyond resv {resv}"
            )
        if self._checker is not None:
            self._checker.on_readable_upper(slot, int(r), int(upper))
        return upper, scanned

    def advance_read(self, slot: int, upto: int) -> None:
        if upto < self.read[slot]:
            raise ProtocolError("read_ptr may not move backwards")
        if self._checker is not None:
            self._checker.on_advance_read(slot, int(upto))
        self.read[slot] = upto

    def read_items(self, slot: int, start: int, end: int) -> Tuple[np.ndarray, np.ndarray]:
        """Fetch items (vertices, distances) from a readable range."""
        if self._checker is not None:
            self._checker.on_read(slot, int(start), int(end))
        verts, bits = self.storage[slot].read_range(start, end)
        spb = self.storage[slot].slots_per_block
        for vb in range(start // spb, max(start, end - 1) // spb + 1):
            self.mtb_cache.access(vb)
        if self._tracer.enabled:
            self._tracer.instant(
                "queue", "bucket_pop", self._clock(), cat="queue",
                bucket=slot, rel=self.rel_of(slot), items=end - start,
            )
        return verts, decode_dist(bits)

    def bucket_drained(self, slot: int) -> bool:
        """Everything reserved has been read *and* completed."""
        resv = self.resv.item(slot)
        if self.read.item(slot) != resv:
            return False
        self.mem.fence()
        return self.cwc.item(slot) == self.resv.item(slot)

    def bucket_read_out(self, slot: int) -> bool:
        """Everything reserved has been read (completion not required)."""
        return self.read.item(slot) == self.resv.item(slot)

    def _recycle_slot(self, slot: int) -> None:
        """Guarded reset of one physical slot for reuse as a new band.

        Shared by every :meth:`rotate` implementation: checker first
        (it must see the pre-rotation counters to diagnose an unsafe
        rotation precisely), then the §5.4 guards, then the reset.
        """
        if self._checker is not None:
            self._checker.on_rotate(slot)
        if not self.bucket_read_out(slot):
            raise ProtocolError("rotation with unread work in the head bucket")
        if not self.config.unsafe_rotation and int(self.cwc[slot]) != int(self.resv[slot]):
            raise ProtocolError(
                "rotation before the head bucket's CWC matched resv_ptr"
            )
        # CWC may lag resv under unsafe rotation; the epoch bump reroutes
        # those late completions to the global counter only.
        self.storage[slot].reset()
        self.wcc[slot].fill(0)
        self.resv[slot] = 0
        self.read[slot] = 0
        self.cwc[slot] = 0
        self.epoch[slot] += 1

    def retire_read_blocks(self, slot: int) -> int:
        """Free whole blocks below both read_ptr and CWC (FIFO shrink)."""
        if self._checker is not None:
            self._checker.on_retire(slot)
        safe = min(self.read.item(slot), self.cwc.item(slot))
        return self.storage[slot].retire_below(safe)

    # ------------------------------------------------------------------ #
    # controller hooks
    # ------------------------------------------------------------------ #

    def set_delta(self, new_delta: float) -> None:
        if new_delta <= 0:
            raise ProtocolError("delta must stay positive")
        self.delta = float(new_delta)

    def reset_push_window(self) -> None:
        self.pushes_since_check = 0
        self.tail_pushes_since_check = 0

    def tail_push_fraction(self) -> float:
        if self.pushes_since_check == 0:
            return 0.0
        return self.tail_pushes_since_check / self.pushes_since_check

    def outstanding(self) -> int:
        """Items pushed but not yet completed (device-wide)."""
        return self.total_pushed - self.total_completed

    def snapshot(self) -> dict:
        """Debug/report view of the queue metadata."""
        return {
            "head": self.head,
            "base_dist": self.base_dist,
            "delta": self.delta,
            "rotations": self.rotations,
            "resv": self.resv.copy(),
            "read": self.read.copy(),
            "cwc": self.cwc.copy(),
            "total_pushed": self.total_pushed,
            "total_completed": self.total_completed,
            "pool_high_water": self.pool.high_water,
        }


# ---------------------------------------------------------------------- #
# registry (mirrors the SolverInfo pattern of repro.baselines.common)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class SchedulerInfo:
    """A registered scheduler implementation and its metadata."""

    name: str
    cls: Type[WorkScheduler]
    description: str = ""

    def create(
        self,
        mem: SimMemory,
        pool: GlobalPool,
        config: AddsConfig,
        *,
        initial_delta: float,
    ) -> WorkScheduler:
        """Instantiate the scheduler on a device's memory and pool."""
        return self.cls(mem, pool, config, initial_delta=initial_delta)


SCHEDULERS: Dict[str, SchedulerInfo] = {}


def register_scheduler(name: str, *, description: str = ""):
    """Class decorator registering a :class:`WorkScheduler` subclass."""

    def deco(cls: Type[WorkScheduler]) -> Type[WorkScheduler]:
        if name in SCHEDULERS:
            raise ValueError(f"scheduler {name!r} already registered")
        cls.name = name
        SCHEDULERS[name] = SchedulerInfo(name=name, cls=cls, description=description)
        return cls

    return deco


def _ensure_builtin_schedulers() -> None:
    """Import the built-in implementations so the registry is populated
    regardless of which repro module the caller entered through."""
    import repro.core.bucket_queue  # noqa: F401  (registers "bucket")
    import repro.core.mlmq  # noqa: F401  (registers "mlmq")


def get_scheduler_info(name: str) -> SchedulerInfo:
    """Look up a scheduler by registry name (raises :class:`SolverError`)."""
    _ensure_builtin_schedulers()
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise SolverError(
            f"unknown scheduler {name!r}; available: "
            + ", ".join(sorted(SCHEDULERS))
        ) from None


def scheduler_names() -> Tuple[str, ...]:
    """All registered scheduler names, sorted."""
    _ensure_builtin_schedulers()
    return tuple(sorted(SCHEDULERS))
