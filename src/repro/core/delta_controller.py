"""§5.5: run-time Δ selection.

The controller is a feedback loop the MTB consults on every management
pass:

- **utilization band** — the MTB monitors "the number of work items that
  it currently has assigned at any time", here measured in in-flight
  *edges* (items × average degree, which is what occupies hardware
  threads), and keeps it between ``util_low`` and ``util_high`` times the
  device's thread count.  The degree term is the paper's "correlating the
  number of threads with the average degree of the input graph": for
  low-degree graphs more items are needed to cover the same thread count
  and the band widens accordingly.
- **clip guard** — below a lower bound, shrinking Δ only *clips* vertices
  into the tail bucket (Figure 6(b)); the empirical signal is "the tail
  bucket contains at least 65 % of the total number of assigned work
  items", in which case Δ must grow regardless of utilization.
- **settling** — Δ changes are spaced by a fixed number of *head-bucket
  switches* (rotations), which naturally scales the wait with Δ itself
  ("the number of work items in each bucket is proportional to the Δ
  value, [so] the settling time scales naturally").
- **fine-grained mechanism** — between Δ changes, the number of
  high-priority buckets the MTB assigns from is adjusted immediately:
  one more bucket when starved, one fewer when oversubscribed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.config import AddsConfig
from repro.gpu.specs import DeviceSpec
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["DeltaController"]


@dataclass
class DeltaController:
    """The MTB's Δ/active-bucket policy (pure logic, no device access)."""

    config: AddsConfig
    spec: DeviceSpec
    avg_degree: float
    delta: float
    #: hard lower bound on Δ (see AddsConfig.delta_floor)
    delta_floor: float = 1e-9
    active_buckets: int = 1
    rotations_at_last_change: int = 0
    passes_since_change: int = 0
    passes_total: int = 0
    util_ewma: float = 0.0
    adjustments: int = 0
    #: utilization recorded when the last *growth* was applied, or None.
    #: Used to detect a growth plateau: if doubling Δ did not materially
    #: raise utilization, the graph simply has no more parallelism to
    #: expose and further growth would only degenerate toward
    #: Bellman-Ford — the failure §6.4 credits ADDS with avoiding
    #: ("not letting the behavior degenerate into a Bellman-Ford
    #: solution").
    util_at_growth: Optional[float] = None
    growth_frozen: bool = False
    history: List[Tuple[int, float]] = field(default_factory=list)
    #: observability hooks (see attach_tracer); excluded from comparisons
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)
    clock: Callable[[], float] = field(
        default=lambda: 0.0, repr=False, compare=False
    )

    def attach_tracer(
        self, tracer: Optional[Tracer], clock: Callable[[], float]
    ) -> None:
        """Emit a ``delta_retune`` instant for every applied Δ change."""
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.clock = clock

    def __post_init__(self) -> None:
        self.active_buckets = max(
            self.config.min_active_buckets,
            min(self.config.max_active_buckets, self.active_buckets),
        )
        self.history.append((0, self.delta))

    def observe(self, inflight_edges: float) -> None:
        """One MTB pass worth of utilization signal (EWMA-smoothed)."""
        a = self.config.ewma_alpha
        self.util_ewma = a * float(inflight_edges) + (1 - a) * self.util_ewma
        self.passes_since_change += 1
        self.passes_total += 1

    # -- utilization targets ------------------------------------------------ #

    def target_edges(self) -> float:
        """Edges in flight that mean 'hardware fully utilized'.

        One edge relaxation occupies roughly one thread, but low-degree
        graphs scatter their accesses (divergence) and need proportionally
        fewer in-flight edges to exhaust the memory system — the same
        degree correction the cost model's traffic term applies.
        """
        d = max(self.avg_degree, 1.0)
        divergence = 1.0 + 8.0 / d  # mirrors CostModel.coalesce_penalty
        return self.spec.total_threads / divergence

    def utilization(self, inflight_edges: float) -> float:
        return inflight_edges / max(self.target_edges(), 1.0)

    # -- per-pass decisions ---------------------------------------------------- #

    def adjust_active_buckets(self) -> int:
        """High-frequency knob: widen/narrow the assignable bucket window."""
        u = self.utilization(self.util_ewma)
        if u < self.config.util_low and self.active_buckets < self.config.max_active_buckets:
            self.active_buckets += 1
        elif u > self.config.util_high and self.active_buckets > self.config.min_active_buckets:
            self.active_buckets -= 1
        return self.active_buckets

    def settled(self, rotations: int) -> bool:
        """Has the system had time to absorb the last Δ change?

        The paper's criterion is head-bucket switches; the pass-count
        fallback covers executions that barely rotate (config docstring).
        A warm-up window suppresses reactions to the ramp-up transient.
        """
        if self.passes_total < self.config.warmup_passes:
            return False
        return (
            rotations - self.rotations_at_last_change >= self.config.settle_switches
            or self.passes_since_change >= self.config.settle_passes
        )

    def maybe_adjust_delta(self, tail_fraction: float, rotations: int) -> float:
        """Low-frequency knob: grow/shrink Δ once the system has settled.

        Returns the (possibly updated) Δ; the caller applies it to the
        queue and resets the push window on change.
        """
        if not self.config.dynamic_delta:
            return self.delta
        if not self.settled(rotations):
            return self.delta

        g = self.config.delta_growth
        u = self.utilization(self.util_ewma)
        if tail_fraction >= self.config.clip_fraction:
            # clip guard: Δ is below the clipping bound, grow regardless
            self.growth_frozen = False
            self._grow(rotations, g)
        elif u < self.config.util_low:
            # starved even with extra buckets open: coarsen for parallelism
            if self.util_at_growth is not None and not self.growth_frozen:
                # the previous growth has settled; did it help?  A zero
                # baseline (growth applied before any work was in flight)
                # can't answer that — any u satisfies ``u <= 0 * 1.25``
                # only vacuously at u == 0, and freezing on it would lock
                # Δ at its startup value forever.
                baseline = self.utilization(self.util_at_growth)
                if baseline > 0.0 and u <= baseline * 1.25:
                    # No: this graph has no more parallelism to expose.
                    # Revert the wasted growth (it only relaxed ordering)
                    # and freeze — the paper's "avoid overshooting the
                    # optimum setting".
                    self.growth_frozen = True
                    self.util_at_growth = None
                    self._change(rotations, self.delta / g)
            if not self.growth_frozen:
                self._grow(rotations, g)
        elif u > self.config.util_high:
            # saturated: refine for work efficiency (never below the clip
            # bound; the guard above pushes back if this overshoots).  The
            # active-bucket knob keeps damping short fluctuations on its
            # own; persistent saturation through a whole settling period
            # means Δ itself is too coarse.
            self.growth_frozen = False
            self.util_at_growth = None
            self._change(rotations, self.delta / g)
        return self.delta

    def _grow(self, rotations: int, g: float) -> None:
        self.util_at_growth = self.util_ewma
        self._change(rotations, self.delta * g)

    def _change(self, rotations: int, new_delta: float) -> None:
        new_delta = max(new_delta, self.delta_floor)
        if new_delta != self.delta:
            if self.tracer.enabled:
                self.tracer.instant(
                    "controller", "delta_retune", self.clock(), cat="delta",
                    old=self.delta, new=new_delta, rotations=rotations,
                    utilization=self.utilization(self.util_ewma),
                    frozen=self.growth_frozen,
                )
            self.delta = new_delta
            self.rotations_at_last_change = rotations
            self.passes_since_change = 0
            self.adjustments += 1
            self.history.append((rotations, new_delta))
