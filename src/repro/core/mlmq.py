"""MLMQ: a multi-level multi-queue scheduler behind the WorkScheduler API.

The Multi-Level-Multi-Queue design (arXiv:2602.10080) is a direct
successor to ADDS' single circular bucket queue.  Instead of one queue
per Δ-band it keeps

- **level 0**: ``l0_bands`` fine Δ-bands, each backed by
  ``queues_per_band`` independent queues.  Writers spread same-band
  pushes across the band's queues (by vertex id here, a stand-in for
  the paper's per-SM queue affinity), cutting reservation contention on
  the hot head band; the manager drains a band's queues as one priority
  class.
- **level 1**: ``l1_bands`` coarse far-bands, each ``coarse_ratio`` Δ
  wide, one queue per band.  Far work lands here with only coarse
  ordering and is scanned at the lowest priority (workers reach it only
  when the fine window has nothing left to hand out), exactly the
  role of the far pile in near-far Δ-stepping.

Coarse bands are mapped relative to the *sliding* window base at push
time and their physical slots are never recycled: a coarse item may
therefore be relaxed "late", after the fine window has slid past its
band.  That costs only extra work, never correctness — ADDS is
label-correcting, so out-of-priority relaxations are re-checked against
the distance array — and it keeps every slot under the unmodified SRMW
resv/WCC/read/CWC protocol (storage is still reclaimed FIFO through
``retire_read_blocks``).  Final distances are bit-identical to the
bucket scheduler's; only the work schedule differs.  The PR 5 protocol
checker and schedule fuzzer run against it unchanged
(``repro check --scheduler mlmq``).

Physical slot layout (``n_buckets = l0_bands * queues_per_band + l1_bands``)::

    [band0 q0][band0 q1][band1 q0][band1 q1]...[band15 q1] [coarse0]...[coarse7]
     `-- level 0: circular in units of whole bands --'      `-- level 1: fixed --'

``rotate()`` recycles *all* queues of the head fine band at once and
advances ``base_dist`` by one Δ, so the MTB's rotation guards (read-out
+ CWC match) apply per physical slot just as for the bucket queue.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import AddsConfig
from repro.core.scheduler import WorkScheduler, register_scheduler
from repro.gpu.memory import GlobalPool, SimMemory

__all__ = ["MLMQScheduler"]


@register_scheduler(
    "mlmq",
    description=(
        "multi-level multi-queue (arXiv:2602.10080): 16 fine Δ-bands × 2 "
        "queues + 8 coarse 4Δ far-bands"
    ),
)
class MLMQScheduler(WorkScheduler):
    """Two-level queue array: fine multi-queue window over a coarse far pile."""

    #: fine Δ-bands in the level-0 window
    l0_bands = 16
    #: independent queues per fine band (the "multi-queue" axis)
    queues_per_band = 2
    #: coarse far-bands at level 1
    l1_bands = 8
    #: width of one coarse band, in units of Δ
    coarse_ratio = 4

    def __init__(
        self,
        mem: SimMemory,
        pool: GlobalPool,
        config: AddsConfig,
        *,
        initial_delta: float,
    ) -> None:
        n_slots = self.l0_bands * self.queues_per_band + self.l1_bands
        super().__init__(
            mem, pool, config, initial_delta=initial_delta, n_slots=n_slots,
        )
        # bands l0_bands .. l0_bands + l1_bands*coarse_ratio - 1 are the
        # coarse window; anything farther clips into the last coarse band
        self._band_limit = self.l0_bands + self.l1_bands * self.coarse_ratio - 1
        self._coarse_base = self.l0_bands * self.queues_per_band
        # ``head`` (from the base class) is the circular index of the
        # current head *fine band*; one rotation slides one fine band
        self.max_rotate_burst = self.l0_bands - 1

    # ------------------------------------------------------------------ #
    # band → physical slot mapping
    # ------------------------------------------------------------------ #

    def _slot_of_band(self, rel: int, vertex: int) -> int:
        qpb = self.queues_per_band
        if rel < self.l0_bands:
            band = (self.head + rel) % self.l0_bands
            return band * qpb + vertex % qpb
        return self._coarse_base + (rel - self.l0_bands) // self.coarse_ratio

    def rel_of(self, slot: int) -> int:
        if slot < self._coarse_base:
            return (slot // self.queues_per_band - self.head) % self.l0_bands
        return self.l0_bands + (slot - self._coarse_base) * self.coarse_ratio

    def _is_tail_slot(self, slot: int) -> bool:
        # high clips land in the last coarse band: that slot drives the
        # Δ controller's clip guard, like the tail bucket does for the
        # bucket queue
        return slot == self.n_buckets - 1

    def push_slots_list(self, vertices: np.ndarray, dists: np.ndarray) -> list:
        out = self.rel_bands_list(dists)
        verts = vertices.tolist()
        for i, r in enumerate(out):
            out[i] = self._slot_of_band(r, verts[i])
        return out

    def head_slots(self):
        base = self.head * self.queues_per_band
        return tuple(range(base, base + self.queues_per_band))

    def assign_slots(self, active: int):
        qpb = self.queues_per_band
        l0 = self.l0_bands
        head = self.head
        out = []
        for rel in range(min(active, l0)):
            base = ((head + rel) % l0) * qpb
            out.extend(range(base, base + qpb))
        # coarse far-bands last: scanned only while idle workers remain
        # after the fine window was handed out
        out.extend(range(self._coarse_base, self._coarse_base + self.l1_bands))
        return tuple(out)

    def seed_slot(self) -> int:
        return self.head * self.queues_per_band

    def rotate(self) -> None:
        """Recycle every queue of the head fine band; slide the window Δ."""
        base = self.head * self.queues_per_band
        for slot in range(base, base + self.queues_per_band):
            self._recycle_slot(slot)
        self.head = (self.head + 1) % self.l0_bands
        self.base_dist += self.delta
        self.rotations += 1
        if self._tracer.enabled:
            self._tracer.instant(
                "queue", "rotate", self._clock(), cat="queue",
                new_head=self.head, base_dist=self.base_dist,
                rotation=self.rotations,
            )
