"""ADDS — Asynchronous Dynamic Delta-Stepping (the paper's contribution).

The pieces map one-to-one onto §5 of the paper:

======================= ====================================================
module                  paper section
======================= ====================================================
``config``              tunables + the Table 5 ablation switches
``block_alloc``         §5.3 memory management: FIFO block allocator,
                        16/16-bit index split, translation caches
``scheduler``           the ``WorkScheduler`` plugin API: the SRMW slot
                        machinery shared by every queue design, plus the
                        ``SCHEDULERS`` registry (docs/scheduling.md)
``bucket_queue``        §5.2/§5.4: the circular 32-bucket priority queue,
                        ``resv_ptr`` / segment ``WCC`` / ``read_ptr`` /
                        ``CWC`` protocol, rotation, clipping
``mlmq``                the multi-level multi-queue rival scheduler
                        (arXiv:2602.10080) behind the same API
``delta_controller``    §5.5: run-time Δ selection (utilization band, clip
                        guard, settling in head-bucket switches, dynamic
                        active-bucket count)
``wtb``                 §5.1: worker thread block — poll AF, expand,
                        atomic-min, push, complete
``mtb``                 §5.1/§5.4: manager thread block — allocate, scan,
                        assign, rotate, terminate after two empty sweeps
``adds``                the solver assembling all of it on a Device
======================= ====================================================
"""

from repro.core.adds import solve_adds
from repro.core.bucket_queue import BucketQueue
from repro.core.config import AddsConfig
from repro.core.mlmq import MLMQScheduler
from repro.core.scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    SchedulerInfo,
    WorkScheduler,
    get_scheduler_info,
    register_scheduler,
    scheduler_names,
)

__all__ = [
    "solve_adds",
    "AddsConfig",
    "WorkScheduler",
    "BucketQueue",
    "MLMQScheduler",
    "SchedulerInfo",
    "SCHEDULERS",
    "DEFAULT_SCHEDULER",
    "register_scheduler",
    "get_scheduler_info",
    "scheduler_names",
]
