"""§5.3 memory management: the FIFO block allocator behind each bucket.

The paper: "memory for a bucket is allocated in blocks of 64K 32-bit
words.  An array of pointers to allocated blocks is maintained for each
bucket.  The high order 16 bits of each 32 bit index are treated as an
index into the pointer array, and the lower order 16 bits are an offset
into the particular block. ... Because the memory blocks are always part
of a FIFO queue, they are read and written in a monotonically increasing
order, so management is much simpler than for a general purpose memory
allocator."

:class:`BucketStorage` realizes that design over the shared
:class:`~repro.gpu.memory.GlobalPool` arena:

- a *virtual index* (the paper's 32-bit index) splits into
  ``(index // slots_per_block, index % slots_per_block)`` — the pointer-
  array index and in-block offset (the 16/16 split, generalized to the
  configured block size);
- the pointer array maps virtual block numbers to pool blocks; it only
  grows at the tail (:meth:`ensure_capacity`, called by the MTB) and only
  shrinks at the head (:meth:`retire_below`, as ``read_ptr``/``CWC`` move
  past a block) — the FIFO property;
- :class:`TranslationCache` models the scratchpad direct-mapped caches
  that spare most accesses the extra indirection ("keeping direct-mapped
  translation caches for each WTB and for the MTB in scratchpad").

All allocation is driven by the MTB; workers that have reserved slots not
yet backed by a block wait (see :mod:`repro.core.wtb`), which is the
simulator's rendering of "all memory management is performed by the MTB,
freeing WTBs from dealing with this task."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import AllocationError, ProtocolError
from repro.gpu.memory import GlobalPool

__all__ = ["BucketStorage", "TranslationCache"]


class TranslationCache:
    """A direct-mapped virtual-block → pool-block cache (scratchpad).

    The tag is the virtual block number (the paper's "high order 16 bits
    ... treated as a tag for the cached block at that index").  Only hit
    accounting lives here; correctness always goes through the pointer
    array.
    """

    def __init__(self, n_sets: int = 8) -> None:
        if n_sets < 1:
            raise AllocationError("cache needs at least one set")
        self.n_sets = n_sets
        self._tags: List[Optional[int]] = [None] * n_sets
        self.hits = 0
        self.misses = 0

    def access(self, vblock: int) -> bool:
        """Touch ``vblock``; returns True on hit."""
        s = vblock % self.n_sets
        if self._tags[s] == vblock:
            self.hits += 1
            return True
        self._tags[s] = vblock
        self.misses += 1
        return False

    def invalidate(self) -> None:
        self._tags = [None] * self.n_sets


class BucketStorage:
    """The paper's per-bucket block-allocated circular array.

    Slots hold ``(vertex, payload)`` int64 pairs; virtual indices are
    monotonically increasing (a reset on bucket rotation starts a fresh
    epoch, which is how the simulator renders the 32-bit wraparound).
    """

    def __init__(self, pool: GlobalPool, slots_per_block: int, name: str = "") -> None:
        if slots_per_block < 1:
            raise AllocationError("slots_per_block must be positive")
        if slots_per_block > pool.words_per_block:
            raise AllocationError(
                f"slots_per_block {slots_per_block} exceeds pool block size "
                f"{pool.words_per_block}"
            )
        self.pool = pool
        self.slots_per_block = int(slots_per_block)
        self.name = name
        # pointer array: virtual block number -> pool block id
        self._table: Dict[int, int] = {}
        self._first_vblock = 0  # oldest still-mapped virtual block
        self._next_vblock = 0  # next virtual block to allocate
        self.blocks_allocated = 0
        self.blocks_retired = 0

    # -- capacity management (MTB only) ------------------------------------ #

    @property
    def capacity(self) -> int:
        """First virtual slot index *not* backed by an allocated block."""
        return self._next_vblock * self.slots_per_block

    @property
    def live_blocks(self) -> int:
        return len(self._table)

    def ensure_capacity(self, slots: int) -> int:
        """Allocate blocks until ``capacity >= slots``; returns blocks added."""
        added = 0
        while self.capacity < slots:
            self._table[self._next_vblock] = self.pool.acquire()
            self._next_vblock += 1
            self.blocks_allocated += 1
            added += 1
        return added

    def retire_below(self, index: int) -> int:
        """Free whole blocks strictly below virtual slot ``index``.

        FIFO shrink: callers guarantee no live data below ``index``
        (``read_ptr`` and ``CWC`` have both passed it).
        """
        retired = 0
        while (self._first_vblock + 1) * self.slots_per_block <= index:
            blk = self._table.pop(self._first_vblock, None)
            if blk is None:
                raise ProtocolError(
                    f"bucket {self.name}: retire of unmapped block "
                    f"{self._first_vblock}"
                )
            self.pool.release(blk)
            self._first_vblock += 1
            self.blocks_retired += 1
            retired += 1
        return retired

    def reset(self) -> None:
        """Free everything (bucket rotation starts a fresh epoch)."""
        for blk in self._table.values():
            self.pool.release(blk)
        self._table.clear()
        self._first_vblock = 0
        self._next_vblock = 0

    # -- slot access ---------------------------------------------------------- #

    def _locate(self, index: int) -> Tuple[int, int]:
        vblock, off = divmod(index, self.slots_per_block)
        blk = self._table.get(vblock)
        if blk is None:
            raise ProtocolError(
                f"bucket {self.name}: access to unallocated slot {index} "
                f"(vblock {vblock}; mapped {sorted(self._table)})"
            )
        return blk, off

    def write_slot(self, index: int, vertex: int, payload: int) -> None:
        blk, off = self._locate(index)
        self.pool.storage[blk, off, 0] = vertex
        self.pool.storage[blk, off, 1] = payload

    def write_range(self, start: int, vertices: np.ndarray, payloads: np.ndarray) -> None:
        """Write ``len(vertices)`` consecutive slots starting at ``start``."""
        k = int(vertices.size)
        if k == 0:
            return
        if start + k > self.capacity or start < self._first_vblock * self.slots_per_block:
            raise ProtocolError(
                f"bucket {self.name}: write [{start}, {start + k}) outside "
                f"allocated range"
            )
        vblock, off = divmod(start, self.slots_per_block)
        if off + k <= self.slots_per_block:
            # common case: the whole range lands in one block
            blkstore = self.pool.storage[self._table[vblock]]
            blkstore[off : off + k, 0] = vertices
            blkstore[off : off + k, 1] = payloads
            return
        pos = 0
        idx = start
        while pos < k:
            vblock, off = divmod(idx, self.slots_per_block)
            blk = self._table[vblock]
            take = min(k - pos, self.slots_per_block - off)
            self.pool.storage[blk, off : off + take, 0] = vertices[pos : pos + take]
            self.pool.storage[blk, off : off + take, 1] = payloads[pos : pos + take]
            pos += take
            idx += take

    def read_range(self, start: int, end: int) -> Tuple[np.ndarray, np.ndarray]:
        """Gather slots ``[start, end)`` → ``(vertices, payloads)``."""
        k = end - start
        if k <= 0:
            e = np.empty(0, dtype=np.int64)
            return e, e.copy()
        vblock, off = divmod(start, self.slots_per_block)
        if off + k <= self.slots_per_block:
            blk = self._table.get(vblock)
            if blk is None:
                raise ProtocolError(
                    f"bucket {self.name}: read of unallocated slot {start}"
                )
            blkstore = self.pool.storage[blk]
            return (
                blkstore[off : off + k, 0].copy(),
                blkstore[off : off + k, 1].copy(),
            )
        verts = np.empty(k, dtype=np.int64)
        pays = np.empty(k, dtype=np.int64)
        pos = 0
        idx = start
        while pos < k:
            vblock, off = divmod(idx, self.slots_per_block)
            blk = self._table.get(vblock)
            if blk is None:
                raise ProtocolError(
                    f"bucket {self.name}: read of unallocated slot {idx}"
                )
            take = min(k - pos, self.slots_per_block - off)
            verts[pos : pos + take] = self.pool.storage[blk, off : off + take, 0]
            pays[pos : pos + take] = self.pool.storage[blk, off : off + take, 1]
            pos += take
            idx += take
        return verts, pays
