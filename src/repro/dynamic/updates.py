"""The edge-update stream model: batches of weight/topology changes.

Real serving traffic against road and social graphs is dominated by
small edge updates — a road closes, a congestion weight rises, a link
appears.  ROADMAP item 2 ("dynamic graphs and incremental SSSP") models
that traffic as a stream of :class:`UpdateBatch`\\ es, each a short
ordered list of :class:`EdgeUpdate`\\ s of four kinds:

``increase`` / ``decrease``
    Change the weight of an existing edge (strictly up / strictly down;
    the split kinds make intent explicit and let validation catch
    generator and caller bugs early).
``insert`` / ``delete``
    Add a new edge / remove an existing one — **topology** changes,
    which force a CSR rebuild (CSR has no spare room in a row).

:func:`apply_updates` applies one batch to a :class:`~repro.graphs.csr.
CSRGraph`:

- a weight-only batch **patches in place**: ``graph.weights`` and, when
  the graph was prepared (:meth:`~repro.graphs.csr.CSRGraph.prepare`),
  the float64 twin ``w64`` — the adjacency cache's weight slices are
  views into ``w64``, so they update for free.  The weight statistics
  (``avg_weight``/``max_weight``) feeding the Δ heuristic are dropped
  from the stats cache.  The same graph object is returned.
- a batch containing any ``insert``/``delete`` **rebuilds** the CSR
  arrays and returns a *new* (unprepared) graph; the stale
  ``PreparedArrays`` die with the old object.

Either way the result carries an :class:`EdgeDeltas` record — the net
per-edge ``(old weight, new weight)`` deltas versus the pre-batch graph
— which is exactly what the incremental re-solve path
(:mod:`repro.dynamic.frontier`) needs to invalidate and re-seed.
Updates within a batch apply **sequentially** (a later update sees the
effect of an earlier one), so an increase followed by a decrease back to
the original weight nets out to an empty delta set — the idempotent
case the dirty-frontier rule turns into a zero-work re-solve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DynamicError
from repro.graphs.csr import CSRGraph, from_edge_list

__all__ = [
    "UPDATE_KINDS",
    "EdgeUpdate",
    "UpdateBatch",
    "EdgeDeltas",
    "UpdateResult",
    "apply_updates",
]

#: The four update kinds, in the order the docs present them.
UPDATE_KINDS = ("increase", "decrease", "insert", "delete")

_WEIGHT_KINDS = ("increase", "decrease", "insert")


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge change.  ``weight`` is the *new* weight for
    ``increase``/``decrease``/``insert`` and must be ``None`` for
    ``delete``."""

    kind: str
    src: int
    dst: int
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in UPDATE_KINDS:
            raise DynamicError(
                f"unknown update kind {self.kind!r}; one of {UPDATE_KINDS}"
            )
        if self.kind in _WEIGHT_KINDS:
            if self.weight is None:
                raise DynamicError(f"{self.kind} update needs a weight")
            if not np.isfinite(self.weight) or self.weight < 0:
                raise DynamicError(
                    f"{self.kind} weight must be finite and non-negative "
                    f"(got {self.weight!r})"
                )
        elif self.weight is not None:
            raise DynamicError("delete update takes no weight")


@dataclass(frozen=True)
class UpdateBatch:
    """An ordered batch of edge updates, applied atomically to a graph.

    Batches are the unit of application, invalidation, and incremental
    re-solve: queries observe the graph either before or after a batch,
    never mid-batch.
    """

    updates: Tuple[EdgeUpdate, ...]

    def __init__(self, updates: Iterable[EdgeUpdate]) -> None:
        object.__setattr__(self, "updates", tuple(updates))
        for u in self.updates:
            if not isinstance(u, EdgeUpdate):
                raise DynamicError(f"not an EdgeUpdate: {u!r}")

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self):
        return iter(self.updates)

    @property
    def topology_changing(self) -> bool:
        """Whether applying this batch requires a CSR rebuild."""
        return any(u.kind in ("insert", "delete") for u in self.updates)

    def kind_counts(self) -> Dict[str, int]:
        out = {k: 0 for k in UPDATE_KINDS}
        for u in self.updates:
            out[u.kind] += 1
        return out


@dataclass(frozen=True)
class EdgeDeltas:
    """Net per-edge weight deltas of one or more applied batches.

    Parallel arrays: edge ``(src[i], dst[i])`` had weight ``old_w[i]``
    before the batch (``nan`` = the edge did not exist) and ``new_w[i]``
    after it (``nan`` = the edge was deleted).  Edges whose net change
    is zero are not recorded.  This is the currency the dirty-frontier
    computation and the cache-invalidation test consume.
    """

    src: np.ndarray
    dst: np.ndarray
    old_w: np.ndarray
    new_w: np.ndarray

    @property
    def size(self) -> int:
        return int(self.src.size)

    @staticmethod
    def empty() -> "EdgeDeltas":
        e = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return EdgeDeltas(src=e, dst=e.copy(), old_w=f, new_w=f.copy())

    @staticmethod
    def from_map(
        deltas: Dict[Tuple[int, int], Tuple[float, float]]
    ) -> "EdgeDeltas":
        """Build from ``(u, v) -> (old, new)`` (``nan`` = absent),
        dropping net no-ops and sorting by ``(u, v)`` for determinism."""
        items = [
            (u, v, o, w)
            for (u, v), (o, w) in sorted(deltas.items())
            if not (np.isnan(o) and np.isnan(w)) and o != w
        ]
        if not items:
            return EdgeDeltas.empty()
        arr = np.asarray(items, dtype=np.float64)
        return EdgeDeltas(
            src=arr[:, 0].astype(np.int64),
            dst=arr[:, 1].astype(np.int64),
            old_w=arr[:, 2].copy(),
            new_w=arr[:, 3].copy(),
        )

    def merge(self, later: "EdgeDeltas") -> "EdgeDeltas":
        """Compose with deltas applied *after* these (``self`` then
        ``later``): keeps each edge's earliest old weight and latest new
        weight, so a warm distance array from before ``self`` can still
        be re-seeded correctly after both."""
        merged: Dict[Tuple[int, int], Tuple[float, float]] = {}
        for i in range(self.size):
            key = (int(self.src[i]), int(self.dst[i]))
            merged[key] = (float(self.old_w[i]), float(self.new_w[i]))
        for i in range(later.size):
            key = (int(later.src[i]), int(later.dst[i]))
            new = float(later.new_w[i])
            if key in merged:
                old = merged[key][0]
                if math.isnan(old) and math.isnan(new):
                    # Insert-then-delete across batches annihilates: the
                    # edge was absent before ``self`` and is absent after
                    # ``later``, so the composed delta must vanish —
                    # resolving to the stale inserted weight (or keeping
                    # a nan→nan pair for ``from_map`` to interpret) would
                    # poison warm re-seeding.
                    del merged[key]
                else:
                    merged[key] = (old, new)
            else:
                merged[key] = (float(later.old_w[i]), new)
        return EdgeDeltas.from_map(merged)


@dataclass(frozen=True)
class UpdateResult:
    """What :func:`apply_updates` returns."""

    #: The post-batch graph: the *same* object for weight-only batches
    #: (patched in place), a fresh unprepared one after a CSR rebuild.
    graph: CSRGraph
    #: Net per-edge deltas versus the pre-batch graph.
    deltas: EdgeDeltas
    #: Whether the CSR was rebuilt (insert/delete present).
    topology_changed: bool
    #: How many updates the batch carried.
    n_updates: int = 0


def _find_edge(graph: CSRGraph, u: int, v: int) -> int:
    """Position of edge ``(u, v)`` in the CSR arrays, or -1.  Parallel
    edges resolve to the first occurrence (updates address that copy)."""
    lo, hi = int(graph.row_offsets[u]), int(graph.row_offsets[u + 1])
    hits = np.flatnonzero(graph.col_indices[lo:hi] == v)
    return lo + int(hits[0]) if hits.size else -1


def _check_vertex(n: int, u: EdgeUpdate) -> None:
    if not (0 <= u.src < n and 0 <= u.dst < n):
        raise DynamicError(
            f"{u.kind} ({u.src}->{u.dst}) out of range for {n} vertices"
        )


def _coerce_weight(graph: CSRGraph, u: EdgeUpdate) -> float:
    w = float(u.weight)
    if graph.is_integer_weighted and not w.is_integer():
        raise DynamicError(
            f"{u.kind} ({u.src}->{u.dst}): weight {w!r} is not integral "
            f"but {graph.name!r} has int32 weights"
        )
    return w


def _apply_weight_only(graph: CSRGraph, batch: UpdateBatch) -> UpdateResult:
    # Two passes so a bad update rejects the whole batch before any
    # mutation: first validate sequentially against an overlay of
    # pending values, then patch the arrays.
    deltas: Dict[Tuple[int, int], Tuple[float, float]] = {}
    pending: Dict[int, float] = {}  # CSR position -> new weight
    for u in batch:
        _check_vertex(graph.num_vertices, u)
        pos = _find_edge(graph, u.src, u.dst)
        if pos < 0:
            raise DynamicError(
                f"{u.kind} ({u.src}->{u.dst}): no such edge in {graph.name!r}"
            )
        old = pending.get(pos, float(graph.weights[pos]))
        new = _coerce_weight(graph, u)
        if u.kind == "increase" and not new > old:
            raise DynamicError(
                f"increase ({u.src}->{u.dst}): new weight {new!r} is not "
                f"above the current {old!r}"
            )
        if u.kind == "decrease" and not new < old:
            raise DynamicError(
                f"decrease ({u.src}->{u.dst}): new weight {new!r} is not "
                f"below the current {old!r}"
            )
        pending[pos] = new
        key = (u.src, u.dst)
        first_old = deltas[key][0] if key in deltas else old
        deltas[key] = (first_old, new)

    prep = graph.prepared()
    for pos, new in pending.items():
        graph.weights[pos] = new
        if prep is not None:
            prep.w64[pos] = new
    # weight statistics feeding the Δ heuristic are stale now
    graph._stats_cache.pop("avg_weight", None)
    graph._stats_cache.pop("max_weight", None)
    return UpdateResult(
        graph=graph,
        deltas=EdgeDeltas.from_map(deltas),
        topology_changed=False,
        n_updates=len(batch),
    )


def _apply_rebuild(graph: CSRGraph, batch: UpdateBatch) -> UpdateResult:
    n = graph.num_vertices
    esrc = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph.row_offsets)
    )
    edst = graph.col_indices.astype(np.int64)
    ew = graph.weights.astype(np.float64)
    alive = np.ones(edst.size, dtype=bool)
    extra: List[List[float]] = []  # [src, dst, weight, alive]

    def find(u: int, v: int) -> Tuple[int, int]:
        """(where, index): where 0 = base arrays, 1 = extra, -1 = absent."""
        pos = _find_edge(graph, u, v)
        if pos >= 0 and alive[pos]:
            return 0, pos
        for i, e in enumerate(extra):
            if e[3] and int(e[0]) == u and int(e[1]) == v:
                return 1, i
        return -1, -1

    deltas: Dict[Tuple[int, int], Tuple[float, float]] = {}

    def record(u: int, v: int, old: float, new: float) -> None:
        key = (u, v)
        first_old = deltas[key][0] if key in deltas else old
        deltas[key] = (first_old, new)

    for u in batch:
        _check_vertex(n, u)
        where, idx = find(u.src, u.dst)
        if u.kind == "insert":
            if where >= 0:
                raise DynamicError(
                    f"insert ({u.src}->{u.dst}): edge already exists in "
                    f"{graph.name!r}; use increase/decrease"
                )
            new = _coerce_weight(graph, u)
            extra.append([float(u.src), float(u.dst), new, 1.0])
            record(u.src, u.dst, np.nan, new)
            continue
        if where < 0:
            raise DynamicError(
                f"{u.kind} ({u.src}->{u.dst}): no such edge in {graph.name!r}"
            )
        old = float(ew[idx]) if where == 0 else float(extra[idx][2])
        if u.kind == "delete":
            if where == 0:
                alive[idx] = False
            else:
                extra[idx][3] = 0.0
            record(u.src, u.dst, old, np.nan)
            continue
        new = _coerce_weight(graph, u)
        if u.kind == "increase" and not new > old:
            raise DynamicError(
                f"increase ({u.src}->{u.dst}): new weight {new!r} is not "
                f"above the current {old!r}"
            )
        if u.kind == "decrease" and not new < old:
            raise DynamicError(
                f"decrease ({u.src}->{u.dst}): new weight {new!r} is not "
                f"below the current {old!r}"
            )
        if where == 0:
            ew[idx] = new
        else:
            extra[idx][2] = new
        record(u.src, u.dst, old, new)

    kept = np.stack([esrc[alive], edst[alive], ew[alive]], axis=1)
    added = [
        [e[0], e[1], e[2]] for e in extra if e[3]
    ]
    edges = np.concatenate(
        [kept, np.asarray(added, dtype=np.float64).reshape(-1, 3)], axis=0
    )
    rebuilt = from_edge_list(
        n,
        edges,
        dtype=str(graph.weights.dtype),
        name=graph.name,
    )
    return UpdateResult(
        graph=rebuilt,
        deltas=EdgeDeltas.from_map(deltas),
        topology_changed=True,
        n_updates=len(batch),
    )


def apply_updates(
    graph: CSRGraph, batch: UpdateBatch | Sequence[EdgeUpdate]
) -> UpdateResult:
    """Apply one update batch to ``graph``; see the module docstring.

    Weight-only batches mutate ``graph`` (weights plus its prepared
    float64 twin) and return the same object; batches with inserts or
    deletes return a rebuilt, unprepared :class:`CSRGraph`.  Updates
    apply sequentially; an invalid one (missing edge, wrong direction,
    out-of-range vertex, duplicate insert) raises
    :class:`~repro.errors.DynamicError` and rejects the whole batch —
    the input graph is never left half-patched.
    """
    if not isinstance(batch, UpdateBatch):
        batch = UpdateBatch(batch)
    if len(batch) == 0:
        return UpdateResult(
            graph=graph,
            deltas=EdgeDeltas.empty(),
            topology_changed=False,
            n_updates=0,
        )
    if batch.topology_changing:
        return _apply_rebuild(graph, batch)
    return _apply_weight_only(graph, batch)
