"""The dirty-frontier rule: turn (old distances, edge deltas) into a
warm start a label-correcting solver can finish from.

Given a distance array ``dist`` that was exact for the *pre-update*
graph and the net :class:`~repro.dynamic.updates.EdgeDeltas` of the
batches applied since, :func:`incremental_seed` produces

1. a **warm distance array** with no under-estimates w.r.t. the new
   graph, and
2. the **dirty frontier**: the vertices (at their warm distances) that
   must be re-expanded for relaxation to converge to the new exact
   distances.

The rule, in two conservative steps:

**Invalidate** — a cached distance can be *too small* only if every old
shortest path to that vertex got worse, i.e. the vertex lies downstream
(in the old tight-edge DAG) of an increased or deleted edge that was
*tight*: ``dist[u] + w_old == dist[v]``.  We over-approximate that
downstream set by forward reachability from the tight heads in the
**new** graph (chains through a deleted edge are covered because the
deleted edge's own head is itself a root), reset those vertices to
``inf``, and restore the sources to 0.

**Seed** — after invalidation every remaining finite entry is a true
path length in the new graph, hence an upper bound.  Convergence then
only needs every *violated* edge — ``warm[u] + w < warm[v]`` — to be
relaxed, and label correction takes care of the rest: the frontier is
the set of violated-edge tails, found with one vectorized O(m) scan.
This single rule covers decreased weights, inserted edges, *and* the
boundary into the invalidated region; an empty or idempotent batch
yields an empty frontier and a zero-work re-solve.

Why the result is **bit-identical** to a from-scratch solve: every
solver here computes ``dist[v]`` as a float64 telescoped sum ``dist[u] +
w`` along some tight path, and converges to the minimum of those sums
over all paths.  Warm values that survive invalidation are themselves
telescoped sums over paths that still exist unchanged, so the warm
solve minimizes over the same value set — equal values, and (non-NaN,
non-negative) equal float64 values are bit-equal.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.dynamic.updates import EdgeDeltas
from repro.errors import DynamicError
from repro.graphs.csr import CSRGraph

__all__ = ["incremental_seed", "changes_affect"]


def _edge_sources(graph: CSRGraph) -> np.ndarray:
    """Per-edge source vertex (the CSR row id, repeated by out-degree)."""
    return np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64),
        np.diff(graph.row_offsets),
    )


def _w64(graph: CSRGraph) -> np.ndarray:
    prep = graph.prepared()
    if prep is not None:
        return prep.w64
    return graph.weights.astype(np.float64)


def _reachable_from(graph: CSRGraph, roots: np.ndarray) -> np.ndarray:
    """Boolean mask of vertices forward-reachable from ``roots``
    (inclusive), via level-synchronous vectorized BFS."""
    seen = np.zeros(graph.num_vertices, dtype=bool)
    seen[roots] = True
    frontier = roots
    ro, ci = graph.row_offsets, graph.col_indices
    while frontier.size:
        starts = ro[frontier]
        counts = ro[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        cum = np.cumsum(counts)
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            starts - cum + counts, counts
        )
        nxt = np.unique(ci[flat].astype(np.int64))
        nxt = nxt[~seen[nxt]]
        seen[nxt] = True
        frontier = nxt
    return seen


def incremental_seed(
    graph: CSRGraph,
    warm_from: np.ndarray,
    deltas: Optional[EdgeDeltas],
    source: int,
    sources=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, int]]:
    """Build the warm start for an incremental re-solve on ``graph``
    (the *post-update* graph).

    ``warm_from`` must be the exact distance array of the same
    ``source``/``sources`` on the graph as it was before the changes in
    ``deltas`` were applied (``None``/empty deltas assert the graph is
    unchanged, e.g. re-solving after an idempotent batch).

    Returns ``(warm, frontier, frontier_dists, info)``: the patched
    float64 distance array (fresh copy, safe to hand to a solver as its
    live ``dist``), the dirty-frontier vertex ids (int64, sorted), the
    warm distance of each frontier vertex, and an ``info`` dict with
    ``roots`` / ``invalidated`` / ``frontier`` counts for solver stats.
    """
    from repro.baselines.common import resolve_sources

    n = graph.num_vertices
    warm = np.array(warm_from, dtype=np.float64, copy=True)
    if warm.ndim != 1 or warm.size != n:
        raise DynamicError(
            f"warm_from has {warm.size} entries but the graph has {n} vertices"
        )
    if np.isnan(warm).any() or (warm[np.isfinite(warm)] < 0).any():
        raise DynamicError("warm_from must be non-negative and NaN-free")
    seeds = resolve_sources(n, source, sources)

    n_roots = 0
    n_invalidated = 0
    if deltas is not None and deltas.size:
        # invalidation roots: heads of worsened (increased or deleted)
        # edges that were tight under the old distances
        worsened = np.isnan(deltas.new_w) | (deltas.new_w > deltas.old_w)
        worsened &= ~np.isnan(deltas.old_w)
        du = warm[deltas.src]
        tight = np.isfinite(du) & (du + deltas.old_w == warm[deltas.dst])
        roots = np.unique(deltas.dst[worsened & tight])
        n_roots = int(roots.size)
        if n_roots:
            affected = _reachable_from(graph, roots)
            n_invalidated = int(np.count_nonzero(affected))
            warm[affected] = np.inf
    warm[seeds] = 0.0

    # violated-edge scan: frontier = tails of edges that still relax
    esrc = _edge_sources(graph)
    w64 = _w64(graph)
    cand = warm[esrc] + w64  # inf tails propagate to inf, never violate
    violated = cand < warm[graph.col_indices.astype(np.int64)]
    frontier = np.unique(esrc[violated])
    info = {
        "roots": n_roots,
        "invalidated": n_invalidated,
        "frontier": int(frontier.size),
    }
    return warm, frontier, warm[frontier], info


def changes_affect(dist: np.ndarray, deltas: EdgeDeltas) -> bool:
    """Whether ``deltas`` can change any distance in ``dist`` — the
    selective cache-invalidation test a serving session runs per cached
    source.

    A cached solve is unaffected exactly when no changed edge matters
    from its source: every worsened edge was non-tight (slack absorbs
    the increase/deletion) and every improved/inserted edge still fails
    to relax (``dist[u] + w_new >= dist[v]``).  Conservative in the
    right direction: ``True`` may over-invalidate (costing a warm
    re-solve), ``False`` is only returned when provably nothing moves.
    """
    if deltas.size == 0:
        return False
    dist = np.asarray(dist, dtype=np.float64)
    du = dist[deltas.src]
    dv = dist[deltas.dst]
    finite = np.isfinite(du)
    worsened = ~np.isnan(deltas.old_w) & (
        np.isnan(deltas.new_w) | (deltas.new_w > deltas.old_w)
    )
    if bool(np.any(worsened & finite & (du + deltas.old_w == dv))):
        return True
    improved = ~np.isnan(deltas.new_w)
    return bool(np.any(improved & finite & (du + deltas.new_w < dv)))
