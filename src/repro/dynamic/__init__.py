"""Dynamic graphs: edge-update streams and incremental SSSP re-solve.

The package behind ROADMAP item 2 ("dynamic graphs and incremental
SSSP"), in three layers:

- :mod:`repro.dynamic.updates` — the update model
  (:class:`EdgeUpdate` / :class:`UpdateBatch`), batch application with
  in-place weight patching or CSR rebuild (:func:`apply_updates`), and
  the net :class:`EdgeDeltas` record each application produces;
- :mod:`repro.dynamic.frontier` — the dirty-frontier rule
  (:func:`incremental_seed`): invalidate stale distances, seed a
  label-correcting solver from the violated-edge tails, converge to
  distances bit-identical to a from-scratch solve; plus
  :func:`changes_affect`, the per-source cache-invalidation test;
- the consumers: ``solve_adds(..., warm_from=, updates=)`` and
  ``solve_dijkstra(..., warm_from=, updates=)`` (the ``accepts_updates``
  solvers), ``Session.apply_updates`` in :mod:`repro.serve`, the
  update-stream oracle in :mod:`repro.check`, and
  ``python -m repro serve-bench --updates``.

See ``docs/dynamic.md`` for the model and the correctness argument.
"""

from repro.dynamic.frontier import changes_affect, incremental_seed
from repro.dynamic.updates import (
    UPDATE_KINDS,
    EdgeDeltas,
    EdgeUpdate,
    UpdateBatch,
    UpdateResult,
    apply_updates,
)

__all__ = [
    "UPDATE_KINDS",
    "EdgeUpdate",
    "UpdateBatch",
    "EdgeDeltas",
    "UpdateResult",
    "apply_updates",
    "incremental_seed",
    "changes_affect",
]
