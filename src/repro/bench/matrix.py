"""The pinned benchmark matrices the regression harness runs.

A *matrix* is a fixed (graph × solver) grid: graphs are pinned
:class:`~repro.graphs.suite.GraphSpec` recipes (generator + exact
parameters + seed, never scaled by the suite's ``--scale`` knob) and the
solver list is explicit.  Pinning matters because the harness's whole
point is longitudinal comparison — a ``BENCH_*.json`` produced last month
must describe the same work as one produced today, or a "regression" is
just a corpus change.

Three matrices are defined:

``small``
    3 graphs × 2 solvers, a few seconds end to end.  CI smoke and the
    bench test suite run this one.

``medium``
    6 graphs × 2 solvers spanning the paper's structural extremes (high-
    diameter road grids, power-law rmat, FEM mesh, uniform random) at
    sizes where the simulator's per-pass scheduler overhead dominates —
    the grid hot-path PRs are measured against.

``large``
    A single million-vertex road grid × ADDS only — the paper's
    road-USA regime scaled to what a host run can hold.  Meant for the
    batch execution mode (``--exec-mode batch``), whose fused
    dispatches are what make a graph this size tractable; the tiny
    frontier-to-thread ratio makes it the sharpest latency-bound probe
    in the harness.

Graphs deliberately reuse the corpus generators (same code paths the
suite exercises) but with their own seeds, so a corpus re-tune does not
silently move the benchmark goalposts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.graphs.suite import GraphSpec, SuiteEntry

__all__ = ["MATRICES", "matrix_entries", "matrix_solvers"]


def _spec(generator: str, **params) -> GraphSpec:
    return GraphSpec.make(generator, **params)


#: matrix name -> (solver tuple, [(graph_name, category, spec), ...])
MATRICES: Dict[str, Tuple[Tuple[str, ...], List[Tuple[str, str, GraphSpec]]]] = {
    "small": (
        ("adds", "nf"),
        [
            ("bench-road-48x48", "road",
             _spec("grid_road", width=48, height=48, max_weight=8192, seed=101)),
            ("bench-rmat-10", "rmat",
             _spec("rmat", scale=10, edge_factor=8, max_weight=100, seed=102)),
            ("bench-mesh-2000", "mesh",
             _spec("fem_mesh", n=2000, band=24, stride=3, max_weight=64,
                   seed=103)),
        ],
    ),
    "medium": (
        ("adds", "nf"),
        [
            # high-diameter road grid: the latency-bound regime (§6.4)
            ("bench-road-140x80", "road",
             _spec("grid_road", width=140, height=80, max_weight=8192,
                   seed=111)),
            # road grid with diagonal shortcuts (highway structure)
            ("bench-road-diag-120x70", "road",
             _spec("grid_road", width=120, height=70, max_weight=8192,
                   diagonal_fraction=0.1, seed=112)),
            # power-law social analog: the bandwidth-bound regime
            ("bench-rmat-13", "rmat",
             _spec("rmat", scale=13, edge_factor=8, max_weight=100, seed=113)),
            ("bench-rmat-12-ef16", "rmat",
             _spec("rmat", scale=12, edge_factor=16, max_weight=1000,
                   seed=114)),
            # FEM mesh: mid utilization, many segments per bucket
            ("bench-mesh-12000", "mesh",
             _spec("fem_mesh", n=12000, band=36, stride=3, max_weight=64,
                   seed=115)),
            # uniform random: balanced load
            ("bench-gnm-12000", "random",
             _spec("random_gnm", n=12000, m=48000, max_weight=100, seed=116)),
        ],
    ),
    "large": (
        ("adds",),
        [
            ("bench-road-1000x1000", "road",
             _spec("grid_road", width=1000, height=1000, max_weight=8192,
                   seed=121)),
        ],
    ),
}


def matrix_solvers(name: str) -> Tuple[str, ...]:
    """The solver list of a named matrix."""
    if name not in MATRICES:
        raise ReproError(
            f"unknown bench matrix {name!r}; choose from {sorted(MATRICES)}"
        )
    return MATRICES[name][0]


def matrix_entries(name: str) -> List[SuiteEntry]:
    """The graphs of a named matrix, as engine-ready suite entries."""
    if name not in MATRICES:
        raise ReproError(
            f"unknown bench matrix {name!r}; choose from {sorted(MATRICES)}"
        )
    return [
        SuiteEntry(name=gname, category=category, spec=spec)
        for gname, category, spec in MATRICES[name][1]
    ]
