"""Run a pinned benchmark matrix and produce a ``BENCH_*.json`` report.

Cells execute one at a time through the :mod:`repro.engine` scheduler
(serial ``jobs=1`` policy — the bit-identical reference path), each
repeated ``repeats`` times after one untimed warm-up run that builds the
graph and warms the per-process memo.  Per cell the report records:

- ``wall_s`` — best (minimum) wall-clock of the timed repeats, measured
  by the engine around the solve; the minimum is the standard estimator
  for "how fast can this code go" under scheduler noise;
- ``time_us`` / ``cycles`` — *simulated* time, which must not move when
  only host-side performance changes;
- ``work_count`` / ``reached`` — algorithmic work, same invariance;
- ``dist_sha256`` — content hash of the little-endian float64 distance
  buffer, so a compare can prove two trees computed identical results;
- ``peak_rss_kb`` — the process's high-water RSS after the cell (ru_maxrss
  is monotonic per process, so this is a running high-water mark, not an
  isolated per-cell peak; cells run smallest-first within a matrix order
  so growth is still attributable).

The report is schema-versioned (:data:`BENCH_SCHEMA_VERSION`) and
documented in ``docs/benchmarks.md`` / ``docs/schema.md``.
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import platform
import pstats
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.baselines.common import RESULT_SCHEMA_VERSION, SSSPResult
from repro.bench.matrix import matrix_entries, matrix_solvers
from repro.calibration import default_cost, default_gpu
from repro.core.scheduler import DEFAULT_SCHEDULER
from repro.engine import EngineConfig, plan_cells, run_cells
from repro.errors import ReproError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "RSS_UNIT",
    "BenchCell",
    "BenchReport",
    "run_bench",
    "write_report",
    "load_report",
]

#: Version of the ``BENCH_*.json`` payload.  Bump on any backwards-
#: incompatible change to field names or semantics (documented in
#: ``docs/schema.md``).
BENCH_SCHEMA_VERSION = 1


#: Unit every ``peak_rss_kb`` in a report is normalized to, recorded in
#: the report's ``host`` block so readers never have to guess which
#: platform's ``ru_maxrss`` convention produced the numbers.
RSS_UNIT = "KiB"


def _peak_rss_kb(*, getrusage=None, sys_platform: Optional[str] = None) -> Optional[int]:
    """Process high-water RSS normalized to :data:`RSS_UNIT`, or None.

    ``ru_maxrss`` has no portable unit — Linux reports KiB, macOS bytes —
    so the raw value is normalized per-platform here.  ``getrusage`` (a
    zero-arg callable returning raw ``ru_maxrss``) and ``sys_platform``
    are injectable for the unit tests.
    """
    if sys_platform is None:
        sys_platform = sys.platform
    if getrusage is None:
        try:
            import resource
        except ImportError:  # non-POSIX
            return None

        def getrusage():
            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    ru = int(getrusage())
    if sys_platform == "darwin":
        ru //= 1024
    return ru


def _dist_sha256(dist: np.ndarray) -> str:
    """Endianness-pinned content hash of the distance vector."""
    buf = np.ascontiguousarray(dist, dtype=np.float64).astype("<f8")
    return hashlib.sha256(buf.tobytes()).hexdigest()


#: Rows kept in the per-cell ``profile.top`` table (by cumulative time).
PROFILE_TOP_N = 20


def _profile_top(pr: cProfile.Profile, top_n: int = PROFILE_TOP_N) -> List[dict]:
    """The ``top_n`` functions by cumulative time, as JSON-ready rows."""
    st = pstats.Stats(pr)
    rows = []
    for (fname, line, func), (cc, nc, tt, ct, _callers) in st.stats.items():
        rows.append(
            {
                "func": f"{fname}:{line}({func})",
                "ncalls": int(nc),
                "tottime_s": round(float(tt), 6),
                "cumtime_s": round(float(ct), 6),
            }
        )
    rows.sort(key=lambda r: r["cumtime_s"], reverse=True)
    return rows[:top_n]


@dataclass
class BenchCell:
    """One (graph, solver) cell's measurements."""

    graph: str
    category: str
    solver: str
    source: int
    wall_s: float
    wall_s_runs: List[float]
    time_us: float
    cycles: float
    work_count: int
    reached: int
    n_vertices: int
    dist_sha256: str
    peak_rss_kb: Optional[int]
    atomics: int
    fences: int
    #: Optional cProfile capture (``--profile``): pstats file path plus
    #: the top functions by cumulative time.  Additive — absent unless
    #: profiling was requested, and ignored by ``compare_reports``.
    profile: Optional[Dict[str, object]] = None

    def to_json_dict(self) -> Dict[str, object]:
        payload = {
            "graph": self.graph,
            "category": self.category,
            "solver": self.solver,
            "source": int(self.source),
            "wall_s": float(self.wall_s),
            "wall_s_runs": [float(w) for w in self.wall_s_runs],
            "time_us": float(self.time_us),
            "cycles": float(self.cycles),
            "work_count": int(self.work_count),
            "reached": int(self.reached),
            "n_vertices": int(self.n_vertices),
            "dist_sha256": self.dist_sha256,
            "peak_rss_kb": self.peak_rss_kb,
            "atomics": int(self.atomics),
            "fences": int(self.fences),
        }
        if self.profile is not None:
            payload["profile"] = self.profile
        return payload

    @property
    def key(self):
        return (self.graph, self.solver)


@dataclass
class BenchReport:
    """A full matrix run: the content of one ``BENCH_<tag>.json``."""

    tag: str
    matrix: str
    device: str
    repeats: int
    cells: List[BenchCell] = field(default_factory=list)
    host: Dict[str, str] = field(default_factory=dict)
    created: Optional[str] = None
    #: WorkScheduler the matrix's scheduler-accepting solvers ran on.
    #: Additive within bench_schema 1; absent in pre-PR-7 reports.
    scheduler: Optional[str] = None
    #: Execution mode ("events"/"batch") the exec-mode-accepting solvers
    #: ran in.  Additive within bench_schema 1; absent pre-PR-10.  The
    #: two modes are bit-identical in simulated metrics, so cells remain
    #: comparable across reports that disagree on this field.
    exec_mode: Optional[str] = None

    @property
    def total_wall_s(self) -> float:
        return float(sum(c.wall_s for c in self.cells))

    def cell(self, graph: str, solver: str) -> BenchCell:
        for c in self.cells:
            if c.key == (graph, solver):
                return c
        raise ReproError(f"no bench cell ({graph}, {solver}) in {self.tag}")

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "bench_schema": BENCH_SCHEMA_VERSION,
            "tag": self.tag,
            "matrix": self.matrix,
            "device": self.device,
            "repeats": int(self.repeats),
            "created": self.created,
            "host": dict(self.host),
            "scheduler": self.scheduler,
            "exec_mode": self.exec_mode,
            "totals": {"wall_s": self.total_wall_s},
            "cells": [c.to_json_dict() for c in self.cells],
        }


def run_bench(
    matrix: str = "medium",
    *,
    tag: str = "local",
    repeats: int = 3,
    spec=None,
    cost=None,
    scheduler: Optional[str] = None,
    exec_mode: Optional[str] = None,
    warmup: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    profile_dir: Optional[Union[str, Path]] = None,
) -> BenchReport:
    """Execute a pinned matrix; returns the in-memory report.

    ``repeats`` timed runs per cell follow ``warmup`` untimed ones; the
    reported ``wall_s`` is the minimum over the timed runs.  Simulated
    metrics (``time_us``, ``work_count``, distances) are asserted
    identical across repeats — the simulator is deterministic, and a
    repeat that disagrees means the tree itself is broken, which must
    fail the benchmark rather than average out.

    With ``profile_dir`` set, each cell gets one *extra* untimed run
    under :mod:`cProfile` (profiling skews timing, so it never wraps the
    timed repeats); the raw capture lands in
    ``profile_dir/<graph>__<solver>.pstats`` and the top-20 functions by
    cumulative time are embedded in the cell's ``profile`` record.
    """
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1 (got {repeats})")
    spec = spec or default_gpu()
    cost = cost or default_cost(spec)
    notify = progress or (lambda msg: None)

    entries = matrix_entries(matrix)
    solvers = matrix_solvers(matrix)
    config = EngineConfig(jobs=1)
    cells = plan_cells(
        entries, solvers, spec=spec, cost=cost, scheduler=scheduler,
        exec_mode=exec_mode, config=config,
    )
    if profile_dir is not None:
        profile_dir = Path(profile_dir)
        profile_dir.mkdir(parents=True, exist_ok=True)

    report = BenchReport(
        tag=tag,
        matrix=matrix,
        device=spec.name,
        repeats=repeats,
        host={
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
            "rss_unit": RSS_UNIT,
        },
        created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        scheduler=scheduler if scheduler is not None else DEFAULT_SCHEDULER,
        exec_mode=exec_mode if exec_mode is not None else "events",
    )

    for cell in cells:
        walls: List[float] = []
        reference: Optional[SSSPResult] = None
        for rep in range(warmup + repeats):
            out = run_cells([cell], config)
            if out.failures:
                raise ReproError(
                    f"bench cell {cell.key} failed: "
                    f"{out.failures[0].describe()}"
                )
            result = out.results[cell.key]
            if rep < warmup:
                continue  # graph build + allocator warm-up, not timed
            walls.append(out.timings[cell.key])
            if reference is None:
                reference = result
            else:
                if (
                    result.time_us != reference.time_us
                    or result.work_count != reference.work_count
                    or not np.array_equal(result.dist, reference.dist)
                ):
                    raise ReproError(
                        f"bench cell {cell.key} is non-deterministic: "
                        f"repeat {rep - warmup} disagrees with repeat 0"
                    )
        profile_record = None
        if profile_dir is not None:
            pr = cProfile.Profile()
            pr.enable()
            run_cells([cell], config)
            pr.disable()
            pstats_path = (
                profile_dir / f"{cell.graph_name}__{cell.solver}.pstats"
            )
            pr.dump_stats(pstats_path)
            profile_record = {
                "pstats": str(pstats_path),
                "top": _profile_top(pr),
            }
        stats = reference.stats or {}
        report.cells.append(
            BenchCell(
                graph=cell.graph_name,
                category=cell.category,
                solver=cell.solver,
                source=cell.source,
                wall_s=min(walls),
                wall_s_runs=walls,
                time_us=float(reference.time_us),
                cycles=float(spec.us_to_cycles(reference.time_us)),
                work_count=int(reference.work_count),
                reached=reference.reached(),
                n_vertices=int(reference.dist.size),
                dist_sha256=_dist_sha256(reference.dist),
                peak_rss_kb=_peak_rss_kb(),
                atomics=int(stats.get("atomics", 0)),
                fences=int(stats.get("fences", 0)),
                profile=profile_record,
            )
        )
        notify(
            f"{cell.graph_name}: {cell.solver} "
            f"wall {min(walls) * 1e3:.1f} ms, sim {reference.time_us:.1f} us"
        )
    return report


def write_report(report: BenchReport, out_dir: Union[str, Path] = ".") -> Path:
    """Write ``BENCH_<tag>.json`` into ``out_dir``; returns the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{report.tag}.json"
    with open(path, "w") as fh:
        json.dump(report.to_json_dict(), fh, indent=2)
        fh.write("\n")
    return path


def load_report(path: Union[str, Path]) -> Dict[str, object]:
    """Load a ``BENCH_*.json`` payload, validating its schema version."""
    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "bench_schema" not in payload:
        raise ReproError(f"{path} is not a bench report")
    if payload["bench_schema"] != BENCH_SCHEMA_VERSION:
        raise ReproError(
            f"{path}: bench schema {payload['bench_schema']} is not the "
            f"supported version {BENCH_SCHEMA_VERSION}"
        )
    return payload
