"""Compare two bench reports: the ``--compare`` regression gate.

The contract: given a *baseline* payload (a previously written
``BENCH_*.json``) and a *current* report from the same matrix, the
comparison fails — and the CLI exits non-zero — when any of:

- a cell's best wall-clock regressed by more than ``threshold_pct``
  percent over the baseline cell;
- the matrix-total wall-clock regressed by more than ``threshold_pct``;
- a cell present in the baseline is missing from the current run;
- a matched cell's *simulated* outputs diverge (``work_count``,
  ``time_us`` or the distance hash) — those must be bit-stable across
  host-side performance work, so a divergence is a correctness bug, not
  a perf regression, and no threshold excuses it.

Cells present only in the current run (a grown matrix) are reported but
never fail the gate: new coverage must not be punished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bench.runner import BenchReport
from repro.errors import ReproError

__all__ = ["CellDelta", "Comparison", "compare_reports"]


@dataclass
class CellDelta:
    """Wall-clock movement of one matched cell."""

    graph: str
    solver: str
    baseline_wall_s: float
    current_wall_s: float

    @property
    def ratio(self) -> float:
        """current / baseline; > 1 is a slowdown."""
        if self.baseline_wall_s <= 0:
            return float("inf") if self.current_wall_s > 0 else 1.0
        return self.current_wall_s / self.baseline_wall_s

    @property
    def change_pct(self) -> float:
        return (self.ratio - 1.0) * 100.0

    def describe(self) -> str:
        return (
            f"{self.graph}/{self.solver}: "
            f"{self.baseline_wall_s * 1e3:.1f} ms -> "
            f"{self.current_wall_s * 1e3:.1f} ms ({self.change_pct:+.1f}%)"
        )


@dataclass
class Comparison:
    """Everything :func:`compare_reports` concluded."""

    threshold_pct: float
    deltas: List[CellDelta] = field(default_factory=list)
    #: Cells whose wall-clock regressed past the threshold.
    regressions: List[CellDelta] = field(default_factory=list)
    #: Simulated-output divergences (messages); always fatal.
    mismatches: List[str] = field(default_factory=list)
    #: Baseline cells absent from the current run; fatal.
    missing: List[Tuple[str, str]] = field(default_factory=list)
    #: Matched cells that could not be compared because a required field
    #: is absent on one side (e.g. an old baseline schema); fatal — a
    #: gate that silently skips a cell is not a gate.
    field_gaps: List[str] = field(default_factory=list)
    #: Current cells absent from the baseline; informational only.
    added: List[Tuple[str, str]] = field(default_factory=list)
    total_baseline_s: float = 0.0
    total_current_s: float = 0.0

    @property
    def total_change_pct(self) -> float:
        if self.total_baseline_s <= 0:
            return 0.0
        return (self.total_current_s / self.total_baseline_s - 1.0) * 100.0

    @property
    def total_regressed(self) -> bool:
        return self.total_change_pct > self.threshold_pct

    @property
    def ok(self) -> bool:
        return not (
            self.regressions
            or self.mismatches
            or self.missing
            or self.field_gaps
            or self.total_regressed
        )

    def summary_lines(self) -> List[str]:
        """Human-readable verdict, one finding per line."""
        lines = [
            f"matrix wall-clock: {self.total_baseline_s * 1e3:.1f} ms -> "
            f"{self.total_current_s * 1e3:.1f} ms "
            f"({self.total_change_pct:+.1f}%, threshold +{self.threshold_pct:g}%)"
        ]
        for d in self.deltas:
            lines.append("  " + d.describe())
        for d in self.regressions:
            lines.append(f"REGRESSION: {d.describe()}")
        if self.total_regressed:
            lines.append(
                f"REGRESSION: matrix total {self.total_change_pct:+.1f}% "
                f"exceeds +{self.threshold_pct:g}%"
            )
        for m in self.mismatches:
            lines.append(f"MISMATCH: {m}")
        for g, s in self.missing:
            lines.append(f"MISSING: baseline cell {g}/{s} not in current run")
        for m in self.field_gaps:
            lines.append(f"MISSING: {m}")
        for g, s in self.added:
            lines.append(f"added: {g}/{s} (not in baseline)")
        lines.append("OK" if self.ok else "FAIL")
        return lines


def _cells_by_key(payload: Dict[str, object]) -> Dict[Tuple[str, str], dict]:
    cells = payload.get("cells")
    if not isinstance(cells, list):
        raise ReproError("bench payload has no 'cells' list")
    out: Dict[Tuple[str, str], dict] = {}
    for i, c in enumerate(cells):
        if not isinstance(c, dict) or "graph" not in c or "solver" not in c:
            raise ReproError(
                f"bench payload cell #{i} has no graph/solver key "
                "(corrupt or hand-edited report?)"
            )
        out[(c["graph"], c["solver"])] = c
    return out


#: Sentinel distinguishing "field absent" from any real JSON value.
_ABSENT = object()


def compare_reports(
    baseline: Dict[str, object],
    current: "BenchReport | Dict[str, object]",
    *,
    threshold_pct: float = 10.0,
) -> Comparison:
    """Gate ``current`` against ``baseline`` (see module docstring).

    ``baseline`` is a loaded JSON payload; ``current`` may be either a
    payload or a live :class:`~repro.bench.runner.BenchReport`.
    """
    if threshold_pct < 0:
        raise ReproError("threshold_pct must be non-negative")
    if isinstance(current, BenchReport):
        current = current.to_json_dict()
    base_cells = _cells_by_key(baseline)
    cur_cells = _cells_by_key(current)

    cmp = Comparison(threshold_pct=threshold_pct)
    for key, base in base_cells.items():
        cur = cur_cells.get(key)
        if cur is None:
            cmp.missing.append(key)
            continue
        cell_ok = True
        for fld in ("work_count", "time_us", "dist_sha256", "wall_s"):
            for side, payload_cells in (("baseline", base), ("current", cur)):
                if payload_cells.get(fld, _ABSENT) is _ABSENT:
                    cmp.field_gaps.append(
                        f"{key[0]}/{key[1]}: field '{fld}' missing in {side}"
                    )
                    cell_ok = False
        if not cell_ok:
            continue
        for fld in ("work_count", "time_us", "dist_sha256"):
            if base[fld] != cur[fld]:
                cmp.mismatches.append(
                    f"{key[0]}/{key[1]}: {fld} {base[fld]} -> {cur[fld]}"
                )
        delta = CellDelta(
            graph=key[0],
            solver=key[1],
            baseline_wall_s=float(base["wall_s"]),
            current_wall_s=float(cur["wall_s"]),
        )
        cmp.deltas.append(delta)
        cmp.total_baseline_s += delta.baseline_wall_s
        cmp.total_current_s += delta.current_wall_s
        if delta.change_pct > threshold_pct:
            cmp.regressions.append(delta)
    for key in cur_cells:
        if key not in base_cells:
            cmp.added.append(key)
    return cmp
