"""Benchmark + regression harness (``python -m repro bench``).

Runs a pinned graph×solver matrix (:mod:`repro.bench.matrix`) through
the :mod:`repro.engine` scheduler, records wall-clock / simulated
cycles / work counts / peak RSS per cell (:mod:`repro.bench.runner`),
writes a schema-versioned ``BENCH_<tag>.json``, and gates changes with
``--compare BASELINE.json`` (:mod:`repro.bench.compare`), which exits
non-zero on a past-threshold wall-clock regression or any simulated-
output divergence.  Usage lives in ``docs/benchmarks.md``.
"""

from repro.bench.compare import CellDelta, Comparison, compare_reports
from repro.bench.matrix import MATRICES, matrix_entries, matrix_solvers
from repro.bench.runner import (
    BENCH_SCHEMA_VERSION,
    BenchCell,
    BenchReport,
    load_report,
    run_bench,
    write_report,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCell",
    "BenchReport",
    "CellDelta",
    "Comparison",
    "MATRICES",
    "compare_reports",
    "load_report",
    "matrix_entries",
    "matrix_solvers",
    "run_bench",
    "write_report",
]
