"""The six baseline SSSP implementations from the paper's §6.1.2.

=========== ==================================================== ==========
paper name  description                                          module
=========== ==================================================== ==========
``NF``      LonestarGPU 4.0 Near-Far (best prior GPU solution)   nearfar
``Gun-NF``  Gunrock 0.2 Near-Far (no dedup filter, heavier
            framework overhead)                                  nearfar
``Gun-BF``  Gunrock 1.0 Bellman-Ford (frontier BSP)              bellman_ford
``NV``      nvGRAPH's proprietary SSSP (black box)               nvgraph
``CPU-DS``  Galois 4.0 shared-memory delta-stepping              cpu_delta
``Dijkstra``Galois 4.0 serial binary-heap Dijkstra               dijkstra
=========== ==================================================== ==========

All solvers share the :class:`~repro.baselines.common.SSSPResult` contract
and are registered in :data:`~repro.baselines.common.SOLVERS`, so the
harness can run "every implementation on every graph" exactly like the
artifact's ``run_all.sh``.

Per the paper's fairness rules, every parallel solver derives its Δ from
the same Near-Far heuristic (:func:`~repro.baselines.heuristics.davidson_delta`)
and float graphs pay the software atomic-min surcharge.
"""

from repro.baselines.bellman_ford import solve_gun_bf
from repro.baselines.common import (
    SOLVERS,
    SolveRequest,
    SolverInfo,
    SSSPResult,
    get_solver,
    get_solver_info,
    solver_names,
)
from repro.baselines.cpu_delta import solve_cpu_ds
from repro.baselines.dijkstra import solve_dijkstra
from repro.baselines.heuristics import NEAR_FAR_C, davidson_delta
from repro.baselines.nearfar import solve_gun_nf, solve_nf
from repro.baselines.nvgraph import solve_nv

__all__ = [
    "SSSPResult",
    "SolveRequest",
    "SolverInfo",
    "SOLVERS",
    "get_solver",
    "get_solver_info",
    "solver_names",
    "davidson_delta",
    "NEAR_FAR_C",
    "solve_nf",
    "solve_gun_nf",
    "solve_gun_bf",
    "solve_nv",
    "solve_cpu_ds",
    "solve_dijkstra",
]
