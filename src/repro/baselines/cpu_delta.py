"""Shared-memory CPU delta-stepping (the Galois 4.0 ``CPU-DS`` baseline).

"This implementation uses multiple fine-grained buckets to implement its
priority queue" (§6.1.2) — i.e. real delta-stepping, not a two-bucket
approximation: buckets are indexed by ``floor(dist / Δ)`` with no cap, so
nothing is ever clipped.  Buckets are processed in priority order; work
re-entering the current bucket is processed in follow-up rounds before the
next bucket opens (the Meyer & Sanders inner loop).

Each round is executed by the simulated 10-core/20-thread CPU
(:class:`~repro.gpu.costmodel.CpuCostModel`): a synchronization overhead
plus the edge relaxations at the multicore's parallel rate.  The limited
thread count is what caps this baseline — Table 3 reports ADDS on a GPU
averaging 14.2× faster.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

import numpy as np

from repro.baselines.common import (
    SSSPResult,
    init_distances,
    init_tree,
    register_solver,
    resolve_sources,
    solver_metrics,
)
from repro.baselines.heuristics import davidson_delta
from repro.errors import SolverError
from repro.gpu.costmodel import CpuCostModel
from repro.gpu.memory import SimMemory
from repro.gpu.specs import CPU_I9_7900X, CpuSpec
from repro.gpu.timeline import Timeline
from repro.graphs.csr import CSRGraph, expand_frontier

__all__ = ["solve_cpu_ds"]

MAX_ROUNDS = 2_000_000


@register_solver("cpu-ds", accepts_delta=True)
def solve_cpu_ds(
    graph: CSRGraph,
    source: int = 0,
    *,
    sources: Optional[Sequence[int]] = None,
    cpu: Optional[CpuSpec] = None,
    cost: Optional[CpuCostModel] = None,
    delta: Optional[float] = None,
) -> SSSPResult:
    """Galois-style delta-stepping on the simulated multicore."""
    cost = cost if cost is not None else CpuCostModel(cpu or CPU_I9_7900X)
    if delta is None:
        delta = davidson_delta(graph)
    if delta <= 0:
        raise SolverError("cpu-ds requires a positive delta")

    dist = init_distances(graph.num_vertices, source, sources)
    pred = init_tree(graph.num_vertices)
    mem = SimMemory()
    buckets = defaultdict(list)
    buckets[0].extend(
        resolve_sources(graph.num_vertices, source, sources).tolist()
    )

    work = 0
    rounds = 0
    time_us = 0.0
    tl = Timeline(label="cpu-ds")

    while buckets:
        cur = min(buckets)
        pending = np.unique(np.asarray(buckets.pop(cur), dtype=np.int64))
        while pending.size:
            rounds += 1
            if rounds > MAX_ROUNDS:
                raise SolverError("cpu-ds: round budget exceeded")
            # stale filter: only vertices still belonging to this bucket
            live = pending[
                np.floor_divide(dist[pending], delta).astype(np.int64) == cur
            ]
            if live.size == 0:
                break
            srcs, dsts, ws = expand_frontier(graph, live)
            tl.record(time_us, float(dsts.size))
            time_us += cost.delta_round_us(int(dsts.size), int(live.size))
            tl.record(time_us, 0.0)
            work += int(live.size)
            if dsts.size == 0:
                break
            cand = dist[srcs] + ws.astype(np.float64)
            winners = mem.atomic_min_batch(
                dist, dsts.astype(np.int64), cand, payload=srcs, payload_out=pred
            )
            new_items = dsts[winners].astype(np.int64)
            new_bucket = np.floor_divide(dist[new_items], delta).astype(np.int64)
            same = new_items[new_bucket == cur]
            for b in np.unique(new_bucket[new_bucket != cur]):
                sel = new_items[new_bucket == b]
                buckets[int(b)].extend(sel.tolist())
            pending = np.unique(same)

    # multicore CPU: atomic relaxations but no kernel launches
    metrics = solver_metrics(
        atomics=mem.stats.atomics, fences=mem.stats.fences, work_count=work
    )
    metrics.counter("rounds").inc(rounds)
    metrics.set("delta", delta)
    return SSSPResult(
        solver="cpu-ds",
        graph_name=graph.name,
        source=source,
        dist=dist,
        predecessors=pred,
        work_count=work,
        time_us=time_us,
        timeline=tl,
        metrics=metrics,
        stats=metrics.snapshot(),
    )
