"""Shared result type and solver registry.

Every solver — the six baselines and ADDS — returns an
:class:`SSSPResult`, the analog of the artifact's ``*_result`` files
("Each line has 3 fields: Graph_name run_time work_count") plus the
distance vector used by ``verify_against_*`` and the parallelism timeline
used by Figures 11–15.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import SolverError
from repro.gpu.timeline import Timeline
from repro.trace.metrics import MetricsRegistry, UNIFORM_SOLVER_KEYS

__all__ = [
    "SSSPResult",
    "SOLVERS",
    "register_solver",
    "get_solver",
    "init_distances",
    "init_tree",
    "resolve_sources",
    "solver_metrics",
]


@dataclass
class SSSPResult:
    """The outcome of one SSSP run.

    Attributes
    ----------
    solver / graph_name / source:
        Provenance of the run.
    dist:
        float64 distances from the source; ``inf`` for unreachable
        vertices.  (Integer weights are exact in float64 far beyond any
        graph size used here.)
    work_count:
        Total vertices *processed* (edge-expanded), the paper's work
        metric — §3.1 defines work efficiency as its inverse.  Includes
        redundant re-expansions; excludes items discarded by a stale
        check or a dedup filter before expansion.
    time_us:
        Simulated wall time in microseconds.
    timeline:
        Parallelism (edge count in flight / available per superstep) over
        time.
    stats:
        Solver-specific extras (supersteps, final Δ, pool high-water, …).
        Numeric entries come from :attr:`metrics`; every solver reports
        at least the uniform key set
        :data:`~repro.trace.metrics.UNIFORM_SOLVER_KEYS`.
    metrics:
        The :class:`~repro.trace.MetricsRegistry` the solver populated
        (typed counters/gauges/histograms behind the flat ``stats``
        view); None for results built without one.
    """

    solver: str
    graph_name: str
    source: int
    dist: np.ndarray
    work_count: int
    time_us: float
    timeline: Timeline = field(repr=False, default_factory=Timeline)
    stats: Dict[str, object] = field(default_factory=dict)
    metrics: Optional[MetricsRegistry] = field(repr=False, default=None)
    #: shortest-path tree: predecessors[v] is the vertex preceding v on a
    #: shortest path from the source (-1 for the source itself and for
    #: unreachable vertices).  None if the solver did not track it.
    predecessors: Optional[np.ndarray] = field(repr=False, default=None)

    @property
    def work_efficiency(self) -> float:
        """The paper's §3.1 definition: inverse of vertices processed."""
        return 1.0 / self.work_count if self.work_count else float("inf")

    def reached(self) -> int:
        """Number of vertices with a finite distance."""
        return int(np.isfinite(self.dist).sum())

    def result_line(self) -> str:
        """The artifact's ``graph_name run_time work_count`` line
        (run time in seconds, as in the artifact)."""
        return f"{self.graph_name} {self.time_us / 1e6:.9f} {self.work_count}"

    def to_json_dict(self, *, include_dist: bool = False) -> Dict[str, object]:
        """A JSON-native dict of the run (the CLI ``--json`` payload).

        Distances are omitted by default (``--dist-out`` serves bulk
        output); ``include_dist=True`` inlines them with ``inf`` encoded
        as None, keeping the payload valid strict JSON.
        """
        out: Dict[str, object] = {
            "solver": self.solver,
            "graph": self.graph_name,
            "source": int(self.source),
            "n_vertices": int(self.dist.size),
            "reached": self.reached(),
            "time_us": float(self.time_us),
            "work_count": int(self.work_count),
            "stats": _json_safe(self.stats),
        }
        if include_dist:
            out["dist"] = [
                float(d) if np.isfinite(d) else None for d in self.dist
            ]
        return out

    def path_to(self, target: int):
        """The shortest path ``[source, ..., target]`` from the tree.

        Requires the solver to have tracked predecessors; returns None for
        unreachable targets.  The walk is bounded by the vertex count, so
        a corrupted tree raises instead of looping.
        """
        if self.predecessors is None:
            raise SolverError(
                f"{self.solver} result has no predecessor tree; "
                "run the solver with predecessors enabled"
            )
        if not 0 <= target < self.dist.size:
            raise SolverError(f"target {target} out of range")
        if not np.isfinite(self.dist[target]):
            return None
        path = [int(target)]
        v = int(target)
        for _ in range(self.dist.size):
            # a root: the primary source, or (multi-source runs) any seed
            if self.predecessors[v] < 0 and self.dist[v] == 0.0:
                return path[::-1]
            v = int(self.predecessors[v])
            if v < 0:
                break
            path.append(v)
        raise SolverError(
            f"predecessor tree of {self.solver} on {self.graph_name} is "
            f"inconsistent at vertex {target}"
        )


def _json_safe(v):
    """Recursively coerce numpy scalars/arrays and non-finite floats to
    JSON-native values (non-finite floats become None)."""
    if isinstance(v, dict):
        return {str(k): _json_safe(x) for k, x in v.items()}
    if isinstance(v, (list, tuple)):
        return [_json_safe(x) for x in v]
    if isinstance(v, np.ndarray):
        return [_json_safe(x) for x in v.tolist()]
    if hasattr(v, "item"):
        v = v.item()
    if isinstance(v, float) and not np.isfinite(v):
        return None
    return v


def solver_metrics(
    *,
    atomics: int = 0,
    fences: int = 0,
    kernel_launches: int = 0,
    work_count: int = 0,
) -> MetricsRegistry:
    """A registry pre-populated with the uniform solver key set
    (:data:`~repro.trace.metrics.UNIFORM_SOLVER_KEYS`), so every solver
    reports the same comparison vocabulary."""
    reg = MetricsRegistry()
    for key, value in zip(
        UNIFORM_SOLVER_KEYS, (atomics, fences, kernel_launches, work_count)
    ):
        reg.counter(key).inc(value)
    return reg


#: Registry mapping solver name -> solve(graph, source, **opts) callable.
SOLVERS: Dict[str, Callable] = {}


def register_solver(name: str) -> Callable:
    """Class-of-2 decorator registering a solver under its paper name."""

    def deco(fn: Callable) -> Callable:
        if name in SOLVERS:
            raise SolverError(f"duplicate solver registration: {name}")
        SOLVERS[name] = fn
        return fn

    return deco


def get_solver(name: str) -> Callable:
    """Look up a registered solver (``adds``, ``nf``, ``gun-bf``, ...)."""
    try:
        return SOLVERS[name]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; available: {sorted(SOLVERS)}"
        ) from None


def resolve_sources(n: int, source: int, sources) -> np.ndarray:
    """Normalize the (source, sources) solver arguments to an id array.

    Every solver takes a primary ``source`` plus an optional ``sources``
    sequence for multi-source SSSP (e.g. nearest-facility queries); when
    ``sources`` is given it must contain the primary.
    """
    if sources is None:
        sources = [source]
    arr = np.unique(np.asarray(list(sources), dtype=np.int64))
    if arr.size == 0:
        raise SolverError("need at least one source")
    if arr.min() < 0 or arr.max() >= n:
        raise SolverError(f"source out of range for {n} vertices")
    if source not in arr:
        raise SolverError("primary source must be listed in sources")
    return arr


def init_distances(n: int, source: int, sources=None) -> np.ndarray:
    """Fresh distance vector: ``inf`` everywhere except the source(s)."""
    srcs = resolve_sources(n, source, sources)
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[srcs] = 0.0
    return dist


def init_tree(n: int) -> np.ndarray:
    """Fresh predecessor vector (-1 = no predecessor)."""
    return np.full(n, -1, dtype=np.int64)
