"""Shared result type, solver registry, and the uniform invocation API.

Every solver — the six baselines and ADDS — returns an
:class:`SSSPResult`, the analog of the artifact's ``*_result`` files
("Each line has 3 fields: Graph_name run_time work_count") plus the
distance vector used by ``verify_against_*`` and the parallelism timeline
used by Figures 11–15.

Solvers register with capability flags (:class:`SolverInfo`) so the
harness, CLI and experiment engine never special-case solver *names*:
``needs_device`` marks solvers that consume a
:class:`~repro.gpu.specs.DeviceSpec`/:class:`~repro.gpu.costmodel.CostModel`
pair, ``traceable`` marks solvers whose engine emits
:class:`~repro.trace.Tracer` events, and so on.  The uniform entry point
is :meth:`SolverInfo.solve` over a :class:`SolveRequest`; the per-solver
keyword signatures (``solve_adds(graph, source, spec=..., ...)``) remain
as thin legacy shims on top of the same functions.

.. versionchanged:: PR 2
   ``SOLVERS`` maps names to :class:`SolverInfo` (callable, so existing
   ``SOLVERS[name](graph, source)`` call sites keep working) instead of
   bare functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.errors import SolverError
from repro.gpu.timeline import Timeline
from repro.trace.metrics import MetricsRegistry, UNIFORM_SOLVER_KEYS

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "SSSPResult",
    "SolveRequest",
    "SolverInfo",
    "SOLVERS",
    "register_solver",
    "get_solver",
    "get_solver_info",
    "solver_names",
    "init_distances",
    "init_tree",
    "resolve_sources",
    "solver_metrics",
]

#: Version of the JSON payloads emitted by :meth:`SSSPResult.to_json_dict`
#: and the CLI ``--json`` paths (documented in ``docs/schema.md``).  Bump
#: on any backwards-incompatible change to field names or semantics.
RESULT_SCHEMA_VERSION = 1


@dataclass
class SSSPResult:
    """The outcome of one SSSP run.

    Attributes
    ----------
    solver / graph_name / source:
        Provenance of the run.
    dist:
        float64 distances from the source; ``inf`` for unreachable
        vertices.  (Integer weights are exact in float64 far beyond any
        graph size used here.)
    work_count:
        Total vertices *processed* (edge-expanded), the paper's work
        metric — §3.1 defines work efficiency as its inverse.  Includes
        redundant re-expansions; excludes items discarded by a stale
        check or a dedup filter before expansion.
    time_us:
        Simulated wall time in microseconds.
    timeline:
        Parallelism (edge count in flight / available per superstep) over
        time.
    stats:
        Solver-specific extras (supersteps, final Δ, pool high-water, …).
        Numeric entries come from :attr:`metrics`; every solver reports
        at least the uniform key set
        :data:`~repro.trace.metrics.UNIFORM_SOLVER_KEYS`.
    metrics:
        The :class:`~repro.trace.MetricsRegistry` the solver populated
        (typed counters/gauges/histograms behind the flat ``stats``
        view); None for results built without one.
    """

    solver: str
    graph_name: str
    source: int
    dist: np.ndarray
    work_count: int
    time_us: float
    timeline: Timeline = field(repr=False, default_factory=Timeline)
    stats: Dict[str, object] = field(default_factory=dict)
    metrics: Optional[MetricsRegistry] = field(repr=False, default=None)
    #: shortest-path tree: predecessors[v] is the vertex preceding v on a
    #: shortest path from the source (-1 for the source itself and for
    #: unreachable vertices).  None if the solver did not track it.
    predecessors: Optional[np.ndarray] = field(repr=False, default=None)

    @property
    def work_efficiency(self) -> float:
        """The paper's §3.1 definition: inverse of vertices processed."""
        return 1.0 / self.work_count if self.work_count else float("inf")

    def reached(self) -> int:
        """Number of vertices with a finite distance."""
        return int(np.isfinite(self.dist).sum())

    def result_line(self) -> str:
        """The artifact's ``graph_name run_time work_count`` line
        (run time in seconds, as in the artifact)."""
        return f"{self.graph_name} {self.time_us / 1e6:.9f} {self.work_count}"

    def to_json_dict(self, *, include_dist: bool = False) -> Dict[str, object]:
        """A JSON-native dict of the run (the CLI ``--json`` payload).

        Distances are omitted by default (``--dist-out`` serves bulk
        output); ``include_dist=True`` inlines them with ``inf`` encoded
        as None, keeping the payload valid strict JSON.
        """
        out: Dict[str, object] = {
            "schema": RESULT_SCHEMA_VERSION,
            "solver": self.solver,
            "graph": self.graph_name,
            "source": int(self.source),
            "n_vertices": int(self.dist.size),
            "reached": self.reached(),
            "time_us": float(self.time_us),
            "work_count": int(self.work_count),
            "stats": _json_safe(self.stats),
        }
        if include_dist:
            out["dist"] = [
                float(d) if np.isfinite(d) else None for d in self.dist
            ]
        return out

    def path_to(self, target: int):
        """The shortest path ``[source, ..., target]`` from the tree.

        Requires the solver to have tracked predecessors; returns None for
        unreachable targets.  The walk is bounded by the vertex count, so
        a corrupted tree raises instead of looping.
        """
        if self.predecessors is None:
            raise SolverError(
                f"{self.solver} result has no predecessor tree; "
                "run the solver with predecessors enabled"
            )
        if not 0 <= target < self.dist.size:
            raise SolverError(f"target {target} out of range")
        if not np.isfinite(self.dist[target]):
            return None
        path = [int(target)]
        v = int(target)
        for _ in range(self.dist.size):
            # a root: the primary source, or (multi-source runs) any seed
            if self.predecessors[v] < 0 and self.dist[v] == 0.0:
                return path[::-1]
            v = int(self.predecessors[v])
            if v < 0:
                break
            path.append(v)
        raise SolverError(
            f"predecessor tree of {self.solver} on {self.graph_name} is "
            f"inconsistent at vertex {target}"
        )


def _json_safe(v):
    """Recursively coerce numpy scalars/arrays and non-finite floats to
    JSON-native values (non-finite floats become None)."""
    if isinstance(v, dict):
        return {str(k): _json_safe(x) for k, x in v.items()}
    if isinstance(v, (list, tuple)):
        return [_json_safe(x) for x in v]
    if isinstance(v, np.ndarray):
        return [_json_safe(x) for x in v.tolist()]
    if hasattr(v, "item"):
        v = v.item()
    if isinstance(v, float) and not np.isfinite(v):
        return None
    return v


def solver_metrics(
    *,
    atomics: int = 0,
    fences: int = 0,
    kernel_launches: int = 0,
    work_count: int = 0,
) -> MetricsRegistry:
    """A registry pre-populated with the uniform solver key set
    (:data:`~repro.trace.metrics.UNIFORM_SOLVER_KEYS`), so every solver
    reports the same comparison vocabulary."""
    reg = MetricsRegistry()
    for key, value in zip(
        UNIFORM_SOLVER_KEYS, (atomics, fences, kernel_launches, work_count)
    ):
        reg.counter(key).inc(value)
    return reg


@dataclass
class SolveRequest:
    """One solver invocation, as a value.

    The uniform currency of the invocation API: the CLI, harness and
    :mod:`repro.engine` all describe "run solver X on graph G from source
    s with device D" as a ``SolveRequest`` and submit it through
    :meth:`SolverInfo.solve`.  Fields a solver does not understand are
    simply not forwarded (a CPU solver ignores ``spec``/``cost``; a
    non-traceable solver given a ``tracer`` is rejected loudly).

    Attributes
    ----------
    graph / source / sources:
        What to solve.  ``sources`` enables multi-source runs and must
        contain ``source`` (see :func:`resolve_sources`).
    spec / cost:
        Device model for solvers registered with ``needs_device``;
        ``None`` means the solver's own default (the calibrated scaled
        RTX 2080 Ti).
    delta:
        Initial/static Δ override for the delta-stepping family
        (``accepts_delta`` solvers).
    config:
        Solver configuration object (``accepts_config`` solvers; for
        ADDS an :class:`~repro.core.config.AddsConfig`).
    tracer:
        A :class:`~repro.trace.Tracer` for ``traceable`` solvers.
    scheduler:
        Registered :class:`~repro.core.scheduler.WorkScheduler` name
        (``accepts_scheduler`` solvers; for ADDS ``"bucket"`` or
        ``"mlmq"``).  ``None`` means the solver's default scheduler.
    warm_from / updates:
        Incremental re-solve (``accepts_updates`` solvers): ``warm_from``
        is the exact distance array of the same source on the graph
        *before* the edge changes described by ``updates`` (an
        :class:`~repro.dynamic.updates.EdgeDeltas`) were applied; the
        solver re-seeds from the dirty frontier instead of the source
        and produces distances bit-identical to a from-scratch solve
        (see ``docs/dynamic.md``).  ``updates`` without ``warm_from``
        is rejected; ``warm_from`` alone asserts the graph is unchanged.
    exec_mode:
        Execution mode for ``accepts_exec_mode`` solvers: ``"events"``
        (one event at a time, the default) or ``"batch"`` (fused
        same-timestamp relaxation dispatches; see
        :mod:`repro.core.batch`).  Simulated outputs are bit-identical
        between the modes.
    options:
        Extra solver-specific keyword arguments, forwarded verbatim
        (e.g. ``cpu=``/``cost=`` for the CPU cost models).
    """

    graph: "object"  # CSRGraph; typed loosely to avoid an import cycle
    source: int = 0
    sources: Optional[Sequence[int]] = None
    spec: Optional[object] = None
    cost: Optional[object] = None
    delta: Optional[float] = None
    config: Optional[object] = None
    tracer: Optional[object] = None
    scheduler: Optional[str] = None
    warm_from: Optional[np.ndarray] = None
    updates: Optional[object] = None  # EdgeDeltas; loose to avoid a cycle
    exec_mode: Optional[str] = None
    options: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class SolverInfo:
    """A registered solver: its callable plus declared capabilities.

    Calling the info object forwards to the legacy keyword signature, so
    code (and tests) written against ``get_solver(name)(graph, source,
    **kwargs)`` keeps working unchanged; :meth:`solve` is the uniform
    :class:`SolveRequest` entry point everything new should use.
    """

    name: str
    fn: Callable = field(repr=False)
    #: Consumes ``spec=``/``cost=`` (a simulated-GPU solver).
    needs_device: bool = False
    #: Accepts a ``tracer=`` and emits structured trace events.
    traceable: bool = False
    #: Accepts a ``delta=`` override (the delta-stepping family).
    accepts_delta: bool = False
    #: Accepts a ``config=`` object (currently only ADDS).
    accepts_config: bool = False
    #: Accepts a ``scheduler=`` WorkScheduler name (currently only ADDS).
    accepts_scheduler: bool = False
    #: Accepts ``warm_from=``/``updates=`` incremental re-solve seeds.
    accepts_updates: bool = False
    #: Accepts an ``exec_mode=`` (``"events"``/``"batch"``) selector.
    accepts_exec_mode: bool = False

    def __call__(self, graph, source: int = 0, **kwargs) -> "SSSPResult":
        """Legacy keyword-style invocation (thin shim over :attr:`fn`).

        .. deprecated:: PR 2
           Prefer :meth:`solve` with a :class:`SolveRequest`; this shim
           stays for existing call sites and per-solver keyword options.
        """
        return self.fn(graph, source, **kwargs)

    def solve(self, request: SolveRequest) -> "SSSPResult":
        """Run this solver on a :class:`SolveRequest`.

        Maps the request's uniform fields onto the solver's keyword
        signature according to the declared capabilities, rejecting
        fields the solver cannot honor (rather than silently dropping a
        requested tracer, Δ or config).
        """
        kwargs: Dict[str, object] = dict(request.options)
        if request.sources is not None:
            kwargs.setdefault("sources", request.sources)
        if self.needs_device:
            if request.spec is not None:
                kwargs.setdefault("spec", request.spec)
            if request.cost is not None:
                kwargs.setdefault("cost", request.cost)
        if request.tracer is not None:
            if not self.traceable:
                raise SolverError(
                    f"solver {self.name!r} does not support tracing; "
                    f"pick one of {solver_names(traceable=True)}"
                )
            kwargs.setdefault("tracer", request.tracer)
        if request.delta is not None:
            if not self.accepts_delta:
                raise SolverError(
                    f"solver {self.name!r} does not take a delta override"
                )
            kwargs.setdefault("delta", request.delta)
        if request.config is not None:
            if not self.accepts_config:
                raise SolverError(
                    f"solver {self.name!r} does not take a config object"
                )
            kwargs.setdefault("config", request.config)
        if request.scheduler is not None:
            if not self.accepts_scheduler:
                raise SolverError(
                    f"solver {self.name!r} does not take a scheduler; "
                    f"pick one of {solver_names(accepts_scheduler=True)}"
                )
            kwargs.setdefault("scheduler", request.scheduler)
        if request.warm_from is not None or request.updates is not None:
            if not self.accepts_updates:
                raise SolverError(
                    f"solver {self.name!r} does not take warm_from/updates; "
                    f"pick one of {solver_names(accepts_updates=True)}"
                )
            if request.warm_from is not None:
                kwargs.setdefault("warm_from", request.warm_from)
            if request.updates is not None:
                kwargs.setdefault("updates", request.updates)
        if request.exec_mode is not None:
            if not self.accepts_exec_mode:
                raise SolverError(
                    f"solver {self.name!r} does not take an exec_mode; "
                    f"pick one of {solver_names(accepts_exec_mode=True)}"
                )
            kwargs.setdefault("exec_mode", request.exec_mode)
        return self.fn(request.graph, request.source, **kwargs)


#: Registry mapping solver name -> :class:`SolverInfo` (callable, so the
#: pre-PR-2 ``SOLVERS[name](graph, source)`` idiom still works).
SOLVERS: Dict[str, SolverInfo] = {}


def register_solver(
    name: str,
    *,
    needs_device: bool = False,
    traceable: bool = False,
    accepts_delta: bool = False,
    accepts_config: bool = False,
    accepts_scheduler: bool = False,
    accepts_updates: bool = False,
    accepts_exec_mode: bool = False,
) -> Callable:
    """Decorator registering a solver under its paper name.

    The keyword flags declare capabilities once, at registration time —
    they replace the ad-hoc ``GPU_SOLVERS``/``TRACEABLE_SOLVERS`` name
    sets the harness and CLI used to hard-code.
    """

    def deco(fn: Callable) -> Callable:
        if name in SOLVERS:
            raise SolverError(f"duplicate solver registration: {name}")
        SOLVERS[name] = SolverInfo(
            name=name,
            fn=fn,
            needs_device=needs_device,
            traceable=traceable,
            accepts_delta=accepts_delta,
            accepts_config=accepts_config,
            accepts_scheduler=accepts_scheduler,
            accepts_updates=accepts_updates,
            accepts_exec_mode=accepts_exec_mode,
        )
        return fn

    return deco


def get_solver(name: str) -> SolverInfo:
    """Look up a registered solver (``adds``, ``nf``, ``gun-bf``, ...).

    Returns the (callable) :class:`SolverInfo`, so both the legacy
    ``get_solver(name)(graph, source, **kwargs)`` idiom and the uniform
    ``get_solver(name).solve(request)`` path work.
    """
    try:
        return SOLVERS[name]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; available: {sorted(SOLVERS)}"
        ) from None


#: Alias making call sites that specifically want metadata read clearly.
get_solver_info = get_solver


def solver_names(
    *,
    needs_device: Optional[bool] = None,
    traceable: Optional[bool] = None,
    accepts_delta: Optional[bool] = None,
    accepts_config: Optional[bool] = None,
    accepts_scheduler: Optional[bool] = None,
    accepts_updates: Optional[bool] = None,
    accepts_exec_mode: Optional[bool] = None,
) -> list:
    """Sorted registered names, filtered by capability flags.

    ``None`` means "don't care"; e.g. ``solver_names(traceable=True)`` is
    the set the ``trace`` subcommand offers.
    """
    out = []
    for name, info in SOLVERS.items():
        if needs_device is not None and info.needs_device != needs_device:
            continue
        if traceable is not None and info.traceable != traceable:
            continue
        if accepts_delta is not None and info.accepts_delta != accepts_delta:
            continue
        if accepts_config is not None and info.accepts_config != accepts_config:
            continue
        if accepts_scheduler is not None and info.accepts_scheduler != accepts_scheduler:
            continue
        if accepts_updates is not None and info.accepts_updates != accepts_updates:
            continue
        if accepts_exec_mode is not None and info.accepts_exec_mode != accepts_exec_mode:
            continue
        out.append(name)
    return sorted(out)


def resolve_sources(n: int, source: int, sources) -> np.ndarray:
    """Normalize the (source, sources) solver arguments to an id array.

    Every solver takes a primary ``source`` plus an optional ``sources``
    sequence for multi-source SSSP (e.g. nearest-facility queries); when
    ``sources`` is given it must contain the primary.
    """
    if sources is None:
        sources = [source]
    arr = np.unique(np.asarray(list(sources), dtype=np.int64))
    if arr.size == 0:
        raise SolverError("need at least one source")
    if arr.min() < 0 or arr.max() >= n:
        raise SolverError(f"source out of range for {n} vertices")
    if source not in arr:
        raise SolverError("primary source must be listed in sources")
    return arr


def init_distances(n: int, source: int, sources=None) -> np.ndarray:
    """Fresh distance vector: ``inf`` everywhere except the source(s)."""
    srcs = resolve_sources(n, source, sources)
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[srcs] = 0.0
    return dist


def init_tree(n: int) -> np.ndarray:
    """Fresh predecessor vector (-1 = no predecessor)."""
    return np.full(n, -1, dtype=np.int64)
