"""Frontier Bellman-Ford (the Gunrock 1.0 ``Gun-BF`` baseline).

An unordered worklist under the BSP model: every superstep expands the
whole frontier, atomically relaxes all its out-edges, and the vertices
whose distance improved form the next frontier (Gunrock's advance +
filter pattern).  Maximum parallelism, no ordering — the redundant-work
extreme the paper contrasts against Dijkstra in §3.1 ("Dijkstra's ...
can be 1000× more efficient than Bellman-Ford" on high-diameter graphs).
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Optional, Sequence

import numpy as np

from repro.baselines.common import (
    SSSPResult,
    init_distances,
    init_tree,
    register_solver,
    resolve_sources,
    solver_metrics,
)
from repro.gpu.costmodel import CostModel
from repro.gpu.kernels import BspMachine
from repro.gpu.memory import SimMemory
from repro.calibration import resolve_device
from repro.gpu.specs import DeviceSpec
from repro.graphs.csr import CSRGraph, expand_frontier
from repro.trace.tracer import Tracer

__all__ = ["solve_gun_bf", "bellman_ford_frontier"]

#: Gunrock's generic frontier machinery costs more per iteration than
#: Lonestar's purpose-built kernels (extra filter/compaction passes).
GUNROCK_OVERHEAD = 1.8


def bellman_ford_frontier(
    graph: CSRGraph,
    source: int,
    machine: BspMachine,
    *,
    solver_name: str,
    sources: Optional[Sequence[int]] = None,
) -> SSSPResult:
    """Shared frontier-BSP loop (used by Gun-BF and the NV stand-in)."""
    dist = init_distances(graph.num_vertices, source, sources)
    pred = init_tree(graph.num_vertices)
    mem = SimMemory()
    avg_deg = graph.average_degree()
    float_weights = not graph.is_integer_weighted

    frontier = resolve_sources(graph.num_vertices, source, sources)
    # Pre-cast CSR twins: the relax path consumes int64 indices and
    # float64 weights, so casting once removes two copies per superstep.
    exp_graph = SimpleNamespace(
        row_offsets=graph.row_offsets,
        col_indices=graph.col_indices.astype(np.int64),
        weights=graph.weights.astype(np.float64),
    )
    work = 0
    supersteps = 0
    while frontier.size:
        srcs, dsts, ws = expand_frontier(exp_graph, frontier)
        machine.superstep(
            int(frontier.size), int(dsts.size), avg_deg, float_weights=float_weights
        )
        supersteps += 1
        work += int(frontier.size)
        if dsts.size == 0:
            break
        cand = dist[srcs] + ws
        winners = mem.atomic_min_batch(
            dist, dsts, cand, payload=srcs, payload_out=pred
        )
        frontier = np.unique(dsts[winners])

    metrics = solver_metrics(
        atomics=mem.stats.atomics,
        fences=mem.stats.fences,
        kernel_launches=machine.kernel_launches,
        work_count=work,
    )
    metrics.counter("supersteps").inc(supersteps)
    metrics.counter("timeline_clamps").inc(machine.timeline.clamps)
    return SSSPResult(
        solver=solver_name,
        graph_name=graph.name,
        source=source,
        dist=dist,
        predecessors=pred,
        work_count=work,
        time_us=machine.elapsed_us,
        timeline=machine.timeline,
        metrics=metrics,
        stats=metrics.snapshot(),
    )


@register_solver("gun-bf", needs_device=True, traceable=True)
def solve_gun_bf(
    graph: CSRGraph,
    source: int = 0,
    *,
    sources: Optional[Sequence[int]] = None,
    spec: Optional[DeviceSpec] = None,
    cost: Optional[CostModel] = None,
    tracer: Optional[Tracer] = None,
) -> SSSPResult:
    """Gunrock 1.0 Bellman-Ford on the simulated GPU."""
    spec, cost = resolve_device(spec, cost)
    machine = BspMachine(
        spec, cost, label="gun-bf", overhead_multiplier=GUNROCK_OVERHEAD,
        tracer=tracer,
    )
    return bellman_ford_frontier(
        graph, source, machine, solver_name="gun-bf", sources=sources
    )
