"""The Near-Far Δ heuristic shared by every parallel solver.

The paper (§4.3): "The value is chosen statically based on the average
weight (W) and the average degree (D) of the graph: Δ = C × (W/D), where C
is a constant for all graphs" — the formula from Davidson et al.'s
Near-Far paper.  For fairness, the paper patches *all* parallel baselines
to use it (Appendix A.2: a profile kernel samples the average weight), and
ADDS uses it for its *initial* Δ before the dynamic controller takes over.

Figure 4's point is that no single C suits all graphs; the default here is
the warp width, the conventional choice, and the Figure 4 bench sweeps C
over powers of two exactly as the paper does.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.graphs.csr import CSRGraph

__all__ = ["NEAR_FAR_C", "davidson_delta"]

#: The fixed constant C used for every graph (Davidson et al.).
NEAR_FAR_C = 32.0


def davidson_delta(graph: CSRGraph, constant: float = NEAR_FAR_C) -> float:
    """Δ = C × (average weight / average degree), floored at 1.

    The floor keeps integer-weight graphs from degenerating to Δ = 0
    (which would put every vertex in its own bucket *and* clip everything,
    the paper's Figure 6(b) pathology).
    """
    if constant <= 0:
        raise SolverError("delta constant must be positive")
    d = graph.average_degree()
    w = graph.average_weight()
    if d <= 0 or w <= 0:
        return 1.0
    return max(1.0, constant * w / d)
