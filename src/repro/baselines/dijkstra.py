"""Serial Dijkstra with a binary heap (the Galois 4.0 baseline).

The paper's sequential reference: "a highly tuned serial implementation of
Dijkstra's algorithm from Galois 4.0, which implements the priority queue
using a binary heap".  Work-optimal — each vertex is expanded exactly once
(plus stale-pop discards) — which is why Table 4's last row shows every
other solver doing at least as much work.

Implemented with lazy deletion (re-push on improvement, skip stale pops),
like the Galois binary-heap wrapper.  Time comes from the CPU cost model:
edge relaxations plus ``O(log n)`` heap operations.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

import numpy as np

from repro.baselines.common import (
    SSSPResult,
    init_distances,
    init_tree,
    register_solver,
    resolve_sources,
    solver_metrics,
)
from repro.gpu.costmodel import CpuCostModel
from repro.gpu.specs import CPU_I9_7900X, CpuSpec
from repro.gpu.timeline import Timeline
from repro.graphs.csr import CSRGraph

__all__ = ["solve_dijkstra"]


@register_solver("dijkstra", accepts_updates=True)
def solve_dijkstra(
    graph: CSRGraph,
    source: int = 0,
    *,
    sources: Optional[Sequence[int]] = None,
    cpu: Optional[CpuSpec] = None,
    cost: Optional[CpuCostModel] = None,
    warm_from: Optional[np.ndarray] = None,
    updates: Optional[object] = None,
) -> SSSPResult:
    """Exact serial SSSP; the oracle every other solver is verified against.

    ``sources`` enables multi-source runs (distance to the nearest seed).
    ``warm_from``/``updates`` enable incremental re-solve after edge
    changes (see :mod:`repro.dynamic`): the heap is seeded from the
    dirty frontier instead of the sources, and the lazy-deletion loop —
    a label corrector once seeded with upper bounds — converges to
    distances bit-identical to a from-scratch run.
    """
    from repro.errors import SolverError

    if updates is not None and warm_from is None:
        raise SolverError("updates= requires warm_from= distances")
    cost = cost if cost is not None else CpuCostModel(cpu or CPU_I9_7900X)
    n = graph.num_vertices
    srcs = resolve_sources(n, source, sources)
    seed_info = None
    if warm_from is not None:
        from repro.dynamic.frontier import incremental_seed

        dist, frontier, frontier_dists, seed_info = incremental_seed(
            graph, warm_from, updates, source, sources
        )
    else:
        dist = init_distances(n, source, sources)
    pred = init_tree(n)
    row = graph.row_offsets
    cols = graph.col_indices
    wts = graph.weights

    if warm_from is None:
        heap = [(0.0, int(s)) for s in srcs]
    else:
        heap = [
            (float(d), int(v)) for d, v in zip(frontier_dists, frontier)
        ]
        heapq.heapify(heap)
    heap_ops = len(heap)
    pops = 0
    expanded = 0
    edges_relaxed = 0
    while heap:
        d, v = heapq.heappop(heap)
        heap_ops += 1
        pops += 1
        if d > dist[v]:
            continue  # stale entry (lazy deletion)
        expanded += 1
        lo, hi = int(row[v]), int(row[v + 1])
        for i in range(lo, hi):
            u = int(cols[i])
            nd = d + float(wts[i])
            edges_relaxed += 1
            if nd < dist[u]:
                dist[u] = nd
                pred[u] = v
                heapq.heappush(heap, (nd, u))
                heap_ops += 1

    time_us = cost.dijkstra_us(edges_relaxed, heap_ops, n)
    tl = Timeline(label="dijkstra")
    tl.record(0.0, 1.0)
    tl.record(time_us, 0.0)
    # serial CPU code: no atomics, no fences, no kernels
    metrics = solver_metrics(work_count=expanded)
    metrics.counter("heap_ops").inc(heap_ops)
    metrics.counter("stale_pops").inc(pops - expanded)
    metrics.counter("edges_relaxed").inc(edges_relaxed)
    if seed_info is not None:
        # only on warm runs, so canonical stats stay bit-identical
        metrics.update(
            {
                "warm_start": True,
                "warm_roots": seed_info["roots"],
                "warm_invalidated": seed_info["invalidated"],
                "warm_frontier": seed_info["frontier"],
            }
        )
    return SSSPResult(
        solver="dijkstra",
        graph_name=graph.name,
        source=source,
        dist=dist,
        predecessors=pred,
        work_count=expanded,
        time_us=time_us,
        timeline=tl,
        metrics=metrics,
        stats=metrics.snapshot(),
    )
