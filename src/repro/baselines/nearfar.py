"""Near-Far delta-stepping (Davidson et al.) — the prior state of the art.

The paper's strongest baseline ``NF`` is LonestarGPU's highly-optimized
Near-Far; ``Gun-NF`` is Gunrock 0.2's version.  Near-Far approximates
delta-stepping with exactly **two** buckets under BSP (§1):

- a **near** pile holding vertices with tentative distance below the
  current threshold τ, processed superstep by superstep with double
  buffering;
- a **far** pile collecting everything else; when near drains, τ advances
  by Δ and a *far split* pass partitions the far pile against the new τ.

Differences between the two variants (per the paper):

- ``NF`` runs a duplicate-vertex-ID removal filter on the near pile each
  superstep ("ADDS does not have the duplicate vertex ID removal filter
  used by NF, since that requires a BSP model" — §6.3); ``Gun-NF`` does
  not, so it re-expands duplicates.
- Gunrock's generic frontier machinery adds per-iteration overhead.

Both use the Davidson Δ heuristic, as the paper's patched baselines do.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Optional, Sequence

import numpy as np

from repro.baselines.common import (
    SSSPResult,
    init_distances,
    init_tree,
    register_solver,
    resolve_sources,
    solver_metrics,
)
from repro.baselines.heuristics import davidson_delta
from repro.errors import SolverError
from repro.gpu.costmodel import CostModel
from repro.gpu.kernels import BspMachine
from repro.gpu.memory import SimMemory
from repro.calibration import resolve_device
from repro.gpu.specs import DeviceSpec
from repro.graphs.csr import CSRGraph, expand_frontier
from repro.trace.tracer import Tracer

__all__ = ["solve_nf", "solve_gun_nf", "near_far"]

#: Gunrock 0.2's per-superstep overhead relative to Lonestar's kernels.
GUN_NF_OVERHEAD = 1.8

#: Safety bound on supersteps (loud failure instead of a silent hang).
MAX_SUPERSTEPS = 2_000_000


def near_far(
    graph: CSRGraph,
    source: int,
    machine: BspMachine,
    *,
    delta: Optional[float] = None,
    dedup_filter: bool = True,
    solver_name: str,
    sources: Optional[Sequence[int]] = None,
) -> SSSPResult:
    """The shared Near-Far loop; ``dedup_filter`` selects NF vs Gun-NF."""
    if delta is None:
        delta = davidson_delta(graph)
    if delta <= 0:
        raise SolverError("near-far requires a positive delta")

    n = graph.num_vertices
    dist = init_distances(n, source, sources)
    pred = init_tree(n)
    mem = SimMemory()
    avg_deg = graph.average_degree()
    float_weights = not graph.is_integer_weighted

    near = resolve_sources(n, source, sources)
    far = np.empty(0, dtype=np.int64)
    # Pre-cast CSR twins (as the ADDS WTBs do): the relax path consumes
    # int64 indices and float64 weights, so casting once here removes
    # two array copies from every superstep.
    exp_graph = SimpleNamespace(
        row_offsets=graph.row_offsets,
        col_indices=graph.col_indices.astype(np.int64),
        weights=graph.weights.astype(np.float64),
    )
    threshold = float(delta)
    work = 0
    far_splits = 0
    duplicates_filtered = 0

    while near.size or far.size:
        if machine.supersteps > MAX_SUPERSTEPS:
            raise SolverError(f"{solver_name}: superstep budget exceeded")
        if near.size == 0:
            # ---- far split: advance τ to the band holding the nearest
            # pending vertex, then partition the far pile against it.
            live = far[dist[far] >= threshold]  # drop settled/stale entries
            if live.size == 0:
                break
            dmin = float(dist[live].min())
            # jump τ just past dmin in Δ-increments (the optimized split)
            bands = max(1.0, np.ceil((dmin - threshold) / delta + 1e-12))
            threshold += bands * delta
            mask = dist[live] < threshold
            near = live[mask]
            far = live[~mask]
            far_splits += 1
            # the split pass is one compaction kernel over the far pile
            machine.superstep(int(live.size), 0, avg_deg)
            continue

        pile = near
        if dedup_filter:
            filtered = np.unique(pile)
            duplicates_filtered += int(pile.size - filtered.size)
            pile = filtered
        # stale check: only vertices still inside the near band expand
        pile = pile[dist[pile] < threshold]
        if pile.size == 0:
            near = np.empty(0, dtype=np.int64)
            continue

        srcs, dsts, ws = expand_frontier(exp_graph, pile)
        machine.superstep(
            int(pile.size), int(dsts.size), avg_deg, float_weights=float_weights
        )
        work += int(pile.size)
        if dsts.size:
            cand = dist[srcs] + ws
            winners = mem.atomic_min_batch(
                dist, dsts, cand, payload=srcs, payload_out=pred
            )
            new_items = dsts[winners]
            new_d = dist[new_items]
            near = new_items[new_d < threshold]
            far = np.concatenate([far, new_items[new_d >= threshold]])
        else:
            near = np.empty(0, dtype=np.int64)

    metrics = solver_metrics(
        atomics=mem.stats.atomics,
        fences=mem.stats.fences,
        kernel_launches=machine.kernel_launches,
        work_count=work,
    )
    metrics.counter("supersteps").inc(machine.supersteps)
    metrics.counter("far_splits").inc(far_splits)
    metrics.counter("duplicates_filtered").inc(duplicates_filtered)
    metrics.counter("timeline_clamps").inc(machine.timeline.clamps)
    metrics.set("delta", delta)
    return SSSPResult(
        solver=solver_name,
        graph_name=graph.name,
        source=source,
        dist=dist,
        predecessors=pred,
        work_count=work,
        time_us=machine.elapsed_us,
        timeline=machine.timeline,
        metrics=metrics,
        stats=metrics.snapshot(),
    )


@register_solver("nf", needs_device=True, traceable=True, accepts_delta=True)
def solve_nf(
    graph: CSRGraph,
    source: int = 0,
    *,
    sources: Optional[Sequence[int]] = None,
    spec: Optional[DeviceSpec] = None,
    cost: Optional[CostModel] = None,
    delta: Optional[float] = None,
    tracer: Optional[Tracer] = None,
) -> SSSPResult:
    """LonestarGPU Near-Far: dedup filter on, lean kernels.

    ``delta`` overrides the Davidson heuristic (used by the Figure 4
    C-sweep bench); by default the heuristic is applied, matching the
    paper's patched baseline.  The profile kernel that samples the average
    weight is charged "much less than 1 % of run time" (Appendix A) —
    a fixed small setup charge here.
    """
    spec, cost = resolve_device(spec, cost)
    machine = BspMachine(spec, cost, label="nf", tracer=tracer)
    machine.charge_us(2.0)  # profile kernel for the delta heuristic
    return near_far(
        graph, source, machine, delta=delta, dedup_filter=True,
        solver_name="nf", sources=sources,
    )


@register_solver("gun-nf", needs_device=True, traceable=True, accepts_delta=True)
def solve_gun_nf(
    graph: CSRGraph,
    source: int = 0,
    *,
    sources: Optional[Sequence[int]] = None,
    spec: Optional[DeviceSpec] = None,
    cost: Optional[CostModel] = None,
    delta: Optional[float] = None,
    tracer: Optional[Tracer] = None,
) -> SSSPResult:
    """Gunrock 0.2 Near-Far: no dedup filter, heavier framework."""
    spec, cost = resolve_device(spec, cost)
    machine = BspMachine(
        spec, cost, label="gun-nf", overhead_multiplier=GUN_NF_OVERHEAD,
        tracer=tracer,
    )
    machine.charge_us(2.0)
    return near_far(
        graph, source, machine, delta=delta, dedup_filter=False,
        solver_name="gun-nf", sources=sources,
    )
