"""Stand-in for NVIDIA's proprietary nvGRAPH SSSP (the ``NV`` baseline).

The paper treats ``nvgraphSssp()`` as a black box (Appendix A: "Line 76
calls nvgraphSssp(), which is a black box function") and reports it as the
slowest GPU baseline (ADDS is 13.4× faster on average; Table 4 has no NV
work counts because the source is closed).

nvGRAPH's SSSP is a frontier-iterative method over the library's internal
CSC representation, with per-call graph setup and a heavier per-iteration
framework than either Lonestar or Gunrock.  The stand-in therefore runs
the Bellman-Ford frontier loop with a library-grade overhead multiplier
and a fixed setup charge for graph conversion — enough to land it in the
paper's observed performance ordering NF > Gun-NF > Gun-BF > NV.

Matching the artifact's observation that nvGRAPH computes in float
internally ("nv_graph uses float data types internally, so we sometimes
get conversion problems for int graphs"), this solver always pays the
float atomic surcharge and reports float32-rounded distances.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.bellman_ford import bellman_ford_frontier
from repro.baselines.common import SSSPResult, register_solver
from repro.trace.tracer import Tracer
from repro.gpu.costmodel import CostModel
from repro.gpu.kernels import BspMachine
from repro.calibration import resolve_device
from repro.gpu.specs import DeviceSpec
from repro.graphs.csr import CSRGraph

__all__ = ["solve_nv"]

#: Library-framework per-iteration overhead relative to Lonestar kernels.
NV_OVERHEAD = 2.6

#: One-time nvgraph setup: handle creation + CSR→CSC conversion, µs.
NV_SETUP_US = 60.0


@register_solver("nv", needs_device=True, traceable=True)
def solve_nv(
    graph: CSRGraph,
    source: int = 0,
    *,
    sources: Optional[Sequence[int]] = None,
    spec: Optional[DeviceSpec] = None,
    cost: Optional[CostModel] = None,
    tracer: Optional[Tracer] = None,
) -> SSSPResult:
    """The nvGRAPH black-box stand-in."""
    spec, cost = resolve_device(spec, cost)
    machine = BspMachine(
        spec, cost, label="nv", overhead_multiplier=NV_OVERHEAD, tracer=tracer
    )
    machine.charge_us(NV_SETUP_US)
    # nvGRAPH computes in float32 regardless of the input weight type.
    fgraph = graph.as_float()
    result = bellman_ford_frontier(
        fgraph, source, machine, solver_name="nv", sources=sources
    )
    # float32 rounding of the reported distances (the artifact's "distances
    # differing by 1" verification caveat for int graphs).
    result.dist = np.where(
        np.isfinite(result.dist),
        result.dist.astype(np.float32).astype(np.float64),
        result.dist,
    )
    result.graph_name = graph.name
    result.stats["work_count_public"] = None  # closed source: not reported
    return result
