"""repro — ADDS (Asynchronous Dynamic Delta-Stepping) SSSP, reproduced.

A complete Python reproduction of *"A Fast Work-Efficient SSSP Algorithm
for GPUs"* (Wang, Fussell, Lin — PPoPP 2021): the ADDS scheduler and its
SRMW bucket-queue protocol, a discrete-event GPU on which it executes, the
paper's six baselines, the evaluation corpus, and the harness that
regenerates every table and figure.  See DESIGN.md for the system map and
EXPERIMENTS.md for paper-vs-measured numbers.

Quickstart::

    import repro

    graph = repro.grid_road(128, 64, seed=1)
    result = repro.sssp(graph, source=0)            # ADDS on the sim GPU
    baseline = repro.sssp(graph, 0, algorithm="nf")  # prior state of the art
    print(result.dist[:5], baseline.time_us / result.time_us)
"""

from repro.baselines import (
    SOLVERS,
    SolveRequest,
    SolverInfo,
    SSSPResult,
    davidson_delta,
    get_solver,
    get_solver_info,
    solver_names,
    solve_cpu_ds,
    solve_dijkstra,
    solve_gun_bf,
    solve_gun_nf,
    solve_nf,
    solve_nv,
)
from repro.calibration import default_cost, default_gpu, sim_cost, sim_gpu
from repro.core import AddsConfig, solve_adds
from repro.errors import ReproError
from repro.graphs import (
    CSRGraph,
    build_suite,
    clique_chain,
    fem_mesh,
    from_edge_list,
    grid_road,
    named_graph,
    random_geometric,
    random_gnm,
    read_gr,
    rmat,
    write_gr,
)
from repro.gpu import CPU_I9_7900X, RTX_2080TI, RTX_3090, CostModel, DeviceSpec
from repro.harness import run_suite, write_result_files
from repro.validation import assert_results_match, verify_results

__version__ = "1.0.0"

__all__ = [
    "sssp",
    "SSSPResult",
    "SolveRequest",
    "SolverInfo",
    "SOLVERS",
    "get_solver",
    "get_solver_info",
    "solver_names",
    "solve_adds",
    "AddsConfig",
    "solve_nf",
    "solve_gun_nf",
    "solve_gun_bf",
    "solve_nv",
    "solve_cpu_ds",
    "solve_dijkstra",
    "davidson_delta",
    "CSRGraph",
    "from_edge_list",
    "grid_road",
    "rmat",
    "random_gnm",
    "random_geometric",
    "fem_mesh",
    "clique_chain",
    "read_gr",
    "write_gr",
    "build_suite",
    "named_graph",
    "DeviceSpec",
    "CostModel",
    "RTX_2080TI",
    "RTX_3090",
    "CPU_I9_7900X",
    "sim_gpu",
    "sim_cost",
    "default_gpu",
    "default_cost",
    "run_suite",
    "write_result_files",
    "verify_results",
    "assert_results_match",
    "ReproError",
    "__version__",
]


def sssp(graph, source=0, *, algorithm="adds", **options):
    """Solve single-source shortest paths.

    Parameters
    ----------
    graph:
        A :class:`~repro.graphs.csr.CSRGraph` (build one with
        :func:`from_edge_list`, a generator, or :func:`read_gr`).
    source:
        Source vertex id.
    algorithm:
        One of ``"adds"`` (the paper's contribution, default), ``"nf"``,
        ``"gun-nf"``, ``"gun-bf"``, ``"nv"``, ``"cpu-ds"``, ``"dijkstra"``.
    options:
        Forwarded to the solver (e.g. ``spec=``/``cost=`` for GPU solvers,
        ``config=AddsConfig(...)`` for ADDS, ``delta=`` for the
        delta-stepping family).

    Returns
    -------
    SSSPResult
        Distances, work count, simulated time, parallelism timeline.
    """
    return get_solver(algorithm)(graph, source, **options)
