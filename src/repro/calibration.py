"""Simulation-scale calibration: the bridge between paper-size and repo-size.

The paper evaluates multi-million-edge graphs on a 68-SM / 68K-thread GPU.
This reproduction runs a scaled corpus (DESIGN.md §4.4), so by default all
solvers and benches run on a proportionally scaled device; otherwise every
graph would starve the full device and the saturated-vs-underutilized
contrast the paper's analysis hinges on (§6.4) would disappear.

Two knobs, both documented here and nowhere else:

``SIM_SCALE``
    SM-count scale factor for the simulated GPUs.  1/16 puts the default
    corpus (2 K–30 K vertices) in the same work-to-hardware regime the
    paper's 100 K–24 M-vertex inputs occupy on the real cards: road-class
    frontiers (~10² items) underutilize the ~4 K threads, rmat-class
    frontiers (~10³–10⁴ items) saturate them.

``LAUNCH_SCALE``
    Kernel-launch overhead shrinks by ``SIM_SCALE ** 0.375`` — much more
    slowly than the device: launch cost on real hardware is *fixed*, but
    keeping it fixed outright would make every scaled run launch-bound.
    This exponent keeps the launch-to-compute *ratio* of the paper's
    mid-size graphs (a saturated superstep still dwarfs a launch; a
    road-graph superstep is still dwarfed by one).

Passing an unscaled :data:`~repro.gpu.specs.RTX_2080TI` (and your own
cost model) to any solver bypasses all of this.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.gpu.costmodel import CostModel
from repro.gpu.specs import RTX_2080TI, RTX_3090, DeviceSpec

__all__ = [
    "SIM_SCALE",
    "LAUNCH_SCALE",
    "sim_gpu",
    "sim_cost",
    "default_gpu",
    "default_cost",
]

#: Device scale factor for simulation-sized inputs (see module docstring).
SIM_SCALE = 1.0 / 16.0

#: Kernel-launch time scale (see module docstring).
LAUNCH_SCALE = SIM_SCALE ** 0.375

#: DRAM-bandwidth scale (sqrt of SIM_SCALE): latency constants don't
#: shrink with the device, so bandwidth per SM must grow at small scale to
#: keep starved runs latency-bound and saturated runs bandwidth-bound,
#: as on the real cards (see DeviceSpec.scaled).
BANDWIDTH_SCALE = math.sqrt(SIM_SCALE)

#: Full-device kernel launch overhead, µs (CostModel default).
_FULL_LAUNCH_US = 6.0


def sim_gpu(base: DeviceSpec = RTX_2080TI, scale: float = SIM_SCALE) -> DeviceSpec:
    """The scaled twin of ``base`` used throughout benches and defaults."""
    return base.scaled(scale, bandwidth_factor=math.sqrt(scale))


def sim_cost(spec: DeviceSpec, *, launch_scale: float = LAUNCH_SCALE, **overrides) -> CostModel:
    """A cost model for a scaled device, with launch overhead scaled too."""
    kw = {"kernel_launch_us": _FULL_LAUNCH_US * launch_scale}
    kw.update(overrides)
    return CostModel(spec, **kw)


def resolve_device(spec, cost):
    """Solver-argument resolution rule, shared by every GPU solver.

    - neither given → the scaled default device and its scaled cost model;
    - spec given, cost not → ``CostModel(spec)`` with stock constants
      (a full-size card gets the full 6 µs launch);
    - both given → used as-is.
    """
    if spec is None:
        spec = default_gpu()
        if cost is None:
            cost = default_cost()
    elif cost is None:
        cost = CostModel(spec)
    return spec, cost


_DEFAULT_GPU: Optional[DeviceSpec] = None
_DEFAULT_COST: Optional[CostModel] = None


def default_gpu() -> DeviceSpec:
    """The default solver device: RTX 2080 Ti scaled by :data:`SIM_SCALE`."""
    global _DEFAULT_GPU
    if _DEFAULT_GPU is None:
        _DEFAULT_GPU = sim_gpu(RTX_2080TI)
    return _DEFAULT_GPU


def default_cost(spec: Optional[DeviceSpec] = None) -> CostModel:
    """Cost model matching :func:`default_gpu` (cached for the default)."""
    global _DEFAULT_COST
    if spec is None or spec is default_gpu():
        if _DEFAULT_COST is None:
            _DEFAULT_COST = sim_cost(default_gpu())
        return _DEFAULT_COST
    return sim_cost(spec)
