"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror how the paper's artifact is driven:

- ``generate`` — create a synthetic graph and write it as a binary GR file
- ``info``     — Table-2-style statistics for a graph file
- ``solve``    — run one solver on one graph (the ``ads_int``-style binary)
- ``suite``    — run solvers over the built-in corpus (``run_all.sh``)
- ``bench``    — run a pinned benchmark matrix; emit/compare ``BENCH_*.json``
- ``serve-bench`` — replay a synthetic query trace through the
  :mod:`repro.serve` session; report latency percentiles, throughput,
  batch sizes and cache hit rate (see ``docs/serving.md``)
- ``check``    — fuzz solvers across perturbed schedules under the SRMW
  protocol checker (see ``docs/checking.md``)
- ``trace``    — run one solver with tracing on; write Perfetto/CSV artifacts
- ``verify``   — compare two ``*_final_dist`` files (``verify.py``)
- ``convert``  — convert between text DIMACS and binary GR

``solve`` and ``suite`` take ``--json`` for machine-readable output, so
benchmark drivers and external tooling don't have to parse text tables.

All commands are plain functions over argparse namespaces; ``main(argv)``
returns a process exit code, so everything is unit-testable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import __version__
from repro.analysis import bin_ratios, format_distribution_table, format_table
from repro.baselines.common import (
    RESULT_SCHEMA_VERSION,
    SOLVERS,
    SolveRequest,
    get_solver_info,
    solver_names,
)
from repro.bench import (
    MATRICES,
    compare_reports,
    load_report,
    run_bench,
    write_report,
)
from repro.calibration import sim_cost, sim_gpu
from repro.check import run_check
from repro.check.testing import FAULTS
from repro.core.scheduler import DEFAULT_SCHEDULER, scheduler_names
from repro.errors import ReproError
from repro.graphs import (
    build_suite,
    clique_chain,
    fem_mesh,
    grid_road,
    random_geometric,
    random_gnm,
    read_gr,
    rmat,
    write_gr,
)
from repro.graphs.gr_format import read_dimacs, write_dimacs
from repro.graphs.metrics import compute_stats
from repro.graphs.suite import SuiteEntry
from repro.gpu.specs import RTX_2080TI, RTX_3090
from repro.harness import (
    run_suite,
    run_traced_solve,
    write_result_files,
)
from repro.serve import run_serve_bench
from repro.validation import verify_dist_files, write_dist_file

__all__ = ["main", "build_parser"]

_DEVICES = {"2080ti": RTX_2080TI, "3090": RTX_3090}


def _device_args(ns):
    base = _DEVICES[ns.device]
    if ns.full_size:
        return base, None  # stock CostModel via resolve_device
    spec = sim_gpu(base)
    return spec, sim_cost(spec)


def _load_graph(path: str, float_weights: bool):
    p = Path(path)
    if p.suffix in (".dimacs", ".txt"):
        return read_dimacs(p, dtype="float32" if float_weights else "int32")
    return read_gr(p, float_weights=float_weights)


# --------------------------------------------------------------------- #
# commands
# --------------------------------------------------------------------- #

def cmd_generate(ns) -> int:
    kind = ns.kind
    seed = ns.seed
    if kind == "road":
        g = grid_road(ns.width, ns.height, max_weight=ns.max_weight, seed=seed)
    elif kind == "rmat":
        g = rmat(ns.scale, edge_factor=ns.edge_factor,
                 max_weight=ns.max_weight, seed=seed)
    elif kind == "gnm":
        g = random_gnm(ns.n, ns.m, max_weight=ns.max_weight, seed=seed)
    elif kind == "mesh":
        g = fem_mesh(ns.n, band=ns.band, stride=ns.stride,
                     max_weight=ns.max_weight, seed=seed)
    elif kind == "geo":
        g = random_geometric(ns.n, k=ns.k, seed=seed)
    elif kind == "cliques":
        g = clique_chain(ns.cliques, ns.clique_size,
                         max_weight=ns.max_weight, seed=seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown kind {kind}")
    write_gr(g, ns.output)
    print(f"wrote {g.name}: |V|={g.num_vertices} |E|={g.num_edges} -> {ns.output}")
    return 0


def cmd_info(ns) -> int:
    g = _load_graph(ns.graph, ns.float)
    st = compute_stats(g, ns.source)
    rows = [
        ("vertices", st.num_vertices),
        ("edges", st.num_edges),
        ("avg degree", f"{st.avg_degree:.2f} (bin {st.degree_bin_label()})"),
        ("max degree", st.max_degree),
        ("avg weight", f"{st.avg_weight:.2f}"),
        ("max weight", f"{st.max_weight:.0f}"),
        ("pseudo-diameter", f"{st.diameter} (bin {st.diameter_bin_label()})"),
        ("reachable from source", f"{100 * st.reachable:.1f}%"),
        ("meets paper criterion", "yes" if st.reachable >= 0.75 else "NO"),
    ]
    print(format_table(["property", "value"], rows, title=g.name))
    return 0


def cmd_solve(ns) -> int:
    g = _load_graph(ns.graph, ns.float)
    info = get_solver_info(ns.algorithm)
    spec = cost = None
    if info.needs_device:
        spec, cost = _device_args(ns)
    request = SolveRequest(
        graph=g,
        source=ns.source,
        sources=[int(s) for s in ns.sources.split(",")] if ns.sources else None,
        spec=spec,
        cost=cost,
        delta=ns.delta,
        scheduler=ns.scheduler,
        exec_mode=ns.exec_mode,
    )
    result = info.solve(request)
    if ns.json:
        payload = result.to_json_dict(include_dist=ns.json_dist)
        if ns.path_to is not None:
            path = result.path_to(ns.path_to)
            payload["path_to"] = (
                None if path is None else [int(v) for v in path]
            )
        if ns.dist_out:
            write_dist_file(result, ns.dist_out)
            payload["dist_file"] = str(ns.dist_out)
        print(json.dumps(payload, indent=2))
        return 0
    print(result.result_line())
    print(f"reached {result.reached()}/{g.num_vertices} vertices; "
          f"time {result.time_us:.1f} us; work {result.work_count}")
    if ns.path_to is not None:
        path = result.path_to(ns.path_to)
        if path is None:
            print(f"vertex {ns.path_to} unreachable")
        else:
            print(f"path to {ns.path_to} (dist {result.dist[ns.path_to]:g}): "
                  + " -> ".join(map(str, path)))
    if ns.dist_out:
        write_dist_file(result, ns.dist_out)
        print(f"distances written to {ns.dist_out}")
    return 0


def cmd_suite(ns) -> int:
    solvers = tuple(ns.solvers.split(","))
    suite = build_suite(
        scale=ns.scale,
        categories=ns.categories.split(",") if ns.categories else None,
        max_graphs=ns.max_graphs,
    )
    spec, cost = _device_args(ns)
    progress = (lambda msg: print(f"  {msg}", file=sys.stderr)) if ns.verbose else None
    run = run_suite(
        solvers=solvers, suite=suite, spec=spec, cost=cost, progress=progress,
        scheduler=ns.scheduler,
        jobs=None if ns.jobs == 0 else ns.jobs,
        timeout_s=ns.timeout,
        max_attempts=ns.retries,
        cache_dir=ns.cache_dir,
        store_path=ns.resume,
        resume=ns.resume is not None,
    )
    if ns.json:
        payload = {
            "schema": RESULT_SCHEMA_VERSION,
            "solvers": list(solvers),
            "scheduler": ns.scheduler,
            "records": [
                {
                    "graph": rec.graph,
                    "category": rec.category,
                    "results": {
                        name: {
                            "time_us": float(r.time_us),
                            "work_count": int(r.work_count),
                            "reached": r.reached(),
                        }
                        for name, r in rec.results.items()
                    },
                }
                for rec in run.records
            ],
            "verification_failures": list(run.verification_failures),
            "failures": [f.to_json_dict() for f in run.failures],
            "resumed": run.resumed,
        }
        if len(solvers) > 1:
            base = solvers[1]
            speedups = run.speedups(solvers[0], base)
            d = bin_ratios(speedups, label=base.upper())
            payload["speedup"] = {
                "solver": solvers[0],
                "baseline": base,
                "mean": d.arithmetic_mean,
                "geomean": d.geomean,
                "values": [float(s) for s in speedups],
            }
        if ns.out:
            payload["result_files"] = [
                str(p) for p in write_result_files(run, ns.out)
            ]
        print(json.dumps(payload, indent=2))
        return 1 if run.verification_failures else 0
    for failure in run.verification_failures:
        print(f"VERIFY: {failure}", file=sys.stderr)
    for failed in run.failures:
        print(f"FAILED: {failed.describe()}", file=sys.stderr)
    if run.resumed:
        print(f"resumed {run.resumed} cells from {ns.resume}", file=sys.stderr)
    if len(solvers) > 1:
        base = solvers[1]
        d = bin_ratios(run.speedups(solvers[0], base), label=base.upper())
        print(format_distribution_table(
            [d],
            title=f"speedup of {solvers[0]} over {base} "
                  f"({len(run.records)} graphs, mean {d.arithmetic_mean:.2f}x, "
                  f"geomean {d.geomean:.2f}x)",
        ))
    if ns.out:
        paths = write_result_files(run, ns.out)
        print(f"result files: {', '.join(str(p) for p in paths)}")
    return 1 if run.verification_failures else 0


def cmd_bench(ns) -> int:
    spec, cost = _device_args(ns)
    progress = None
    if ns.verbose:
        progress = lambda msg: print(f"  {msg}", file=sys.stderr)  # noqa: E731
    report = run_bench(
        ns.matrix,
        tag=ns.tag,
        repeats=ns.repeats,
        spec=spec,
        cost=cost,
        scheduler=ns.scheduler,
        exec_mode=ns.exec_mode,
        progress=progress,
        profile_dir=ns.profile,
    )
    path = write_report(report, ns.out)
    comparison = None
    if ns.compare:
        comparison = compare_reports(
            load_report(ns.compare), report, threshold_pct=ns.threshold
        )
    if ns.json:
        payload = report.to_json_dict()
        payload["report_file"] = str(path)
        if comparison is not None:
            payload["compare"] = {
                "baseline": str(ns.compare),
                "threshold_pct": comparison.threshold_pct,
                "total_change_pct": comparison.total_change_pct,
                "regressions": [d.describe() for d in comparison.regressions],
                "mismatches": list(comparison.mismatches),
                "missing": [f"{g}/{s}" for g, s in comparison.missing],
                "field_gaps": list(comparison.field_gaps),
                "ok": comparison.ok,
            }
        print(json.dumps(payload, indent=2))
    else:
        for cell in report.cells:
            print(
                f"{cell.graph:28s} {cell.solver:6s} "
                f"wall {cell.wall_s * 1e3:8.1f} ms   "
                f"sim {cell.time_us:10.1f} us   work {cell.work_count}"
            )
        print(
            f"matrix {report.matrix}: {len(report.cells)} cells, "
            f"total wall {report.total_wall_s * 1e3:.1f} ms -> {path}"
        )
        if ns.profile:
            print(f"cProfile captures: {ns.profile}/*.pstats "
                  f"(top-20 tables embedded in the report)")
        if comparison is not None:
            for line in comparison.summary_lines():
                print(line)
    if comparison is not None and not comparison.ok:
        return 1
    return 0


def cmd_serve_bench(ns) -> int:
    spec, cost = _device_args(ns)
    progress = None
    if ns.verbose:
        progress = lambda msg: print(f"  {msg}", file=sys.stderr)  # noqa: E731
    payload = run_serve_bench(
        queries=ns.queries,
        scale=ns.scale,
        max_graphs=ns.max_graphs,
        categories=ns.categories.split(",") if ns.categories else None,
        solver=ns.solver,
        scheduler=ns.scheduler,
        window_s=ns.window,
        max_batch=ns.max_batch,
        cache_entries=ns.cache_entries,
        burst=ns.burst,
        seed=ns.seed,
        jobs=ns.jobs,
        spec=spec,
        cost=cost,
        tag=ns.tag,
        verify=not ns.no_verify,
        updates=ns.updates,
        update_size=ns.update_size,
        progress=progress,
    )
    if ns.out:
        out = Path(ns.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
    if ns.json:
        print(json.dumps(payload, indent=2))
    else:
        res = payload["results"]
        lat = res["latency_ms"]
        print(
            f"served {res['served']} queries in {res['wall_s']:.2f}s "
            f"({res['throughput_qps']:.0f} q/s, solver {ns.solver})"
        )
        print(
            f"latency ms: p50 {lat['p50']:.2f}  p90 {lat['p90']:.2f}  "
            f"p99 {lat['p99']:.2f}  max {lat['max']:.2f}"
        )
        print(
            f"cache: {res['cache']['hits']:.0f} hits / "
            f"{res['cache']['misses']:.0f} misses "
            f"(hit rate {res['cache']['hit_rate']:.1%}), "
            f"mean batch {res['batch_mean']:.1f}"
        )
        hist = ", ".join(f"{k}x{v}" for k, v in res["batch_size_hist"].items())
        print(f"batch sizes: {hist}")
        upd = payload.get("updates")
        if upd:
            print(
                f"updates: {upd['batches']} batches × {upd['update_size']} "
                f"edges; incremental {upd['incremental_wall_s']:.2f}s vs "
                f"full {upd['full_wall_s']:.2f}s "
                f"(speedup {upd['speedup']:.2f}x, "
                f"{upd['incremental_solves']:.0f} warm solves, "
                f"{upd['pass_mismatches']} pass mismatches)"
            )
        if payload["verify"]["enabled"]:
            n_bad = len(payload["verify"]["mismatches"])
            print(
                f"verify: {payload['verify']['checked']} distinct solves "
                f"re-checked directly, {n_bad} mismatches"
            )
    if payload["verify"]["enabled"] and payload["verify"]["mismatches"]:
        return 1
    if payload.get("updates") and payload["updates"]["pass_mismatches"]:
        return 1
    return 0


def cmd_check(ns) -> int:
    spec, cost = _device_args(ns)
    entries = None
    solvers = tuple(ns.solvers.split(",")) if ns.solvers else None
    if ns.graph:
        g = _load_graph(ns.graph, ns.float)
        entries = [
            SuiteEntry(
                name=g.name or Path(ns.graph).stem,
                category="file",
                factory=lambda: g,
                source=ns.source,
            )
        ]
    if ns.updates:
        from repro.check import run_update_check

        progress = (
            (lambda msg: print(f"  {msg}", file=sys.stderr))
            if ns.verbose else None
        )
        report = run_update_check(
            ns.matrix,
            batches=ns.updates,
            batch_size=ns.update_size,
            schedules=ns.schedules,
            seed=ns.seed,
            entries=entries,
            spec=spec,
            cost=cost,
            progress=progress,
        )
        if ns.json:
            print(json.dumps(report.to_json_dict(), indent=2))
        else:
            for line in report.summary_lines():
                print(line)
        return 0 if report.ok else 1
    checker_factory = None
    if ns.inject:
        from repro.check.testing import FaultyChecker

        checker_factory = lambda: FaultyChecker(ns.inject)  # noqa: E731
    progress = (
        (lambda msg: print(f"  {msg}", file=sys.stderr)) if ns.verbose else None
    )
    report = run_check(
        ns.matrix,
        schedules=ns.schedules,
        seed=ns.seed,
        entries=entries,
        solvers=solvers,
        spec=spec,
        cost=cost,
        replay=not ns.no_replay,
        checker_factory=checker_factory,
        scheduler=ns.scheduler,
        exec_mode=ns.exec_mode,
        progress=progress,
    )
    if ns.json:
        print(json.dumps(report.to_json_dict(), indent=2))
    else:
        for line in report.summary_lines():
            print(line)
    return 0 if report.ok else 1


def cmd_trace(ns) -> int:
    g = _load_graph(ns.graph, ns.float)
    spec, cost = _device_args(ns)
    kwargs = {}
    if ns.delta is not None and get_solver_info(ns.algorithm).accepts_delta:
        kwargs["delta"] = ns.delta
    result, tracer, paths = run_traced_solve(
        g, ns.algorithm, source=ns.source, spec=spec, cost=cost,
        out_dir=ns.out, **kwargs,
    )
    if ns.json:
        payload = result.to_json_dict()
        payload["trace"] = {
            "events": len(tracer.events),
            "tracks": len(tracer.tracks()),
        }
        payload["artifacts"] = [str(p) for p in paths]
        print(json.dumps(payload, indent=2))
        return 0
    print(result.result_line())
    print(f"reached {result.reached()}/{g.num_vertices} vertices; "
          f"time {result.time_us:.1f} us; work {result.work_count}")
    print(f"{len(tracer.events)} trace events on {len(tracer.tracks())} tracks")
    for p in paths:
        print(f"wrote {p}")
    print("open trace.json at https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def cmd_verify(ns) -> int:
    mismatches = verify_dist_files(ns.file_a, ns.file_b, atol=ns.atol)
    for m in mismatches[: ns.max_report]:
        print(m)
    if mismatches:
        print(f"{len(mismatches)} mismatches")
        return 1
    print("OK: distances match")
    return 0


def cmd_convert(ns) -> int:
    src, dst = Path(ns.input), Path(ns.output)
    if src.suffix in (".dimacs", ".txt"):
        g = read_dimacs(src, dtype="float32" if ns.float else "int32")
    else:
        g = read_gr(src, float_weights=ns.float)
    if dst.suffix in (".dimacs", ".txt"):
        write_dimacs(g, dst)
    else:
        write_gr(g, dst)
    print(f"{src} -> {dst} ({g.num_vertices} vertices, {g.num_edges} edges)")
    return 0


# --------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------- #

def _add_device_flags(p):
    p.add_argument("--device", choices=sorted(_DEVICES), default="2080ti",
                   help="GPU model for GPU solvers")
    p.add_argument("--full-size", action="store_true",
                   help="use the unscaled device (see repro.calibration)")


def _add_scheduler_flag(p):
    p.add_argument("--scheduler", choices=scheduler_names(), default=None,
                   help="WorkScheduler for scheduler-accepting solvers "
                        f"(default: the solver's own, i.e. "
                        f"{DEFAULT_SCHEDULER!r}; see docs/scheduling.md)")


def _add_exec_mode_flag(p):
    p.add_argument("--exec-mode", dest="exec_mode",
                   choices=["events", "batch"], default=None,
                   help="simulator execution mode for exec-mode-accepting "
                        "solvers: 'events' steps one block at a time, "
                        "'batch' fuses same-timestamp relaxation dispatches "
                        "(bit-identical outputs, much faster; default "
                        "'events'; see docs/simulator.md)")


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="ADDS SSSP (PPoPP'21) reproduction toolkit",
    )
    ap.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = ap.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic graph as .gr")
    g.add_argument("kind", choices=["road", "rmat", "gnm", "mesh", "geo", "cliques"])
    g.add_argument("output")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--max-weight", type=int, default=100)
    g.add_argument("--width", type=int, default=64)
    g.add_argument("--height", type=int, default=64)
    g.add_argument("--scale", type=int, default=12)
    g.add_argument("--edge-factor", type=int, default=8)
    g.add_argument("--n", type=int, default=4000)
    g.add_argument("--m", type=int, default=16000)
    g.add_argument("--band", type=int, default=24)
    g.add_argument("--stride", type=int, default=3)
    g.add_argument("--k", type=int, default=6)
    g.add_argument("--cliques", type=int, default=12)
    g.add_argument("--clique-size", type=int, default=40)
    g.set_defaults(fn=cmd_generate)

    i = sub.add_parser("info", help="graph statistics (Table 2 style)")
    i.add_argument("graph")
    i.add_argument("--source", type=int, default=0)
    i.add_argument("--float", action="store_true", help="float edge weights")
    i.set_defaults(fn=cmd_info)

    s = sub.add_parser("solve", help="run one solver on one graph")
    s.add_argument("graph")
    s.add_argument("--algorithm", "-a", choices=sorted(SOLVERS), default="adds")
    s.add_argument("--source", type=int, default=0)
    s.add_argument("--sources", help="comma-separated multi-source seeds")
    s.add_argument("--float", action="store_true")
    s.add_argument("--delta", type=float)
    s.add_argument("--path-to", type=int, help="print the path to this vertex")
    s.add_argument("--dist-out", help="write a *_final_dist file")
    s.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON result")
    s.add_argument("--json-dist", action="store_true",
                   help="include the full distance array in --json output")
    _add_scheduler_flag(s)
    _add_exec_mode_flag(s)
    _add_device_flags(s)
    s.set_defaults(fn=cmd_solve)

    r = sub.add_parser("suite", help="run solvers over the corpus (run_all)")
    r.add_argument("--solvers", default="adds,nf")
    r.add_argument("--scale", type=float, default=1.0)
    r.add_argument("--categories")
    r.add_argument("--max-graphs", type=int)
    r.add_argument("--out", help="directory for artifact-style result files")
    r.add_argument("--verbose", "-v", action="store_true")
    r.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON summary")
    r.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes (0 = auto-detect; default 1, serial)")
    r.add_argument("--timeout", type=float,
                   help="per-cell time budget in seconds")
    r.add_argument("--retries", type=int, default=2, metavar="N",
                   help="attempts per cell before recording a failure")
    r.add_argument("--cache-dir",
                   help="directory for the on-disk graph cache")
    r.add_argument("--resume", metavar="STORE",
                   help="JSONL result store; completed cells found in it "
                        "are restored instead of re-run")
    _add_scheduler_flag(r)
    _add_device_flags(r)
    r.set_defaults(fn=cmd_suite)

    b = sub.add_parser(
        "bench",
        help="run a pinned benchmark matrix; emit/compare BENCH_<tag>.json",
    )
    b.add_argument("--tag", default="local",
                   help="report name: BENCH_<tag>.json")
    b.add_argument("--matrix", choices=sorted(MATRICES), default="medium")
    b.add_argument("--repeats", type=int, default=3,
                   help="timed runs per cell (wall_s is the minimum)")
    b.add_argument("--out", default=".",
                   help="directory for the BENCH_<tag>.json report")
    b.add_argument("--compare", metavar="BASELINE",
                   help="gate against a baseline BENCH_*.json; exit non-zero "
                        "on regression past --threshold")
    b.add_argument("--threshold", type=float, default=10.0, metavar="PCT",
                   help="allowed wall-clock regression percent (default 10)")
    b.add_argument("--profile", metavar="DIR",
                   help="capture one extra cProfile run per cell: raw "
                        "pstats files in DIR plus a top-20 cumulative-time "
                        "table embedded in the report")
    b.add_argument("--verbose", "-v", action="store_true")
    b.add_argument("--json", action="store_true",
                   help="emit the report (plus compare verdict) as JSON")
    _add_scheduler_flag(b)
    _add_exec_mode_flag(b)
    _add_device_flags(b)
    b.set_defaults(fn=cmd_bench)

    sv = sub.add_parser(
        "serve-bench",
        help="replay a synthetic query trace through repro.serve; "
             "report latency/throughput/cache JSON",
    )
    sv.add_argument("--queries", type=int, default=10_000,
                    help="trace length (default 10000)")
    sv.add_argument("--scale", type=float, default=0.25,
                    help="suite graph scale (default 0.25)")
    sv.add_argument("--max-graphs", type=int, default=4,
                    help="how many suite graphs to load (default 4)")
    sv.add_argument("--categories",
                    help="comma-separated suite categories (default all)")
    sv.add_argument("--solver", default="dijkstra",
                    choices=sorted(SOLVERS),
                    help="solver every query is answered with")
    sv.add_argument("--window", type=float, default=0.0, metavar="SECONDS",
                    help="batching window recorded in the payload (the "
                         "replay drains synchronously per burst)")
    sv.add_argument("--max-batch", type=int, default=32,
                    help="unique sources per dispatched batch")
    sv.add_argument("--cache-entries", type=int, default=64,
                    help="distance-cache capacity (full solves)")
    sv.add_argument("--burst", type=int, default=32,
                    help="submissions between synchronous drains")
    sv.add_argument("--seed", type=int, default=0,
                    help="trace RNG seed")
    sv.add_argument("--jobs", type=int, default=1,
                    help="executor worker processes (1 = inline)")
    sv.add_argument("--tag", default=None, help="free-form label in the payload")
    sv.add_argument("--out", metavar="FILE",
                    help="also write the JSON payload to FILE")
    sv.add_argument("--no-verify", action="store_true",
                    help="skip the bit-exact re-solve of every served "
                         "(graph, source)")
    sv.add_argument("--updates", type=int, default=0, metavar="N",
                    help="interleave N edge-update batches per graph and "
                         "replay twice (incremental vs full re-solve); "
                         "0 = static replay (default)")
    sv.add_argument("--update-size", type=int, default=8, metavar="K",
                    help="edge updates per batch (default 8)")
    sv.add_argument("--verbose", "-v", action="store_true")
    sv.add_argument("--json", action="store_true",
                    help="print the payload as JSON")
    _add_scheduler_flag(sv)
    _add_device_flags(sv)
    sv.set_defaults(fn=cmd_serve_bench)

    ck = sub.add_parser(
        "check",
        help="fuzz solvers across perturbed schedules under the SRMW "
             "protocol checker (see docs/checking.md)",
    )
    ck.add_argument("--schedules", type=int, default=8,
                    help="perturbed schedules per cell (default 8)")
    ck.add_argument("--seed", type=int, default=0,
                    help="base seed; schedule i uses schedule_seed(seed, i)")
    ck.add_argument("--matrix", choices=sorted(MATRICES), default="small")
    ck.add_argument("--graph",
                    help="check one graph file instead of a matrix")
    ck.add_argument("--source", type=int, default=0,
                    help="source vertex for --graph (default 0)")
    ck.add_argument("--solvers", metavar="A,B,...",
                    help="comma-separated solver list "
                         "(default: the matrix's, or 'adds' with --graph)")
    ck.add_argument("--float", action="store_true",
                    help="load --graph weights as float")
    ck.add_argument("--no-replay", action="store_true",
                    help="skip the unchecked per-seed replay pass")
    ck.add_argument("--updates", type=int, default=0, metavar="N",
                    help="fuzz N-batch edge-update streams instead: "
                         "incremental re-solves (warm dijkstra + adds × "
                         "schedulers × --schedules perturbed seeds) must "
                         "be bit-identical to from-scratch solves")
    ck.add_argument("--update-size", type=int, default=8, metavar="K",
                    help="edge updates per batch with --updates (default 8)")
    ck.add_argument("--inject", choices=sorted(FAULTS),
                    help="TESTING: inject a protocol fault and expect "
                         "the checker to catch it")
    ck.add_argument("--verbose", "-v", action="store_true")
    ck.add_argument("--json", action="store_true",
                    help="emit the report as JSON")
    _add_scheduler_flag(ck)
    _add_exec_mode_flag(ck)
    _add_device_flags(ck)
    ck.set_defaults(fn=cmd_check)

    t = sub.add_parser(
        "trace", help="run one solver with tracing; write Perfetto artifacts"
    )
    t.add_argument("graph")
    t.add_argument("--algorithm", "-a", choices=solver_names(traceable=True),
                   default="adds")
    t.add_argument("--source", type=int, default=0)
    t.add_argument("--float", action="store_true")
    t.add_argument("--delta", type=float)
    t.add_argument("--out", default="trace_out",
                   help="directory for trace.json / counters.csv / summary.txt")
    t.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON result")
    _add_device_flags(t)
    t.set_defaults(fn=cmd_trace)

    v = sub.add_parser("verify", help="compare two *_final_dist files")
    v.add_argument("file_a")
    v.add_argument("file_b")
    v.add_argument("--atol", type=float, default=0.0)
    v.add_argument("--max-report", type=int, default=20)
    v.set_defaults(fn=cmd_verify)

    c = sub.add_parser("convert", help="convert DIMACS <-> binary GR")
    c.add_argument("input")
    c.add_argument("output")
    c.add_argument("--float", action="store_true")
    c.set_defaults(fn=cmd_convert)

    return ap


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    ns = build_parser().parse_args(argv)
    try:
        return ns.fn(ns)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
