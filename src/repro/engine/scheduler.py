"""The parallel, fault-tolerant sweep scheduler.

A sweep is a grid of *cells* — (graph, solver) pairs.  The scheduler fans
cells out over a ``ProcessPoolExecutor`` (``jobs`` workers; auto-detected
from the CPU count by default), applies a per-cell time budget, retries
failed cells a bounded number of times, and degrades gracefully: a cell
that still fails becomes a :class:`~repro.engine.failure.FailedRun` while
the rest of the sweep completes.  Completed cells stream into an optional
:class:`~repro.engine.store.ResultStore`, which is also how an interrupted
sweep resumes.

Timeout enforcement is two-layered:

1. **In-worker alarm** (primary): each worker arms ``SIGALRM`` around the
   solve, so a cell stuck in Python code raises ``CellTimeout`` right
   inside the worker and the worker survives to take the next cell.
2. **Parent-side stall watchdog** (backstop): if *no* cell completes for
   ``timeout_s + pool_grace_s`` seconds, the pool is presumed wedged
   (e.g. a worker stuck in native code where the alarm can't fire); the
   parent terminates the workers, fails the in-flight cells, requeues the
   never-started ones, and continues on a fresh pool.

Cells are shipped to workers as picklable values: the graph travels as a
:class:`~repro.graphs.suite.GraphSpec` (workers rebuild it, memoized
per-process, optionally through the shared on-disk
:class:`~repro.engine.cache.GraphCache`) or — for legacy factory-based
suite entries — as pre-built CSR arrays.  Workers submit
:class:`~repro.baselines.common.SolveRequest`\\ s through the uniform
registry entry point, so the engine never special-cases solver names.

Determinism: cells are independent and every solver is deterministic, so
``jobs=N`` produces bit-identical :class:`SSSPResult` fields to the
serial ``jobs=1`` path — only wall-clock order differs.

.. versionchanged:: PR 6
   The worker-side primitives (cell execution, graph memo, alarm) moved
   to :mod:`repro.engine.worker` so the long-lived
   :class:`~repro.engine.executor.QueryExecutor` shares them; this
   module keeps the sweep-shaped policy (planning, fan-out, retries,
   stall watchdog, resume).
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.common import SSSPResult, get_solver
from repro.engine.cache import GraphCache
from repro.engine.failure import FailedRun
from repro.engine.store import ResultStore
from repro.engine.worker import (
    CellTimeout,
    execute_cell,
    worker_init,
)
from repro.errors import EngineError
from repro.graphs.csr import CSRGraph
from repro.graphs.suite import GraphSpec, SuiteEntry

__all__ = ["Cell", "EngineConfig", "EngineResult", "run_cells", "plan_cells"]

# Pre-refactor aliases: these were module-private here before PR 6, but
# keeping them importable costs nothing and spares external scripts.
_execute_cell = execute_cell
_worker_init = worker_init


@dataclass
class EngineConfig:
    """Execution policy for one sweep.

    Attributes
    ----------
    jobs:
        Worker processes.  ``None`` auto-detects (CPU count, capped by
        the cell count); ``1`` runs cells in-process — the reference
        serial path, with identical results.
    timeout_s:
        Per-cell time budget in seconds; ``None`` disables both the
        in-worker alarm and the parent watchdog.
    max_attempts:
        Total tries per cell (first run + retries) before it becomes a
        :class:`FailedRun`.
    cache_dir:
        Directory for the on-disk graph cache; ``None`` disables caching
        (spec-backed graphs are then rebuilt in each worker process,
        memoized per process).
    store_path:
        JSONL result store path; ``None`` disables persistence.
    resume:
        With ``store_path``: load previously completed cells and skip
        them (previously *failed* cells are retried).  Without it the
        store is truncated and the sweep starts fresh.
    solver_modules:
        Extra modules to import in every worker (and the parent) before
        solving — the plugin hook for solvers registered outside
        :mod:`repro`; each must call ``register_solver`` at import time.
    pool_grace_s:
        Slack added to ``timeout_s`` for the parent-side stall watchdog.
    """

    jobs: Optional[int] = 1
    timeout_s: Optional[float] = None
    max_attempts: int = 2
    cache_dir: Optional[Union[str, Path]] = None
    store_path: Optional[Union[str, Path]] = None
    resume: bool = False
    solver_modules: Tuple[str, ...] = ()
    pool_grace_s: float = 30.0

    def __post_init__(self) -> None:
        if self.jobs is not None and self.jobs < 1:
            raise EngineError(f"jobs must be >= 1 (got {self.jobs})")
        if self.max_attempts < 1:
            raise EngineError(
                f"max_attempts must be >= 1 (got {self.max_attempts})"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise EngineError(f"timeout_s must be positive (got {self.timeout_s})")
        if self.resume and self.store_path is None:
            raise EngineError("resume=True requires a store_path")


@dataclass(frozen=True)
class Cell:
    """One unit of sweep work, fully picklable.

    ``graph_spec`` XOR ``graph`` carries the input (spec preferred — it
    ships as a few hundred bytes; prebuilt arrays are the fallback for
    legacy factory entries).  ``spec``/``cost`` are the device model
    forwarded to device solvers; ``options`` are per-solver extras.
    """

    graph_name: str
    category: str
    solver: str
    source: int = 0
    graph_spec: Optional[GraphSpec] = None
    graph: Optional[CSRGraph] = field(default=None, repr=False)
    spec: Optional[object] = field(default=None, repr=False)
    cost: Optional[object] = field(default=None, repr=False)
    options: Dict[str, object] = field(default_factory=dict, repr=False)
    timeout_s: Optional[float] = None
    cache_dir: Optional[str] = None
    #: WorkScheduler name for ``accepts_scheduler`` solvers (None = default).
    scheduler: Optional[str] = None
    #: Execution mode ("events"/"batch") for ``accepts_exec_mode`` solvers.
    exec_mode: Optional[str] = None
    #: Warm start for ``accepts_updates`` solvers (see :mod:`repro.dynamic`):
    #: prior distance array + net EdgeDeltas since it was computed.
    warm_from: Optional[object] = field(default=None, repr=False)
    updates: Optional[object] = field(default=None, repr=False)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.graph_name, self.solver)


@dataclass
class EngineResult:
    """Everything :func:`run_cells` learned about the sweep."""

    #: ``(graph_name, solver) -> SSSPResult`` for every completed cell.
    results: Dict[Tuple[str, str], SSSPResult] = field(default_factory=dict)
    failures: List[FailedRun] = field(default_factory=list)
    #: Cells restored from the result store instead of executed.
    resumed: int = 0
    #: Distinct cells that reached a final outcome this run (retried
    #: attempts of the same cell count once).
    executed: int = 0
    #: ``(graph_name, solver) -> wall seconds`` of the successful attempt,
    #: measured in the worker around graph materialization + solve.
    #: Resumed cells have no timing (they were not executed this run).
    timings: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: ``(graph_name, solver) -> (started_at, ended_at)`` wall-clock
    #: epoch-second timestamps of the successful attempt, recorded in the
    #: worker (same clock for start and end, so latency percentiles are
    #: computable without re-instrumenting).  Resumed cells have none.
    spans: Dict[Tuple[str, str], Tuple[float, float]] = field(
        default_factory=dict
    )


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #

def plan_cells(
    suite: Sequence[SuiteEntry],
    solvers: Sequence[str],
    *,
    spec=None,
    cost=None,
    solver_options: Optional[Dict[str, dict]] = None,
    scheduler: Optional[str] = None,
    exec_mode: Optional[str] = None,
    config: EngineConfig,
) -> List[Cell]:
    """Expand (suite × solvers) into the cell grid.

    Spec-backed entries ship their :class:`GraphSpec` (and are pre-warmed
    into the graph cache when one is configured, so workers only ever
    *read* generated graphs); factory-backed entries are built here and
    ship arrays.

    ``scheduler`` names a registered WorkScheduler; it is applied to the
    solvers that declare ``accepts_scheduler`` (the others keep running
    their own algorithm — a sweep mixing ADDS with baselines stays
    valid).  Naming a scheduler when *no* selected solver accepts one is
    an :class:`EngineError`: the flag would be silently dead.

    ``exec_mode`` works the same way for ``accepts_exec_mode`` solvers:
    ``"events"`` (one-block-at-a-time stepping) or ``"batch"`` (fused
    same-timestamp relaxation dispatches, bit-identical outputs).
    """
    solver_options = solver_options or {}
    if scheduler is not None:
        from repro.core.scheduler import get_scheduler_info

        get_scheduler_info(scheduler)  # unknown names fail at plan time
        if not any(get_solver(name).accepts_scheduler for name in solvers):
            raise EngineError(
                f"--scheduler {scheduler!r} has no effect: none of "
                f"{sorted(solvers)} accepts a scheduler"
            )
    if exec_mode is not None:
        if exec_mode not in ("events", "batch"):
            raise EngineError(
                f"unknown exec mode {exec_mode!r} (pick 'events' or 'batch')"
            )
        if not any(get_solver(name).accepts_exec_mode for name in solvers):
            raise EngineError(
                f"--exec-mode {exec_mode!r} has no effect: none of "
                f"{sorted(solvers)} accepts an exec mode"
            )
    cache = GraphCache(config.cache_dir) if config.cache_dir else None
    cells: List[Cell] = []
    for entry in suite:
        graph = None
        if entry.spec is None:
            graph = entry.graph()
        elif cache is not None:
            cache.get_or_build(entry.spec, name=entry.name)
        for name in solvers:
            cells.append(
                Cell(
                    graph_name=entry.name,
                    category=entry.category,
                    solver=name,
                    source=entry.source,
                    graph_spec=entry.spec,
                    graph=graph,
                    spec=spec,
                    cost=cost,
                    options=dict(solver_options.get(name, {})),
                    timeout_s=config.timeout_s,
                    cache_dir=str(config.cache_dir) if config.cache_dir else None,
                    scheduler=(
                        scheduler
                        if scheduler is not None
                        and get_solver(name).accepts_scheduler
                        else None
                    ),
                    exec_mode=(
                        exec_mode
                        if exec_mode is not None
                        and get_solver(name).accepts_exec_mode
                        else None
                    ),
                )
            )
    return cells


def _resolve_jobs(config: EngineConfig, n_cells: int) -> int:
    jobs = config.jobs if config.jobs is not None else (os.cpu_count() or 1)
    return max(1, min(jobs, max(1, n_cells)))


def run_cells(
    cells: Sequence[Cell],
    config: EngineConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> EngineResult:
    """Execute a planned cell grid under ``config``'s policy."""
    worker_init(config.solver_modules)  # plugins register before the check
    for name in {c.solver for c in cells}:
        get_solver(name)  # fail fast on typos, before any work

    out = EngineResult()
    notify = progress or (lambda msg: None)

    store: Optional[ResultStore] = None
    todo: List[Cell] = list(cells)
    if config.store_path is not None:
        store = ResultStore(config.store_path, truncate=not config.resume)
        if config.resume:
            contents = store.load()
            kept: List[Cell] = []
            for cell in todo:
                hit = contents.results.get(cell.key)
                if hit is not None:
                    out.results[cell.key] = hit[1]
                    out.resumed += 1
                else:
                    kept.append(cell)
            todo = kept
            if out.resumed:
                notify(f"resume: {out.resumed} cells restored from store")

    attempts: Dict[Tuple[str, str], int] = {c.key: 0 for c in todo}

    def handle(cell: Cell, outcome) -> bool:
        """Record one attempt's outcome; True means "retry this cell"."""
        attempts[cell.key] += 1
        kind, detail, elapsed, span = outcome
        if kind == "ok":
            result = detail
            out.results[cell.key] = result
            out.timings[cell.key] = float(elapsed)
            out.spans[cell.key] = (float(span[0]), float(span[1]))
            out.executed += 1
            if store is not None:
                store.append_result(cell.category, result)
            notify(f"{cell.graph_name}: {cell.solver} done")
            return False
        if attempts[cell.key] < config.max_attempts:
            notify(
                f"{cell.graph_name}: {cell.solver} {kind} "
                f"(attempt {attempts[cell.key]}/{config.max_attempts}), retrying"
            )
            return True
        failed = FailedRun(
            graph=cell.graph_name,
            category=cell.category,
            solver=cell.solver,
            kind=kind,
            message=str(detail),
            attempts=attempts[cell.key],
            elapsed_s=float(elapsed),
        )
        out.failures.append(failed)
        out.executed += 1
        if store is not None:
            store.append_failure(failed)
        notify(f"FAILED {failed.describe()}")
        return False

    jobs = _resolve_jobs(config, len(todo))
    try:
        if todo:
            if jobs == 1:
                _run_serial(todo, handle)
            else:
                _run_parallel(todo, config, jobs, handle)
    finally:
        if store is not None:
            store.close()
    return out


def _run_serial(cells: Sequence[Cell], handle) -> None:
    """The in-process reference path (``jobs=1``), same retry semantics."""
    queue = deque(cells)
    while queue:
        cell = queue.popleft()
        if handle(cell, execute_cell(cell)):
            queue.append(cell)


def _run_parallel(
    cells: Sequence[Cell], config: EngineConfig, jobs: int, handle
) -> None:
    """Fan cells over a process pool; rebuild the pool if it wedges."""
    stall_limit = (
        None if config.timeout_s is None
        else config.timeout_s + config.pool_grace_s
    )
    pending = deque(cells)
    while pending:
        executor = ProcessPoolExecutor(
            max_workers=jobs,
            initializer=worker_init,
            initargs=(config.solver_modules,),
        )
        wedged = False
        progressed = False
        fut_to_cell: Dict[object, Cell] = {}
        not_done = set()

        def submit(cell: Cell) -> bool:
            """Queue one cell; False when the pool can't take work."""
            try:
                fut = executor.submit(execute_cell, cell)
            except Exception:  # broken/shut-down pool
                pending.append(cell)
                return False
            fut_to_cell[fut] = cell
            not_done.add(fut)
            return True

        try:
            while pending and submit(pending.popleft()):
                pass

            while not_done:
                done, not_done = wait(
                    not_done, timeout=stall_limit, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Nothing finished inside the grace window: the pool
                    # is wedged beyond what the in-worker alarm can fix
                    # (e.g. native code masking the alarm).  Fail what is
                    # running, requeue what never started, start fresh.
                    wedged = True
                    for fut in not_done:
                        cell = fut_to_cell[fut]
                        if fut.cancel():
                            pending.append(cell)  # never started: no attempt
                            continue
                        now = time.time()
                        outcome = (
                            _fut_outcome(fut)
                            if fut.done()
                            else (
                                "timeout",
                                "worker wedged past the stall watchdog "
                                f"({stall_limit:g}s without progress)",
                                float(stall_limit),
                                (now - float(stall_limit), now),
                            )
                        )
                        progressed = True
                        if handle(cell, outcome):
                            pending.append(cell)
                    for proc in list(executor._processes.values()):
                        proc.terminate()
                    break
                for fut in done:
                    cell = fut_to_cell.pop(fut)
                    progressed = True
                    if handle(cell, _fut_outcome(fut)):
                        submit(cell)
        finally:
            executor.shutdown(wait=not wedged, cancel_futures=True)
        if pending and not progressed:
            raise EngineError(
                "engine cannot make progress: the worker pool dies before "
                f"completing any of the {len(pending)} remaining cells"
            )


def _fut_outcome(fut):
    """A future's outcome tuple, mapping pool breakage to an error."""
    try:
        return fut.result()
    except Exception as exc:  # BrokenProcessPool, pickling failures, ...
        now = time.time()
        return (
            "error",
            f"worker failed: {type(exc).__name__}: {exc}",
            0.0,
            (now, now),
        )
