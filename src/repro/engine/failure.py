"""Failure policy: what the engine records when a cell cannot produce a result.

A *cell* is one (graph, solver) pair of a sweep.  The engine never lets a
cell kill the sweep: a raising solver, a wedged worker, or a cell that
blows its time budget becomes a :class:`FailedRun` — a structured,
JSON-serializable record that rides along in
:class:`~repro.harness.SuiteRun` and the JSONL result store, so a 226-graph
sweep always completes and reports exactly which cells did not.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

from repro.errors import EngineError

__all__ = ["FailedRun", "FAILURE_KINDS"]

#: ``error`` — the solver (or graph build) raised; ``timeout`` — the cell
#: exceeded its per-cell budget (in-worker alarm or parent-side backstop).
FAILURE_KINDS = ("error", "timeout")


@dataclass(frozen=True)
class FailedRun:
    """One cell of a sweep that produced no :class:`SSSPResult`.

    Attributes
    ----------
    graph / category / solver:
        The cell's coordinates in the sweep.
    kind:
        One of :data:`FAILURE_KINDS`.
    message:
        Human-readable cause (exception type and text, or the budget that
        was exceeded).
    attempts:
        How many times the engine tried the cell before giving up
        (bounded by the engine's ``max_attempts``).
    elapsed_s:
        Wall-clock seconds the *last* attempt consumed.
    """

    graph: str
    category: str
    solver: str
    kind: str
    message: str
    attempts: int
    elapsed_s: float

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise EngineError(
                f"unknown failure kind {self.kind!r}; expected one of "
                f"{FAILURE_KINDS}"
            )

    def describe(self) -> str:
        """One-line summary for logs and the CLI failure report."""
        return (
            f"{self.graph}: {self.solver} {self.kind} after "
            f"{self.attempts} attempt(s) ({self.elapsed_s:.2f}s): {self.message}"
        )

    def to_json_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "FailedRun":
        try:
            return cls(
                graph=str(payload["graph"]),
                category=str(payload["category"]),
                solver=str(payload["solver"]),
                kind=str(payload["kind"]),
                message=str(payload["message"]),
                attempts=int(payload["attempts"]),
                elapsed_s=float(payload["elapsed_s"]),
            )
        except KeyError as exc:
            raise EngineError(f"failure record missing field {exc}") from None
