"""Incremental JSONL result store: crash-safe persistence for sweeps.

Every completed cell of a sweep is appended to the store as one JSON line
the moment it finishes, so an interrupted 226-graph sweep resumes where it
stopped instead of starting over.  The format is line-oriented on purpose:
appends are atomic enough in practice (single ``write`` + ``flush`` of one
line), a truncated final line from a hard kill is detected and ignored,
and the file doubles as a machine-readable sweep log (``jq``-able, one
record per line).

Line shapes (all carry ``"schema": 1`` — see ``docs/schema.md``)::

    {"schema": 1, "kind": "result",  "category": ..., "result": {...}}
    {"schema": 1, "kind": "failure", "failure": {"graph": ..., ...}}

Distance vectors round-trip *exactly* (base64 of the float64 buffer), so
a resumed sweep verifies and reports identically to an uninterrupted one.
Timelines, tracers and the typed metrics registry are deliberately not
persisted — they are observability artifacts, not sweep state; a restored
result carries its flat ``stats`` dict and ``metrics=None``.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.baselines.common import RESULT_SCHEMA_VERSION, SSSPResult
from repro.engine.failure import FailedRun
from repro.errors import EngineError
from repro.gpu.timeline import Timeline

__all__ = ["ResultStore", "StoreContents", "result_to_json", "result_from_json"]


def result_to_json(result: SSSPResult) -> Dict[str, object]:
    """Serialize a result for the store (exact-distance superset of
    :meth:`~repro.baselines.common.SSSPResult.to_json_dict`)."""
    payload = result.to_json_dict()
    dist = np.ascontiguousarray(result.dist, dtype=np.float64)
    payload["dist_b64"] = base64.b64encode(dist.tobytes()).decode("ascii")
    return payload


def result_from_json(payload: Dict[str, object]) -> SSSPResult:
    """Rebuild a result persisted by :func:`result_to_json`.

    The distance vector is bit-exact; timeline/metrics/predecessors are
    not persisted and come back empty/None.
    """
    try:
        dist = np.frombuffer(
            base64.b64decode(payload["dist_b64"]), dtype=np.float64
        ).copy()
        return SSSPResult(
            solver=str(payload["solver"]),
            graph_name=str(payload["graph"]),
            source=int(payload["source"]),
            dist=dist,
            work_count=int(payload["work_count"]),
            time_us=float(payload["time_us"]),
            timeline=Timeline(label=str(payload["solver"])),
            stats=dict(payload.get("stats") or {}),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise EngineError(f"corrupt result record: {exc}") from None


class StoreContents:
    """What :meth:`ResultStore.load` returns.

    ``results`` maps ``(graph_name, solver)`` to ``(category, result)``;
    ``failures`` lists the failure records in file order.  A later line
    for the same cell supersedes an earlier one (re-running a previously
    failed cell appends its fresh outcome).
    """

    def __init__(self) -> None:
        self.results: Dict[Tuple[str, str], Tuple[str, SSSPResult]] = {}
        self.failures: List[FailedRun] = []

    def __len__(self) -> int:
        return len(self.results)


class ResultStore:
    """Append-only JSONL persistence for sweep cells.

    The store is written by exactly one process (the engine parent); it
    flushes after every line so the on-disk state always reflects every
    completed cell, no matter how the sweep dies.
    """

    def __init__(self, path: Union[str, Path], *, truncate: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if truncate and self.path.exists():
            self.path.unlink()
        self._fh = None

    # -- writing ----------------------------------------------------------- #

    def _write_line(self, payload: Dict[str, object]) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        json.dump(payload, self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self._fh.flush()

    def append_result(self, category: str, result: SSSPResult) -> None:
        self._write_line(
            {
                "schema": RESULT_SCHEMA_VERSION,
                "kind": "result",
                "category": category,
                "result": result_to_json(result),
            }
        )

    def append_failure(self, failed: FailedRun) -> None:
        # the failure rides nested: FailedRun has its own ``kind`` field
        # (error/timeout), which must not collide with the record kind
        self._write_line(
            {
                "schema": RESULT_SCHEMA_VERSION,
                "kind": "failure",
                "failure": failed.to_json_dict(),
            }
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading ----------------------------------------------------------- #

    def load(self) -> StoreContents:
        """Parse the store for resumption.

        A truncated *final* line (the signature of a hard kill mid-append)
        is ignored; a malformed line anywhere else means the file is not
        a result store and raises :class:`~repro.errors.EngineError`.
        """
        contents = StoreContents()
        if not self.path.exists():
            return contents
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    break  # torn final append from an interrupted sweep
                raise EngineError(
                    f"{self.path}:{lineno}: malformed store line"
                ) from None
            self._ingest(payload, lineno, contents)
        return contents

    def _ingest(
        self, payload: Dict[str, object], lineno: int, contents: StoreContents
    ) -> None:
        schema = payload.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise EngineError(
                f"{self.path}:{lineno}: store schema {schema!r} != "
                f"{RESULT_SCHEMA_VERSION} (regenerate the store)"
            )
        kind = payload.get("kind")
        if kind == "result":
            result = result_from_json(payload.get("result") or {})
            contents.results[(result.graph_name, result.solver)] = (
                str(payload.get("category", "")),
                result,
            )
        elif kind == "failure":
            contents.failures.append(
                FailedRun.from_json_dict(payload.get("failure") or {})
            )
        else:
            raise EngineError(
                f"{self.path}:{lineno}: unknown store record kind {kind!r}"
            )
