"""The long-lived query executor: the engine's substrate, re-plumbed for
serving.

:func:`~repro.engine.scheduler.run_cells` is sweep-shaped: build a grid,
execute it, tear everything down.  A serving session
(:mod:`repro.serve`) has the opposite lifecycle — the executor outlives
any individual request, the worker pool stays warm, the graph cache and
result log persist across queries.  :class:`QueryExecutor` packages the
engine's three reusable pieces behind that lifecycle:

- **execution** — cells run through the same
  :func:`repro.engine.worker.execute_cell` fault-isolation boundary the
  sweep scheduler uses, either inline (``jobs=1``, the deterministic
  reference: the solve happens on the calling thread, zero
  serialization) or on a persistent ``ProcessPoolExecutor``;
- **graph cache** — an optional on-disk
  :class:`~repro.engine.cache.GraphCache` shared by all workers, so
  spec-backed cells materialize from disk instead of regenerating;
- **result log** — an optional JSONL :class:`~repro.engine.store.
  ResultStore` that every completed solve is appended to, turning the
  sweep's resume store into a serving-side query log.

Every path returns the worker outcome tuple
``(kind, detail, elapsed_s, (started_at, ended_at))`` — see
:mod:`repro.engine.worker` — via a :class:`concurrent.futures.Future`,
so callers batch, demux and time-out uniformly regardless of where the
solve ran.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.engine.store import ResultStore
from repro.engine.worker import execute_cell, worker_init
from repro.errors import EngineError

__all__ = ["QueryExecutor"]


class QueryExecutor:
    """Dispatch target for long-lived query traffic.

    Parameters
    ----------
    jobs:
        ``1`` (default) executes inline on the calling thread — the
        bit-identical reference path, and the right choice when cells
        carry prebuilt in-memory graphs (nothing is pickled).  ``N > 1``
        keeps a persistent pool of ``N`` worker processes; cells should
        then carry picklable :class:`~repro.graphs.suite.GraphSpec`\\ s
        (workers memoize built graphs per process).
    cache_dir:
        On-disk graph cache directory forwarded to workers via each
        cell's ``cache_dir`` (set by the caller when planning cells).
        Kept here so a session can hand one configured path to both its
        cell planning and this executor's bookkeeping.
    store_path:
        When set, every successful solve is appended to a JSONL
        :class:`ResultStore` (category ``cell.category``) — an audit log
        of what the executor actually served, in the exact store format
        sweeps resume from.
    solver_modules:
        Extra modules imported in the parent and every worker before
        solving (the out-of-tree solver plugin hook).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        store_path: Optional[Union[str, Path]] = None,
        solver_modules: Tuple[str, ...] = (),
    ) -> None:
        if jobs < 1:
            raise EngineError(f"jobs must be >= 1 (got {jobs})")
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.solver_modules = tuple(solver_modules)
        worker_init(self.solver_modules)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._store: Optional[ResultStore] = None
        if store_path is not None:
            self._store = ResultStore(store_path)
        self._closed = False
        #: Cells dispatched over the executor's lifetime.
        self.dispatched = 0

    # -- lifecycle --------------------------------------------------------- #

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=worker_init,
                initargs=(self.solver_modules,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down and close the result log (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch ---------------------------------------------------------- #

    def submit(self, cell) -> "Future":
        """Dispatch one cell; the future resolves to its outcome tuple.

        Inline mode (``jobs=1``) executes before returning — the future
        is already done — which keeps single-threaded callers simple and
        deterministic; pool mode returns a pending future.  Solver-level
        failures surface as ``("error"|"timeout", ...)`` outcomes, never
        as future exceptions (the fault-isolation contract of
        :func:`~repro.engine.worker.execute_cell`).
        """
        if self._closed:
            raise EngineError("QueryExecutor is closed")
        self.dispatched += 1
        if self.jobs == 1:
            fut: Future = Future()
            fut.set_result(self._record(cell, execute_cell(cell)))
            return fut
        pool_fut = self._ensure_pool().submit(execute_cell, cell)
        out: Future = Future()

        def _relay(f) -> None:
            try:
                outcome = f.result()
            except Exception as exc:  # BrokenProcessPool, pickling, ...
                import time

                now = time.time()
                outcome = (
                    "error",
                    f"worker failed: {type(exc).__name__}: {exc}",
                    0.0,
                    (now, now),
                )
            out.set_result(self._record(cell, outcome))

        pool_fut.add_done_callback(_relay)
        return out

    def execute(self, cell):
        """Dispatch one cell and block for its outcome tuple."""
        return self.submit(cell).result()

    def _record(self, cell, outcome):
        if self._store is not None and outcome[0] == "ok":
            self._store.append_result(cell.category, outcome[1])
        return outcome
