"""Worker-side execution primitives shared by the engine's frontends.

This module is the bottom layer of :mod:`repro.engine`: everything a
worker process (or an in-process caller) needs to turn one
:class:`~repro.engine.scheduler.Cell` into an outcome — graph
materialization with a per-process memo, the ``SIGALRM`` cell alarm, and
the fault-isolation boundary that converts any solver-level explosion
into a plain picklable outcome tuple.  Two frontends drive it:

- :func:`repro.engine.scheduler.run_cells` — the one-shot sweep runner
  (plan a grid, fan out, retry, persist);
- :class:`repro.engine.executor.QueryExecutor` — the long-lived query
  executor a serving session dispatches to (:mod:`repro.serve`).

Outcome tuples are ``(kind, detail, elapsed_s, span)`` where ``kind`` is
``"ok"``/``"timeout"``/``"error"``, ``detail`` is the
:class:`~repro.baselines.common.SSSPResult` or a message string,
``elapsed_s`` is the monotonic duration, and ``span`` is the
``(started_at, ended_at)`` *wall-clock* (epoch-seconds) pair — the
per-query timestamps latency percentiles are computed from, recorded in
the worker so the parent never has to re-instrument.
"""

from __future__ import annotations

import importlib
import signal
import threading
import time
from contextlib import contextmanager
from typing import Dict, Optional, Sequence, Tuple

from repro.baselines.common import SolveRequest, get_solver
from repro.engine.cache import GraphCache
from repro.errors import EngineError
from repro.graphs.csr import CSRGraph

__all__ = [
    "CellTimeout",
    "cell_alarm",
    "execute_cell",
    "materialize_graph",
    "worker_init",
]


class CellTimeout(Exception):
    """Raised inside a worker when a cell exceeds its time budget."""


#: Per-process memo of built graphs: (cache_key, display_name) -> CSRGraph.
#: Workers run many cells against the same graph; building it once per
#: process keeps spec shipping cheaper than array shipping.
_GRAPH_MEMO: Dict[Tuple[str, str], CSRGraph] = {}


def worker_init(solver_modules: Sequence[str]) -> None:
    """Pool initializer: make sure every solver the sweep needs exists in
    this process's registry (the core registry populates on import of
    :mod:`repro`; plugins must be imported explicitly)."""
    for mod in solver_modules:
        importlib.import_module(mod)


@contextmanager
def cell_alarm(timeout_s: Optional[float]):
    """Arm ``SIGALRM`` to bound one cell, where the platform allows it.

    Signals only deliver to main threads on POSIX; elsewhere (including
    a serving session's batcher thread) the caller's own deadline policy
    is the only enforcement layer.
    """
    usable = (
        timeout_s is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeout()

    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


def materialize_graph(cell) -> CSRGraph:
    """Obtain the cell's graph in this process (memoized)."""
    if cell.graph is not None:
        return cell.graph
    if cell.graph_spec is None:
        raise EngineError(f"cell {cell.key} carries neither graph nor spec")
    memo_key = (cell.graph_spec.cache_key(), cell.graph_name)
    g = _GRAPH_MEMO.get(memo_key)
    if g is None:
        if cell.cache_dir is not None:
            g = GraphCache(cell.cache_dir).get_or_build(
                cell.graph_spec, name=cell.graph_name
            )
        else:
            g = cell.graph_spec.build()
        if g.name != cell.graph_name:
            g = CSRGraph(
                row_offsets=g.row_offsets,
                col_indices=g.col_indices,
                weights=g.weights,
                name=cell.graph_name,
            )
        _GRAPH_MEMO[memo_key] = g
    return g


def execute_cell(cell) -> Tuple[str, object, float, Tuple[float, float]]:
    """Run one cell; never raises for solver-level problems.

    Returns the outcome tuple documented in the module docstring — a
    plain picklable value, so even exotic solver exceptions can't break
    the result channel back to the parent.
    """
    t0 = time.monotonic()
    started_at = time.time()
    try:
        graph = materialize_graph(cell)
        request = SolveRequest(
            graph=graph,
            source=cell.source,
            spec=cell.spec,
            cost=cell.cost,
            scheduler=getattr(cell, "scheduler", None),
            exec_mode=getattr(cell, "exec_mode", None),
            warm_from=getattr(cell, "warm_from", None),
            updates=getattr(cell, "updates", None),
            options=dict(cell.options),
        )
        with cell_alarm(cell.timeout_s):
            result = get_solver(cell.solver).solve(request)
        return ("ok", result, time.monotonic() - t0, (started_at, time.time()))
    except CellTimeout:
        return (
            "timeout",
            f"exceeded the {cell.timeout_s:g}s per-cell budget",
            time.monotonic() - t0,
            (started_at, time.time()),
        )
    except Exception as exc:  # fault-isolation boundary: record, don't kill
        return (
            "error",
            f"{type(exc).__name__}: {exc}",
            time.monotonic() - t0,
            (started_at, time.time()),
        )
