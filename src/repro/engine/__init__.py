"""``repro.engine`` — the parallel, fault-tolerant experiment engine.

The substrate under :func:`repro.harness.run_suite`: it turns a
(suite × solvers) sweep into independent *cells*, fans them over worker
processes, bounds each cell with a time budget and retry policy, records
failed cells as structured :class:`FailedRun`\\ s instead of dying,
streams completed cells into a resumable JSONL :class:`ResultStore`, and
caches built suite graphs on disk (:class:`GraphCache`) so repeated
sweeps skip regeneration.

Layers, adoptable independently:

- :mod:`repro.engine.worker` — worker-side primitives (graph
  materialization, the cell alarm, :func:`execute_cell`'s
  fault-isolation boundary);
- :mod:`repro.engine.scheduler` — cell planning and sweep policy
  (:class:`EngineConfig`, :func:`plan_cells`, :func:`run_cells`);
- :mod:`repro.engine.executor` — the long-lived :class:`QueryExecutor`
  serving sessions dispatch to (:mod:`repro.serve`);
- :mod:`repro.engine.store` — incremental JSONL persistence and resume;
- :mod:`repro.engine.cache` — content-addressed on-disk graph cache;
- :mod:`repro.engine.failure` — the :class:`FailedRun` record;
- :mod:`repro.engine.testing` — fault-injection solvers for exercising
  the failure paths.
"""

from repro.engine.cache import CACHE_FORMAT_VERSION, GraphCache
from repro.engine.executor import QueryExecutor
from repro.engine.failure import FAILURE_KINDS, FailedRun
from repro.engine.scheduler import (
    Cell,
    EngineConfig,
    EngineResult,
    plan_cells,
    run_cells,
)
from repro.engine.store import ResultStore, result_from_json, result_to_json
from repro.engine.worker import execute_cell, materialize_graph, worker_init

__all__ = [
    "Cell",
    "EngineConfig",
    "EngineResult",
    "QueryExecutor",
    "plan_cells",
    "run_cells",
    "execute_cell",
    "materialize_graph",
    "worker_init",
    "FailedRun",
    "FAILURE_KINDS",
    "GraphCache",
    "CACHE_FORMAT_VERSION",
    "ResultStore",
    "result_to_json",
    "result_from_json",
]
