"""On-disk graph cache keyed by :meth:`~repro.graphs.suite.GraphSpec.cache_key`.

Suite graphs are deterministic functions of their generator parameters,
but generating the larger corpus entries costs real time, and a sweep
re-runs the same corpus over and over.  The cache stores each built graph
as an ``.npz`` of its CSR arrays under a content hash of the spec, so

- repeated sweeps skip regeneration entirely, and
- engine worker processes load a cell's graph with one mmap-friendly
  read instead of receiving megabytes of pickled arrays per cell.

Writes are atomic (temp file + ``os.replace``), so concurrent workers
racing to populate the same key at worst do redundant work — they can
never observe a half-written file.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.suite import GraphSpec

__all__ = ["GraphCache", "CACHE_FORMAT_VERSION"]

#: Bump to invalidate every cached graph (e.g. when a generator's output
#: for identical parameters legitimately changes).
CACHE_FORMAT_VERSION = 1


class GraphCache:
    """Content-addressed store of built suite graphs.

    ``hits``/``misses`` count :meth:`get_or_build` outcomes for the
    lifetime of this instance (the engine surfaces them via progress
    messages and tests assert on them).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: GraphSpec) -> Path:
        return self.root / f"v{CACHE_FORMAT_VERSION}-{spec.cache_key()}.npz"

    def load(self, spec: GraphSpec) -> Optional[CSRGraph]:
        """The cached graph for ``spec``, or None on a miss.

        A corrupt cache entry is deleted and reported as a miss — the
        caller regenerates and overwrites it — rather than poisoning the
        sweep.
        """
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                return CSRGraph(
                    row_offsets=data["row_offsets"],
                    col_indices=data["col_indices"],
                    weights=data["weights"],
                    name=str(data["name"]),
                )
        except Exception:
            path.unlink(missing_ok=True)
            return None

    def store(self, spec: GraphSpec, graph: CSRGraph) -> Path:
        """Atomically persist ``graph`` under ``spec``'s key."""
        path = self.path_for(spec)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    row_offsets=graph.row_offsets,
                    col_indices=graph.col_indices,
                    weights=graph.weights,
                    name=np.asarray(graph.name),
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def get_or_build(self, spec: GraphSpec, *, name: Optional[str] = None) -> CSRGraph:
        """Return the graph for ``spec``, building and caching on a miss.

        ``name`` relabels the returned graph (suite entries carry their
        own display names); the cached arrays are name-independent.
        """
        g = self.load(spec)
        if g is None:
            self.misses += 1
            g = spec.build()
            self.store(spec, g)
        else:
            self.hits += 1
        if name is not None and g.name != name:
            g = CSRGraph(
                row_offsets=g.row_offsets,
                col_indices=g.col_indices,
                weights=g.weights,
                name=name,
            )
        return g

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("v*-*.npz"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphCache({str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
