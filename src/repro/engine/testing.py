"""Fault-injection solvers for exercising the engine's failure paths.

Real solvers (hopefully) don't hang or crash on demand, so the engine's
timeout/retry/degradation machinery needs purpose-built adversaries.  This
module registers three tiny solvers — importable by engine workers via
``EngineConfig.solver_modules=("repro.engine.testing",)``:

``eng-const``
    Returns instantly with a trivial all-zero result (the fast "good
    neighbour" cell other cells fail next to).
``eng-crash``
    Raises :class:`~repro.errors.SolverError` every time.
``eng-hang``
    Sleeps for ``hang_s`` seconds (default: effectively forever) — the
    cell the per-cell alarm must reap.
``eng-flaky``
    Fails until its ``latch`` file exists, creating it on the first
    attempt — so the *retry* (in any process) succeeds.  Exercises the
    bounded-retry path end to end.

Registration is idempotent via :func:`register`; tests that import this
module should call :func:`unregister` afterwards so suite-wide
"every registered solver" checks don't pick up the saboteurs.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.baselines.common import (
    SOLVERS,
    SSSPResult,
    register_solver,
    solver_metrics,
)
from repro.errors import SolverError

__all__ = ["FAULT_SOLVER_NAMES", "register", "unregister"]

FAULT_SOLVER_NAMES = ("eng-const", "eng-crash", "eng-hang", "eng-flaky")


def _const_result(graph, source: int, solver: str) -> SSSPResult:
    dist = np.full(graph.num_vertices, np.inf, dtype=np.float64)
    dist[source] = 0.0
    metrics = solver_metrics(work_count=1)
    return SSSPResult(
        solver=solver,
        graph_name=graph.name,
        source=source,
        dist=dist,
        work_count=1,
        time_us=1.0,
        metrics=metrics,
        stats=metrics.snapshot(),
    )


def _solve_const(graph, source: int = 0, **_opts) -> SSSPResult:
    return _const_result(graph, source, "eng-const")


def _solve_crash(graph, source: int = 0, **_opts) -> SSSPResult:
    raise SolverError("injected failure (eng-crash)")


def _solve_hang(graph, source: int = 0, *, hang_s: float = 3600.0, **_opts):
    time.sleep(hang_s)
    return _const_result(graph, source, "eng-hang")


def _solve_flaky(graph, source: int = 0, *, latch=None, **_opts) -> SSSPResult:
    if latch is None:
        raise SolverError("eng-flaky needs a latch=<path> option")
    latch = Path(latch)
    if not latch.exists():
        latch.touch()
        raise SolverError("injected first-attempt failure (eng-flaky)")
    return _const_result(graph, source, "eng-flaky")


_FNS = {
    "eng-const": _solve_const,
    "eng-crash": _solve_crash,
    "eng-hang": _solve_hang,
    "eng-flaky": _solve_flaky,
}


def register() -> None:
    """Idempotently register the fault solvers."""
    for name, fn in _FNS.items():
        if name not in SOLVERS:
            register_solver(name)(fn)


def unregister() -> None:
    """Remove the fault solvers from the registry (test teardown)."""
    for name in FAULT_SOLVER_NAMES:
        SOLVERS.pop(name, None)


register()
