"""Result analysis: the distribution binning and rendering behind the
paper's Tables 2–5 and Figures 8–15."""

from repro.analysis.distributions import (
    SPEEDUP_BINS,
    WORK_BINS,
    Distribution,
    bin_ratios,
    geometric_mean,
)
from repro.analysis.efficiency import EfficiencyPoint, classify_region, efficiency_points
from repro.analysis.report import (
    ascii_scatter,
    ascii_series,
    format_distribution_table,
    format_table,
)

__all__ = [
    "SPEEDUP_BINS",
    "WORK_BINS",
    "Distribution",
    "bin_ratios",
    "geometric_mean",
    "EfficiencyPoint",
    "efficiency_points",
    "classify_region",
    "format_table",
    "format_distribution_table",
    "ascii_scatter",
    "ascii_series",
]
