"""Figure 10's speedup-vs-work-efficiency analysis.

Each graph becomes a point ``(work_efficiency_gain, speedup)`` where both
axes are ADDS relative to a baseline (NF in the paper).  The diagonal is
perfect correlation — speedup explained entirely by doing less work.  The
paper names three regions (§6.4):

- **upper left** ("parallelism"): more work, yet faster — NF underutilized
  the hardware (road-USA's cluster);
- **diagonal** ("work"): speedup tracks work savings (rmat22, msdoor);
- **lower right** ("underparallel"): work saved but parallelism lost, so
  the speedup trails the savings (c-big).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.baselines.common import SSSPResult

__all__ = ["EfficiencyPoint", "efficiency_points", "classify_region"]


@dataclass(frozen=True)
class EfficiencyPoint:
    """One graph's position on the Figure 10 plane."""

    graph: str
    #: baseline work / ADDS work — the inverse-vertex-count ratio; >1 means
    #: ADDS processed fewer vertices ("w:" in Figures 11–15).
    work_gain: float
    #: baseline time / ADDS time ("s:" in Figures 11–15).
    speedup: float

    @property
    def region(self) -> str:
        return classify_region(self.work_gain, self.speedup)


def classify_region(
    work_gain: float, speedup: float, *, tolerance: float = 1.35
) -> str:
    """Name the Figure 10 region of a point.

    ``tolerance`` is the multiplicative distance from the diagonal that
    still counts as "correlated".
    """
    if work_gain <= 0 or speedup <= 0:
        raise ValueError("ratios must be positive")
    ratio = speedup / work_gain
    if ratio > tolerance:
        return "parallelism"  # upper-left: faster than the work explains
    if ratio < 1.0 / tolerance:
        return "underparallel"  # lower-right: work saved, time not
    return "work"  # on the diagonal


def efficiency_points(
    pairs: Iterable[tuple],
) -> List[EfficiencyPoint]:
    """Build points from ``(adds_result, baseline_result)`` pairs."""
    pts = []
    for adds, base in pairs:
        if not isinstance(adds, SSSPResult) or not isinstance(base, SSSPResult):
            raise TypeError("expected (SSSPResult, SSSPResult) pairs")
        if adds.graph_name != base.graph_name:
            raise ValueError(
                f"mismatched pair: {adds.graph_name} vs {base.graph_name}"
            )
        pts.append(
            EfficiencyPoint(
                graph=adds.graph_name,
                work_gain=base.work_count / max(1, adds.work_count),
                speedup=base.time_us / max(1e-12, adds.time_us),
            )
        )
    return pts
