"""Ratio distributions with the paper's exact bin edges.

Table 3 / Table 5 bin speedups into
``<0.9, 0.9–1.1, 1.1–1.5, 1.5–2, 2–3, 3–5, >=5``;
Table 4 bins work ratios (vertices processed, ADDS over baseline) into
``<0.25, 0.25–0.5, 0.5–0.75, 0.75–1, 1–1.5, 1.5–3, >3``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "SPEEDUP_BINS",
    "WORK_BINS",
    "Distribution",
    "bin_ratios",
    "geometric_mean",
]

#: Table 3 / Table 5 speedup bin edges: (low, high, label).
SPEEDUP_BINS: Tuple[Tuple[float, float, str], ...] = (
    (0.0, 0.9, "<0.9x"),
    (0.9, 1.1, "0.9x-1.1x"),
    (1.1, 1.5, "1.1x-1.5x"),
    (1.5, 2.0, "1.5x-2x"),
    (2.0, 3.0, "2x-3x"),
    (3.0, 5.0, "3x-5x"),
    (5.0, math.inf, ">=5x"),
)

#: Table 4 work-ratio bin edges.
WORK_BINS: Tuple[Tuple[float, float, str], ...] = (
    (0.0, 0.25, "<0.25x"),
    (0.25, 0.5, "0.25x-0.5x"),
    (0.5, 0.75, "0.5x-0.75x"),
    (0.75, 1.0, "0.75x-1x"),
    (1.0, 1.5, "1x-1.5x"),
    (1.5, 3.0, "1.5x-3x"),
    (3.0, math.inf, ">3x"),
)


@dataclass(frozen=True)
class Distribution:
    """A binned ratio distribution plus summary statistics."""

    label: str
    bins: Tuple[Tuple[float, float, str], ...]
    counts: Tuple[int, ...]
    values: Tuple[float, ...]

    @property
    def total(self) -> int:
        return len(self.values)

    def count(self, bin_label: str) -> int:
        for (lo, hi, lab), c in zip(self.bins, self.counts):
            if lab == bin_label:
                return c
        raise KeyError(bin_label)

    def fraction(self, bin_label: str) -> float:
        return self.count(bin_label) / self.total if self.total else 0.0

    def fraction_at_least(self, threshold: float) -> float:
        """Fraction of values >= threshold (e.g. the paper's '78.8% of
        graphs see speedup of at least 1.5x')."""
        if not self.values:
            return 0.0
        return sum(1 for v in self.values if v >= threshold) / self.total

    @property
    def arithmetic_mean(self) -> float:
        return sum(self.values) / self.total if self.total else 0.0

    @property
    def geomean(self) -> float:
        return geometric_mean(self.values)

    def row_cells(self) -> List[str]:
        """``count (pct%)`` cells in bin order, like the paper's tables."""
        return [
            f"{c} ({100 * c / self.total:.0f}%)" if self.total else "0 (0%)"
            for c in self.counts
        ]


def bin_ratios(
    values: Sequence[float],
    *,
    bins: Tuple[Tuple[float, float, str], ...] = SPEEDUP_BINS,
    label: str = "",
) -> Distribution:
    """Bin ratio values into a :class:`Distribution` (right-open bins)."""
    counts = [0] * len(bins)
    for v in values:
        if not math.isfinite(v) or v < 0:
            raise ValueError(f"ratio values must be finite and >= 0, got {v}")
        for i, (lo, hi, _) in enumerate(bins):
            if lo <= v < hi:
                counts[i] += 1
                break
    return Distribution(
        label=label, bins=tuple(bins), counts=tuple(counts), values=tuple(values)
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, 0-safe via a tiny floor."""
    vals = [max(v, 1e-12) for v in values]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
