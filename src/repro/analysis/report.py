"""Plain-text rendering: tables like the paper's, ASCII scatter/series.

Everything prints with monospace alignment so bench output is directly
comparable to the paper's tables and figures in a terminal or log file.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.analysis.distributions import Distribution

__all__ = [
    "format_table",
    "format_distribution_table",
    "ascii_scatter",
    "ascii_series",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """A boxless aligned table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_distribution_table(
    distributions: Sequence[Distribution], *, title: str = ""
) -> str:
    """Render Distributions as a Table 3/4/5-style grid: one row per
    distribution, one column per bin, cells ``count (pct%)``."""
    if not distributions:
        return title
    bins = distributions[0].bins
    for d in distributions:
        if d.bins != bins:
            raise ValueError("distributions use different bins")
    headers = [""] + [lab for _, _, lab in bins]
    rows = [[d.label] + d.row_cells() for d in distributions]
    return format_table(headers, rows, title=title)


def _axis(values: Sequence[float], log: bool) -> tuple:
    vals = [v for v in values if v > 0] if log else list(values)
    lo, hi = min(vals), max(vals)
    if log:
        lo, hi = math.log10(lo), math.log10(hi)
    if hi == lo:
        hi = lo + 1.0
    return lo, hi


def ascii_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
    marker: str = "*",
    labels: Sequence[str] = None,
) -> str:
    """A terminal scatter plot (the Figures 8–10 rendering).

    ``labels``, when given, mark each point with its first character
    instead of ``marker`` — used to tag the named graphs A–E like
    Figure 10 does.
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("need equal-length non-empty xs/ys")
    x_lo, x_hi = _axis(xs, log_x)
    y_lo, y_hi = _axis(ys, log_y)
    grid = [[" "] * width for _ in range(height)]
    for i, (x, y) in enumerate(zip(xs, ys)):
        if (log_x and x <= 0) or (log_y and y <= 0):
            continue
        fx = (math.log10(x) if log_x else x)
        fy = (math.log10(y) if log_y else y)
        cx = min(width - 1, int((fx - x_lo) / (x_hi - x_lo) * (width - 1)))
        cy = min(height - 1, int((fy - y_lo) / (y_hi - y_lo) * (height - 1)))
        ch = labels[i][0] if labels and labels[i] else marker
        grid[height - 1 - cy][cx] = ch
    lines = []
    if title:
        lines.append(title)
    top = f"{(10 ** y_hi if log_y else y_hi):.3g}"
    bot = f"{(10 ** y_lo if log_y else y_lo):.3g}"
    for r, row in enumerate(grid):
        prefix = top if r == 0 else (bot if r == height - 1 else "")
        lines.append(f"{prefix:>8s} |" + "".join(row))
    left = f"{(10 ** x_lo if log_x else x_lo):.3g}"
    right = f"{(10 ** x_hi if log_x else x_hi):.3g}"
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + left + " " * max(1, width - len(left) - len(right)) + right)
    return "\n".join(lines)


def ascii_series(
    series: Dict[str, Sequence[tuple]],
    *,
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Overlay several (t, value) step series (the Figures 11–15 rendering);
    each series is marked by the first letter of its name."""
    all_t = [t for pts in series.values() for t, _ in pts]
    all_v = [v for pts in series.values() for _, v in pts]
    if not all_t:
        raise ValueError("empty series")
    x_lo, x_hi = _axis(all_t, False)
    pos_v = [v for v in all_v if v > 0] or [1.0]
    y_lo, y_hi = _axis(pos_v if log_y else all_v, log_y)
    grid = [[" "] * width for _ in range(height)]
    for name, pts in series.items():
        ch = name[0]
        for t, v in pts:
            if log_y and v <= 0:
                continue
            fv = math.log10(v) if log_y else v
            cx = min(width - 1, int((t - x_lo) / (x_hi - x_lo) * (width - 1)))
            cy = min(height - 1, int((fv - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - cy][cx] = ch
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        top = f"{(10 ** y_hi if log_y else y_hi):.3g}"
        bot = f"{(10 ** y_lo if log_y else y_lo):.3g}"
        prefix = top if r == 0 else (bot if r == height - 1 else "")
        lines.append(f"{prefix:>8s} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f"{x_lo:.3g}"
        + " " * max(1, width - 16)
        + f"{x_hi:.3g} us"
    )
    legend = "   ".join(f"{name[0]} = {name}" for name in series)
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
