"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by this package derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphFormatError(ReproError):
    """A graph file (GR / DIMACS) is malformed or uses an unsupported variant."""


class GraphConstructionError(ReproError):
    """Inconsistent inputs when building a :class:`~repro.graphs.csr.CSRGraph`."""


class DeviceError(ReproError):
    """The simulated device was misused (e.g. program yielded a bad event)."""


class ProtocolError(ReproError):
    """An invariant of the SRMW bucket-queue protocol was violated.

    These indicate a bug in the scheduler implementation (or a deliberately
    corrupted state in a test), never a user error.
    """


class InvariantViolation(ProtocolError):
    """The dynamic protocol checker (:mod:`repro.check`) observed a state
    transition the SRMW protocol forbids.

    Subclasses :class:`ProtocolError` — a checker finding *is* a protocol
    violation — but stays distinct so the check runner can tell "the
    sanitizer caught it" from the queue's own built-in guards."""


class AllocationError(ReproError):
    """The FIFO block allocator ran out of memory or was used out of order."""


class SolverError(ReproError):
    """An SSSP solver was configured inconsistently or failed to converge."""


class ValidationError(ReproError):
    """Two solver results disagree (the ``verify_against`` analog)."""


class TraceError(ReproError):
    """The tracing/metrics subsystem was misused (out-of-order events,
    duplicate metric registration under a different type, ...)."""


class EngineError(ReproError):
    """The experiment engine was misconfigured or its on-disk state
    (result store, graph cache) is corrupt."""


class DynamicError(ReproError):
    """An edge-update stream (:mod:`repro.dynamic`) was malformed or
    inconsistent with the graph it targets: unknown edge, wrong-direction
    weight change, duplicate insert, out-of-range vertex, or a warm
    distance array that cannot seed an incremental re-solve."""


class ServeError(ReproError):
    """The serving layer (:mod:`repro.serve`) was misused or a served
    query failed inside the solver it was dispatched to."""


class AdmissionError(ServeError):
    """A query was rejected at submission because the session's pending
    queue is at its admission limit.  Deliberately raised *at submit*
    (not resolved into the future later): back-pressure the caller can
    react to immediately, instead of a deferred failure."""


class ServeTimeout(ServeError):
    """A query's per-request deadline expired before an answer was
    served.  Delivered through the query's future."""
