"""Dynamic invariant checker for the SRMW bucket-queue protocol.

The paper's correctness argument (§5.2–5.4) is a discipline: WTBs are the
*only writers* into a bucket, each confined to slots it atomically
reserved; the MTB is the *only reader*, trusting a slot only once the
writer's publishing fence has provably executed (the segment-WCC proof);
distances move only downward through ``atomic_min``; and the head bucket
recycles only after everything in it was read *and* completed.  The
simulator's queue enforces a few of these locally (``ProtocolError``
guards), but nothing watches the *protocol* — the cross-block sequencing
a perturbed schedule can break.

:class:`ProtocolChecker` is that watcher.  One fresh instance attaches to
one solve (``solve_adds(..., checker=ProtocolChecker())``); the queue,
the simulated memory, the MTB and the WTBs call back into it on every
protocol operation, and any violation raises
:class:`~repro.errors.InvariantViolation` immediately — schedule, seed
and cycle included, so ``repro check`` can replay the exact failure.

Invariants (the bracketed tag opens every violation message):

``srmw-role``
    Only the reader block computes readable ranges, advances ``read``,
    rotates or manages storage; the reader never reserves, publishes or
    completes.  Host-side code (the solver seeding the source before the
    kernel launches) is neither and may do both.
``resv-overlap``
    Reservations in a bucket epoch are contiguous and disjoint — no two
    writers ever hold overlapping slots.
``publish-bounds``
    A writer publishes only slots inside one of its own outstanding
    reservations, and no slot is published twice in an epoch.
``fence-visibility``
    The reader's computed readable upper never covers an unpublished
    slot (a WCC advertising a write whose fence did not run), the read
    pointer never advances past a verified upper, and every item read
    lies in published, read-claimed storage of the assignment's epoch.
``assign-claim``
    What a WTB claims from its assignment flag is exactly what the MTB
    published to it, in the epoch it was made; completions match the
    claimed assignment.
``dist-monotone``
    The shared distance array never increases between two protocol
    operations, and ``atomic_min`` batches store true minima with at
    most one winning entry per index.
``rotate-guard``
    The head rotates only once fully read, published and completed —
    the §5.4 CWC guard (``unsafe_rotation`` trips this).
``no-lost-work``
    At :meth:`finalize`: reserved == published == read == completed
    totals, no outstanding reservations or assignments, the queue
    reports nothing in flight, and ``missed_wakeups == 0`` (every wake
    arrived through its channel, none via the deadlock rescue).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InvariantViolation

__all__ = ["ProtocolChecker"]

#: Name under which host-side (non-block) protocol operations are tracked.
_HOST = "<host>"


class ProtocolChecker:
    """Asserts SRMW protocol invariants while one ADDS solve runs.

    The checker is pull-free: it holds mirrors of the protocol state
    (published coverage, reservation high-water marks, outstanding
    assignments) updated purely from the hook calls, then cross-checks
    the queue's own metadata against them.  All hooks are no-ops unless
    an instance is attached, and the queue/memory fast paths pay one
    ``is not None`` test when it is not.

    Writer identity comes from :meth:`Device.current_block_name` —
    ``None`` (host code) is exempt from role checks, matching the
    solver's host-side seeding of the source vertex.
    """

    #: The single reader block's name (``solve_adds`` registers it so).
    reader_name = "MTB"

    def __init__(self) -> None:
        self.device = None
        self.queue = None
        self.state = None
        self.violations: List[str] = []
        #: Hook invocations observed (reporting; proves the checker ran).
        self.checked_ops = 0
        self.reserved_total = 0
        self.published_total = 0
        self.read_total = 0
        self.completed_total = 0
        # per-bucket mirrors, sized at attach
        self._pub: List[np.ndarray] = []
        self._hwm: List[int] = []
        self._upper: List[int] = []
        # writer name -> outstanding (unpublished) [slot, start, end)
        self._resv_out: Dict[str, List[list]] = {}
        # "WTB<w>" -> (slot, start, end, epoch) of the live assignment
        self._assigned: Dict[str, Tuple[int, int, int, int]] = {}
        self._dist_snap: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def attach(self, *, device, queue, state=None) -> None:
        """Bind to one solve: hooks into the queue and simulated memory.

        Call before the solver seeds the source so the seed's host-side
        reserve/publish is accounted like any other writer's.
        """
        if self.device is not None:
            raise InvariantViolation(
                "a ProtocolChecker instance checks exactly one solve; "
                "construct a fresh one per run"
            )
        self.device = device
        self.queue = queue
        self.state = state
        nb = queue.n_buckets
        self._pub = [np.zeros(64, dtype=bool) for _ in range(nb)]
        self._hwm = [0] * nb
        self._upper = [0] * nb
        if state is not None:
            state.checker = self
            self._dist_snap = np.array(state.dist, dtype=np.float64, copy=True)
        queue.attach_checker(self)
        device.mem.attach_checker(self)

    def _caller(self) -> Optional[str]:
        return self.device.current_block_name() if self.device is not None else None

    def _fail(self, invariant: str, msg: str) -> None:
        dev = self.device
        if dev is not None:
            msg += f" [cycle {dev.now:.0f}, perturb_seed={dev.perturb_seed}]"
        text = f"[{invariant}] {msg}"
        self.violations.append(text)
        raise InvariantViolation(text)

    def _require_reader(self, op: str, slot: int) -> None:
        caller = self._caller()
        if caller is not None and caller != self.reader_name:
            self._fail(
                "srmw-role",
                f"{caller} performed reader-only op {op} on bucket {slot}; "
                f"only {self.reader_name} manages the read side",
            )

    def _require_writer(self, op: str, slot: int) -> Optional[str]:
        caller = self._caller()
        if caller == self.reader_name:
            self._fail(
                "srmw-role",
                f"reader {self.reader_name} performed writer op {op} on "
                f"bucket {slot}",
            )
        return caller

    def _pub_through(self, slot: int, end: int) -> np.ndarray:
        pub = self._pub[slot]
        if end > pub.size:
            grown = np.zeros(max(end, 2 * pub.size), dtype=bool)
            grown[: pub.size] = pub
            self._pub[slot] = pub = grown
        return pub

    def _check_dist(self, op: str) -> None:
        snap = self._dist_snap
        if snap is None:
            return
        dist = self.state.dist
        raised = dist > snap
        if raised.any():
            v = int(np.argmax(raised))
            self._fail(
                "dist-monotone",
                f"distance of vertex {v} increased {float(snap[v])!r} -> "
                f"{float(dist[v])!r} (observed at {op}); updates must go "
                f"through atomic_min and only decrease",
            )
        np.copyto(snap, dist)

    # ------------------------------------------------------------------ #
    # writer-side hooks (called by BucketQueue)
    # ------------------------------------------------------------------ #

    def on_reserve(self, slot: int, start: int, k: int) -> None:
        self.checked_ops += 1
        caller = self._require_writer("reserve", slot) or _HOST
        hwm = self._hwm[slot]
        if start != hwm:
            self._fail(
                "resv-overlap",
                f"bucket {slot}: {caller}'s reservation [{start},{start + k}) "
                f"does not abut the reservation high-water mark {hwm} — "
                f"resv_ptr was moved outside atomic reservation",
            )
        self._hwm[slot] = start + k
        self._resv_out.setdefault(caller, []).append([slot, start, start + k])
        self.reserved_total += k
        self._check_dist("reserve")

    def on_publish(self, slot: int, start: int, k: int) -> None:
        self.checked_ops += 1
        caller = self._require_writer("publish", slot) or _HOST
        end = start + k
        intervals = self._resv_out.get(caller)
        owned = None
        if intervals:
            for iv in intervals:
                if iv[0] == slot and iv[1] <= start and end <= iv[2]:
                    owned = iv
                    break
        if owned is None:
            self._fail(
                "publish-bounds",
                f"{caller} published [{start},{end}) in bucket {slot} outside "
                f"its own outstanding reservations — a write into another "
                f"writer's (or unreserved) slots",
            )
        # consume the published portion of the owning reservation
        if owned[1] == start and owned[2] == end:
            intervals.remove(owned)
        elif owned[1] == start:
            owned[1] = end
        elif owned[2] == end:
            owned[2] = start
        else:
            intervals.append([slot, end, owned[2]])
            owned[2] = start
        pub = self._pub_through(slot, end)
        if pub[start:end].any():
            dup = start + int(np.argmax(pub[start:end]))
            self._fail(
                "publish-bounds",
                f"bucket {slot}: slot {dup} published twice in one epoch",
            )
        pub[start:end] = True
        self.published_total += k
        self._check_dist("publish")

    def on_complete(self, slot: int, k: int, epoch: int) -> None:
        self.checked_ops += 1
        caller = self._require_writer("complete", slot)
        if caller is not None:
            rec = self._assigned.pop(caller, None)
            if rec is None:
                self._fail(
                    "assign-claim",
                    f"{caller} completed {k} items in bucket {slot} without "
                    f"a live assignment",
                )
            aslot, astart, aend, aepoch = rec
            if aslot != slot or aend - astart != k or aepoch != epoch:
                self._fail(
                    "assign-claim",
                    f"{caller} completed (bucket {slot}, k={k}, epoch {epoch}) "
                    f"but its assignment was (bucket {aslot}, "
                    f"[{astart},{aend}), epoch {aepoch})",
                )
        self.completed_total += k
        self._check_dist("complete")

    # ------------------------------------------------------------------ #
    # reader-side hooks (called by BucketQueue)
    # ------------------------------------------------------------------ #

    def on_readable_upper(self, slot: int, read: int, upper: int) -> None:
        self.checked_ops += 1
        self._require_reader("readable_upper", slot)
        if upper > read:
            pub = self._pub_through(slot, upper)
            window = pub[read:upper]
            if not window.all():
                hole = read + int(np.argmin(window))
                self._fail(
                    "fence-visibility",
                    f"bucket {slot}: readable upper {upper} covers "
                    f"unpublished slot {hole} — the WCC advertised a write "
                    f"whose publishing fence has not executed",
                )
            if upper > self._upper[slot]:
                self._upper[slot] = upper

    def on_advance_read(self, slot: int, upto: int) -> None:
        self.checked_ops += 1
        self._require_reader("advance_read", slot)
        if upto > self._upper[slot]:
            self._fail(
                "fence-visibility",
                f"bucket {slot}: read advanced to {upto} past the verified "
                f"readable upper {self._upper[slot]}",
            )

    def on_read(self, slot: int, start: int, end: int) -> None:
        self.checked_ops += 1
        self.read_total += end - start
        caller = self._caller()
        pub = self._pub_through(slot, max(end, 1))
        if end > start and not pub[start:end].all():
            hole = start + int(np.argmin(pub[start:end]))
            self._fail(
                "fence-visibility",
                f"bucket {slot}: {caller or _HOST} read unpublished slot "
                f"{hole} (range [{start},{end}))",
            )
        if caller is None or caller == self.reader_name:
            self._check_dist("read")
            return
        rec = self._assigned.get(caller)
        if rec is None:
            self._fail(
                "srmw-role",
                f"{caller} read bucket {slot} slots [{start},{end}) without "
                f"an assignment — WTBs read only ranges the MTB assigned",
            )
        aslot, astart, aend, aepoch = rec
        if (slot, start, end) != (aslot, astart, aend):
            self._fail(
                "assign-claim",
                f"{caller} read (bucket {slot}, [{start},{end})) but its "
                f"assignment is (bucket {aslot}, [{astart},{aend}))",
            )
        if self.queue is not None:
            if self.queue.epoch.item(slot) != aepoch:
                self._fail(
                    "fence-visibility",
                    f"{caller} read bucket {slot} in epoch "
                    f"{self.queue.epoch.item(slot)} but was assigned in "
                    f"epoch {aepoch} — the bucket's storage was recycled "
                    f"under the reader",
                )
            if end > self.queue.read.item(slot):
                self._fail(
                    "fence-visibility",
                    f"{caller} read [{start},{end}) of bucket {slot} beyond "
                    f"the advanced read pointer "
                    f"{self.queue.read.item(slot)}",
                )
        self._check_dist("read")

    def on_rotate(self, slot: int) -> None:
        self.checked_ops += 1
        self._require_reader("rotate", slot)
        q = self.queue
        resv = q.resv.item(slot)
        rd = q.read.item(slot)
        cwc = q.cwc.item(slot)
        if rd != resv:
            self._fail(
                "rotate-guard",
                f"bucket {slot} rotated with unread work "
                f"(read {rd} < resv {resv})",
            )
        if cwc != resv:
            self._fail(
                "rotate-guard",
                f"bucket {slot} rotated with CWC {cwc} != resv {resv} — "
                f"completions outstanding (the §5.4 cramming failure)",
            )
        if self._hwm[slot] != resv:
            self._fail(
                "resv-overlap",
                f"bucket {slot}: resv_ptr {resv} disagrees with the "
                f"observed reservation total {self._hwm[slot]}",
            )
        for name, intervals in self._resv_out.items():
            for iv in intervals:
                if iv[0] == slot:
                    self._fail(
                        "no-lost-work",
                        f"bucket {slot} rotated while {name} still holds "
                        f"unpublished reservation [{iv[1]},{iv[2]})",
                    )
        self._pub[slot] = np.zeros(64, dtype=bool)
        self._hwm[slot] = 0
        self._upper[slot] = 0
        self._check_dist("rotate")

    def on_ensure_capacity(self, slot: int) -> None:
        self.checked_ops += 1
        self._require_reader("ensure_capacity", slot)

    def on_retire(self, slot: int) -> None:
        self.checked_ops += 1
        self._require_reader("retire_read_blocks", slot)

    # ------------------------------------------------------------------ #
    # MTB / WTB hooks
    # ------------------------------------------------------------------ #

    def on_assign(self, wid: int, slot: int, start: int, end: int, epoch: int) -> None:
        """MTB published (slot, [start,end), epoch) to worker ``wid``'s AF."""
        self.checked_ops += 1
        self._require_reader("assign", slot)
        name = f"WTB{wid}"
        if name in self._assigned:
            self._fail(
                "assign-claim",
                f"{name} assigned bucket {slot} [{start},{end}) while its "
                f"previous assignment {self._assigned[name]} is still live",
            )
        if end > start:
            pub = self._pub_through(slot, end)
            if not pub[start:end].all():
                hole = start + int(np.argmin(pub[start:end]))
                self._fail(
                    "fence-visibility",
                    f"MTB assigned unpublished slot {hole} of bucket {slot} "
                    f"to {name}",
                )
        self._assigned[name] = (slot, start, end, epoch)

    def on_claim(self, wid: int, slot: int, start: int, end: int, epoch: int) -> None:
        """Worker ``wid`` decoded (slot, [start,end), epoch) from its AF."""
        self.checked_ops += 1
        name = f"WTB{wid}"
        rec = self._assigned.get(name)
        if rec is None:
            self._fail(
                "assign-claim",
                f"{name} claimed bucket {slot} [{start},{end}) with no "
                f"assignment on record",
            )
        if rec != (slot, start, end, epoch):
            self._fail(
                "assign-claim",
                f"{name} claimed (bucket {slot}, [{start},{end}), epoch "
                f"{epoch}) but the MTB assigned (bucket {rec[0]}, "
                f"[{rec[1]},{rec[2]}), epoch {rec[3]}) — torn AF read",
            )

    # ------------------------------------------------------------------ #
    # memory hooks (called by SimMemory)
    # ------------------------------------------------------------------ #

    def on_atomic_min(self, arr, index: int, value, old) -> None:
        self.checked_ops += 1
        new = arr.item(index)
        if new > old:
            self._fail(
                "dist-monotone",
                f"atomic_min increased index {index}: {old!r} -> {new!r}",
            )

    def on_atomic_min_batch(self, arr, indices, values, before, winners) -> None:
        self.checked_ops += 1
        after = arr[indices]
        if np.any(after > before):
            i = int(np.argmax(after > before))
            self._fail(
                "dist-monotone",
                f"atomic_min_batch increased index {int(indices[i])}: "
                f"{before[i]!r} -> {after[i]!r}",
            )
        if np.any(after > values):
            i = int(np.argmax(after > values))
            self._fail(
                "dist-monotone",
                f"atomic_min_batch stored {after[i]!r} at index "
                f"{int(indices[i])}, more than candidate {values[i]!r}",
            )
        if winners is not None and winners.any():
            widx = np.asarray(indices)[winners]
            if np.unique(widx).size != int(np.count_nonzero(winners)):
                self._fail(
                    "dist-monotone",
                    "atomic_min_batch reported two winners for one index",
                )
            if np.any(arr[widx] != np.asarray(values)[winners]):
                self._fail(
                    "dist-monotone",
                    "a winning atomic_min entry's value is not the stored "
                    "minimum",
                )

    # ------------------------------------------------------------------ #
    # end-of-run oracle
    # ------------------------------------------------------------------ #

    def finalize(self) -> Dict[str, int]:
        """The no-lost-work oracle, run after the device finishes.

        Returns the accounting totals (for reports) on success; raises
        :class:`~repro.errors.InvariantViolation` otherwise.
        """
        for name, intervals in self._resv_out.items():
            if intervals:
                iv = intervals[0]
                self._fail(
                    "no-lost-work",
                    f"{name} reserved bucket {iv[0]} slots [{iv[1]},{iv[2]}) "
                    f"and never published them",
                )
        if self._assigned:
            name = sorted(self._assigned)[0]
            self._fail(
                "no-lost-work",
                f"assignment to {name} {self._assigned[name]} was never "
                f"completed",
            )
        if not (
            self.reserved_total
            == self.published_total
            == self.read_total
            == self.completed_total
        ):
            self._fail(
                "no-lost-work",
                f"work-item conservation broken: reserved "
                f"{self.reserved_total}, published {self.published_total}, "
                f"read {self.read_total}, completed {self.completed_total}",
            )
        q = self.queue
        if q is not None and q.outstanding() != 0:
            self._fail(
                "no-lost-work",
                f"queue reports {q.outstanding()} items outstanding after "
                f"termination",
            )
        dev = self.device
        if dev is not None and dev.missed_wakeups:
            self._fail(
                "no-lost-work",
                f"{dev.missed_wakeups} waiters were rescued by the deadlock "
                f"rescan — a writer changed their predicate without "
                f"notifying its wake channel",
            )
        self._check_dist("finalize")
        return {
            "checked_ops": self.checked_ops,
            "reserved": self.reserved_total,
            "published": self.published_total,
            "read": self.read_total,
            "completed": self.completed_total,
        }
