"""Protocol fault injection — proof the checker actually catches bugs.

A sanitizer that has never seen a bug is untested tooling.  Mirroring
:mod:`repro.engine.testing` (whose fault *solvers* exercise the engine's
failure paths), this module injects protocol-level faults into a live
solve and the test suite asserts each one is caught by the invariant it
targets.

:class:`FaultyChecker` is a :class:`~repro.check.ProtocolChecker` that
sabotages the queue/device it attaches to — the checker itself stays
honest; the *system under check* is what breaks.  Pass a factory to
:func:`repro.check.run_check` (or ``--inject`` on the CLI) to watch a
clean run fail:

========================= ============================================
fault                     invariant that catches it
========================= ============================================
``publish-overlap``       ``publish-bounds`` — a writer's reservation
                          is off by one, so it publishes into slots a
                          different writer reserved.
``phantom-wcc``           ``fence-visibility`` — a writer bumps a
                          segment WCC for a slot it never wrote (the
                          missing-fence bug class): the reader's
                          readable range covers garbage.
``lost-wakeup``           ``no-lost-work`` — STOP notifications are
                          dropped on the floor; workers survive only
                          via the deadlock rescue, so
                          ``missed_wakeups`` is nonzero at finalize.
``dist-raise``            ``dist-monotone`` — a raw (non-atomic) write
                          increases a settled distance.
========================= ============================================
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.check.invariants import ProtocolChecker
from repro.core.wtb import AF_STOP
from repro.errors import ReproError

__all__ = ["FAULTS", "FaultyChecker"]


def _install_publish_overlap(checker, device, queue, state) -> None:
    orig = queue.reserve
    box = {"calls": 0, "fired": False}

    def faulty_reserve(slot: int, k: int) -> int:
        start = orig(slot, k)
        box["calls"] += 1
        if not box["fired"] and box["calls"] >= 6 and start >= 1:
            box["fired"] = True
            return start - 1  # lie: the writer now targets foreign slots
        return start

    queue.reserve = faulty_reserve


def _install_phantom_wcc(checker, device, queue, state) -> None:
    orig = queue.publish
    box = {"fired": False}

    def faulty_publish(slot: int, start: int, vertices, dists) -> int:
        if not box["fired"] and int(vertices.size) >= 2:
            box["fired"] = True
            k = int(vertices.size)
            # write all but the last item, then bump the last item's
            # segment WCC anyway — the classic increment-before-fence bug
            segs = orig(slot, start, vertices[:-1], dists[:-1])
            ss = queue.segment_size
            seg = (start + k - 1) // ss
            wcc = queue._wcc_through(slot, seg)
            queue.mem.atomic_add(wcc, seg, 1)
            return segs
        return orig(slot, start, vertices, dists)

    queue.publish = faulty_publish


def _install_lost_wakeup(checker, device, queue, state) -> None:
    orig = device.notify

    def faulty_notify(channel) -> None:
        if (
            isinstance(channel, tuple)
            and len(channel) == 2
            and channel[0] == "af"
            and state is not None
            and state.af_state[channel[1]] == AF_STOP
        ):
            return  # the STOP write's notification is lost
        orig(channel)

    device.notify = faulty_notify


def _install_dist_raise(checker, device, queue, state) -> None:
    orig = queue.complete
    box = {"calls": 0}

    def faulty_complete(slot: int, k: int, epoch: int) -> None:
        orig(slot, k, epoch)
        box["calls"] += 1
        if box["calls"] == 4 and state is not None:
            dist = state.dist
            finite = np.isfinite(dist) & (dist > 0)
            if finite.any():
                v = int(np.argmax(finite))
                dist[v] += 1.0  # raw write racing atomic_min

    queue.complete = faulty_complete


#: fault name -> installer(checker, device, queue, state)
FAULTS: Dict[str, object] = {
    "publish-overlap": _install_publish_overlap,
    "phantom-wcc": _install_phantom_wcc,
    "lost-wakeup": _install_lost_wakeup,
    "dist-raise": _install_dist_raise,
}


class FaultyChecker(ProtocolChecker):
    """A checker that sabotages the solve it attaches to.

    The sabotage targets the queue/device (never the checker's own
    bookkeeping), so a caught fault demonstrates real detection, not a
    rigged assertion.  Use one fresh instance per solve, like the base
    class.
    """

    def __init__(self, fault: str) -> None:
        if fault not in FAULTS:
            raise ReproError(
                f"unknown fault {fault!r}; choose from {sorted(FAULTS)}"
            )
        super().__init__()
        self.fault = fault

    def attach(self, *, device, queue, state=None) -> None:
        super().attach(device=device, queue=queue, state=state)
        FAULTS[self.fault](self, device, queue, state)
