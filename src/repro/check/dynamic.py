"""``repro check --updates`` — the update-stream correctness oracle.

For each suite entry the runner generates a deterministic edge-update
stream (:func:`repro.graphs.generators.update_stream`), applies it
batch by batch, and after every batch compares

- a **from-scratch** solve of the post-update graph (serial Dijkstra,
  the repo's reference oracle), against
- an **incremental** re-solve per *lane*: each lane is one
  ``accepts_updates`` configuration (Dijkstra warm mode; ADDS under
  each registered WorkScheduler × canonical + perturbed schedules)
  seeded from the lane's *own previous answer* plus the batch's
  :class:`~repro.dynamic.updates.EdgeDeltas`.

The acceptance bar is **bit-equality** (sha256 of the float64 distance
array): an incremental solve must be indistinguishable from throwing
the warm state away.  Chaining each lane on its own prior answer makes
the test compounding — a drifted distance in batch ``k`` poisons batch
``k+1`` instead of being silently repaired by the oracle's distances.
After a mismatch the lane is re-synced to the oracle so one failure is
reported once, not cascaded.

Why bit-equality is the right bar (and not just a tolerance): every
solver here computes distances as float64 telescoped sums along tight
paths, and the warm seeding rule (see :mod:`repro.dynamic.frontier`)
preserves exactly that value set — so any difference at all is a real
invalidation or seeding bug, never harmless float noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.common import SolveRequest, get_solver_info
from repro.bench.matrix import matrix_entries
from repro.calibration import default_cost, default_gpu
from repro.check.runner import _dist_sha256, schedule_seed
from repro.dynamic import apply_updates
from repro.errors import ReproError
from repro.graphs.generators import update_stream

__all__ = [
    "UpdateLane",
    "UpdateBatchCheck",
    "UpdateCellCheck",
    "UpdateCheckReport",
    "run_update_check",
]


@dataclass(frozen=True)
class UpdateLane:
    """One incremental configuration chained across the stream."""

    solver: str
    scheduler: Optional[str] = None
    perturb_seed: Optional[int] = None

    @property
    def label(self) -> str:
        parts = [self.solver]
        if self.scheduler is not None:
            parts.append(self.scheduler)
        parts.append(
            "canonical" if self.perturb_seed is None else f"seed={self.perturb_seed}"
        )
        return "/".join(parts)


@dataclass
class UpdateBatchCheck:
    """One batch's outcome: the oracle sha and each lane's sha."""

    index: int
    kind_counts: Dict[str, int]
    topology_changed: bool
    oracle_sha256: Optional[str] = None
    lane_sha256: Dict[str, str] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "kind_counts": dict(self.kind_counts),
            "topology_changed": self.topology_changed,
            "oracle_sha256": self.oracle_sha256,
            "lanes": dict(self.lane_sha256),
            "problems": list(self.problems),
        }


@dataclass
class UpdateCellCheck:
    """One graph's full update stream."""

    graph: str
    lanes: List[str]
    batches: List[UpdateBatchCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(not b.problems for b in self.batches)

    @property
    def problems(self) -> List[str]:
        return [p for b in self.batches for p in b.problems]

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "graph": self.graph,
            "lanes": list(self.lanes),
            "ok": self.ok,
            "batches": [b.to_json_dict() for b in self.batches],
        }


@dataclass
class UpdateCheckReport:
    """One ``repro check --updates`` invocation's findings."""

    target: str
    batches: int
    batch_size: int
    schedules: int
    seed: int
    cells: List[UpdateCellCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cells)

    def summary_lines(self) -> List[str]:
        lines = []
        for c in self.cells:
            status = "ok" if c.ok else "FAIL"
            lines.append(
                f"{status:4s} {c.graph}: {len(c.batches)} batches × "
                f"{len(c.lanes)} incremental lanes"
            )
            for p in c.problems:
                lines.append(f"     - {p}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {len(self.cells)} update streams "
            f"({self.batches} batches × {self.batch_size} updates, "
            f"base seed {self.seed})"
        )
        return lines

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "target": self.target,
            "batches": int(self.batches),
            "batch_size": int(self.batch_size),
            "schedules": int(self.schedules),
            "seed": int(self.seed),
            "ok": self.ok,
            "cells": [c.to_json_dict() for c in self.cells],
        }


def _solve(graph, lane: UpdateLane, source, spec, cost, *, warm=None, deltas=None):
    info = get_solver_info(lane.solver)
    options: Dict[str, object] = {}
    if lane.perturb_seed is not None:
        options["perturb_seed"] = lane.perturb_seed
    request = SolveRequest(
        graph=graph,
        source=source,
        spec=spec,
        cost=cost,
        scheduler=lane.scheduler if info.accepts_scheduler else None,
        warm_from=warm,
        updates=deltas,
        options=options,
    )
    return info.solve(request)


def default_update_lanes(
    schedules: int, seed: int, schedulers: Tuple[str, ...] = ("bucket", "mlmq")
) -> List[UpdateLane]:
    """The standard lane set: warm Dijkstra, plus ADDS under every named
    scheduler on the canonical schedule and ``schedules`` perturbed
    ones."""
    lanes = [UpdateLane(solver="dijkstra")]
    for sched in schedulers:
        lanes.append(UpdateLane(solver="adds", scheduler=sched))
        for i in range(schedules):
            lanes.append(
                UpdateLane(
                    solver="adds", scheduler=sched,
                    perturb_seed=schedule_seed(seed, i),
                )
            )
    return lanes


def run_update_check(
    matrix: str = "small",
    *,
    batches: int = 4,
    batch_size: int = 8,
    schedules: int = 2,
    seed: int = 0,
    entries=None,
    lanes: Optional[List[UpdateLane]] = None,
    spec=None,
    cost=None,
    progress: Optional[Callable[[str], None]] = None,
) -> UpdateCheckReport:
    """Fuzz update streams: incremental re-solves must be bit-identical
    to from-scratch solves after every batch, in every lane.

    ``entries`` overrides the matrix with explicit
    :class:`~repro.graphs.suite.SuiteEntry` items; ``lanes`` overrides
    :func:`default_update_lanes`.  The update stream of each entry is
    seeded deterministically from ``seed`` and the entry's position, so
    a failure reproduces from the report's header alone.
    """
    if batches < 1:
        raise ReproError(f"batches must be >= 1 (got {batches})")
    if batch_size < 1:
        raise ReproError(f"batch_size must be >= 1 (got {batch_size})")
    spec = spec or default_gpu()
    cost = cost or default_cost(spec)
    notify = progress or (lambda msg: None)
    if entries is None:
        target = matrix
        entries = matrix_entries(matrix)
    else:
        target = ",".join(e.name for e in entries)
    lanes = lanes if lanes is not None else default_update_lanes(schedules, seed)

    report = UpdateCheckReport(
        target=target, batches=batches, batch_size=batch_size,
        schedules=schedules, seed=seed,
    )
    for pos, entry in enumerate(entries):
        graph = entry.graph().prepare()
        source = entry.source
        cell = UpdateCellCheck(
            graph=entry.name, lanes=[lane.label for lane in lanes]
        )
        report.cells.append(cell)

        stream = update_stream(
            graph, batches=batches, batch_size=batch_size,
            seed=schedule_seed(seed, pos),
        )
        # each lane chains on its own previous answer (compounding test)
        warm: Dict[str, object] = {}
        base = _solve(graph, UpdateLane(solver="dijkstra"), source, spec, cost)
        for lane in lanes:
            warm[lane.label] = base.dist

        for k, batch in enumerate(stream):
            result = apply_updates(graph, batch)
            graph = result.graph.prepare()
            bc = UpdateBatchCheck(
                index=k,
                kind_counts=batch.kind_counts(),
                topology_changed=result.topology_changed,
            )
            cell.batches.append(bc)
            oracle = _solve(
                graph, UpdateLane(solver="dijkstra"), source, spec, cost
            )
            bc.oracle_sha256 = _dist_sha256(oracle.dist)
            for lane in lanes:
                try:
                    inc = _solve(
                        graph, lane, source, spec, cost,
                        warm=warm[lane.label], deltas=result.deltas,
                    )
                except ReproError as exc:
                    bc.problems.append(
                        f"batch {k}, lane {lane.label}: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    warm[lane.label] = oracle.dist  # re-sync, report once
                    continue
                sha = _dist_sha256(inc.dist)
                bc.lane_sha256[lane.label] = sha
                if sha != bc.oracle_sha256:
                    bc.problems.append(
                        f"batch {k}, lane {lane.label}: incremental "
                        f"distances diverged from scratch "
                        f"({sha[:12]} != {bc.oracle_sha256[:12]})"
                    )
                    warm[lane.label] = oracle.dist  # re-sync, report once
                else:
                    warm[lane.label] = inc.dist
            notify(
                f"{entry.name} batch {k}: "
                f"{'ok' if not bc.problems else 'FAIL'} "
                f"({'topology' if bc.topology_changed else 'weights'})"
            )
    return report
