"""``repro check`` — the seeded schedule fuzzer over the protocol checker.

For each (graph, solver) cell the runner executes:

1. the **canonical schedule** (no perturbation) under the invariant
   checker — the bit-reproducible reference;
2. ``schedules`` **perturbed schedules**, each with a distinct seed
   derived from ``--seed`` (see :func:`schedule_seed`), under the
   checker;
3. a **replay** of every perturbed schedule *without* the checker.

and fails the cell on any of:

- an invariant violation (or any solver error) on any schedule;
- **distance divergence**: final distances must be bit-identical across
  the canonical schedule, every perturbed schedule, and every solver of
  the same graph — a shortest-path tree is schedule-invariant even
  though the work done to build it is not;
- a **replay mismatch**: re-running a seed must reproduce its
  ``dist_sha256``, ``work_count`` and ``time_us`` bit-exactly.  Because
  the replay runs unchecked, this simultaneously proves the checker is
  passive (attaching it changes nothing) and that a violating schedule
  can be reproduced from the seed printed in its violation message;
- ``missed_wakeups != 0`` on any schedule — every wake must arrive
  through its channel, never via the deadlock rescue.

``work_count`` is deliberately **not** compared across different seeds:
redundant work is exactly what same-timestamp relaxation races decide,
so it legitimately varies with the schedule (the paper's premise).  The
schedule-invariant work oracle is the checker's conservation law
(reserved == published == read == completed) plus per-seed replay
determinism; the observed spread is reported per cell.

Solvers without a simulated device (the BSP baselines) have no schedule
to perturb; they run canonically and join the cross-solver distance
oracle only.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.common import SolveRequest, get_solver_info
from repro.bench.matrix import matrix_entries, matrix_solvers
from repro.calibration import default_cost, default_gpu
from repro.check.invariants import ProtocolChecker
from repro.errors import ReproError

__all__ = [
    "CHECKABLE_SOLVERS",
    "ScheduleRun",
    "CellCheck",
    "CheckReport",
    "schedule_seed",
    "run_check",
]

#: Solvers that accept ``checker=``/``perturb_seed=`` (run on a Device
#: with schedule freedom).  The BSP baselines are deterministic host
#: loops — nothing to perturb, nothing to check beyond their output.
CHECKABLE_SOLVERS = frozenset({"adds"})


def schedule_seed(seed: int, index: int) -> int:
    """The perturbation seed of schedule ``index`` under base ``--seed``.

    Deterministic and collision-free over any sane schedule count, and
    printed in every violation/report line — reproducing schedule ``i``
    is ``solve_adds(..., perturb_seed=schedule_seed(seed, i))``.
    """
    return (seed * 1_000_003 + index) % (2**31 - 1)


def _dist_sha256(dist: np.ndarray) -> str:
    buf = np.ascontiguousarray(dist, dtype=np.float64).astype("<f8")
    return hashlib.sha256(buf.tobytes()).hexdigest()


@dataclass
class ScheduleRun:
    """One schedule's outcome within a cell."""

    perturb_seed: Optional[int]  # None = canonical schedule
    dist_sha256: Optional[str] = None
    work_count: Optional[int] = None
    time_us: Optional[float] = None
    reached: Optional[int] = None
    missed_wakeups: int = 0
    checked_ops: int = 0
    violation: Optional[str] = None
    replay_ok: Optional[bool] = None  # None = replay not run

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "perturb_seed": self.perturb_seed,
            "dist_sha256": self.dist_sha256,
            "work_count": self.work_count,
            "time_us": self.time_us,
            "reached": self.reached,
            "missed_wakeups": int(self.missed_wakeups),
            "checked_ops": int(self.checked_ops),
            "violation": self.violation,
            "replay_ok": self.replay_ok,
        }


@dataclass
class CellCheck:
    """All schedules of one (graph, solver) cell."""

    graph: str
    solver: str
    perturbed: bool  #: False for solvers with no schedule to perturb
    runs: List[ScheduleRun] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def work_counts(self) -> List[int]:
        """Distinct work counts across schedules (spread is legitimate)."""
        return sorted({r.work_count for r in self.runs if r.work_count is not None})

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "graph": self.graph,
            "solver": self.solver,
            "perturbed": self.perturbed,
            "ok": self.ok,
            "problems": list(self.problems),
            "work_counts": self.work_counts(),
            "runs": [r.to_json_dict() for r in self.runs],
        }


@dataclass
class CheckReport:
    """One ``repro check`` invocation's findings."""

    target: str  #: matrix name or graph label
    schedules: int
    seed: int
    cells: List[CellCheck] = field(default_factory=list)
    cross_solver_problems: List[str] = field(default_factory=list)
    #: WorkScheduler the scheduler-accepting solvers were fuzzed on.
    scheduler: Optional[str] = None
    #: Execution mode the exec-mode-accepting solvers ran in.
    exec_mode: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.cross_solver_problems and all(c.ok for c in self.cells)

    def summary_lines(self) -> List[str]:
        lines = []
        for c in self.cells:
            n = len(c.runs)
            wc = c.work_counts()
            if not wc:
                spread = "no completed runs"
            elif len(wc) == 1:
                spread = f"work {wc[0]}"
            else:
                spread = f"work {wc[0]}..{wc[-1]} ({len(wc)} distinct)"
            mode = "perturbed" if c.perturbed else "canonical only"
            status = "ok" if c.ok else "FAIL"
            lines.append(
                f"{status:4s} {c.graph} × {c.solver}: {n} schedules "
                f"({mode}), {spread}"
            )
            for p in c.problems:
                lines.append(f"     - {p}")
        for p in self.cross_solver_problems:
            lines.append(f"FAIL cross-solver: {p}")
        verdict = "PASS" if self.ok else "FAIL"
        sched = f", scheduler {self.scheduler}" if self.scheduler else ""
        mode = f", exec mode {self.exec_mode}" if self.exec_mode else ""
        lines.append(
            f"{verdict}: {len(self.cells)} cells × "
            f"{self.schedules} perturbed schedules (base seed {self.seed}"
            f"{sched}{mode})"
        )
        return lines

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "target": self.target,
            "schedules": int(self.schedules),
            "seed": int(self.seed),
            "scheduler": self.scheduler,
            "exec_mode": self.exec_mode,
            "ok": self.ok,
            "cross_solver_problems": list(self.cross_solver_problems),
            "cells": [c.to_json_dict() for c in self.cells],
        }


def _solve(
    graph,
    solver: str,
    source: int,
    spec,
    cost,
    *,
    perturb_seed: Optional[int],
    checker,
    scheduler: Optional[str] = None,
    exec_mode: Optional[str] = None,
):
    options: Dict[str, object] = {}
    if solver in CHECKABLE_SOLVERS:
        if checker is not None:
            options["checker"] = checker
        if perturb_seed is not None:
            options["perturb_seed"] = perturb_seed
    info = get_solver_info(solver)
    request = SolveRequest(
        graph=graph, source=source, spec=spec, cost=cost,
        scheduler=scheduler if info.accepts_scheduler else None,
        exec_mode=exec_mode if info.accepts_exec_mode else None,
        options=options,
    )
    return info.solve(request)


def _run_schedule(
    graph,
    solver: str,
    source: int,
    spec,
    cost,
    perturb_seed: Optional[int],
    checker_factory: Callable[[], ProtocolChecker],
    scheduler: Optional[str] = None,
    exec_mode: Optional[str] = None,
) -> ScheduleRun:
    run = ScheduleRun(perturb_seed=perturb_seed)
    checker = checker_factory() if solver in CHECKABLE_SOLVERS else None
    try:
        result = _solve(
            graph, solver, source, spec, cost,
            perturb_seed=perturb_seed, checker=checker, scheduler=scheduler,
            exec_mode=exec_mode,
        )
    except ReproError as exc:
        run.violation = f"{type(exc).__name__}: {exc}"
        if checker is not None:
            run.checked_ops = checker.checked_ops
        return run
    run.dist_sha256 = _dist_sha256(result.dist)
    run.work_count = int(result.work_count)
    run.time_us = float(result.time_us)
    run.reached = int(result.reached())
    run.missed_wakeups = int((result.stats or {}).get("missed_wakeups", 0))
    if checker is not None:
        run.checked_ops = checker.checked_ops
    return run


def run_check(
    matrix: str = "small",
    *,
    schedules: int = 8,
    seed: int = 0,
    entries=None,
    solvers: Optional[Tuple[str, ...]] = None,
    spec=None,
    cost=None,
    replay: bool = True,
    checker_factory: Optional[Callable[[], ProtocolChecker]] = None,
    scheduler: Optional[str] = None,
    exec_mode: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CheckReport:
    """Fuzz a matrix (or explicit ``entries``) across perturbed schedules.

    ``entries`` overrides the matrix with an explicit list of
    :class:`~repro.graphs.suite.SuiteEntry`; ``solvers`` overrides the
    solver list (default: the matrix's, or ``("adds",)`` with explicit
    entries).  ``checker_factory`` builds the per-run checker — the
    fault-injection tests pass a factory for a sabotaged subclass (see
    :mod:`repro.check.testing`).

    ``scheduler`` names a registered WorkScheduler for the
    ``accepts_scheduler`` solvers; the other solvers run canonically and
    still join the cross-solver distance oracle — which is exactly how a
    rival scheduler's distances get checked bit-for-bit against the
    baselines (see docs/scheduling.md).

    ``exec_mode`` selects the simulator execution mode for the
    ``accepts_exec_mode`` solvers.  Checking ``"batch"`` is load-bearing:
    the checked run commits solo (so the protocol checker sees the
    event-mode operation order) and the unchecked replay runs the fused
    path, which the replay comparison then pins bit-for-bit.
    """
    if schedules < 0:
        raise ReproError(f"schedules must be >= 0 (got {schedules})")
    if scheduler is not None:
        from repro.core.scheduler import get_scheduler_info

        get_scheduler_info(scheduler)  # unknown names fail before solving
    if exec_mode is not None and exec_mode not in ("events", "batch"):
        raise ReproError(
            f"unknown exec mode {exec_mode!r} (pick 'events' or 'batch')"
        )
    spec = spec or default_gpu()
    cost = cost or default_cost(spec)
    notify = progress or (lambda msg: None)
    factory = checker_factory or ProtocolChecker

    if entries is None:
        target = matrix
        entries = matrix_entries(matrix)
        if solvers is None:
            solvers = matrix_solvers(matrix)
    else:
        target = ",".join(e.name for e in entries)
        if solvers is None:
            solvers = ("adds",)

    report = CheckReport(
        target=target, schedules=schedules, seed=seed, scheduler=scheduler,
        exec_mode=exec_mode,
    )
    for entry in entries:
        graph = entry.graph()
        source = entry.source
        by_solver_sha: Dict[str, str] = {}
        for solver in solvers:
            perturbable = solver in CHECKABLE_SOLVERS
            cell = CellCheck(graph=entry.name, solver=solver, perturbed=perturbable)
            report.cells.append(cell)

            canonical = _run_schedule(
                graph, solver, source, spec, cost, None, factory,
                scheduler=scheduler, exec_mode=exec_mode,
            )
            cell.runs.append(canonical)
            if canonical.violation is not None:
                cell.problems.append(
                    f"canonical schedule: {canonical.violation}"
                )
            elif canonical.missed_wakeups:
                cell.problems.append(
                    f"canonical schedule: missed_wakeups = "
                    f"{canonical.missed_wakeups}"
                )
            if canonical.dist_sha256 is not None:
                by_solver_sha[solver] = canonical.dist_sha256

            n_perturbed = schedules if perturbable else 0
            for i in range(n_perturbed):
                pseed = schedule_seed(seed, i)
                run = _run_schedule(
                    graph, solver, source, spec, cost, pseed, factory,
                    scheduler=scheduler, exec_mode=exec_mode,
                )
                cell.runs.append(run)
                if run.violation is not None:
                    cell.problems.append(f"seed {pseed}: {run.violation}")
                    continue
                if run.missed_wakeups:
                    cell.problems.append(
                        f"seed {pseed}: missed_wakeups = {run.missed_wakeups}"
                    )
                if (
                    canonical.dist_sha256 is not None
                    and run.dist_sha256 != canonical.dist_sha256
                ):
                    cell.problems.append(
                        f"seed {pseed}: distances diverged from the "
                        f"canonical schedule ({run.dist_sha256} != "
                        f"{canonical.dist_sha256})"
                    )
                if replay:
                    again = _run_schedule(
                        graph, solver, source, spec, cost, pseed,
                        lambda: None,  # unchecked: proves checker passivity
                        scheduler=scheduler, exec_mode=exec_mode,
                    )
                    run.replay_ok = (
                        again.violation is None
                        and again.dist_sha256 == run.dist_sha256
                        and again.work_count == run.work_count
                        and again.time_us == run.time_us
                    )
                    if not run.replay_ok:
                        cell.problems.append(
                            f"seed {pseed}: replay did not reproduce the "
                            f"schedule (work {run.work_count} vs "
                            f"{again.work_count}, time_us {run.time_us} vs "
                            f"{again.time_us})"
                        )
            notify(
                f"{entry.name} × {solver}: {len(cell.runs)} schedules, "
                f"{'ok' if cell.ok else 'FAIL'}"
            )
        if len({s for s in by_solver_sha.values()}) > 1:
            report.cross_solver_problems.append(
                f"{entry.name}: solvers disagree on distances: "
                + ", ".join(
                    f"{s}={h[:12]}" for s, h in sorted(by_solver_sha.items())
                )
            )
    return report
