"""repro.check — SRMW protocol checker + seeded schedule fuzzer.

Two halves (see ``docs/checking.md``):

- :class:`ProtocolChecker` dynamically asserts the paper's §5.2–5.4
  protocol invariants (SRMW roles, reservation disjointness,
  fence-ordered visibility, distance monotonicity, the no-lost-work
  oracle) on every protocol operation of one ADDS solve;
- :func:`run_check` fuzzes solvers across seeded schedule perturbations
  (``Device(perturb_seed=...)``) and fails on any violation, distance
  divergence, missed wakeup or replay mismatch — the ``python -m repro
  check`` entry point.

Fault injection for the checker's own tests lives in
:mod:`repro.check.testing`.
"""

from repro.check.invariants import ProtocolChecker
from repro.check.runner import (
    CHECKABLE_SOLVERS,
    CellCheck,
    CheckReport,
    ScheduleRun,
    run_check,
    schedule_seed,
)

__all__ = [
    "CHECKABLE_SOLVERS",
    "CellCheck",
    "CheckReport",
    "ProtocolChecker",
    "ScheduleRun",
    "run_check",
    "schedule_seed",
]
