"""repro.check — SRMW protocol checker + seeded schedule fuzzer.

Two halves (see ``docs/checking.md``):

- :class:`ProtocolChecker` dynamically asserts the paper's §5.2–5.4
  protocol invariants (SRMW roles, reservation disjointness,
  fence-ordered visibility, distance monotonicity, the no-lost-work
  oracle) on every protocol operation of one ADDS solve;
- :func:`run_check` fuzzes solvers across seeded schedule perturbations
  (``Device(perturb_seed=...)``) and fails on any violation, distance
  divergence, missed wakeup or replay mismatch — the ``python -m repro
  check`` entry point.

A third half (PR 8): :func:`run_update_check` fuzzes **edge-update
streams** — after every generated batch, incremental re-solves (warm
Dijkstra; ADDS × registered schedulers × perturbed schedules) must be
bit-identical to a from-scratch solve (``python -m repro check
--updates N``).

Fault injection for the checker's own tests lives in
:mod:`repro.check.testing`.
"""

from repro.check.dynamic import (
    UpdateCheckReport,
    UpdateLane,
    default_update_lanes,
    run_update_check,
)
from repro.check.invariants import ProtocolChecker
from repro.check.runner import (
    CHECKABLE_SOLVERS,
    CellCheck,
    CheckReport,
    ScheduleRun,
    run_check,
    schedule_seed,
)

__all__ = [
    "CHECKABLE_SOLVERS",
    "CellCheck",
    "CheckReport",
    "ProtocolChecker",
    "ScheduleRun",
    "UpdateCheckReport",
    "UpdateLane",
    "default_update_lanes",
    "run_check",
    "run_update_check",
    "schedule_seed",
]
