"""A uniform registry of named counters, gauges and histograms.

Before this module every solver reported a hand-rolled ``stats={...}``
dict with its own key spelling, which made cross-solver comparisons (and
the Table 3/4 style analyses) stringly-typed guesswork.  A
:class:`MetricsRegistry` gives all producers one vocabulary:

- a **counter** only increases (atomics performed, work items pushed);
- a **gauge** holds the latest value (final Δ, WTB count);
- a **histogram** summarizes a sample stream (relax batch sizes) as
  count/total/min/max/mean without storing every sample.

``snapshot()`` flattens the registry into the plain dict that
:class:`~repro.baselines.common.SSSPResult.stats` carries, so existing
consumers keep working; ``rows()`` feeds the CSV exporter.  Every solver
populates the uniform key set ``atomics``, ``fences``,
``kernel_launches``, ``work_count`` (asserted by the parity test in
``tests/trace/test_stats_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.errors import TraceError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SERVE_COUNTER_KEYS",
    "UNIFORM_SOLVER_KEYS",
]

#: Keys every solver must report (the cross-solver comparison contract).
UNIFORM_SOLVER_KEYS = ("atomics", "fences", "kernel_launches", "work_count")

#: Counters a serving session (:mod:`repro.serve`) maintains in its
#: registry — the serving-side analogue of ``UNIFORM_SOLVER_KEYS``.
#: ``serve_admitted``/``serve_rejected`` partition submissions at the
#: admission gate; admitted queries then split into ``serve_cache_hits``
#: (answered from the distance cache), ``serve_batched`` (dispatched in
#: a coalesced batch) and ``serve_timeouts`` (expired before an answer).
#: Dynamic-graph sessions additionally count ``serve_incremental``
#: (solves seeded from a stashed warm start instead of scratch) and
#: ``serve_stale`` (answers discarded because the graph was updated
#: while their solve was in flight).
SERVE_COUNTER_KEYS = (
    "serve_admitted",
    "serve_rejected",
    "serve_batched",
    "serve_cache_hits",
    "serve_timeouts",
    "serve_incremental",
    "serve_stale",
)


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise TraceError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n


@dataclass
class Gauge:
    """A last-value-wins measurement."""

    name: str
    value: float = 0.0

    def set(self, v: Union[int, float]) -> None:
        self.value = v


@dataclass
class Histogram:
    """A streaming summary of observed samples (no per-sample storage)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, v: Union[int, float]) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create access to named metrics, one namespace per run."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TraceError(
                f"metric {name!r} already registered as {type(m).__name__}, "
                f"not {cls.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # -- convenience one-liners for instrumentation sites ------------------- #

    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        self.counter(name).inc(n)

    def set(self, name: str, v: Union[int, float]) -> None:
        self.gauge(name).set(v)

    def observe(self, name: str, v: Union[int, float]) -> None:
        self.histogram(name).observe(v)

    def update(self, values: Dict[str, Union[int, float]]) -> None:
        """Bulk-set gauges from a plain dict (numeric values only)."""
        for k, v in values.items():
            self.set(k, v)

    # -- queries ------------------------------------------------------------ #

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def value(self, name: str) -> float:
        m = self._metrics[name]
        if isinstance(m, Histogram):
            return m.mean
        return m.value

    def snapshot(self) -> Dict[str, float]:
        """Flatten to a plain dict (histograms expand to ``_count`` /
        ``_mean`` / ``_min`` / ``_max`` keys), insertion-ordered."""
        out: Dict[str, float] = {}
        for name, m in self._metrics.items():
            if isinstance(m, Histogram):
                out[f"{name}_count"] = m.count
                if m.count:
                    out[f"{name}_mean"] = m.mean
                    out[f"{name}_min"] = m.min
                    out[f"{name}_max"] = m.max
            else:
                out[name] = m.value
        return out

    def rows(self) -> List[Tuple[str, str, float]]:
        """``(name, kind, value)`` rows for the CSV exporter, sorted."""
        rows: List[Tuple[str, str, float]] = []
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Counter):
                rows.append((name, "counter", m.value))
            elif isinstance(m, Gauge):
                rows.append((name, "gauge", m.value))
            else:
                rows.append((f"{name}_count", "histogram", m.count))
                if m.count:
                    rows.append((f"{name}_mean", "histogram", m.mean))
                    rows.append((f"{name}_min", "histogram", m.min))
                    rows.append((f"{name}_max", "histogram", m.max))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self._metrics)} metrics)"
