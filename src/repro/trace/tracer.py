"""Structured event tracing for the simulated GPU.

The simulator's behaviour *is* the paper's argument — MTB assignment
scans, WTB busy/idle transitions, bucket pushes, Δ retunes — so this
module records it as typed events instead of ad-hoc prints:

- a **span** is an interval ``[ts_us, ts_us + dur_us)`` on a *track*
  (one track per simulated thread block, plus ``queue``/``device``
  tracks for shared structures);
- an **instant** is a point event (an assignment, a rotation, a Δ
  decision);
- a **counter** is a sampled value over time (edges in flight, pool
  blocks in use, active buckets).

Tracing must never perturb the simulation, so the design is
*zero-cost when disabled*: every producer holds a tracer that is either
a real :class:`Tracer` or the shared :data:`NULL_TRACER`, and hot paths
guard event construction with ``if tracer.enabled:`` so a disabled run
executes only an attribute test.  Events only ever *read* simulator
state; a traced run therefore produces bit-identical results to an
untraced one (asserted by the test suite).

Timestamps are simulated microseconds — the same unit the Chrome/
Perfetto trace-event format uses, so export is a straight mapping
(:mod:`repro.trace.export`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.errors import TraceError

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER", "coalesce"]

#: Event kinds (mirroring the Chrome trace-event phases they export to).
SPAN = "span"  # ph "X"
INSTANT = "instant"  # ph "i"
COUNTER = "counter"  # ph "C"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.  Immutable so exporters can't corrupt history."""

    kind: str
    track: str
    name: str
    ts_us: float
    dur_us: float = 0.0
    cat: str = "sim"
    args: Mapping[str, object] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.ts_us + self.dur_us


class Tracer:
    """An append-only event sink with per-track ordering enforcement.

    The discrete-event engine dispatches blocks in non-decreasing time
    order, so events arrive naturally ordered per track; ``record``
    turns a violation (a cost-model or instrumentation bug) into a loud
    :class:`~repro.errors.TraceError` instead of a silently garbled
    trace.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.events: List[TraceEvent] = []
        self._track_last_ts: Dict[str, float] = {}

    # -- producers --------------------------------------------------------- #

    def record(self, event: TraceEvent) -> None:
        if not self.enabled:
            return
        last = self._track_last_ts.get(event.track)
        if last is not None and event.ts_us < last:
            raise TraceError(
                f"trace event {event.name!r} on track {event.track!r} goes "
                f"back in time ({event.ts_us} < {last})"
            )
        self._track_last_ts[event.track] = event.ts_us
        self.events.append(event)

    def span(
        self,
        track: str,
        name: str,
        ts_us: float,
        dur_us: float,
        cat: str = "sim",
        **args: object,
    ) -> None:
        """A complete interval event (Chrome ph ``X``)."""
        if not self.enabled:
            return
        if dur_us < 0:
            raise TraceError(f"span {name!r} has negative duration {dur_us}")
        self.record(
            TraceEvent(SPAN, track, name, float(ts_us), float(dur_us), cat, args)
        )

    def instant(
        self, track: str, name: str, ts_us: float, cat: str = "sim", **args: object
    ) -> None:
        """A point event (Chrome ph ``i``)."""
        if not self.enabled:
            return
        self.record(TraceEvent(INSTANT, track, name, float(ts_us), 0.0, cat, args))

    def counter(
        self, name: str, ts_us: float, value: float, track: str = "counters"
    ) -> None:
        """A sampled counter value (Chrome ph ``C``)."""
        if not self.enabled:
            return
        self.record(
            TraceEvent(
                COUNTER, track, name, float(ts_us), 0.0, "counter",
                {"value": float(value)},
            )
        )

    # -- queries ----------------------------------------------------------- #

    def __len__(self) -> int:
        return len(self.events)

    def tracks(self) -> List[str]:
        """Track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for ev in self.events:
            seen.setdefault(ev.track, None)
        return list(seen)

    def events_for(self, track: str) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.track == track]

    def by_name(self, name: str) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.name == name]

    def duration_us(self) -> float:
        """End of the latest event (0 for an empty trace)."""
        return max((ev.end_us for ev in self.events), default=0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(enabled={self.enabled}, events={len(self.events)}, "
            f"tracks={len(self.tracks())})"
        )


class NullTracer(Tracer):
    """The disabled tracer: every producer method is a no-op.

    All call sites hold one of these by default, so instrumentation
    costs a single ``tracer.enabled`` attribute test on hot paths and
    nothing at all elsewhere.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        pass


#: The shared disabled tracer (safe to share: it never stores anything).
NULL_TRACER = NullTracer()


def coalesce(tracer: Optional[Tracer]) -> Tracer:
    """Normalize an optional tracer argument to a usable sink."""
    return tracer if tracer is not None else NULL_TRACER
