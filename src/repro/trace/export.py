"""Exporters: Chrome/Perfetto ``trace.json``, counters CSV, text summary.

The Perfetto UI (https://ui.perfetto.dev) and ``chrome://tracing`` both
load the JSON trace-event format; our simulated clock is already in
microseconds, which is exactly the format's ``ts``/``dur`` unit, so the
mapping is direct:

===========  ==========================================================
event kind   trace-event phase
===========  ==========================================================
span         ``X`` (complete event) on its track's ``tid``
instant      ``i`` (thread-scoped instant)
counter      ``C`` (counter track named after the event)
===========  ==========================================================

Tracks become named threads of one ``repro-sim`` process (one per
simulated thread block — MTB, WTB0..N — plus shared ``queue`` /
``device`` tracks), so the Perfetto timeline shows the scheduler the way
the paper's Figures 11–15 discuss it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.trace.metrics import MetricsRegistry
from repro.trace.tracer import COUNTER, INSTANT, SPAN, Tracer

__all__ = [
    "to_perfetto",
    "write_trace_json",
    "counters_csv",
    "write_counters_csv",
    "text_summary",
    "write_trace_artifacts",
]

_PID = 1


def _json_safe(v: object) -> object:
    """Coerce numpy scalars and other exotica to JSON-native values."""
    if hasattr(v, "item"):
        return v.item()
    if isinstance(v, (list, tuple)):
        return [_json_safe(x) for x in v]
    if isinstance(v, dict):
        return {str(k): _json_safe(x) for k, x in v.items()}
    return v


def to_perfetto(tracer: Tracer, process_name: str = "repro-sim") -> dict:
    """The trace as a Chrome/Perfetto trace-event JSON object."""
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": process_name},
        }
    ]
    tids: Dict[str, int] = {}
    for track in tracer.tracks():
        tid = len(tids) + 1
        tids[track] = tid
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for ev in tracer.events:
        tid = tids[ev.track]
        if ev.kind == SPAN:
            events.append(
                {
                    "name": ev.name,
                    "cat": ev.cat,
                    "ph": "X",
                    "pid": _PID,
                    "tid": tid,
                    "ts": ev.ts_us,
                    "dur": ev.dur_us,
                    "args": {k: _json_safe(v) for k, v in ev.args.items()},
                }
            )
        elif ev.kind == INSTANT:
            events.append(
                {
                    "name": ev.name,
                    "cat": ev.cat,
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": tid,
                    "ts": ev.ts_us,
                    "args": {k: _json_safe(v) for k, v in ev.args.items()},
                }
            )
        elif ev.kind == COUNTER:
            events.append(
                {
                    "name": ev.name,
                    "ph": "C",
                    "pid": _PID,
                    "ts": ev.ts_us,
                    "args": {"value": _json_safe(ev.args.get("value", 0.0))},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace_json(path: Union[str, Path], tracer: Tracer, **kw) -> Path:
    path = Path(path)
    path.write_text(json.dumps(to_perfetto(tracer, **kw)))
    return path


# --------------------------------------------------------------------- #
# counters CSV
# --------------------------------------------------------------------- #

def counters_csv(metrics: MetricsRegistry) -> str:
    """Flat ``name,kind,value`` CSV of the registry."""
    lines = ["name,kind,value"]
    for name, kind, value in metrics.rows():
        lines.append(f"{name},{kind},{value:g}")
    return "\n".join(lines) + "\n"


def write_counters_csv(path: Union[str, Path], metrics: MetricsRegistry) -> Path:
    path = Path(path)
    path.write_text(counters_csv(metrics))
    return path


# --------------------------------------------------------------------- #
# text summary
# --------------------------------------------------------------------- #

def text_summary(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    title: str = "trace summary",
) -> str:
    """A human-readable digest: per-track event/busy totals + counters."""
    lines = [title, "=" * len(title)]
    lines.append(
        f"{len(tracer.events)} events on {len(tracer.tracks())} tracks, "
        f"{tracer.duration_us():.1f} us simulated"
    )
    lines.append("")
    lines.append(f"{'track':<12} {'events':>7} {'spans':>7} {'busy_us':>10} {'busy%':>7}")
    total = max(tracer.duration_us(), 1e-12)
    for track in tracer.tracks():
        evs = tracer.events_for(track)
        spans = [e for e in evs if e.kind == SPAN]
        busy = sum(e.dur_us for e in spans)
        lines.append(
            f"{track:<12} {len(evs):>7} {len(spans):>7} {busy:>10.1f} "
            f"{100.0 * busy / total:>6.1f}%"
        )
    if metrics is not None and len(metrics):
        lines.append("")
        lines.append(f"{'metric':<32} {'kind':<10} {'value':>14}")
        for name, kind, value in metrics.rows():
            lines.append(f"{name:<32} {kind:<10} {value:>14g}")
    return "\n".join(lines) + "\n"


def write_trace_artifacts(
    out_dir: Union[str, Path],
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    *,
    title: str = "trace summary",
) -> List[Path]:
    """Write the standard artifact set into ``out_dir``:
    ``trace.json`` (Perfetto), ``counters.csv``, ``summary.txt``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = [write_trace_json(out_dir / "trace.json", tracer)]
    if metrics is not None:
        paths.append(write_counters_csv(out_dir / "counters.csv", metrics))
    (out_dir / "summary.txt").write_text(text_summary(tracer, metrics, title=title))
    paths.append(out_dir / "summary.txt")
    return paths
