"""``repro.trace`` — observability for the simulated GPU.

Three pieces, designed to be adopted independently:

- :class:`~repro.trace.tracer.Tracer` — typed span/instant/counter
  events on named tracks, zero-cost when disabled (the default);
- :class:`~repro.trace.metrics.MetricsRegistry` — named counters/
  gauges/histograms replacing the solvers' ad-hoc ``stats`` dicts;
- :mod:`repro.trace.export` — Chrome/Perfetto ``trace.json``, counters
  CSV, and text-summary writers (the ``python -m repro trace`` CLI's
  artifact set).
"""

from repro.trace.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SERVE_COUNTER_KEYS,
    UNIFORM_SOLVER_KEYS,
)
from repro.trace.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer, coalesce
from repro.trace.export import (
    counters_csv,
    text_summary,
    to_perfetto,
    write_counters_csv,
    write_trace_artifacts,
    write_trace_json,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "coalesce",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SERVE_COUNTER_KEYS",
    "UNIFORM_SOLVER_KEYS",
    "to_perfetto",
    "write_trace_json",
    "counters_csv",
    "write_counters_csv",
    "text_summary",
    "write_trace_artifacts",
]
