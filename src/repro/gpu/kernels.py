"""BSP execution helper for the double-buffered baselines.

Near-Far, Bellman-Ford and the NV stand-in all follow the Bulk Synchronous
Parallel pattern the paper describes in §1/§4.2: each iteration launches a
kernel over the current worklist, with an implicit device-wide barrier
(and a pile swap) between iterations.  :class:`BspMachine` charges those
iterations against the cost model and records the per-superstep available
parallelism, which is exactly the NF curve plotted in Figures 11–15
(footnote 1: "the edge count for NF is the amount of available work at the
beginning of each BSP super-step").
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DeviceError
from repro.gpu.costmodel import CostModel
from repro.gpu.specs import DeviceSpec
from repro.gpu.timeline import Timeline
from repro.trace.tracer import Tracer, coalesce

__all__ = ["BspMachine"]


class BspMachine:
    """Accumulates simulated time for a BSP-style solver.

    Parameters
    ----------
    spec:
        The GPU to run on.
    cost:
        Cost model override (defaults to ``CostModel(spec)``).
    overhead_multiplier:
        Scales the per-superstep fixed cost; Gunrock's frontier machinery
        is heavier than Lonestar's, which the baselines express here.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        cost: Optional[CostModel] = None,
        *,
        label: str = "",
        overhead_multiplier: float = 1.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.spec = spec
        self.cost = cost if cost is not None else CostModel(spec)
        self.overhead_multiplier = overhead_multiplier
        self.cycles: float = 0.0
        self.timeline = Timeline(label=label)
        self.supersteps: int = 0
        self.tracer = coalesce(tracer)
        self._track = label or "bsp"

    @property
    def elapsed_us(self) -> float:
        return self.spec.cycles_to_us(self.cycles)

    @property
    def kernel_launches(self) -> int:
        """One kernel launch per BSP superstep (the barrier the paper's
        §1 contrasts ADDS's single persistent kernel against)."""
        return self.supersteps

    def superstep(
        self,
        items: int,
        edges: int,
        avg_degree: float,
        *,
        float_weights: bool = False,
    ) -> float:
        """Charge one BSP iteration; returns its duration in cycles."""
        if items < 0 or edges < 0:
            raise DeviceError("superstep with negative work")
        base = self.cost.bsp_superstep_cycles(
            items, edges, avg_degree, float_weights=float_weights
        )
        launch = self.cost.kernel_launch_cycles()
        dur = launch * self.overhead_multiplier + (base - launch)
        start_us = self.spec.cycles_to_us(self.cycles)
        self.timeline.record(start_us, float(edges))
        self.cycles += dur
        self.timeline.record(self.spec.cycles_to_us(self.cycles), 0.0)
        self.supersteps += 1
        if self.tracer.enabled:
            self.tracer.span(
                self._track, "superstep", start_us,
                self.spec.cycles_to_us(dur), cat="kernel",
                items=items, edges=edges, superstep=self.supersteps,
            )
            self.tracer.counter("edges_in_flight", start_us, float(edges))
            self.tracer.counter(
                "edges_in_flight", self.spec.cycles_to_us(self.cycles), 0.0
            )
        return dur

    def charge_us(self, us: float) -> None:
        """Charge fixed setup/teardown time (e.g. profiling kernel)."""
        if us < 0:
            raise DeviceError("negative charge")
        self.cycles += self.spec.us_to_cycles(us)
