"""The cycle cost model for the simulated GPU (and the CPU baselines).

Everything here is a *model*, so every constant is named, documented and
overridable.  The two bounds that matter, and that reproduce the paper's
performance analysis (§6.4), are:

``latency bound``
    A hardware thread takes :attr:`~CostModel.edge_latency_cycles` cycles
    of dependent memory accesses to relax one edge (load edge record →
    load destination distance → atomic-min → worklist append).  With ``T``
    threads co-resident, a batch of ``E`` edges needs
    ``edge_latency_cycles * ceil(E / T)`` cycles.  When the available work
    is far below the device's thread count — the paper's road-USA example:
    800 items/iteration vs. 68 K threads — this bound dominates and the
    device idles.  This is what ADDS's asynchrony + dynamic Δ attack.

``bandwidth bound``
    Each relaxed edge moves :func:`~CostModel.effective_edge_bytes` bytes
    of DRAM traffic (edge record, distance, atomic, append), inflated for
    low-degree graphs whose adjacency reads waste cache lines (memory
    divergence, which the paper's Δ controller explicitly corrects for by
    "correlating the number of threads with the average degree").  The
    device cannot exceed ``bytes_per_cycle``; a saturated device is
    bandwidth-bound, which is why the paper's rmat graphs gain only from
    work efficiency.

The third major constant is :attr:`~CostModel.kernel_launch_us` — the
fixed cost of one BSP superstep (kernel launch + pile compaction + the
implicit device-wide barrier).  BSP baselines pay it per iteration; ADDS
never pays it, which is the "asynchronous" half of the paper's claim.

Work counts are never produced by this module — they come from actually
running the algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.gpu.specs import CpuSpec, DeviceSpec

__all__ = ["CostModel", "CpuCostModel"]


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for one GPU.  All tunables live here (DESIGN.md §4.2)."""

    spec: DeviceSpec

    #: Dependent-load latency chain to relax one edge, in core cycles.
    edge_latency_cycles: float = 640.0

    #: Coalesced DRAM traffic per relaxed edge, bytes: 8 (edge record)
    #: + 4 (dst distance read) + 8 (atomic-min line) + 8 (worklist append).
    base_edge_bytes: float = 28.0

    #: Divergence inflation: low-degree adjacency lists waste most of each
    #: 32-byte sector, so traffic scales by ``1 + penalty / avg_degree``.
    coalesce_penalty: float = 8.0

    #: Fixed cost of one BSP superstep (kernel launch + compaction +
    #: barrier), microseconds.  Charged to BSP solvers per iteration.
    kernel_launch_us: float = 6.0

    #: Scratchpad (shared memory) access, cycles.
    scratchpad_cycles: float = 25.0

    #: One global-memory atomic (un-contended), cycles.
    atomic_cycles: float = 120.0

    #: Multiplier on atomics for float weights (software CAS atomic-min,
    #: the Gunrock routine the paper adopts for all implementations).
    float_atomic_multiplier: float = 1.6

    #: Memory fence, cycles.
    fence_cycles: float = 40.0

    #: MTB: fixed cycles per queue-management pass (metadata refresh).
    mtb_pass_cycles: float = 300.0

    #: MTB: cycles per segment examined during a pass.  Segments are read
    #: warp-wide (32 at a time), so this is small.
    mtb_segment_cycles: float = 4.0

    #: MTB: cycles to publish one work assignment to a WTB's AF.
    mtb_assign_cycles: float = 30.0

    #: WTB: cycles per poll of its assignment flag while idle.
    af_poll_cycles: float = 400.0

    #: Minimum cycles any non-empty batch/superstep spends in compute
    #: (one full latency chain through the memory system).
    min_batch_cycles: float = 640.0

    # ------------------------------------------------------------------ #

    def __post_init__(self) -> None:
        # Derived coefficients sit on the per-event hot path (every relax
        # and every MTB pass prices a batch); compute them once per model
        # instead of per call.  ``object.__setattr__`` because the
        # dataclass is frozen; none of these are fields, so eq/hash and
        # ``with_overrides`` are unaffected.
        object.__setattr__(
            self, "_launch_cycles", self.spec.us_to_cycles(self.kernel_launch_us)
        )
        object.__setattr__(
            self,
            "_atomic_by_fw",
            (self.atomic_cycles, self.atomic_cycles * self.float_atomic_multiplier),
        )
        object.__setattr__(self, "_edge_bytes_memo", {})
        object.__setattr__(self, "_batch_price_memo", {})

    def with_overrides(self, **kw) -> "CostModel":
        """A copy with some constants replaced (ablations, sensitivity)."""
        return replace(self, **kw)

    def effective_edge_bytes(self, avg_degree: float) -> float:
        """DRAM bytes per relaxed edge after the divergence penalty."""
        memo = self._edge_bytes_memo
        v = memo.get(avg_degree)
        if v is None:
            d = max(avg_degree, 1.0)
            v = self.base_edge_bytes * (1.0 + self.coalesce_penalty / d)
            memo[avg_degree] = v
        return v

    def peak_edge_rate(self, avg_degree: float) -> float:
        """Bandwidth-bound edges per cycle for the whole device."""
        return self.spec.bytes_per_cycle / self.effective_edge_bytes(avg_degree)

    def kernel_launch_cycles(self) -> float:
        return self._launch_cycles

    # -- BSP supersteps (Near-Far, Bellman-Ford, NV) ---------------------- #

    def bsp_superstep_cycles(
        self,
        items: int,
        edges: int,
        avg_degree: float,
        *,
        float_weights: bool = False,
    ) -> float:
        """Duration of one BSP superstep processing ``items`` vertices.

        ``launch + max(latency bound, bandwidth bound, pipeline minimum)``.
        The latency bound models one thread per work item walking its
        adjacency list serially; with fewer items than threads the device
        is underutilized and the bound collapses to ``edge_latency × degree``
        — a tiny number that the launch overhead then dwarfs, which is the
        paper's diagnosis of Near-Far on high-diameter graphs.
        """
        launch = self.kernel_launch_cycles()
        if items <= 0 or edges <= 0:
            return launch
        threads = self.spec.total_threads
        # Edge-parallel load balancing (Davidson's scan-based distribution,
        # Lonestar's warp-cooperative expansion): threads share *edges*,
        # not vertices, so a high-degree frontier does not serialize.
        waves = math.ceil(edges / threads)
        latency_bound = self.edge_latency_cycles * waves
        bw_bound = edges * self.effective_edge_bytes(avg_degree) / self.spec.bytes_per_cycle
        atomic = self._atomic_by_fw[bool(float_weights)]
        # Atomics pipeline across threads; only the per-wave depth shows up.
        latency_bound += atomic * waves
        return launch + max(latency_bound, bw_bound, self.min_batch_cycles)

    # -- ADDS worker batches ----------------------------------------------- #

    def wtb_batch_cycles(
        self,
        edges: int,
        avg_degree: float,
        *,
        concurrent_blocks: int = 1,
        float_weights: bool = False,
    ) -> float:
        """Duration of one WTB processing a batch with ``edges`` edge relaxations.

        The block's 256 threads pipeline the latency chain; DRAM bandwidth
        is shared equally among the ``concurrent_blocks`` currently busy
        (an approximation that lets the event engine price a batch at
        dispatch time without global feedback).
        """
        if edges <= 0:
            return self.min_batch_cycles / 4
        tpb = self.spec.threads_per_block
        waves = math.ceil(edges / tpb)
        latency_bound = self.edge_latency_cycles * waves
        share = self.spec.bytes_per_cycle / max(1, concurrent_blocks)
        bw_bound = edges * self.effective_edge_bytes(avg_degree) / share
        atomic = self._atomic_by_fw[bool(float_weights)]
        return max(latency_bound + atomic, bw_bound, self.min_batch_cycles)

    def wtb_batch_latency(
        self, edges: int, *, float_weights: bool = False
    ) -> float:
        """Latency floor of a WTB batch, for the bandwidth-managed relax
        event: the block's threads pipeline the dependent-load chain in
        waves of ``threads_per_block``; DRAM throughput is accounted
        separately by the device's reservation clock."""
        tpb = self.spec.threads_per_block
        waves = max(1, math.ceil(max(edges, 1) / tpb))
        atomic = self._atomic_by_fw[bool(float_weights)]
        return max(self.edge_latency_cycles * waves + atomic, self.min_batch_cycles)

    def wtb_batch_bytes(self, edges: int, avg_degree: float) -> float:
        """DRAM traffic of a WTB batch, for the reservation clock."""
        return max(edges, 0) * self.effective_edge_bytes(avg_degree)

    def wtb_batch_price(
        self, edges: int, avg_degree: float, *, float_weights: bool = False
    ) -> tuple:
        """``(latency cycles, DRAM bytes)`` of one WTB batch, memoized.

        Solo dispatches and fused multi-worker dispatches both price each
        worker's batch through this one memo, so batch execution can
        never drift the simulated cost attribution: a worker's relax
        event carries the same (latency, bytes) pair whichever mode ran
        it.  Memoized because edge counts repeat heavily (chunk sizes ×
        a bounded degree mix) and this sits on the per-dispatch hot path.
        """
        key = (edges, avg_degree, float_weights)
        memo = self._batch_price_memo
        v = memo.get(key)
        if v is None:
            v = memo[key] = (
                self.wtb_batch_latency(edges, float_weights=float_weights),
                self.wtb_batch_bytes(edges, avg_degree),
            )
        return v

    # -- MTB management pass -------------------------------------------------- #

    def mtb_pass_cost(self, segments_scanned: int, assignments: int) -> float:
        """Cycles for one manager pass over the bucket metadata."""
        return (
            self.mtb_pass_cycles
            + self.mtb_segment_cycles * max(0, segments_scanned)
            + self.mtb_assign_cycles * max(0, assignments)
        )


@dataclass(frozen=True)
class CpuCostModel:
    """Costs for the Galois CPU baselines (CPU-DS and serial Dijkstra)."""

    spec: CpuSpec

    #: Average cost of one edge relaxation on a CPU core (random-access
    #: dominated; L2/L3 hits keep it below full DRAM latency), nanoseconds.
    edge_ns: float = 14.0

    #: Binary-heap push/pop base cost, nanoseconds (Dijkstra only);
    #: multiplied by log2(heap size).
    heap_op_ns: float = 9.0

    #: Per-bucket-round synchronization overhead for parallel
    #: delta-stepping, microseconds.
    round_sync_us: float = 1.5

    #: Parallel efficiency of the 20-thread delta-stepping loop (memory
    #: bandwidth and work-stealing losses).
    parallel_efficiency: float = 0.62

    def with_overrides(self, **kw) -> "CpuCostModel":
        return replace(self, **kw)

    def dijkstra_us(self, edges_relaxed: int, heap_ops: int, n: int) -> float:
        """Serial Dijkstra wall time, microseconds."""
        log_n = max(1.0, math.log2(max(2, n)))
        return (
            edges_relaxed * self.edge_ns + heap_ops * self.heap_op_ns * log_n
        ) / 1e3

    def delta_round_us(self, edges: int, items: int) -> float:
        """One bucket-round of shared-memory delta-stepping, microseconds."""
        if items <= 0:
            return self.round_sync_us
        usable = min(self.spec.threads, items)
        rate = usable * self.parallel_efficiency
        return self.round_sync_us + edges * self.edge_ns / rate / 1e3
