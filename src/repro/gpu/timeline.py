"""Parallelism-over-time traces (the data behind the paper's Figures 11–15).

The paper plots "the amount of parallelism (edge count) during the
progress of execution (us)" for ADDS vs NF.  A :class:`Timeline` is a step
function: ``record(t, value)`` appends a sample whenever the amount of
in-flight work changes; integrals and averages are then exact.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["Timeline"]


class Timeline:
    """A piecewise-constant ``value(t)`` series in microseconds."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._t: List[float] = []
        self._v: List[float] = []
        # Extremum over every recorded sample, including ones a later
        # record() at the same timestamp overwrote in the step series:
        # a transient spike (assign-then-complete within one event) must
        # still show up in peak().
        self._peak: float = float("-inf")
        #: Samples whose timestamp ran backwards and was clamped forward.
        #: A non-zero count flags a cost-model or engine bug — exposed in
        #: solver stats as ``timeline_clamps`` so it can't hide.
        self.clamps: int = 0

    def record(self, t_us: float, value: float) -> None:
        """Append a sample; out-of-order times are clamped forward (and
        counted in :attr:`clamps` — clamping hides cost-model bugs)."""
        ts = self._t
        value = float(value)
        if value > self._peak:
            self._peak = value
        if ts:
            last = ts[-1]
            if t_us < last:
                self.clamps += 1
                t_us = last
            if last == t_us:
                self._v[-1] = value
                return
        ts.append(float(t_us))
        self._v.append(value)

    # -- queries -------------------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._t)

    @property
    def duration_us(self) -> float:
        return self._t[-1] if self._t else 0.0

    def series(self) -> Tuple[Sequence[float], Sequence[float]]:
        """``(times_us, values)`` of the raw step samples."""
        return tuple(self._t), tuple(self._v)

    def value_at(self, t_us: float) -> float:
        """The step-function value at time ``t_us``."""
        if not self._t or t_us < self._t[0]:
            return 0.0
        import bisect

        i = bisect.bisect_right(self._t, t_us) - 1
        return self._v[i]

    def time_average(self) -> float:
        """Time-weighted mean value — 'average parallelism' in the figures."""
        if len(self._t) < 2:
            return self._v[0] if self._v else 0.0
        total = 0.0
        for i in range(len(self._t) - 1):
            total += self._v[i] * (self._t[i + 1] - self._t[i])
        span = self._t[-1] - self._t[0]
        return total / span if span > 0 else self._v[-1]

    def peak(self) -> float:
        """Largest value ever recorded — tied-timestamp overwrites in the
        step series do not hide a transient spike."""
        return self._peak if self._v else 0.0

    def resample(self, num_points: int) -> Tuple[List[float], List[float]]:
        """Evenly-spaced samples for plotting/printing (endpoints included)."""
        if not self._t:
            return [], []
        if num_points < 2 or self.duration_us == 0:
            return [self._t[0]], [self._v[0]]
        ts = [
            self._t[0] + (self._t[-1] - self._t[0]) * i / (num_points - 1)
            for i in range(num_points)
        ]
        return ts, [self.value_at(t) for t in ts]

    def to_rows(self) -> List[Tuple[float, float]]:
        """``(t_us, value)`` rows, e.g. for CSV export."""
        return list(zip(self._t, self._v))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Timeline({self.label!r}, samples={len(self)}, "
            f"duration={self.duration_us:.1f}us, avg={self.time_average():.1f})"
        )
