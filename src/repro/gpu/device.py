"""The discrete-event engine that interleaves thread-block programs.

A *program* is a Python generator (one per simulated thread block) that
yields cost events and communicates with other programs through shared
state (NumPy arrays + :class:`~repro.gpu.memory.SimMemory` atomics).  The
engine advances a cycle clock and interleaves programs by event completion
time — so the ADDS manager/worker protocol from the paper executes with
real concurrency: a WTB's bucket pushes genuinely race with the MTB's
segment scans, at event granularity.

Events a program may yield
--------------------------

``("busy", cycles)``
    The block computes/accesses memory for ``cycles`` cycles.

``("relax", cycles, edges)``
    Like ``busy``, but the engine tracks ``edges`` as in-flight work for
    the parallelism timeline (Figures 11–15).

``("relax", latency_cycles, edges, bytes)``
    The bandwidth-managed form: the engine owns a DRAM reservation clock
    and serializes the ``bytes`` of all relax batches through the device's
    peak bandwidth, so aggregate memory throughput is exactly the spec's
    peak when saturated and the batch's duration is
    ``max(latency_cycles, queueing delay + own transfer time)``.  This is
    what makes saturated executions bandwidth-bound and starved ones
    latency-bound without any per-batch sharing guesswork.

``("wait", predicate)``
    The block sleeps until ``predicate()`` is true.  This registers on
    the **fallback channel**: the predicate is re-evaluated after every
    event completion, exactly like the original global-rescan engine.  A
    fallback wait whose predicate is already true at registration resumes
    inline at zero cost (no poll charge, no heap round-trip) — there was
    never anything to wait for.

``("wait", predicate, channel)``
    The targeted form: the wait registers on the named *wake channel*
    (any hashable key).  The predicate is only re-evaluated when a writer
    calls :meth:`Device.notify` with the same key — O(notifications)
    instead of O(events × waiters).  Channel waits model a hardware
    thread block spinning on a flag in scratchpad, so resuming always
    charges one :attr:`CostModel.af_poll_cycles` — the successful poll
    that noticed the flag — *including* when the flag was already set at
    registration time (the write raced ahead of the worker's first
    poll).  This is why migrating a wait to a channel never changes
    simulated timing: the charge structure is identical to the rescan
    engine's; only the host-side evaluation count drops.

The wake-channel protocol (who notifies, tie-break rules, fallback
semantics) is documented in ``docs/simulator.md``.  Channel efficiency is
observable through :attr:`Device.wakeups` / :attr:`Device.spurious_wakeups`
(and, for unmigrated call sites, :attr:`Device.fallback_polls`); a missed
notification is rescued by the deadlock-detection rescan and counted in
:attr:`Device.missed_wakeups` so writer bugs cannot hide.

Programs finish by returning.  :meth:`Device.run` returns when every
program has finished; if all remaining programs are waiting and no
predicate can ever fire the engine raises :class:`DeviceError` (deadlock),
which turns protocol bugs into loud failures instead of hangs.
"""

from __future__ import annotations

import itertools
import random
from heapq import heappop, heappush
from dataclasses import dataclass, field
from typing import Callable, Generator, Hashable, List, Optional, Tuple

from repro.errors import DeviceError
from repro.gpu.costmodel import CostModel
from repro.gpu.memory import SimMemory
from repro.gpu.specs import DeviceSpec
from repro.gpu.timeline import Timeline
from repro.trace.tracer import Tracer, coalesce

__all__ = ["Device", "BlockContext"]

Program = Generator[tuple, None, None]

#: Sentinel two-arg ``next`` returns when a program generator finishes.
_FINISHED = object()


@dataclass(slots=True)
class BlockContext:
    """Per-block bookkeeping the engine keeps for a registered program."""

    block_id: int
    name: str
    program: Program = field(repr=False)
    busy_cycles: float = 0.0
    idle_cycles: float = 0.0
    events: int = 0
    finished: bool = False
    _wait_started: float = 0.0
    _pending_relax: Optional[float] = None
    #: (name, args) set by Device.annotate for the next yielded event.
    _annotation: Optional[Tuple[str, dict]] = None


class Device:
    """A simulated GPU executing thread-block programs.

    Parameters
    ----------
    spec:
        Hardware description (see :mod:`repro.gpu.specs`).
    cost:
        Cycle cost model; defaults to ``CostModel(spec)``.
    max_events:
        Safety valve: total event budget before the engine declares a
        livelock (:class:`DeviceError`).
    perturb_seed:
        ``None`` (default) keeps the engine's canonical tie-break — the
        global registration/issue sequence — and is bit-identical to
        every engine before the perturber existed.  An integer seeds a
        deterministic RNG that randomizes the two tie-breaks the
        canonical order hides: the pop order of events sharing a
        timestamp, and the wake order of simultaneously-satisfiable
        channel waiters.  Both orders are *unspecified* on real hardware,
        so any simulated outcome that changes under perturbation is a
        schedule-dependence bug; :mod:`repro.check` runs solvers across
        many seeds to hunt exactly those.  The same seed always replays
        the same schedule.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        cost: Optional[CostModel] = None,
        *,
        max_events: int = 20_000_000,
        tracer: Optional[Tracer] = None,
        perturb_seed: Optional[int] = None,
    ) -> None:
        self.spec = spec
        self.cost = cost if cost is not None else CostModel(spec)
        if self.cost.spec is not spec and self.cost.spec != spec:
            raise DeviceError("cost model was built for a different device spec")
        self.mem = SimMemory()
        self.tracer = coalesce(tracer)
        self.timeline = Timeline(label=spec.name)
        self.now: float = 0.0  # cycles
        # Same divisor as DeviceSpec.cycles_to_us, hoisted: now_us sits on
        # the per-event path and must stay bit-identical to the spec math.
        self._cycles_per_us = spec.max_clock_ghz * 1e3
        self.max_events = max_events
        self._blocks: List[BlockContext] = []
        self._heap: List[Tuple[float, int, BlockContext]] = []
        self._seq = itertools.count()
        # Heap tie-break priority.  Unperturbed it IS the sequence counter
        # (same object method, so the hot path pays nothing for the
        # indirection); perturbed it prepends a seeded random draw, so
        # same-timestamp events pop in RNG order while distinct
        # timestamps keep their causal order.  The trailing counter keeps
        # priorities unique (BlockContext is not orderable).
        self.perturb_seed = perturb_seed
        if perturb_seed is None:
            self._rng: Optional[random.Random] = None
            self._next_prio: Callable[[], object] = self._seq.__next__
        else:
            self._rng = random.Random(perturb_seed)
            rng_random = self._rng.random
            seq_next = self._seq.__next__
            self._next_prio = lambda: (rng_random(), seq_next())
        # Wake channels: key -> [(registration order, ctx, predicate)].
        # Waiters across channels wake in registration order, which is
        # exactly the order the rescan engine's waiting list had — the
        # tie-break feeding next(self._seq) is semantics, not style.
        self._channels: dict = {}
        self._fallback: List[Tuple[int, BlockContext, Callable[[], bool]]] = []
        self._notified: set = set()
        self._wait_reg = 0
        #: Channel waiters resumed (each charged one AF poll).
        self.wakeups = 0
        #: Channel predicate evaluations that failed after a notify
        #: (the writer's channel was too coarse for this waiter).
        self.spurious_wakeups = 0
        #: Fallback-channel predicate re-evaluations that failed — the
        #: per-event rescan cost unmigrated waits still pay.
        self.fallback_polls = 0
        #: Channel waiters rescued by the deadlock-detection rescan: a
        #: writer changed their predicate without notifying.  Loud in
        #: metrics because it means a migration bug, not a slow path.
        self.missed_wakeups = 0
        self._relax_blocks = 0
        self._relax_edges = 0.0
        self._relax_integral = 0.0  # ∫ edges-in-flight dt, edge·cycles
        self._relax_changed_at = 0.0
        self._bw_clock = 0.0  # DRAM reservation clock, cycles
        self._bytes_moved = 0.0
        self._total_events = 0
        self._ran = False
        self._current_ctx: Optional[BlockContext] = None
        self._trace_on = self.tracer.enabled
        self._af_poll = self.cost.af_poll_cycles

    # -- setup ----------------------------------------------------------------- #

    def add_block(self, name: str, program: Program) -> BlockContext:
        """Register a thread-block program before :meth:`run`."""
        if self._ran:
            raise DeviceError("cannot add blocks after run()")
        if len(self._blocks) >= self.spec.max_resident_blocks:
            raise DeviceError(
                f"{self.spec.name} fits only {self.spec.max_resident_blocks} "
                f"resident blocks of {self.spec.threads_per_block} threads"
            )
        ctx = BlockContext(block_id=len(self._blocks), name=name, program=program)
        self._blocks.append(ctx)
        return ctx

    # -- queries programs may use ------------------------------------------------ #

    @property
    def now_us(self) -> float:
        return self.now / self._cycles_per_us

    def current_block_name(self) -> Optional[str]:
        """Name of the thread block whose program step is executing.

        ``None`` outside :meth:`run` — i.e. for host-side code such as the
        solver seeding the source vertex.  The protocol checker uses this
        to attribute queue operations to their thread block (SRMW role
        enforcement); it is valid from any code a program calls
        synchronously between its yields."""
        ctx = self._current_ctx
        return None if ctx is None else ctx.name

    def active_relax_blocks(self) -> int:
        """Blocks currently inside a ``relax`` event (bandwidth sharers)."""
        return self._relax_blocks

    def active_relax_edges(self) -> float:
        """Edges currently in flight (the figures' 'parallelism')."""
        return self._relax_edges

    def relax_edge_integral(self) -> float:
        """∫ edges-in-flight dt so far, in edge·cycles.

        Two readings divided by the elapsed cycles give the exact
        time-averaged parallelism over a window — the utilization signal
        the ADDS Δ controller samples (point samples would alias the
        burst-idle-burst pattern of small batches)."""
        return self._relax_integral + self._relax_edges * (
            self.now - self._relax_changed_at
        )

    def _bump_relax(self, delta_edges: float) -> None:
        # Batched accounting: events draining at the same timestamp skip
        # the integral update (elapsed == 0), which is the common case
        # inside a same-timestamp batch in run().
        now = self.now
        if now != self._relax_changed_at:
            self._relax_integral += self._relax_edges * (now - self._relax_changed_at)
            self._relax_changed_at = now
        self._relax_edges += delta_edges
        if self._trace_on:
            self.tracer.counter(
                "edges_in_flight", self.now_us, max(0.0, self._relax_edges)
            )

    def annotate(self, name: str, **args: object) -> None:
        """Name (and attach args to) the *next* event the currently
        running program yields — e.g. the MTB calls
        ``device.annotate("mtb_pass", assignments=3)`` right before its
        ``("busy", cycles)`` yield so the trace span carries the pass
        semantics instead of a generic "busy".  A no-op when tracing is
        disabled or called outside a program step."""
        if not self._trace_on or self._current_ctx is None:
            return
        self._current_ctx._annotation = (name, dict(args))

    # -- wake channels ----------------------------------------------------------- #

    def notify(self, channel: Hashable) -> None:
        """A writer changed state some waiter on ``channel`` may be
        spinning on.  Cheap (a set add when the channel has waiters, an
        attribute test otherwise); the predicates themselves are
        re-evaluated once the current program step completes, so a
        writer may batch several flag writes before its next yield and
        pay one evaluation per waiter."""
        if channel in self._channels:
            self._notified.add(channel)

    def has_waiters(self, channel: Hashable) -> bool:
        """True if some block is currently waiting on ``channel``."""
        return bool(self._channels.get(channel))

    # -- batch execution support ------------------------------------------------ #

    def ready_peers(self) -> List["BlockContext"]:
        """The blocks with an event pending at the *current* timestamp, in
        the exact order the drain loop will pop them.

        This is the readiness harvest of the batch execution mode: a
        program stepped at time ``t`` may ask which peers are about to
        run at the same ``t`` and — when their pending steps commute with
        everything between the pops — execute their array work fused with
        its own.  Priorities are unique, so sorting the heap's same-time
        entries reproduces pop order bit-exactly, perturbed or not.
        """
        heap = self._heap
        t = self.now
        if not heap or heap[0][0] != t:
            return []
        return [entry[2] for entry in sorted(e for e in heap if e[0] == t)]

    def attribute_to(self, ctx: Optional["BlockContext"]) -> Optional["BlockContext"]:
        """Attribute subsequent memory/queue operations to ``ctx``.

        Returns the previous attribution, which the caller must restore.
        Used by the batch coordinator when it executes a peer block's
        relaxation phase during another block's step, so protocol
        checkers and traces see the operations under the block that
        semantically performs them.
        """
        prev = self._current_ctx
        self._current_ctx = ctx
        return prev

    # -- engine ----------------------------------------------------------------- #

    def run(self) -> float:
        """Execute all registered programs to completion; returns cycles."""
        if self._ran:
            raise DeviceError("device already ran")
        self._ran = True
        for ctx in self._blocks:
            self._schedule(ctx, self.now)
        heap = self._heap
        step = self._step
        # _notified and _fallback are mutated in place everywhere, so the
        # per-event emptiness test can run on hoisted bindings.
        notified = self._notified
        fallback = self._fallback
        process_wakes = self._process_wakes
        while True:
            if not heap:
                if not (self._channels or fallback):
                    break  # every program finished
                self._rescue_or_deadlock()
                continue
            # Drain every event sharing the earliest timestamp as one
            # batch: one clock advance, one pop loop, and (because a
            # woken waiter is always rescheduled af_poll_cycles later)
            # the exact pop order the one-event-at-a-time loop had.
            t = heap[0][0]
            if t > self.now:
                self.now = t
            while heap and heap[0][0] == t:
                step(heappop(heap)[2])
                if notified or fallback:
                    process_wakes()
        return self.now

    # -- internals --------------------------------------------------------------- #

    def _schedule(self, ctx: BlockContext, t: float) -> None:
        heappush(self._heap, (t, self._next_prio(), ctx))

    def _wake(self, ctx: BlockContext) -> None:
        """Resume a waiter: account idle time, charge the successful poll."""
        now = self.now
        ctx.idle_cycles += now - ctx._wait_started
        if self._trace_on:
            start_us = self.spec.cycles_to_us(ctx._wait_started)
            self.tracer.span(
                ctx.name, "idle", start_us,
                self.now_us - start_us, cat="wait",
            )
        heappush(self._heap, (now + self._af_poll, self._next_prio(), ctx))

    def _process_wakes(self) -> None:
        """Evaluate notified channels plus the fallback channel; wake every
        satisfied waiter in registration order (the rescan engine's order)."""
        ready: Optional[List[Tuple[int, BlockContext, Callable[[], bool]]]] = None
        notified = self._notified
        if notified:
            channels = self._channels
            for key in notified:
                waiters = channels.get(key)
                if not waiters:
                    continue
                keep = None
                for item in waiters:
                    if item[2]():
                        if ready is None:
                            ready = []
                        ready.append(item)
                    else:
                        self.spurious_wakeups += 1
                        if keep is None:
                            keep = []
                        keep.append(item)
                if keep is None:
                    del channels[key]
                else:
                    channels[key] = keep
            notified.clear()
        fallback = self._fallback
        if fallback:
            keep_fb = []
            for item in fallback:
                if item[2]():
                    if ready is None:
                        ready = []
                    ready.append(item)
                else:
                    self.fallback_polls += 1
                    keep_fb.append(item)
            if len(keep_fb) != len(fallback):
                fallback[:] = keep_fb  # in place: run() holds a binding
        if ready is None:
            return
        if len(ready) > 1:
            # Canonical order: registration order, exactly the rescan
            # engine's waiting list.  Perturbed: any permutation of the
            # simultaneously-satisfied waiters is a legal hardware
            # outcome, so draw one.
            if self._rng is None:
                ready.sort()
            else:
                ready.sort()  # seed-independent base order first
                self._rng.shuffle(ready)
        for item in ready:
            self._wake(item[1])
        self.wakeups += len(ready)
        if self._trace_on:
            self.tracer.counter("wakeups", self.now_us, self.wakeups)
            self.tracer.counter(
                "spurious_wakeups", self.now_us, self.spurious_wakeups
            )

    def _rescue_or_deadlock(self) -> None:
        """Heap empty with blocks waiting: the full-rescan safety net.

        A satisfied channel waiter found here means a writer changed its
        predicate without a notify — woken anyway (counted in
        :attr:`missed_wakeups`) so a migration bug degrades instead of
        hanging.  Nothing satisfied is a genuine deadlock."""
        # One block may be parked under several registrations (a keyed
        # entry plus a fallback entry left behind by an earlier rescue):
        # dedupe by waiter identity so each block wakes — and is counted
        # in ``wakeups``/``missed_wakeups`` — at most once per rescan.
        items: List[Tuple[int, BlockContext, Callable[[], bool]]] = []
        for waiters in self._channels.values():
            items.extend(waiters)
        items.extend(self._fallback)
        stuck: List[Tuple[int, BlockContext, Callable[[], bool]]] = []
        rescued = 0
        woken: set = set()
        stuck_ids: set = set()
        for item in items:
            ident = id(item[1])
            if ident in woken:
                continue
            if item[2]():
                woken.add(ident)
                self._wake(item[1])
                rescued += 1
                if ident in stuck_ids:
                    # An earlier duplicate looked unsatisfied; the block
                    # is awake now, so drop its stale registration too.
                    stuck = [it for it in stuck if id(it[1]) != ident]
                    stuck_ids.discard(ident)
            elif ident not in stuck_ids:
                stuck.append(item)
                stuck_ids.add(ident)
        if not rescued:
            stuck.sort()
            waiters = ", ".join(item[1].name for item in stuck)
            raise DeviceError(f"deadlock: blocks waiting forever: {waiters}")
        self.missed_wakeups += rescued
        self.wakeups += rescued
        self._channels.clear()
        self._fallback[:] = stuck  # in place: run() holds a binding
        self._notified.clear()
        # Re-key the survivors: stuck channel waiters fall back to the
        # rescan channel (their writer already proved unreliable).

    def _finish_relax(self, edges: float) -> None:
        self._relax_blocks -= 1
        self._bump_relax(-edges)
        self.timeline.record(self.now_us, max(0.0, self._relax_edges))

    def _step(self, ctx: BlockContext) -> None:
        """Resume one program and interpret its next yielded event."""
        # Complete the effects of the event that just elapsed.
        pending = ctx._pending_relax
        if pending is not None:
            self._finish_relax(pending)
            ctx._pending_relax = None

        program = ctx.program
        heap = self._heap
        prio = self._next_prio
        now = self.now  # the clock only advances in run(), never mid-step
        events = self._total_events
        max_events = self.max_events
        # One try/finally per *step* (not per event) keeps the budget
        # counter and _current_ctx exact on every exit path while the
        # loop itself runs on locals only.
        self._current_ctx = ctx
        try:
            while True:
                events += 1
                if events > max_events:
                    raise DeviceError(
                        f"event budget exceeded ({self.max_events}); "
                        "likely a livelock in a block program"
                    )
                # Two-arg next traps StopIteration in C — no try/except
                # on the per-event path.
                event = next(program, _FINISHED)
                if event is _FINISHED:
                    ctx.finished = True
                    return

                ctx.events += 1
                kind = event[0]
                if kind == "busy":
                    cycles = float(event[1])
                    if cycles < 0:
                        raise DeviceError(f"{ctx.name}: negative busy duration")
                    ctx.busy_cycles += cycles
                    if self._trace_on:
                        name, args = self._take_annotation(ctx, "busy")
                        self.tracer.span(
                            ctx.name, name, self.now_us,
                            self.spec.cycles_to_us(cycles), cat="compute", **args,
                        )
                    heappush(heap, (now + cycles, prio(), ctx))
                    return
                if kind == "relax":
                    cycles, edges = float(event[1]), float(event[2])
                    if cycles < 0 or edges < 0:
                        raise DeviceError(f"{ctx.name}: negative relax event")
                    dram_wait = 0.0
                    if len(event) >= 4:
                        # bandwidth-managed form: serialize bytes through DRAM
                        nbytes = float(event[3])
                        if nbytes < 0:
                            raise DeviceError(f"{ctx.name}: negative relax bytes")
                        service_start = max(now, self._bw_clock)
                        dram_wait = service_start - now
                        transfer_done = service_start + nbytes / self.spec.bytes_per_cycle
                        self._bw_clock = transfer_done
                        self._bytes_moved += nbytes
                        cycles = max(cycles, transfer_done - now)
                    ctx.busy_cycles += cycles
                    self._relax_blocks += 1
                    self._bump_relax(edges)
                    self.timeline.record(self.now_us, self._relax_edges)
                    if self._trace_on:
                        name, args = self._take_annotation(ctx, "relax")
                        args.setdefault("edges", edges)
                        if dram_wait > 0:
                            args["dram_wait_us"] = self.spec.cycles_to_us(dram_wait)
                        self.tracer.span(
                            ctx.name, name, self.now_us,
                            self.spec.cycles_to_us(cycles), cat="relax", **args,
                        )
                    ctx._pending_relax = edges
                    heappush(heap, (now + cycles, prio(), ctx))
                    return
                if kind == "wait":
                    pred = event[1]
                    if not callable(pred):
                        raise DeviceError(
                            f"{ctx.name}: wait predicate must be callable"
                        )
                    channel = event[2] if len(event) >= 3 else None
                    if channel is None:
                        if pred():
                            # Nothing to wait for: resume inline, free.
                            # (The loop keeps charging the event budget,
                            # so a program spinning on a true predicate
                            # still trips the livelock guard.)
                            continue
                        self._wait_reg += 1
                        ctx._wait_started = now
                        self._fallback.append((self._wait_reg, ctx, pred))
                        return
                    if pred():
                        # A channel wait models spinning on a hardware
                        # flag: the flag being set before the first poll
                        # still costs that poll, identically to the
                        # rescan engine.
                        self.wakeups += 1
                        heappush(heap, (now + self._af_poll, prio(), ctx))
                        return
                    self._wait_reg += 1
                    ctx._wait_started = now
                    waiters = self._channels.get(channel)
                    if waiters is None:
                        self._channels[channel] = [(self._wait_reg, ctx, pred)]
                    else:
                        waiters.append((self._wait_reg, ctx, pred))
                    return
                raise DeviceError(f"{ctx.name}: unknown event kind {kind!r}")
        finally:
            self._total_events = events
            self._current_ctx = None

    @staticmethod
    def _take_annotation(ctx: BlockContext, default: str) -> Tuple[str, dict]:
        """Pop the program-supplied name/args for the event being emitted."""
        if ctx._annotation is None:
            return default, {}
        name, args = ctx._annotation
        ctx._annotation = None
        return name, args

    # -- reporting ------------------------------------------------------------------ #

    def wake_stats(self) -> dict:
        """Channel-efficiency counters (see the module docstring)."""
        return {
            "wakeups": self.wakeups,
            "spurious_wakeups": self.spurious_wakeups,
            "fallback_polls": self.fallback_polls,
            "missed_wakeups": self.missed_wakeups,
        }

    def block_report(self) -> List[dict]:
        """Per-block busy/idle summary (debugging and tests)."""
        return [
            {
                "name": c.name,
                "busy_cycles": c.busy_cycles,
                "idle_cycles": c.idle_cycles,
                "events": c.events,
                "finished": c.finished,
            }
            for c in self._blocks
        ]
