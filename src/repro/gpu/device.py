"""The discrete-event engine that interleaves thread-block programs.

A *program* is a Python generator (one per simulated thread block) that
yields cost events and communicates with other programs through shared
state (NumPy arrays + :class:`~repro.gpu.memory.SimMemory` atomics).  The
engine advances a cycle clock and interleaves programs by event completion
time — so the ADDS manager/worker protocol from the paper executes with
real concurrency: a WTB's bucket pushes genuinely race with the MTB's
segment scans, at event granularity.

Events a program may yield
--------------------------

``("busy", cycles)``
    The block computes/accesses memory for ``cycles`` cycles.

``("relax", cycles, edges)``
    Like ``busy``, but the engine tracks ``edges`` as in-flight work for
    the parallelism timeline (Figures 11–15).

``("relax", latency_cycles, edges, bytes)``
    The bandwidth-managed form: the engine owns a DRAM reservation clock
    and serializes the ``bytes`` of all relax batches through the device's
    peak bandwidth, so aggregate memory throughput is exactly the spec's
    peak when saturated and the batch's duration is
    ``max(latency_cycles, queueing delay + own transfer time)``.  This is
    what makes saturated executions bandwidth-bound and starved ones
    latency-bound without any per-batch sharing guesswork.

``("wait", predicate)``
    The block sleeps until ``predicate()`` is true.  Predicates are
    re-evaluated whenever any other block completes an event; a small
    wake-up cost (:attr:`CostModel.af_poll_cycles`) is charged on resume.
    This models a WTB spinning on its assignment flag in scratchpad —
    cheap, off the memory fabric — without flooding the engine with poll
    events.

Programs finish by returning.  :meth:`Device.run` returns when every
program has finished; if all remaining programs are waiting and no
predicate can ever fire the engine raises :class:`DeviceError` (deadlock),
which turns protocol bugs into loud failures instead of hangs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Tuple

from repro.errors import DeviceError
from repro.gpu.costmodel import CostModel
from repro.gpu.memory import SimMemory
from repro.gpu.specs import DeviceSpec
from repro.gpu.timeline import Timeline
from repro.trace.tracer import Tracer, coalesce

__all__ = ["Device", "BlockContext"]

Program = Generator[tuple, None, None]


@dataclass
class BlockContext:
    """Per-block bookkeeping the engine keeps for a registered program."""

    block_id: int
    name: str
    program: Program = field(repr=False)
    busy_cycles: float = 0.0
    idle_cycles: float = 0.0
    events: int = 0
    finished: bool = False
    _wait_started: float = 0.0
    _pending_relax: Optional[float] = None
    #: (name, args) set by Device.annotate for the next yielded event.
    _annotation: Optional[Tuple[str, dict]] = None


class Device:
    """A simulated GPU executing thread-block programs.

    Parameters
    ----------
    spec:
        Hardware description (see :mod:`repro.gpu.specs`).
    cost:
        Cycle cost model; defaults to ``CostModel(spec)``.
    max_events:
        Safety valve: total event budget before the engine declares a
        livelock (:class:`DeviceError`).
    """

    def __init__(
        self,
        spec: DeviceSpec,
        cost: Optional[CostModel] = None,
        *,
        max_events: int = 20_000_000,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.spec = spec
        self.cost = cost if cost is not None else CostModel(spec)
        if self.cost.spec is not spec and self.cost.spec != spec:
            raise DeviceError("cost model was built for a different device spec")
        self.mem = SimMemory()
        self.tracer = coalesce(tracer)
        self.timeline = Timeline(label=spec.name)
        self.now: float = 0.0  # cycles
        # Same divisor as DeviceSpec.cycles_to_us, hoisted: now_us sits on
        # the per-event path and must stay bit-identical to the spec math.
        self._cycles_per_us = spec.max_clock_ghz * 1e3
        self.max_events = max_events
        self._blocks: List[BlockContext] = []
        self._heap: List[Tuple[float, int, BlockContext]] = []
        self._seq = itertools.count()
        self._waiting: List[Tuple[BlockContext, Callable[[], bool]]] = []
        self._relax_blocks = 0
        self._relax_edges = 0.0
        self._relax_integral = 0.0  # ∫ edges-in-flight dt, edge·cycles
        self._relax_changed_at = 0.0
        self._bw_clock = 0.0  # DRAM reservation clock, cycles
        self._bytes_moved = 0.0
        self._total_events = 0
        self._ran = False
        self._current_ctx: Optional[BlockContext] = None

    # -- setup ----------------------------------------------------------------- #

    def add_block(self, name: str, program: Program) -> BlockContext:
        """Register a thread-block program before :meth:`run`."""
        if self._ran:
            raise DeviceError("cannot add blocks after run()")
        if len(self._blocks) >= self.spec.max_resident_blocks:
            raise DeviceError(
                f"{self.spec.name} fits only {self.spec.max_resident_blocks} "
                f"resident blocks of {self.spec.threads_per_block} threads"
            )
        ctx = BlockContext(block_id=len(self._blocks), name=name, program=program)
        self._blocks.append(ctx)
        return ctx

    # -- queries programs may use ------------------------------------------------ #

    @property
    def now_us(self) -> float:
        return self.now / self._cycles_per_us

    def active_relax_blocks(self) -> int:
        """Blocks currently inside a ``relax`` event (bandwidth sharers)."""
        return self._relax_blocks

    def active_relax_edges(self) -> float:
        """Edges currently in flight (the figures' 'parallelism')."""
        return self._relax_edges

    def relax_edge_integral(self) -> float:
        """∫ edges-in-flight dt so far, in edge·cycles.

        Two readings divided by the elapsed cycles give the exact
        time-averaged parallelism over a window — the utilization signal
        the ADDS Δ controller samples (point samples would alias the
        burst-idle-burst pattern of small batches)."""
        return self._relax_integral + self._relax_edges * (
            self.now - self._relax_changed_at
        )

    def _bump_relax(self, delta_edges: float) -> None:
        self._relax_integral += self._relax_edges * (self.now - self._relax_changed_at)
        self._relax_changed_at = self.now
        self._relax_edges += delta_edges
        if self.tracer.enabled:
            self.tracer.counter(
                "edges_in_flight", self.now_us, max(0.0, self._relax_edges)
            )

    def annotate(self, name: str, **args: object) -> None:
        """Name (and attach args to) the *next* event the currently
        running program yields — e.g. the MTB calls
        ``device.annotate("mtb_pass", assignments=3)`` right before its
        ``("busy", cycles)`` yield so the trace span carries the pass
        semantics instead of a generic "busy".  A no-op when tracing is
        disabled or called outside a program step."""
        if not self.tracer.enabled or self._current_ctx is None:
            return
        self._current_ctx._annotation = (name, dict(args))

    # -- engine ----------------------------------------------------------------- #

    def run(self) -> float:
        """Execute all registered programs to completion; returns cycles."""
        if self._ran:
            raise DeviceError("device already ran")
        self._ran = True
        for ctx in self._blocks:
            self._schedule(ctx, self.now)
        heappop = heapq.heappop
        heap = self._heap
        while heap or self._waiting:
            if not heap:
                self._wake_waiters()
                if not heap:
                    waiters = ", ".join(c.name for c, _ in self._waiting)
                    raise DeviceError(f"deadlock: blocks waiting forever: {waiters}")
                continue
            t, _, ctx = heappop(heap)
            if t > self.now:
                self.now = t
            self._step(ctx)
            if self._waiting:
                self._wake_waiters()
        return self.now

    # -- internals --------------------------------------------------------------- #

    def _schedule(self, ctx: BlockContext, t: float) -> None:
        heapq.heappush(self._heap, (t, next(self._seq), ctx))

    def _wake_waiters(self) -> None:
        waiting = self._waiting
        if not waiting:
            return
        # Fast path: most completions wake nobody; avoid rebuilding the
        # list (predicates are pure reads, so re-evaluating is safe).
        for _, pred in waiting:
            if pred():
                break
        else:
            return
        still: List[Tuple[BlockContext, Callable[[], bool]]] = []
        for ctx, pred in self._waiting:
            if pred():
                ctx.idle_cycles += self.now - ctx._wait_started
                if self.tracer.enabled:
                    start_us = self.spec.cycles_to_us(ctx._wait_started)
                    self.tracer.span(
                        ctx.name, "idle", start_us,
                        self.now_us - start_us, cat="wait",
                    )
                # charge the successful poll that noticed the flag change
                self._schedule(ctx, self.now + self.cost.af_poll_cycles)
            else:
                still.append((ctx, pred))
        self._waiting = still

    def _finish_relax(self, edges: float) -> None:
        self._relax_blocks -= 1
        self._bump_relax(-edges)
        self.timeline.record(self.now_us, max(0.0, self._relax_edges))

    def _step(self, ctx: BlockContext) -> None:
        """Resume one program and interpret its next yielded event."""
        self._total_events += 1
        if self._total_events > self.max_events:
            raise DeviceError(
                f"event budget exceeded ({self.max_events}); "
                "likely a livelock in a block program"
            )
        # Complete the effects of the event that just elapsed.
        pending = ctx._pending_relax
        if pending is not None:
            self._finish_relax(pending)
            ctx._pending_relax = None

        self._current_ctx = ctx
        try:
            event = next(ctx.program)
        except StopIteration:
            ctx.finished = True
            return
        finally:
            self._current_ctx = None

        ctx.events += 1
        kind = event[0]
        if kind == "busy":
            cycles = float(event[1])
            if cycles < 0:
                raise DeviceError(f"{ctx.name}: negative busy duration")
            ctx.busy_cycles += cycles
            if self.tracer.enabled:
                name, args = self._take_annotation(ctx, "busy")
                self.tracer.span(
                    ctx.name, name, self.now_us,
                    self.spec.cycles_to_us(cycles), cat="compute", **args,
                )
            self._schedule(ctx, self.now + cycles)
        elif kind == "relax":
            cycles, edges = float(event[1]), float(event[2])
            if cycles < 0 or edges < 0:
                raise DeviceError(f"{ctx.name}: negative relax event")
            dram_wait = 0.0
            if len(event) >= 4:
                # bandwidth-managed form: serialize bytes through DRAM
                nbytes = float(event[3])
                if nbytes < 0:
                    raise DeviceError(f"{ctx.name}: negative relax bytes")
                service_start = max(self.now, self._bw_clock)
                dram_wait = service_start - self.now
                transfer_done = service_start + nbytes / self.spec.bytes_per_cycle
                self._bw_clock = transfer_done
                self._bytes_moved += nbytes
                cycles = max(cycles, transfer_done - self.now)
            ctx.busy_cycles += cycles
            self._relax_blocks += 1
            self._bump_relax(edges)
            self.timeline.record(self.now_us, self._relax_edges)
            if self.tracer.enabled:
                name, args = self._take_annotation(ctx, "relax")
                args.setdefault("edges", edges)
                if dram_wait > 0:
                    args["dram_wait_us"] = self.spec.cycles_to_us(dram_wait)
                self.tracer.span(
                    ctx.name, name, self.now_us,
                    self.spec.cycles_to_us(cycles), cat="relax", **args,
                )
            ctx._pending_relax = edges
            self._schedule(ctx, self.now + cycles)
        elif kind == "wait":
            pred = event[1]
            if not callable(pred):
                raise DeviceError(f"{ctx.name}: wait predicate must be callable")
            if pred():
                self._schedule(ctx, self.now + self.cost.af_poll_cycles)
            else:
                ctx._wait_started = self.now
                self._waiting.append((ctx, pred))
        else:
            raise DeviceError(f"{ctx.name}: unknown event kind {kind!r}")

    @staticmethod
    def _take_annotation(ctx: BlockContext, default: str) -> Tuple[str, dict]:
        """Pop the program-supplied name/args for the event being emitted."""
        if ctx._annotation is None:
            return default, {}
        name, args = ctx._annotation
        ctx._annotation = None
        return name, args

    # -- reporting ------------------------------------------------------------------ #

    def block_report(self) -> List[dict]:
        """Per-block busy/idle summary (debugging and tests)."""
        return [
            {
                "name": c.name,
                "busy_cycles": c.busy_cycles,
                "idle_cycles": c.idle_cycles,
                "events": c.events,
                "finished": c.finished,
            }
            for c in self._blocks
        ]
