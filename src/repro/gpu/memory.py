"""Simulated device memory: atomics, fences and traffic accounting.

The event engine in :mod:`repro.gpu.device` is cooperative (a block's
program runs uninterrupted between ``yield`` points), so the *values*
produced by these atomics are trivially correct; what this module adds is

- the **API shape** of the CUDA primitives the paper's kernels use
  (``atomicAdd``/``atomicMin``/``atomicCAS``, ``__threadfence``), so the
  ADDS code reads like the algorithm in §5;
- **operation counters**, which feed reports and tests (e.g. the tests
  that assert the MTB performs a fence before trusting ``resv_ptr``); and
- a **pre-allocated arena** (:class:`GlobalPool`) from which the ADDS
  block allocator draws its 64 Ki-word blocks, mirroring the paper's
  "large block of pre-allocated GPU memory" (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import AllocationError
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["MemoryStats", "SimMemory", "GlobalPool", "WORDS_PER_BLOCK"]

#: The paper's allocation granularity: blocks of 64 Ki 32-bit words (§5.3).
WORDS_PER_BLOCK = 1 << 16


@dataclass
class MemoryStats:
    """Counters of simulated memory operations, by kind."""

    global_reads: int = 0
    global_writes: int = 0
    scratchpad_reads: int = 0
    scratchpad_writes: int = 0
    atomics: int = 0
    fences: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "global_reads": self.global_reads,
            "global_writes": self.global_writes,
            "scratchpad_reads": self.scratchpad_reads,
            "scratchpad_writes": self.scratchpad_writes,
            "atomics": self.atomics,
            "fences": self.fences,
        }


class SimMemory:
    """Atomic primitives over NumPy arrays, with operation accounting.

    One instance is shared by all thread-block programs on a device; the
    distinction between "global" and "scratchpad" exists only in the
    counters (and in the cost events programs emit), exactly as on real
    hardware where it is an address-space property.
    """

    def __init__(self) -> None:
        self.stats = MemoryStats()
        # dynamic protocol checker (repro.check): verifies atomic-min
        # monotonicity/winner semantics when attached, one branch when not
        self._checker = None

    def attach_checker(self, checker) -> None:
        """Route ``atomic_min``/``atomic_min_batch`` outcomes through a
        :class:`repro.check.ProtocolChecker` (or None to detach)."""
        self._checker = checker

    # -- atomics ----------------------------------------------------------- #

    def atomic_add(self, arr: np.ndarray, index: int, value) -> int:
        """``atomicAdd``: add, return the *old* value."""
        self.stats.atomics += 1
        old = arr.item(index)
        arr[index] = old + value
        return old

    def atomic_add_batch(
        self, arr: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Vectorized ``atomicAdd`` over possibly-duplicated indices.

        One counted atomic per entry — a warp issuing k ``atomicAdd``s
        still performs k atomics, it just does so without a host-side
        Python loop.  Implemented with ``np.add.at`` (unbuffered
        scatter-add, so duplicate indices accumulate like real atomics).
        """
        self.stats.atomics += int(np.asarray(indices).size)
        np.add.at(arr, indices, values)

    def atomic_min(self, arr: np.ndarray, index: int, value) -> bool:
        """``atomicMin``: returns True iff the stored value decreased."""
        self.stats.atomics += 1
        old = arr.item(index)
        if value < old:
            arr[index] = value
            if self._checker is not None:
                self._checker.on_atomic_min(arr, index, value, old)
            return True
        return False

    def atomic_min_batch(
        self,
        arr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        *,
        payload: np.ndarray = None,
        payload_out: np.ndarray = None,
    ) -> np.ndarray:
        """Vectorized atomic-min over possibly-duplicated indices.

        Returns a boolean mask marking the entries whose value became the
        new minimum at their index (i.e. "my atomicMin won"), matching the
        semantics each GPU thread observes.  Implemented with
        ``np.minimum.at`` (an unbuffered scatter-min, the NumPy analog of
        hardware atomics).

        When ``payload``/``payload_out`` are given, each winning entry also
        stores ``payload[i]`` into ``payload_out[indices[i]]`` — the
        64-bit packed (distance, predecessor) update GPU SSSP kernels use
        to keep the shortest-path tree consistent with the distances.

        **Fused-call contract** (the batch execution mode relies on it):
        for index sets that are disjoint *across* sub-batches, one call
        over the concatenation is bit-equivalent to the sequential
        per-sub-batch calls — each concatenated slice of the winner mask
        equals the solo mask, ``arr``/``payload_out`` land identically,
        and ``stats.atomics`` grows by the same total.  Within a
        sub-batch duplicates dedup to the first best entry on both the
        scalar (``n <= 32``) and vectorized paths, so the equivalence
        holds regardless of which path each call shape takes.
        """
        n = int(indices.size)
        self.stats.atomics += n
        if n == 0:
            return np.zeros(0, dtype=bool)
        checker = self._checker
        pre_vals = arr[indices] if checker is not None else None
        if n <= 32:
            # Small batches (the common WTB case: a handful of edges per
            # chunk) pay more for the eight-odd NumPy dispatches below
            # than for the arithmetic; a scalar pass computes the same
            # winner mask — first entry per index that improves on the
            # pre-batch value and holds the post-batch minimum.
            winners = np.zeros(n, dtype=bool)
            state: dict = {}  # idx -> [pre-batch value, best value, position]
            idx_l = indices.tolist()
            val_l = values.tolist()
            arr_item = arr.item
            for i in range(n):
                j = idx_l[i]
                v = val_l[i]
                rec = state.get(j)
                if rec is None:
                    state[j] = [arr_item(j), v, i]
                elif v < rec[1]:
                    rec[1] = v
                    rec[2] = i
            has_payload = payload is not None and payload_out is not None
            for j, (pre, best, pos) in state.items():
                if best < pre:
                    arr[j] = best
                    winners[pos] = True
                    if has_payload:
                        payload_out[j] = payload[pos]
            if checker is not None:
                checker.on_atomic_min_batch(arr, indices, values, pre_vals, winners)
            return winners
        before = arr[indices]  # fancy indexing already copies
        np.minimum.at(arr, indices, values)
        after = arr[indices]
        # A thread "wins" if it improved on the pre-batch value and is the
        # (first) entry that holds the post-batch minimum for its index.
        improved = values < before
        is_final = values == after
        winners = improved & is_final
        # Deduplicate: when several entries tie on the same index, keep
        # the first.  For the small winner counts WTB chunks produce, a
        # scalar first-occurrence scan beats the sort inside np.unique;
        # the BSP baselines push thousands of winners per superstep, so
        # big sets keep the vectorized path.  Both keep the first
        # occurrence per index, so the mask is identical either way.
        any_winners = bool(winners.any())
        if any_winners:
            order = winners.nonzero()[0]
            if 1 < order.size <= 64:
                idx_w = indices[order]
                seen: set = set()
                keep = []
                dup = False
                for pos, j in zip(order.tolist(), idx_w.tolist()):
                    if j in seen:
                        dup = True
                    else:
                        seen.add(j)
                        keep.append(pos)
                if dup:
                    winners = np.zeros_like(winners)
                    winners[keep] = True
            elif order.size > 64:
                idx_w = indices[order]
                uniq, first = np.unique(idx_w, return_index=True)
                if uniq.size < idx_w.size:
                    keep = order[first]
                    winners = np.zeros_like(winners)
                    winners[keep] = True
        if payload is not None and payload_out is not None and any_winners:
            payload_out[indices[winners]] = payload[winners]
        if checker is not None:
            checker.on_atomic_min_batch(arr, indices, values, pre_vals, winners)
        return winners

    def atomic_cas(self, arr: np.ndarray, index: int, expected, desired) -> int:
        """``atomicCAS``: conditional swap, returns the old value."""
        self.stats.atomics += 1
        old = arr.item(index)
        if old == expected:
            arr[index] = desired
        return old

    # -- fences and plain accesses ------------------------------------------ #

    def fence(self) -> None:
        """``__threadfence``: in the cooperative simulator ordering is
        already sequential; the call is counted so protocol tests can
        assert it happened where §5.2 requires it."""
        self.stats.fences += 1

    def read(self, n: int = 1, *, scratchpad: bool = False) -> None:
        if scratchpad:
            self.stats.scratchpad_reads += n
        else:
            self.stats.global_reads += n

    def write(self, n: int = 1, *, scratchpad: bool = False) -> None:
        if scratchpad:
            self.stats.scratchpad_writes += n
        else:
            self.stats.global_writes += n


class GlobalPool:
    """The pre-allocated arena backing ADDS's bucket blocks (§5.3).

    ``acquire`` hands out fixed-size int64 blocks ("64K 32-bit words" in
    the paper; we store (vertex, distance) pairs per slot, so the slot
    count per block is what matches).  ``release`` returns a block for
    reuse.  The FIFO usage pattern of the bucket queue means a simple
    free list suffices — that simplicity is the paper's point.
    """

    def __init__(self, num_blocks: int, words_per_block: int = WORDS_PER_BLOCK) -> None:
        if num_blocks < 1:
            raise AllocationError("pool needs at least one block")
        self.words_per_block = int(words_per_block)
        self._free = list(range(num_blocks - 1, -1, -1))
        # Membership twin of ``_free``: the double-free guard in
        # ``release`` must not scan the list (O(free) per release made
        # the allocator quadratic over a run).
        self._free_set = set(self._free)
        self.num_blocks = num_blocks
        # storage[i] holds block i; two int64 lanes: vertex id and distance
        # bit pattern (distances are stored via a codec by the queue).
        self.storage = np.zeros((num_blocks, self.words_per_block, 2), dtype=np.int64)
        self.high_water = 0
        self._tracer: Tracer = NULL_TRACER
        self._clock: Callable[[], float] = lambda: 0.0

    def attach_tracer(
        self, tracer: Optional[Tracer], clock: Callable[[], float]
    ) -> None:
        """Emit ``pool_blocks_in_use`` counter samples on acquire/release.

        ``clock`` supplies the current simulated time in µs (the pool has
        no device reference of its own)."""
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def blocks_in_use(self) -> int:
        return self.num_blocks - len(self._free)

    def acquire(self) -> int:
        """Take a free block id; raises :class:`AllocationError` when empty."""
        if not self._free:
            raise AllocationError(
                f"global pool exhausted ({self.num_blocks} blocks in use)"
            )
        blk = self._free.pop()
        self._free_set.discard(blk)
        self.high_water = max(self.high_water, self.num_blocks - len(self._free))
        if self._tracer.enabled:
            self._tracer.counter(
                "pool_blocks_in_use", self._clock(), self.blocks_in_use
            )
        return blk

    def release(self, block_id: int) -> None:
        if not 0 <= block_id < self.num_blocks:
            raise AllocationError(f"release of unknown block {block_id}")
        if block_id in self._free_set:
            raise AllocationError(f"double free of block {block_id}")
        self._free.append(block_id)
        self._free_set.add(block_id)
        if self._tracer.enabled:
            self._tracer.counter(
                "pool_blocks_in_use", self._clock(), self.blocks_in_use
            )
