"""Device specifications (the paper's Table 1, plus the CPU baseline host).

These are plain data: the cost model in :mod:`repro.gpu.costmodel` turns
them into cycle costs.  Keeping specs and model separate is what makes the
paper's §6.5 experiment ("no tuning of the source code" across GPUs)
reproducible — the 3090 run changes only the spec object.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "CpuSpec", "RTX_2080TI", "RTX_3090", "CPU_I9_7900X"]


@dataclass(frozen=True)
class DeviceSpec:
    """A GPU, in the terms the paper's Table 1 uses."""

    name: str
    sm_count: int
    threads_per_sm: int
    max_clock_ghz: float
    dram_bandwidth_gbs: float
    dram_gb: float
    l2_mb: float
    scratchpad_kb_per_sm: int
    compute_capability: str
    #: CUDA threads per thread block used by every solver in this repo.
    threads_per_block: int = 256

    @property
    def total_threads(self) -> int:
        """Total resident hardware threads (the paper's "68K threads")."""
        return self.sm_count * self.threads_per_sm

    @property
    def max_resident_blocks(self) -> int:
        """How many thread blocks fit on the device at once."""
        return self.sm_count * (self.threads_per_sm // self.threads_per_block)

    @property
    def bytes_per_cycle(self) -> float:
        """Peak DRAM bytes per core clock cycle."""
        return self.dram_bandwidth_gbs * 1e9 / (self.max_clock_ghz * 1e9)

    def cycles_to_us(self, cycles: float) -> float:
        """Convert core cycles to microseconds of wall time."""
        return cycles / (self.max_clock_ghz * 1e3)

    def us_to_cycles(self, us: float) -> float:
        return us * self.max_clock_ghz * 1e3

    def scaled(
        self, factor: float, *, bandwidth_factor: float = None, name: str = None
    ) -> "DeviceSpec":
        """A proportionally smaller GPU.

        The reproduction's corpus is ~10–100× smaller than the paper's
        inputs (DESIGN.md §4.4), so running it against a full 68-SM device
        would leave *every* graph in the underutilized regime and erase
        the paper's saturated-vs-starved contrast.  ``scaled(1/16)`` keeps
        the work-to-hardware ratio of the paper's experiments: SM count
        shrinks (min 1); clocks and per-SM limits are untouched.

        ``bandwidth_factor`` scales DRAM bandwidth independently (default:
        the achieved SM ratio).  The calibration layer passes
        ``sqrt(factor)``: memory *latency* does not shrink with a smaller
        chip, so giving the scaled device proportionally more bandwidth
        per SM keeps the latency-to-throughput balance — and with it the
        starved-graphs-are-latency-bound / saturated-graphs-are-
        bandwidth-bound split of the paper's §6.4 — intact at small scale.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        from dataclasses import replace

        new_sms = max(1, round(self.sm_count * factor))
        ratio = new_sms / self.sm_count
        bw = bandwidth_factor if bandwidth_factor is not None else ratio
        return replace(
            self,
            name=name or f"{self.name} x{factor:g}",
            sm_count=new_sms,
            dram_bandwidth_gbs=self.dram_bandwidth_gbs * bw,
            dram_gb=self.dram_gb * ratio,
            l2_mb=self.l2_mb * ratio,
        )


@dataclass(frozen=True)
class CpuSpec:
    """A multicore CPU for the Galois baselines (CPU-DS, serial Dijkstra)."""

    name: str
    cores: int
    threads: int
    clock_ghz: float
    #: sustained random-access latency per pointer-chase, nanoseconds
    mem_latency_ns: float = 60.0
    #: sustained DRAM bandwidth, GB/s
    dram_bandwidth_gbs: float = 80.0


#: The paper's primary evaluation GPU (Table 1, left column).
RTX_2080TI = DeviceSpec(
    name="RTX 2080 Ti",
    sm_count=68,
    threads_per_sm=1024,
    max_clock_ghz=1.75,
    dram_bandwidth_gbs=616.0,
    dram_gb=11.0,
    l2_mb=5.5,
    scratchpad_kb_per_sm=48,
    compute_capability="7.5",
)

#: The robustness-check GPU (Table 1, right column); +52 % DRAM bandwidth.
RTX_3090 = DeviceSpec(
    name="RTX 3090",
    sm_count=82,
    threads_per_sm=1536,
    max_clock_ghz=1.8,
    dram_bandwidth_gbs=936.0,
    dram_gb=24.0,
    l2_mb=6.0,
    scratchpad_kb_per_sm=48,
    compute_capability="8.6",
)

#: Host for CPU-DS and serial Dijkstra (§6.1: 10 cores / 20 threads @ 3.3 GHz).
CPU_I9_7900X = CpuSpec(
    name="Core i9-7900X",
    cores=10,
    threads=20,
    clock_ghz=3.3,
)
