"""Discrete-event GPU execution simulator.

The paper runs on an RTX 2080 Ti and an RTX 3090; this package is the
substitute substrate (see DESIGN.md §1).  It provides:

- :mod:`~repro.gpu.specs` — device descriptions taken from the paper's
  Table 1 (plus the Core i9-7900X used by the CPU baselines);
- :mod:`~repro.gpu.costmodel` — the cycle cost model: kernel-launch
  overhead, memory/atomic costs, bandwidth-limited edge-relaxation
  throughput with a degree-dependent divergence factor;
- :mod:`~repro.gpu.device` — the event engine that interleaves
  *thread-block programs* (Python generators yielding cost events) and
  advances a cycle-accurate-ish wall clock;
- :mod:`~repro.gpu.memory` — simulated global/scratchpad memory with
  atomic operations, fences and traffic counters;
- :mod:`~repro.gpu.timeline` — parallelism-over-time traces (the data
  behind the paper's Figures 11–15);
- :mod:`~repro.gpu.kernels` — the BSP launch helper used by the
  double-buffered baselines (Near-Far, Bellman-Ford).
"""

from repro.gpu.costmodel import CostModel
from repro.gpu.device import Device, BlockContext
from repro.gpu.kernels import BspMachine
from repro.gpu.memory import SimMemory
from repro.gpu.specs import CPU_I9_7900X, RTX_2080TI, RTX_3090, CpuSpec, DeviceSpec
from repro.gpu.timeline import Timeline

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "RTX_2080TI",
    "RTX_3090",
    "CPU_I9_7900X",
    "CostModel",
    "Device",
    "BlockContext",
    "BspMachine",
    "SimMemory",
    "Timeline",
]
