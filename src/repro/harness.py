"""The experiment driver: the artifact's ``run_all.sh`` as a library.

``run_suite`` executes a set of solvers over a corpus on a chosen device
model, collecting :class:`~repro.baselines.common.SSSPResult`s, verifying
them against each other, and producing the pairwise ratios the paper's
tables are built from.  ``write_result_files`` emits the artifact's
``<solver>_result`` text format.

Since PR 2 the sweep itself runs on :mod:`repro.engine`: ``run_suite``
plans (graph, solver) cells and hands them to the engine, which executes
them serially (``jobs=1``, the default — identical to the historic loop)
or across a process pool, with per-cell timeouts, bounded retries,
graceful failure records, an on-disk graph cache, and a resumable JSONL
result store.  The historic ``GPU_SOLVERS``/``TRACEABLE_SOLVERS`` name
sets are now derived from the registry's capability flags (kept as
deprecated module attributes for old imports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.distributions import Distribution, bin_ratios
from repro.baselines.common import (
    SSSPResult,
    get_solver_info,
    solver_names,
)
from repro.calibration import default_cost, default_gpu
from repro.engine import (
    EngineConfig,
    FailedRun,
    plan_cells,
    run_cells,
)
from repro.errors import SolverError
from repro.gpu.costmodel import CostModel
from repro.gpu.specs import DeviceSpec
from repro.graphs.csr import CSRGraph
from repro.graphs.suite import SuiteEntry, build_suite
from repro.trace import MetricsRegistry, Tracer, write_trace_artifacts
from repro.validation import verify_results

__all__ = [
    "RunRecord",
    "SuiteRun",
    "run_suite",
    "run_traced_solve",
    "write_result_files",
]


def __getattr__(name: str):
    """Deprecated aliases for the pre-PR-2 hard-coded name sets.

    ``GPU_SOLVERS``/``TRACEABLE_SOLVERS`` are now *derived* from the
    capability flags solvers declare at registration time
    (:func:`repro.baselines.common.register_solver`); query those flags
    via :func:`repro.baselines.common.solver_names` instead.
    """
    if name == "GPU_SOLVERS":
        return frozenset(solver_names(needs_device=True))
    if name == "TRACEABLE_SOLVERS":
        return frozenset(solver_names(traceable=True))
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class RunRecord:
    """All solvers' results for one graph."""

    graph: str
    category: str
    results: Dict[str, SSSPResult]
    #: Per-solver wall-clock ``(started_at, ended_at)`` epoch-second
    #: spans, measured inside the worker that executed the cell (see
    #: :mod:`repro.engine.worker`).  Empty for records restored from a
    #: resume store — the original execution's wall-clock is gone, and a
    #: fabricated span would corrupt latency percentiles downstream.
    spans: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def wall_clock(self, solver: str) -> Optional[Tuple[float, float]]:
        """The solver's wall-clock span on this graph, if it executed
        this run (``None`` when resumed from a store)."""
        return self.spans.get(solver)

    def ratio(self, metric: str, solver_a: str, solver_b: str) -> float:
        """``b / a`` for time (speedup of a over b) or work.

        A zero-time or zero-work operand raises :class:`SolverError` —
        such a result means the solver did not actually run (or its cost
        model is broken), and fabricating a clamped ratio would silently
        poison every downstream mean and table.
        """
        a, b = self.results[solver_a], self.results[solver_b]
        if metric == "time":
            if a.time_us <= 0 or b.time_us <= 0:
                raise SolverError(
                    f"cannot form a time ratio on {self.graph}: "
                    f"{solver_a}={a.time_us}us, {solver_b}={b.time_us}us"
                )
            return b.time_us / a.time_us
        if metric == "work":
            if a.work_count <= 0 or b.work_count <= 0:
                raise SolverError(
                    f"cannot form a work ratio on {self.graph}: "
                    f"{solver_a}={a.work_count}, {solver_b}={b.work_count}"
                )
            return b.work_count / a.work_count
        raise SolverError(f"unknown metric {metric!r}")


@dataclass
class SuiteRun:
    """The outcome of :func:`run_suite`."""

    records: List[RunRecord] = field(default_factory=list)
    verification_failures: List[str] = field(default_factory=list)
    #: Cells that produced no result (solver raised / timed out) after
    #: the engine's bounded retries.  A non-empty list means the sweep's
    #: aggregates cover fewer cells than requested — never that it died.
    failures: List[FailedRun] = field(default_factory=list)
    #: Cells restored from the resume store instead of executed.
    resumed: int = 0

    def _both(self, solver: str, baseline: str) -> List[RunRecord]:
        return [
            r for r in self.records
            if solver in r.results and baseline in r.results
        ]

    def speedups(self, solver: str, baseline: str) -> List[float]:
        """Per-graph time ratios, over records where both solvers ran."""
        return [r.ratio("time", solver, baseline) for r in self._both(solver, baseline)]

    def work_ratios(self, solver: str, baseline: str) -> List[float]:
        """ADDS-work / baseline-work convention of Table 4 is baseline
        over solver inverted — Table 4 reports the solver's vertex count
        normalized *to* the baseline, i.e. solver/baseline."""
        return [
            1.0 / r.ratio("work", solver, baseline)
            for r in self._both(solver, baseline)
        ]

    def speedup_distribution(self, solver: str, baseline: str, label: str = None) -> Distribution:
        return bin_ratios(
            self.speedups(solver, baseline), label=label or baseline.upper()
        )

    def by_category(self) -> Dict[str, List[RunRecord]]:
        out: Dict[str, List[RunRecord]] = {}
        for r in self.records:
            out.setdefault(r.category, []).append(r)
        return out


def run_suite(
    *,
    solvers: Sequence[str] = ("adds", "nf"),
    suite: Optional[Sequence[SuiteEntry]] = None,
    spec: Optional[DeviceSpec] = None,
    cost: Optional[CostModel] = None,
    solver_options: Optional[Dict[str, dict]] = None,
    scheduler: Optional[str] = None,
    verify: bool = True,
    verify_atol: float = 1e-2,
    verify_rtol: float = 1e-5,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = 1,
    timeout_s: Optional[float] = None,
    max_attempts: int = 2,
    cache_dir: Optional[Union[str, Path]] = None,
    store_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    solver_modules: Tuple[str, ...] = (),
) -> SuiteRun:
    """Run ``solvers`` over ``suite`` (default: the full corpus).

    GPU solvers receive ``spec``/``cost`` (default: the calibrated scaled
    RTX 2080 Ti); CPU solvers ignore them.  ``scheduler`` names a
    registered WorkScheduler and applies to the ``accepts_scheduler``
    solvers in the sweep (see :func:`repro.engine.plan_cells`).  With ``verify=True`` every
    solver's distances are checked against the first solver's (the
    ``verify_against_*`` step); failures are recorded, not raised, so one
    bad run doesn't lose a whole sweep.

    Engine knobs (see :class:`repro.engine.EngineConfig`):

    - ``jobs`` — worker processes; ``1`` (default) runs in-process and
      bit-identically to the pre-engine serial loop, ``None``
      auto-detects from the CPU count.
    - ``timeout_s``/``max_attempts`` — per-cell budget and bounded retry;
      exhausted cells land in :attr:`SuiteRun.failures`.
    - ``cache_dir`` — on-disk graph cache (repeat sweeps skip
      regeneration).
    - ``store_path``/``resume`` — incremental JSONL persistence; with
      ``resume=True`` previously completed cells are restored instead of
      re-run.
    - ``solver_modules`` — extra modules imported in every worker so
      out-of-tree solvers exist in the worker registry.
    """
    solvers = tuple(solvers)
    if suite is None:
        suite = build_suite()
    spec = spec or default_gpu()
    cost = cost or default_cost(spec)

    config = EngineConfig(
        jobs=jobs,
        timeout_s=timeout_s,
        max_attempts=max_attempts,
        cache_dir=cache_dir,
        store_path=store_path,
        resume=resume,
        solver_modules=solver_modules,
    )
    cells = plan_cells(
        suite, solvers,
        spec=spec, cost=cost, solver_options=solver_options,
        scheduler=scheduler, config=config,
    )
    engine_out = run_cells(cells, config, progress=progress)

    run = SuiteRun(failures=engine_out.failures, resumed=engine_out.resumed)
    for entry in suite:
        results: Dict[str, SSSPResult] = {}
        spans: Dict[str, Tuple[float, float]] = {}
        for name in solvers:
            result = engine_out.results.get((entry.name, name))
            if result is not None:
                results[name] = result
                span = engine_out.spans.get((entry.name, name))
                if span is not None:
                    spans[name] = span
        if not results:
            continue  # every solver failed on this graph; failures say so
        if verify and len(results) > 1:
            ref_name = next(s for s in solvers if s in results)
            for name in solvers:
                if name == ref_name or name not in results:
                    continue
                mism = verify_results(
                    results[ref_name], results[name],
                    atol=verify_atol, rtol=verify_rtol,
                )
                if mism:
                    run.verification_failures.append(
                        f"{entry.name}: {name} vs {ref_name}: "
                        f"{len(mism)}+ mismatches (first: {mism[0]})"
                    )
        run.records.append(
            RunRecord(
                graph=entry.name,
                category=entry.category,
                results=results,
                spans=spans,
            )
        )
    return run


def run_traced_solve(
    graph: CSRGraph,
    solver: str = "adds",
    *,
    source: int = 0,
    spec: Optional[DeviceSpec] = None,
    cost: Optional[CostModel] = None,
    out_dir: Optional[Union[str, Path]] = None,
    **solver_kwargs,
):
    """Run one solver with tracing enabled; optionally write artifacts.

    Returns ``(result, tracer, paths)`` where ``paths`` is the artifact
    list (``trace.json`` / ``counters.csv`` / ``summary.txt``) written
    into ``out_dir``, or ``[]`` when ``out_dir`` is None.  Only solvers
    registered ``traceable`` emit events; other solvers are rejected
    loudly rather than producing a silently empty trace.
    """
    info = get_solver_info(solver)
    if not info.traceable:
        raise SolverError(
            f"solver {solver!r} does not support tracing; "
            f"pick one of {solver_names(traceable=True)}"
        )
    spec = spec or default_gpu()
    cost = cost or default_cost(spec)
    tracer = Tracer()
    result = info(
        graph, source, spec=spec, cost=cost, tracer=tracer, **solver_kwargs
    )
    paths: List[Path] = []
    if out_dir is not None:
        metrics = result.metrics if result.metrics is not None else MetricsRegistry()
        paths = write_trace_artifacts(
            out_dir, tracer, metrics,
            title=f"{solver} on {graph.name} (source {source})",
        )
    return result, tracer, paths


def write_result_files(run: SuiteRun, out_dir: Union[str, Path]) -> List[Path]:
    """Emit the artifact's ``<solver>_result`` files: one line per graph,
    ``graph_name run_time(s) work_count``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    solvers = set()
    for rec in run.records:
        solvers.update(rec.results)
    paths = []
    for name in sorted(solvers):
        path = out_dir / f"{name.replace('-', '_')}_result"
        with open(path, "w") as fh:
            for rec in run.records:
                if name in rec.results:
                    fh.write(rec.results[name].result_line() + "\n")
        paths.append(path)
    return paths
