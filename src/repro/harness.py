"""The experiment driver: the artifact's ``run_all.sh`` as a library.

``run_suite`` executes a set of solvers over a corpus on a chosen device
model, collecting :class:`~repro.baselines.common.SSSPResult`s, verifying
them against each other, and producing the pairwise ratios the paper's
tables are built from.  ``write_result_files`` emits the artifact's
``<solver>_result`` text format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.distributions import Distribution, bin_ratios
from repro.baselines.common import SOLVERS, SSSPResult, get_solver
from repro.calibration import default_cost, default_gpu
from repro.errors import SolverError, ValidationError
from repro.gpu.costmodel import CostModel
from repro.gpu.specs import DeviceSpec
from repro.graphs.csr import CSRGraph
from repro.graphs.suite import SuiteEntry, build_suite
from repro.trace import MetricsRegistry, Tracer, write_trace_artifacts
from repro.validation import verify_results

__all__ = [
    "RunRecord",
    "SuiteRun",
    "run_suite",
    "run_traced_solve",
    "write_result_files",
]

#: Solvers that execute on the simulated GPU (accept spec/cost kwargs).
GPU_SOLVERS = {"adds", "nf", "gun-nf", "gun-bf", "nv"}

#: Solvers whose execution engine emits trace events (accept a ``tracer``
#: kwarg): ADDS traces at thread-block granularity, the BSP baselines at
#: superstep granularity.
TRACEABLE_SOLVERS = GPU_SOLVERS


@dataclass(frozen=True)
class RunRecord:
    """All solvers' results for one graph."""

    graph: str
    category: str
    results: Dict[str, SSSPResult]

    def ratio(self, metric: str, solver_a: str, solver_b: str) -> float:
        """``b / a`` for time (speedup of a over b) or work."""
        a, b = self.results[solver_a], self.results[solver_b]
        if metric == "time":
            return b.time_us / max(1e-12, a.time_us)
        if metric == "work":
            return b.work_count / max(1, a.work_count)
        raise SolverError(f"unknown metric {metric!r}")


@dataclass
class SuiteRun:
    """The outcome of :func:`run_suite`."""

    records: List[RunRecord] = field(default_factory=list)
    verification_failures: List[str] = field(default_factory=list)

    def speedups(self, solver: str, baseline: str) -> List[float]:
        return [r.ratio("time", solver, baseline) for r in self.records]

    def work_ratios(self, solver: str, baseline: str) -> List[float]:
        """ADDS-work / baseline-work convention of Table 4 is baseline
        over solver inverted — Table 4 reports the solver's vertex count
        normalized *to* the baseline, i.e. solver/baseline."""
        return [1.0 / r.ratio("work", solver, baseline) for r in self.records]

    def speedup_distribution(self, solver: str, baseline: str, label: str = None) -> Distribution:
        return bin_ratios(
            self.speedups(solver, baseline), label=label or baseline.upper()
        )

    def by_category(self) -> Dict[str, List[RunRecord]]:
        out: Dict[str, List[RunRecord]] = {}
        for r in self.records:
            out.setdefault(r.category, []).append(r)
        return out


def run_suite(
    *,
    solvers: Sequence[str] = ("adds", "nf"),
    suite: Optional[Sequence[SuiteEntry]] = None,
    spec: Optional[DeviceSpec] = None,
    cost: Optional[CostModel] = None,
    solver_options: Optional[Dict[str, dict]] = None,
    verify: bool = True,
    verify_atol: float = 1e-2,
    verify_rtol: float = 1e-5,
    progress: Optional[Callable[[str], None]] = None,
) -> SuiteRun:
    """Run ``solvers`` over ``suite`` (default: the full corpus).

    GPU solvers receive ``spec``/``cost`` (default: the calibrated scaled
    RTX 2080 Ti); CPU solvers ignore them.  With ``verify=True`` every
    solver's distances are checked against the first solver's (the
    ``verify_against_*`` step); failures are recorded, not raised, so one
    bad run doesn't lose a whole sweep.
    """
    for s in solvers:
        get_solver(s)  # fail fast on typos
    if suite is None:
        suite = build_suite()
    spec = spec or default_gpu()
    cost = cost or default_cost(spec)
    solver_options = solver_options or {}

    run = SuiteRun()
    for entry in suite:
        graph = entry.graph()
        results: Dict[str, SSSPResult] = {}
        for name in solvers:
            fn = get_solver(name)
            kwargs = dict(solver_options.get(name, {}))
            if name in GPU_SOLVERS:
                kwargs.setdefault("spec", spec)
                kwargs.setdefault("cost", cost)
            results[name] = fn(graph, entry.source, **kwargs)
            if progress:
                progress(f"{entry.name}: {name} done")
        if verify and len(results) > 1:
            ref_name = solvers[0]
            for name in solvers[1:]:
                mism = verify_results(
                    results[ref_name], results[name],
                    atol=verify_atol, rtol=verify_rtol,
                )
                if mism:
                    run.verification_failures.append(
                        f"{entry.name}: {name} vs {ref_name}: "
                        f"{len(mism)}+ mismatches (first: {mism[0]})"
                    )
        run.records.append(
            RunRecord(graph=entry.name, category=entry.category, results=results)
        )
    return run


def run_traced_solve(
    graph: CSRGraph,
    solver: str = "adds",
    *,
    source: int = 0,
    spec: Optional[DeviceSpec] = None,
    cost: Optional[CostModel] = None,
    out_dir: Optional[Union[str, Path]] = None,
    **solver_kwargs,
):
    """Run one solver with tracing enabled; optionally write artifacts.

    Returns ``(result, tracer, paths)`` where ``paths`` is the artifact
    list (``trace.json`` / ``counters.csv`` / ``summary.txt``) written
    into ``out_dir``, or ``[]`` when ``out_dir`` is None.  Only
    :data:`TRACEABLE_SOLVERS` emit events; other solvers are rejected
    loudly rather than producing a silently empty trace.
    """
    if solver not in TRACEABLE_SOLVERS:
        raise SolverError(
            f"solver {solver!r} does not support tracing; "
            f"pick one of {sorted(TRACEABLE_SOLVERS)}"
        )
    fn = get_solver(solver)
    spec = spec or default_gpu()
    cost = cost or default_cost(spec)
    tracer = Tracer()
    result = fn(
        graph, source, spec=spec, cost=cost, tracer=tracer, **solver_kwargs
    )
    paths: List[Path] = []
    if out_dir is not None:
        metrics = result.metrics if result.metrics is not None else MetricsRegistry()
        paths = write_trace_artifacts(
            out_dir, tracer, metrics,
            title=f"{solver} on {graph.name} (source {source})",
        )
    return result, tracer, paths


def write_result_files(run: SuiteRun, out_dir: Union[str, Path]) -> List[Path]:
    """Emit the artifact's ``<solver>_result`` files: one line per graph,
    ``graph_name run_time(s) work_count``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    solvers = set()
    for rec in run.records:
        solvers.update(rec.results)
    paths = []
    for name in sorted(solvers):
        path = out_dir / f"{name.replace('-', '_')}_result"
        with open(path, "w") as fh:
            for rec in run.records:
                if name in rec.results:
                    fh.write(rec.results[name].result_line() + "\n")
        paths.append(path)
    return paths
