"""Table 1 — hardware specifications of the two evaluation GPUs.

Regenerates the table from the spec objects (they *are* the table) and
benchmarks the simulator's raw event-processing rate on each device so
the numbers carry real measurements too.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.gpu import Device, RTX_2080TI, RTX_3090


def spec_rows():
    rows = [
        ("SM Count", RTX_2080TI.sm_count, RTX_3090.sm_count),
        ("Threads Per SM", RTX_2080TI.threads_per_sm, RTX_3090.threads_per_sm),
        ("Max Clock Rate", f"{RTX_2080TI.max_clock_ghz} GHz", f"{RTX_3090.max_clock_ghz} GHz"),
        ("GDDR6 Bandwidth", f"{RTX_2080TI.dram_bandwidth_gbs:.0f} GB/s", f"{RTX_3090.dram_bandwidth_gbs:.0f} GB/s"),
        ("DRAM Size", f"{RTX_2080TI.dram_gb:.0f} GB", f"{RTX_3090.dram_gb:.0f} GB"),
        ("L2 Size", f"{RTX_2080TI.l2_mb} MB", f"{RTX_3090.l2_mb} MB"),
        ("Scratchpad Per SM", f"{RTX_2080TI.scratchpad_kb_per_sm} KB", f"{RTX_3090.scratchpad_kb_per_sm} KB"),
        ("Compute Capability", RTX_2080TI.compute_capability, RTX_3090.compute_capability),
    ]
    return rows


def simulate_events(spec, n_blocks=16, events_per_block=200):
    def prog():
        for _ in range(events_per_block):
            yield ("busy", 10)

    d = Device(spec)
    for i in range(min(n_blocks, spec.max_resident_blocks)):
        d.add_block(f"b{i}", prog())
    return d.run()


def test_table1_hardware_specs(benchmark, report):
    rows = spec_rows()
    report(format_table(
        ["", "RTX 2080 ti", "RTX 3090"], rows,
        title="Table 1. Hardware specifications (from the paper, verbatim)",
    ))
    # the paper's headline deltas
    assert RTX_3090.dram_bandwidth_gbs / RTX_2080TI.dram_bandwidth_gbs == pytest.approx(1.52, abs=0.01)
    assert RTX_2080TI.total_threads == 68 * 1024

    benchmark.pedantic(simulate_events, args=(RTX_2080TI,), rounds=3, iterations=1)
