"""Figure 4 — execution time vs the heuristic constant C, for two graphs.

The paper sweeps C in Δ = C·(W/D) over powers of two for two inputs and
shows (1) the choice of Δ matters a lot and (2) the optima are far apart,
so no constant suits all graphs.  We run NF (the algorithm the heuristic
belongs to) over a road-class and a mesh-class stand-in.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import ascii_series, format_table
from repro.baselines import davidson_delta, solve_nf
from repro.graphs import named_graph

#: C = 2**k for k in this range (the paper labels its x-axis in powers of 2)
C_EXPONENTS = list(range(-2, 13, 2))


def sweep(graph, spec, cost):
    rows = []
    for k in C_EXPONENTS:
        delta = davidson_delta(graph, 2.0**k)
        r = solve_nf(graph, 0, spec=spec, cost=cost, delta=delta)
        rows.append((k, delta, r.time_us, r.work_count))
    return rows


def test_figure4_c_sweep(rtx2080, benchmark, report):
    spec, cost = rtx2080
    road = named_graph("road-usa-mini")
    mesh = named_graph("msdoor-mini")

    def run():
        return sweep(road, spec, cost), sweep(mesh, spec, cost)

    road_rows, mesh_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    def normalized(rows):
        tmin = min(t for _, _, t, _ in rows)
        return [(k, t / tmin) for k, _, t, _ in rows]

    road_n = normalized(road_rows)
    mesh_n = normalized(mesh_rows)
    lines = [format_table(
        ["log2(C)"] + [str(k) for k in C_EXPONENTS],
        [
            [road.name] + [f"{t:.2f}" for _, t in road_n],
            [mesh.name] + [f"{t:.2f}" for _, t in mesh_n],
        ],
        title="Figure 4. NF execution time vs constant C "
              "(normalized to each series' minimum; lower is better)",
    )]
    lines.append("")
    lines.append(ascii_series(
        {
            "road": [(k, t) for k, t in road_n],
            "mesh": [(k, t) for k, t in mesh_n],
        },
        title="normalized time vs log2(C)",
    ))
    best_road = min(road_n, key=lambda kt: kt[1])[0]
    best_mesh = min(mesh_n, key=lambda kt: kt[1])[0]
    lines.append(f"optimal log2(C): road={best_road}, mesh={best_mesh} "
                 f"(paper: optima orders of magnitude apart)")
    report("\n".join(lines))

    # --- shape assertions -------------------------------------------------
    # (1) the choice of C has significant impact for each graph
    assert max(t for _, t in road_n) > 1.5
    assert max(t for _, t in mesh_n) > 1.3
    # (2) the optima are far apart: no single C within a factor of ~4 of
    # both optima
    assert abs(best_road - best_mesh) >= 4, (
        f"optima too close: road 2^{best_road} vs mesh 2^{best_mesh}"
    )
