"""Figures 11–15 — parallelism over time for the five case-study graphs.

Each figure plots the amount of available/assigned parallelism (edge
count) against execution time for ADDS and NF on one graph:

- Fig 11 road-USA   (paper s:3.09x w:0.19x) — NF starves the device;
  ADDS floods it and finishes much sooner despite far more work;
- Fig 12 BenElechi1 (s:4x,    w:2.12x) — both effects combine;
- Fig 13 msdoor     (s:5.57x, w:4x)    — mostly work efficiency;
- Fig 14 rmat22     (s:2.29x, w:2.18x) — pure work efficiency;
- Fig 15 c-big      (s:1.6x,  w:3.35x) — short run, Δ cannot ramp.

The §6.4 prose also pins Gun-BF vs ADDS on road-USA: far more work, far
slower — asserted here as the "ordering still matters" guard.
"""

from __future__ import annotations

import pytest

from repro.analysis import ascii_series
from repro.baselines import solve_gun_bf, solve_nf
from repro.core import solve_adds
from repro.graphs import named_graph

#: name -> (figure number, paper speedup, paper work-gain)
CASES = {
    "road-usa-mini": (11, 3.09, 0.19),
    "benelechi1-mini": (12, 4.0, 2.12),
    "msdoor-mini": (13, 5.57, 4.0),
    "rmat22-mini": (14, 2.29, 2.18),
    "c-big-mini": (15, 1.6, 3.35),
}


def run_case(name, spec, cost):
    g = named_graph(name)
    adds = solve_adds(g, 0, spec=spec, cost=cost)
    nf = solve_nf(g, 0, spec=spec, cost=cost)
    return adds, nf


def test_figures11_15_timelines(rtx2080, benchmark, report):
    spec, cost = rtx2080

    def run_all():
        return {name: run_case(name, spec, cost) for name in CASES}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    measured = {}
    for name, (fig, ps, pw) in CASES.items():
        adds, nf = results[name]
        s = nf.time_us / adds.time_us
        w = nf.work_count / adds.work_count
        measured[name] = (s, w, adds, nf)
        lines.append(
            f"Figure {fig}. {name}: s:{s:.2f}x w:{w:.2f}x "
            f"(paper s:{ps}x w:{pw}x)"
        )
        lines.append(ascii_series(
            {"adds": adds.timeline.to_rows(), "nf": nf.timeline.to_rows()},
            log_y=True,
            title="  parallelism (edge count) over execution time (us)",
        ))
        lines.append("")
    report("\n".join(lines))

    # --- per-figure shape assertions ---------------------------------------
    s, w, adds, nf = measured["road-usa-mini"]
    assert s > 1.5, "Fig 11: ADDS must beat NF on the road graph"
    assert w < 0.8, "Fig 11: ADDS does (much) more work on the road graph"
    assert adds.timeline.time_average() > nf.timeline.time_average(), (
        "Fig 11: ADDS must sustain more parallelism than NF on road"
    )
    assert adds.timeline.duration_us < nf.timeline.duration_us

    s, w, *_ = measured["benelechi1-mini"]
    assert s > 1.5 and w > 1.2, "Fig 12: both parallelism and work must help"

    s, w, *_ = measured["msdoor-mini"]
    assert s > 1.2 and w > 1.0, "Fig 13: work-efficiency-driven win"

    s, w, *_ = measured["rmat22-mini"]
    assert s > 1.0 and w > 1.0, "Fig 14: work efficiency drives the speedup"
    assert s / w < 2.5, "Fig 14: rmat speedup should roughly track work"

    s, w, adds, nf = measured["c-big-mini"]
    assert s > 1.0, "Fig 15: modest win"

    # §6.4 prose: Gun-BF on road — much more work, much slower than ADDS
    g = named_graph("road-usa-mini")
    bf = solve_gun_bf(g, 0, spec=spec, cost=cost)
    adds_road = measured["road-usa-mini"][2]
    assert bf.work_count > 1.3 * adds_road.work_count
    assert bf.time_us > 2.0 * adds_road.time_us
