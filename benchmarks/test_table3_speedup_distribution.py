"""Table 3 — distribution of ADDS's speedup over all six baselines.

The paper's headline: average speedups of 2.9x, 5.8x, 9.6x, 13.4x over
NF, Gun-NF, Gun-BF, NV; 14.2x over CPU-DS and 34.4x over serial Dijkstra;
ADDS slower than NF on only 4% of graphs and >=1.5x faster on 78.8%.
"""

from __future__ import annotations

import pytest

from repro.analysis import bin_ratios, format_distribution_table

#: (baseline, paper's average speedup of ADDS over it)
PAPER_AVERAGES = {
    "nf": 2.9,
    "gun-nf": 5.8,
    "gun-bf": 9.6,
    "nv": 13.4,
    "cpu-ds": 14.2,
    "dijkstra": 34.4,
}

PAPER_NF_ROW = "8 (4%)  13 (6%)  27 (12%)  44 (19%)  54 (24%)  59 (26%)  21 (9%)"


def test_table3_speedups(suite_run_2080, benchmark, report):
    run = suite_run_2080

    def build_distributions():
        return {
            base: bin_ratios(run.speedups("adds", base), label=base.upper())
            for base in PAPER_AVERAGES
        }

    dists = benchmark.pedantic(build_distributions, rounds=1, iterations=1)

    lines = [format_distribution_table(
        list(dists.values()),
        title=f"Table 3. Distribution of speedup of ADDS over each baseline "
              f"({dists['nf'].total} graphs)",
    )]
    lines.append("")
    lines.append(f"{'baseline':9s} {'mean':>7s} {'geomean':>8s} {'paper mean':>11s}")
    for base, d in dists.items():
        lines.append(
            f"{base:9s} {d.arithmetic_mean:7.2f} {d.geomean:8.2f} "
            f"{PAPER_AVERAGES[base]:11.1f}"
        )
    lines.append("")
    lines.append(f"paper NF row: {PAPER_NF_ROW}")
    lines.append(
        f"ADDS >=1.5x faster than NF on "
        f"{100 * dists['nf'].fraction_at_least(1.5):.1f}% of graphs "
        "(paper: 78.8%)"
    )
    report("\n".join(lines))

    nf = dists["nf"]
    # --- shape assertions -------------------------------------------------
    # headline: ~2.9x average over NF (we accept a generous band)
    assert 2.0 <= nf.arithmetic_mean <= 4.0
    # ADDS loses on only a small fraction of graphs (paper: 4%)
    assert nf.fraction("<0.9x") <= 0.12
    # the majority sees >=1.5x (paper: 78.8%)
    assert nf.fraction_at_least(1.5) >= 0.6
    # the paper's baseline ordering: NF is the strongest baseline, NV the
    # weakest GPU one, serial Dijkstra the slowest overall
    assert nf.arithmetic_mean < dists["gun-nf"].arithmetic_mean
    assert dists["gun-nf"].arithmetic_mean < dists["nv"].arithmetic_mean
    assert dists["gun-bf"].arithmetic_mean < dists["nv"].arithmetic_mean
    assert dists["dijkstra"].arithmetic_mean == max(
        d.arithmetic_mean for d in dists.values()
    )
    # GPU beats the multicore CPU on the vast majority of graphs
    assert dists["cpu-ds"].fraction_at_least(1.0) >= 0.7
