"""Shared fixtures for the table/figure benches.

The expensive artifact — every solver over the whole corpus on the scaled
RTX 2080 Ti — is computed once per session and shared by the Table 3 /
Table 4 / Figures 8–10 benches.  The RTX 3090 runs (Table 5) and the
per-graph sweeps (Figures 4/7/11–15) build their own smaller inputs.

Every bench also writes its printed report to ``benchmarks/reports/`` so
the regenerated tables/figures survive the pytest run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.calibration import sim_cost, sim_gpu
from repro.graphs import build_suite
from repro.gpu.specs import RTX_2080TI, RTX_3090
from repro.harness import run_suite

REPORT_DIR = Path(__file__).parent / "reports"

#: Every implementation compared in Table 3.
ALL_SOLVERS = ("adds", "nf", "gun-nf", "gun-bf", "nv", "cpu-ds", "dijkstra")


@pytest.fixture(scope="session")
def corpus():
    """The evaluation corpus (the 226-graph collection's scaled stand-in)."""
    return build_suite()


@pytest.fixture(scope="session")
def rtx2080():
    spec = sim_gpu(RTX_2080TI)
    return spec, sim_cost(spec)


@pytest.fixture(scope="session")
def rtx3090():
    spec = sim_gpu(RTX_3090)
    return spec, sim_cost(spec)


@pytest.fixture(scope="session")
def suite_run_2080(corpus, rtx2080):
    """All seven implementations over the corpus on the 2080 Ti model."""
    spec, cost = rtx2080
    run = run_suite(solvers=ALL_SOLVERS, suite=corpus, spec=spec, cost=cost)
    assert not run.verification_failures, run.verification_failures[:3]
    return run


@pytest.fixture(scope="session")
def adds_nf_run_3090(corpus, rtx3090):
    """ADDS vs NF on the 3090 model (Table 5 rows 1-2)."""
    spec, cost = rtx3090
    run = run_suite(solvers=("adds", "nf"), suite=corpus, spec=spec, cost=cost)
    assert not run.verification_failures, run.verification_failures[:3]
    return run


@pytest.fixture()
def report(request):
    """Print a bench's report and persist it under benchmarks/reports/."""

    def emit(text: str) -> None:
        print("\n" + text)
        REPORT_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")

    return emit
