"""Figure 10 — correlation between speedup and work efficiency.

Every graph becomes a point (work-efficiency gain, speedup), both ADDS
over NF.  The paper reads three regions off this plane (§6.4): a large
cluster above the diagonal (speedup from parallelism: road-class), points
on the diagonal (speedup from work efficiency: rmat/msdoor-class) and at
most a few below it (work saved but parallelism lost: c-big).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ascii_scatter, efficiency_points
from repro.graphs.suite import NAMED_STANDINS


def build_points(run):
    pairs = [
        (rec.results["adds"], rec.results["nf"]) for rec in run.records
    ]
    return efficiency_points(pairs)


def test_figure10_correlation(suite_run_2080, benchmark, report):
    pts = benchmark.pedantic(build_points, args=(suite_run_2080,), rounds=1, iterations=1)

    labels = [
        p.graph[0].upper() if p.graph in NAMED_STANDINS else "*" for p in pts
    ]
    lines = [ascii_scatter(
        [p.work_gain for p in pts],
        [p.speedup for p in pts],
        log_x=True,
        log_y=True,
        labels=labels,
        title="Figure 10. Speedup vs work-efficiency gain (ADDS over NF, "
              "log-log; named stand-ins tagged by initial; diagonal = "
              "speedup fully explained by work savings)",
    )]
    regions = {"parallelism": 0, "work": 0, "underparallel": 0}
    for p in pts:
        regions[p.region] += 1
    n = len(pts)
    lines.append("")
    lines.append(
        f"regions: above diagonal (parallelism) {regions['parallelism']} "
        f"({100 * regions['parallelism'] // n}%), on diagonal (work) "
        f"{regions['work']} ({100 * regions['work'] // n}%), below "
        f"(underparallel) {regions['underparallel']} "
        f"({100 * regions['underparallel'] // n}%)"
    )
    named = {p.graph: p for p in pts if p.graph in NAMED_STANDINS}
    for name, p in sorted(named.items()):
        lines.append(f"  {name}: s={p.speedup:.2f}x w={p.work_gain:.2f}x -> {p.region}")
    report("\n".join(lines))

    # --- shape assertions -------------------------------------------------
    # "many graphs clustered in this [upper left] region"
    assert regions["parallelism"] >= n // 4
    # some graphs sit on the diagonal — work-efficiency-driven speedups
    assert regions["work"] >= 3
    # below-diagonal points are rare ("just 1 graph ... far off the line")
    assert regions["underparallel"] <= n // 4
    # the road stand-in must be a parallelism win: more work, yet faster
    road = named["road-usa-mini"]
    assert road.work_gain < 1.0 and road.speedup > 1.0
