"""Figure 7 — execution time and work vs static Δ, for RMAT/ROAD/MSDOOR.

The paper fixes Δ (32 buckets, dynamic selection off), sweeps it, and
normalizes both time and work to each series' minimum.  Three regimes:

- RMAT (7a): time correlates with work; best-work-point == best-perf-point;
- ROAD (7b): the best-perf point does far more work than the best-work
  point but wins big on time (underutilization dominates);
- MSDOOR (7c): in between;
- for all three, the clip-point (tiny Δ) is worse than best-work.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.baselines import davidson_delta
from repro.core import AddsConfig, solve_adds
from repro.graphs import named_graph

MULTIPLIERS = (0.015625, 0.0625, 0.25, 1.0, 4.0, 16.0)


def sweep(graph, spec, cost):
    cfg = AddsConfig().static_delta_ablation().replace(
        min_active_buckets=8, max_active_buckets=8
    )
    h = davidson_delta(graph)
    rows = []
    for m in MULTIPLIERS:
        r = solve_adds(graph, 0, spec=spec, cost=cost, config=cfg,
                       delta=max(0.25, h * m))
        rows.append((m, r.time_us, r.work_count, r.stats["high_clips"]))
    return rows


def analyze(rows):
    tmin = min(t for _, t, _, _ in rows)
    wmin = min(w for _, _, w, _ in rows)
    best_perf = min(rows, key=lambda r: r[1])[0]
    best_work = min(rows, key=lambda r: r[2])[0]
    return tmin, wmin, best_perf, best_work


def test_figure7_delta_sweep(rtx2080, benchmark, report):
    spec, cost = rtx2080
    graphs = {
        "RMAT": named_graph("rmat22-mini"),
        "ROAD": named_graph("road-usa-mini"),
        "MSDOOR": named_graph("msdoor-mini"),
    }

    def run():
        return {label: sweep(g, spec, cost) for label, g in graphs.items()}

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    summary = {}
    for label, rows in sweeps.items():
        tmin, wmin, best_perf, best_work = analyze(rows)
        summary[label] = (tmin, wmin, best_perf, best_work, rows)
        lines.append(format_table(
            ["delta mult"] + [f"{m:g}" for m, *_ in rows],
            [
                ["time (norm)"] + [f"{t / tmin:.2f}" for _, t, _, _ in rows],
                ["work (norm)"] + [f"{w / wmin:.2f}" for _, _, w, _ in rows],
                ["clips"] + [str(c) for _, _, _, c in rows],
            ],
            title=f"Figure 7 ({label}): time and work vs static delta "
                  f"(normalized to series minimum)",
        ))
        lines.append(f"  best-perf at {best_perf:g}x heuristic, "
                     f"best-work at {best_work:g}x")
        lines.append("")
    report("\n".join(lines))

    # --- shape assertions -------------------------------------------------
    for label, rows in sweeps.items():
        works = [w for _, _, w, _ in rows]
        # work decreases monotonically-ish as delta shrinks, until clipping
        assert works[1] <= works[-1], f"{label}: work should fall with delta"

    # RMAT (7a): best-perf is at/near best-work — time tracks work (we
    # allow some slack: at simulation scale the smallest deltas add
    # scheduler overhead that the paper's full-size runs amortize)
    t_r, w_r, bp_r, bw_r, rows_r = summary["RMAT"]
    t_at_bw = next(t for m, t, _, _ in rows_r if m == bw_r)
    assert t_at_bw <= 1.5 * t_r, "RMAT: best-work point should be near-best time"

    # ROAD (7b): best-perf does substantially more work than best-work
    t_o, w_o, bp_o, bw_o, rows_o = summary["ROAD"]
    assert bp_o > bw_o, "ROAD: best-perf delta should exceed best-work delta"
    w_at_bp = next(w for m, _, w, _ in rows_o if m == bp_o)
    t_at_bw = next(t for m, t, _, _ in rows_o if m == bw_o)
    assert w_at_bp > 1.5 * w_o, "ROAD: best-perf should trade work away"
    assert t_at_bw > 1.5 * t_o, "ROAD: best-work point should be much slower"

    # clip-point worse than best-work everywhere it clips
    for label, (tmin, wmin, bp, bw, rows) in summary.items():
        m0, t0, w0, c0 = rows[0]  # smallest delta
        if c0 > 0:
            assert w0 >= wmin, f"{label}: clipping should not reduce work"
