"""Design-choice ablations beyond the paper's Table 5.

DESIGN.md calls out several load-bearing design decisions inside ADDS
that the paper fixes by construction; this bench quantifies each on
representative graphs:

- **WTB count** — delegation only pays if many workers can feed off one
  manager;
- **segment size (N)** — the WCC granularity of §5.2: tiny segments mean
  metadata churn, huge ones delay readability of partially-filled tails;
- **assignment edge budget** — chunking bursts by edges rather than items
  (the feature that keeps narrow frontiers spread across blocks);
- **active-bucket window** — §5.4's multi-bucket assignment optimization;
- **safe vs unsafe rotation** — the §5.4 CWC guard vs the cramming
  failure mode it prevents.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import AddsConfig, solve_adds
from repro.graphs import named_graph


@pytest.fixture(scope="module")
def graphs():
    return {
        "road": named_graph("road-usa-mini"),
        "rmat": named_graph("rmat22-mini"),
        "mesh": named_graph("msdoor-mini"),
    }


def run(g, spec, cost, cfg, delta=None):
    r = solve_adds(g, 0, spec=spec, cost=cost, config=cfg, delta=delta)
    return r


def test_ablation_wtb_count(graphs, rtx2080, benchmark, report):
    spec, cost = rtx2080
    counts = (1, 2, 4, 8, 15)

    def sweep():
        return {
            label: [run(g, spec, cost, AddsConfig(n_wtbs=n)).time_us for n in counts]
            for label, g in graphs.items()
        }

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[label] + [f"{t:.0f}" for t in ts] for label, ts in times.items()]
    report(format_table(
        ["graph \\ WTBs"] + [str(c) for c in counts], rows,
        title="Ablation: time (us) vs worker thread block count",
    ))
    for label, ts in times.items():
        assert ts[-1] < ts[0], f"{label}: 15 WTBs should beat 1"
        # scaling saturates: the last doubling gains less than the first
        first_gain = ts[0] / ts[1]
        last_gain = ts[-2] / ts[-1]
        assert first_gain > last_gain * 0.8


def test_ablation_segment_size(graphs, rtx2080, benchmark, report):
    spec, cost = rtx2080
    sizes = (4, 16, 32, 128)

    def sweep():
        out = {}
        for label, g in graphs.items():
            out[label] = [
                run(g, spec, cost, AddsConfig(segment_size=s, slots_per_block=2048))
                for s in sizes
            ]
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [label] + [f"{r.time_us:.0f}" for r in rs] for label, rs in results.items()
    ]
    report(format_table(
        ["graph \\ N"] + [str(s) for s in sizes], rows,
        title="Ablation: time (us) vs WCC segment size N (section 5.2)",
    ))
    # correctness is independent of N; all sizes must agree on distances
    import numpy as np

    for label, rs in results.items():
        for r in rs[1:]:
            np.testing.assert_array_equal(rs[0].dist, r.dist)


def test_ablation_edge_budget(graphs, rtx2080, benchmark, report):
    spec, cost = rtx2080
    budgets = (64, 256, 1024, 10**6)

    def sweep():
        return {
            label: [
                run(g, spec, cost, AddsConfig(target_chunk_edges=b)).time_us
                for b in budgets
            ]
            for label, g in graphs.items()
        }

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[label] + [f"{t:.0f}" for t in ts] for label, ts in times.items()]
    report(format_table(
        ["graph \\ edges/chunk"] + [str(b) for b in budgets], rows,
        title="Ablation: time (us) vs assignment edge budget",
    ))
    # the monolithic extreme (whole bursts to one WTB) must lose to the
    # one-wave budget on the dense mesh, where serialization bites hardest
    assert times["mesh"][-1] > times["mesh"][1]


def test_ablation_active_bucket_window(graphs, rtx2080, benchmark, report):
    spec, cost = rtx2080
    windows = (1, 2, 4, 8)

    def sweep():
        out = {}
        for label, g in graphs.items():
            out[label] = [
                run(
                    g, spec, cost,
                    AddsConfig(
                        dynamic_delta=False,
                        min_active_buckets=w,
                        max_active_buckets=w,
                    ),
                )
                for w in windows
            ]
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = []
    for metric, fmt in (("time_us", "{:.0f}"), ("work_count", "{}")):
        rows = [
            [label] + [fmt.format(getattr(r, metric)) for r in rs]
            for label, rs in results.items()
        ]
        lines.append(format_table(
            ["graph \\ window"] + [str(w) for w in windows], rows,
            title=f"Ablation: {metric} vs active-bucket window (section 5.4)",
        ))
        lines.append("")
    report("\n".join(lines))
    # wider windows trade work for parallelism on the starved road graph
    road = results["road"]
    assert road[-1].work_count >= road[0].work_count
    assert road[-1].time_us < road[0].time_us


def test_ablation_unsafe_rotation(graphs, rtx2080, benchmark, report):
    """§5.4's failure mode, measured: rotating before CWC catches up
    clips spawned work into the wrong band ('continuous cramming')."""
    spec, cost = rtx2080

    def sweep():
        out = {}
        for label, g in graphs.items():
            safe = run(g, spec, cost, AddsConfig(n_wtbs=8))
            unsafe = run(g, spec, cost, AddsConfig(n_wtbs=8, unsafe_rotation=True))
            out[label] = (safe, unsafe)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [label,
         f"{safe.stats['low_clips']}", f"{unsafe.stats['low_clips']}",
         f"{safe.work_count}", f"{unsafe.work_count}"]
        for label, (safe, unsafe) in results.items()
    ]
    report(format_table(
        ["graph", "clips safe", "clips unsafe", "work safe", "work unsafe"],
        rows,
        title="Ablation: safe vs unsafe head-bucket rotation (section 5.4)",
    ))
    import numpy as np

    total_safe_clips = sum(s.stats["low_clips"] for s, _ in results.values())
    total_unsafe_clips = sum(u.stats["low_clips"] for _, u in results.values())
    assert total_unsafe_clips >= total_safe_clips
    for label, (safe, unsafe) in results.items():
        np.testing.assert_array_equal(safe.dist, unsafe.dist)  # still exact
