"""Table 5 — the RTX 3090 robustness run and the two ablations.

Paper rows (speedup of ADDS over NF):
- RTX 2080 Ti: avg 2.9x  (same data as Table 3)
- RTX 3090:    avg 3.5x  — bigger win on the newer card (+52% bandwidth)
- Static-Δ   (3090, dynamic mechanism off): drops to 2.4x
- 2-Buckets  (3090, static Δ + two buckets): drops to 2.2x
"""

from __future__ import annotations

import pytest

from repro.analysis import bin_ratios, format_distribution_table
from repro.core import AddsConfig
from repro.harness import run_suite


def ablation_speedups(corpus, rtx3090, config):
    spec, cost = rtx3090
    run = run_suite(
        solvers=("adds", "nf"),
        suite=corpus,
        spec=spec,
        cost=cost,
        solver_options={"adds": {"config": config}},
    )
    assert not run.verification_failures, run.verification_failures[:3]
    return run.speedups("adds", "nf")


def test_table5_rtx3090_and_ablations(
    suite_run_2080, adds_nf_run_3090, corpus, rtx3090, benchmark, report
):
    s_2080 = suite_run_2080.speedups("adds", "nf")
    s_3090 = adds_nf_run_3090.speedups("adds", "nf")

    def run_ablations():
        base = AddsConfig()
        return (
            ablation_speedups(corpus, rtx3090, base.static_delta_ablation()),
            ablation_speedups(corpus, rtx3090, base.two_buckets_ablation()),
        )

    s_static, s_2buck = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    rows = [
        bin_ratios(s_2080, label="RTX2080ti"),
        bin_ratios(s_3090, label="RTX3090"),
        bin_ratios(s_static, label="Static-d"),
        bin_ratios(s_2buck, label="2-Buckets"),
    ]
    lines = [format_distribution_table(
        rows,
        title=f"Table 5. Speedup of ADDS over NF across devices and ablations "
              f"({rows[0].total} graphs)",
    )]
    lines.append("")
    lines.append(f"{'config':10s} {'mean':>6s} {'geomean':>8s} {'paper':>6s}")
    paper = {"RTX2080ti": 2.9, "RTX3090": 3.5, "Static-d": 2.4, "2-Buckets": 2.2}
    for d in rows:
        lines.append(
            f"{d.label:10s} {d.arithmetic_mean:6.2f} {d.geomean:8.2f} "
            f"{paper[d.label]:6.1f}"
        )
    report("\n".join(lines))

    m2080 = rows[0].arithmetic_mean
    m3090 = rows[1].arithmetic_mean
    mstatic = rows[2].arithmetic_mean
    m2buck = rows[3].arithmetic_mean
    # --- shape assertions -------------------------------------------------
    # §6.5: the newer GPU widens ADDS's advantage
    assert m3090 > m2080 * 1.05
    # disabling the dynamic mechanism costs performance
    assert mstatic < m3090 * 0.92
    # the two-bucket restriction costs performance vs the full design
    assert m2buck < m3090 * 0.88
    # and every configuration still beats NF on average — the asynchronous
    # delegated worklist alone is worth it (the paper's last observation)
    assert m2buck > 1.3
