"""Figure 6 — how Δ maps vertices to buckets, including clipping.

The paper's didactic example: four vertices at distances 15/35/55/75 are
added to a 4-bucket queue under Δ = 20 (one per bucket — best work
efficiency), Δ = 40 (two per bucket — more parallelism) and Δ = 5
(everything beyond the window clips into the last bucket — ordering lost).
This bench drives the *actual* BucketQueue mapping and then measures the
end-to-end cost of the clipping regime on a real graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import AddsConfig, solve_adds
from repro.core.bucket_queue import BucketQueue
from repro.gpu.memory import GlobalPool, SimMemory
from repro.graphs import named_graph

DISTS = np.array([15.0, 35.0, 55.0, 75.0])


def place(delta):
    cfg = AddsConfig(
        n_buckets=4, segment_size=4, slots_per_block=32, pool_blocks=16,
        max_active_buckets=4,
    )
    q = BucketQueue(
        SimMemory(), GlobalPool(16, words_per_block=32), cfg, initial_delta=delta
    )
    return q.rel_bands_for(DISTS).tolist(), q.high_clips


def test_figure6_bucket_placement(rtx2080, benchmark, report):
    placements = {d: place(d) for d in (20.0, 40.0, 5.0)}
    rows = [
        [f"delta={int(d)}"]
        + [f"b{b}" for b in bands]
        + [f"{clips} clipped"]
        for d, (bands, clips) in placements.items()
    ]
    lines = [format_table(
        ["", "v@15", "v@35", "v@55", "v@75", ""],
        rows,
        title="Figure 6. Bucket placement of 4 vertices under 3 delta values "
              "(4 buckets)",
    )]

    # the three cases of the figure, verbatim
    assert placements[20.0][0] == [0, 1, 2, 3]  # (c) precise ordering
    assert placements[40.0][0] == [0, 0, 1, 1]  # (d) coarser, parallel
    assert placements[5.0][0] == [3, 3, 3, 3]   # (b) everything in the tail
    # v@15 lands in bucket 3 natively (15 // 5 == 3); the other three are
    # genuine clips past the window
    assert placements[5.0][1] == 3

    # end-to-end: force the clip regime on a real graph and show the
    # measured work/time penalty the paper's Figure 7 clip-points exhibit.
    # The road stand-in has uniform weights up to 8192, so a tiny delta
    # makes nearly every push overshoot the 32-band window — the true
    # Figure 6(b) pathology (heavy-tailed graphs clip more rarely).
    spec, cost = rtx2080
    g = named_graph("road-usa-mini")
    static = AddsConfig().static_delta_ablation()

    def run_clip_regime():
        good = solve_adds(g, 0, spec=spec, cost=cost, config=static, delta=2048.0)
        clip = solve_adds(g, 0, spec=spec, cost=cost, config=static, delta=8.0)
        return good, clip

    good, clip = benchmark.pedantic(run_clip_regime, rounds=1, iterations=1)
    lines.append("")
    lines.append(
        f"clip regime on {g.name}: delta=64 -> work {good.work_count}, "
        f"{good.time_us:.0f}us, {good.stats['high_clips']} clips; "
        f"delta=0.75 -> work {clip.work_count}, {clip.time_us:.0f}us, "
        f"{clip.stats['high_clips']} clips"
    )
    report("\n".join(lines))

    assert clip.stats["high_clips"] > good.stats["high_clips"]
    # "the clip-point always performs worse than the best-work-point,
    # since it causes dramatically more work without improving parallelism"
    assert clip.work_count > good.work_count
