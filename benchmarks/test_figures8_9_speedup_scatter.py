"""Figures 8 and 9 — speedup of ADDS over NF vs graph degree and diameter.

The paper's scatter plots show the speedup is "largely independent of the
graph's degree or diameter" — because ADDS optimizes both parallelism
(helping high-diameter graphs) and work efficiency (helping dense ones).
We regenerate both scatters and test that independence: the log-speedup
explained by either structural variable stays small.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import ascii_scatter
from repro.graphs.metrics import compute_stats


def gather(run, corpus):
    by_name = {e.name: e for e in corpus}
    xs_deg, xs_dia, ys = [], [], []
    for rec in run.records:
        stats = compute_stats(by_name[rec.graph].graph())
        xs_deg.append(stats.avg_degree)
        xs_dia.append(max(1, stats.diameter))
        ys.append(rec.ratio("time", "adds", "nf"))
    return np.array(xs_deg), np.array(xs_dia), np.array(ys)


def rsquared(x_log, y_log):
    if np.std(x_log) == 0:
        return 0.0
    r = np.corrcoef(x_log, y_log)[0, 1]
    return float(r * r)


def test_figures8_9_scatter(suite_run_2080, corpus, benchmark, report):
    deg, dia, speed = benchmark.pedantic(
        gather, args=(suite_run_2080, corpus), rounds=1, iterations=1
    )

    lines = [ascii_scatter(
        deg.tolist(), speed.tolist(), log_x=True, log_y=True,
        title="Figure 8. Speedup of ADDS over NF vs average degree "
              "(log-log; each * is one graph)",
    )]
    lines.append("")
    lines.append(ascii_scatter(
        dia.tolist(), speed.tolist(), log_x=True, log_y=True,
        title="Figure 9. Speedup of ADDS over NF vs diameter (log-log)",
    ))
    r2_deg = rsquared(np.log(deg), np.log(speed))
    r2_dia = rsquared(np.log(dia), np.log(speed))
    lines.append("")
    lines.append(
        f"log-log R^2: degree {r2_deg:.2f}, diameter {r2_dia:.2f} "
        "(paper: speedup largely independent of both)"
    )
    report("\n".join(lines))

    # --- shape assertions -------------------------------------------------
    # speedups are spread across the structural range: both low- and
    # high-degree graphs contain winners
    lo_deg = speed[deg < 6]
    hi_deg = speed[deg >= 16]
    assert lo_deg.size and hi_deg.size
    assert np.median(lo_deg) > 1.2 and np.median(hi_deg) > 1.0
    lo_dia = speed[dia < 40]
    hi_dia = speed[dia >= 100]
    assert lo_dia.size and hi_dia.size
    assert np.median(hi_dia) > 1.2
    # independence: neither structural variable explains most of the
    # variance.  Degree matches the paper's near-zero correlation; for
    # diameter the simulation shows a moderate positive trend (at this
    # scale NF's per-iteration overhead penalty grows directly with
    # iteration count, which tracks diameter) — a documented deviation,
    # see EXPERIMENTS.md — so the bound is looser there.
    assert r2_deg < 0.4
    assert r2_dia < 0.75
