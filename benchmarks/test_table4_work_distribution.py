"""Table 4 — distribution of ADDS's vertex-processing count vs baselines.

Lower is better for ADDS.  Headline prose (§6.3): ADDS achieves
non-trivial work savings (<0.75x) for 20% of graphs vs NF, does similar
work (0.75x-1.5x) for 44%, noticeably more (>1.5x) for 36%, and on
average processes 1.55x more vertices than NF while still being 2.9x
faster.  NV is absent (closed source).  Dijkstra's row is the sanity
anchor: ADDS can never beat the work-optimal algorithm.
"""

from __future__ import annotations

import pytest

from repro.analysis import WORK_BINS, bin_ratios, format_distribution_table
from repro.analysis.distributions import geometric_mean

BASELINES = ("nf", "gun-nf", "gun-bf", "cpu-ds", "dijkstra")


def test_table4_work_ratios(suite_run_2080, benchmark, report):
    run = suite_run_2080

    def build():
        return {
            base: bin_ratios(
                run.work_ratios("adds", base), bins=WORK_BINS, label=base.upper()
            )
            for base in BASELINES
        }

    dists = benchmark.pedantic(build, rounds=1, iterations=1)

    nf_ratios = run.work_ratios("adds", "nf")
    mean_ratio = sum(nf_ratios) / len(nf_ratios)
    lines = [format_distribution_table(
        list(dists.values()),
        title="Table 4. Distribution of normalized vertex processing count of "
              f"ADDS over prior implementations ({dists['nf'].total} graphs; "
              "lower is better for ADDS; NV omitted as in the paper)",
    )]
    lines.append("")
    lines.append(
        f"ADDS processes {mean_ratio:.2f}x the vertices NF does on average "
        "(paper: 1.55x) — yet wins on time (Table 3)."
    )
    report("\n".join(lines))

    nf = dists["nf"]
    # --- shape assertions -------------------------------------------------
    # the average work ratio vs NF is near the paper's 1.55x
    assert 1.0 <= mean_ratio <= 2.2
    # some graphs see real work savings, some see real losses — the
    # distribution is genuinely two-sided like the paper's
    savings = sum(nf.fraction(l) for l in ("<0.25x", "0.25x-0.5x", "0.5x-0.75x"))
    similar = sum(nf.fraction(l) for l in ("0.75x-1x", "1x-1.5x"))
    more = sum(nf.fraction(l) for l in ("1.5x-3x", ">3x"))
    assert savings >= 0.05, "no graph shows the multi-bucket work savings"
    assert similar >= 0.2
    assert more >= 0.15, "the 'more work for more parallelism' tail is missing"
    # ADDS never does less work than the work-optimal serial Dijkstra
    assert all(r >= 0.999 for r in run.work_ratios("adds", "dijkstra"))
    # Gun-BF's unordered worklist does more work than ADDS on most graphs
    gun_bf = run.work_ratios("adds", "gun-bf")
    assert geometric_mean(gun_bf) < 1.0
