"""Table 2 — distribution of graph characteristics over the corpus.

The paper bins its 226 inputs by average degree and by diameter; this
bench computes the same two rows for the scaled stand-in corpus and
checks that the corpus spans every bin with a comparable spread.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis import format_table
from repro.graphs.metrics import compute_stats, degree_bin, diameter_bin

#: Paper counts for reference (out of 226 graphs).
PAPER_DEGREE = {"<4": 42, "4-8": 57, "8-32": 34, "32-64": 71, ">=64": 22}
PAPER_DIAMETER = {"<40": 102, "40-320": 66, "320-640": 29, ">=640": 29}
# (Table 2 as printed is partially garbled in the source; <40/40-320
# counts are reconstructed from the remaining 226-29-29 split.)


def corpus_stats(corpus):
    return [compute_stats(e.graph()) for e in corpus]


def test_table2_characteristics(corpus, benchmark, report):
    stats = benchmark.pedantic(corpus_stats, args=(corpus,), rounds=1, iterations=1)
    n = len(stats)
    deg = Counter(s.degree_bin_label() for s in stats)
    dia = Counter(s.diameter_bin_label() for s in stats)

    deg_labels = ["<4", "4-8", "8-32", "32-64", ">=64"]
    dia_labels = ["<40", "40-320", "320-640", ">=640"]
    lines = []
    lines.append(format_table(
        ["Degree"] + deg_labels,
        [["this corpus"] + [f"{deg.get(l, 0)} ({100 * deg.get(l, 0) // n}%)" for l in deg_labels],
         ["paper (226)"] + [f"{PAPER_DEGREE[l]} ({100 * PAPER_DEGREE[l] // 226}%)" for l in deg_labels]],
        title=f"Table 2. Distribution of graph characteristics ({n} graphs)",
    ))
    lines.append("")
    lines.append(format_table(
        ["Diameter"] + dia_labels,
        [["this corpus"] + [f"{dia.get(l, 0)} ({100 * dia.get(l, 0) // n}%)" for l in dia_labels],
         ["paper (226)"] + [f"{PAPER_DIAMETER[l]} ({100 * PAPER_DIAMETER[l] // 226}%)" for l in dia_labels]],
    ))
    report("\n".join(lines))

    # shape assertions: every bin populated in both dimensions' interior,
    # and the corpus covers low and high extremes like the paper's
    assert deg["<4"] >= 5, "road-class low-degree graphs missing"
    assert deg.get("32-64", 0) + deg.get(">=64", 0) >= 5, "dense graphs missing"
    assert sum(deg.values()) == n
    assert dia["<40"] >= 5
    assert dia.get("320-640", 0) + dia.get(">=640", 0) >= 1, "high-diameter graphs missing"
    assert sum(dia.values()) == n
    # selection criterion §6.1.1: every corpus graph >= 75% reachable
    for s in stats:
        assert s.reachable >= 0.75, f"{s.name} violates the reachability criterion"
