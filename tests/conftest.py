"""Shared fixtures: small graphs reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    clique_chain,
    fem_mesh,
    from_edge_list,
    grid_road,
    random_gnm,
    rmat,
)


@pytest.fixture
def tiny_graph():
    """The paper's Figure 1 sample graph: S -> A (10), S -> B (1), B -> A (2)."""
    # vertices: 0 = S, 1 = A, 2 = B
    return from_edge_list(3, [(0, 1, 10), (0, 2, 1), (2, 1, 2)], name="fig1")


@pytest.fixture
def line_graph():
    """A 6-vertex path with unit weights: distances are 0..5."""
    edges = [(i, i + 1, 1) for i in range(5)]
    return from_edge_list(6, edges, name="line6")


@pytest.fixture
def small_road():
    return grid_road(16, 12, seed=7)


@pytest.fixture
def small_rmat():
    return rmat(9, edge_factor=8, seed=7)


@pytest.fixture
def small_mesh():
    return fem_mesh(800, band=16, stride=2, seed=7)


@pytest.fixture
def small_gnm():
    return random_gnm(600, 2400, seed=7)


@pytest.fixture
def small_cliques():
    return clique_chain(6, 18, seed=7)


@pytest.fixture
def disconnected_graph():
    """Two components: 0-1-2 connected, 3-4 connected, no bridge."""
    return from_edge_list(
        5, [(0, 1, 3), (1, 2, 4), (3, 4, 1), (4, 3, 1)], name="disc"
    )


def reference_dijkstra(graph, source):
    """Plain heapq Dijkstra used as the oracle in solver tests."""
    import heapq

    n = graph.num_vertices
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        dsts, ws = graph.neighbors(v)
        for u, w in zip(dsts.tolist(), ws.tolist()):
            nd = d + w
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist


@pytest.fixture
def oracle():
    return reference_dijkstra
