"""The check runner: the 8-seed schedule-invariance property, fault
detection end-to-end, and the report payload."""

from __future__ import annotations

import pytest

from repro.bench.matrix import matrix_entries
from repro.check import CHECKABLE_SOLVERS, run_check, schedule_seed
from repro.check.testing import FAULTS, FaultyChecker
from repro.errors import ReproError

#: invariant tag each fault must be caught under (see repro.check.testing)
FAULT_TAGS = {
    "publish-overlap": "publish-bounds",
    "phantom-wcc": "fence-visibility",
    "lost-wakeup": "no-lost-work",
    "dist-raise": "dist-monotone",
}


def one_entry():
    """The smallest pinned cell (road-48x48) for single-cell runs."""
    return [matrix_entries("small")[0]]


class TestScheduleSeed:
    def test_deterministic(self):
        assert schedule_seed(0, 3) == schedule_seed(0, 3)

    def test_distinct_over_base_and_index(self):
        seeds = {schedule_seed(b, i) for b in range(4) for i in range(64)}
        assert len(seeds) == 4 * 64

    def test_negative_schedules_rejected(self):
        with pytest.raises(ReproError, match="schedules"):
            run_check("small", schedules=-1)


class TestScheduleInvariance:
    """The pinned property: on the small matrix, >= 8 perturbed schedules
    all terminate clean and agree bit-exactly on the final distances,
    and every seed replays to the identical schedule (which also pins
    its work_count)."""

    def test_small_matrix_eight_seeds(self):
        report = run_check("small", schedules=8, seed=0)
        assert report.ok, "\n".join(report.summary_lines())
        assert report.cross_solver_problems == []
        for cell in report.cells:
            expected = 1 + (8 if cell.perturbed else 0)
            assert len(cell.runs) == expected
            shas = {r.dist_sha256 for r in cell.runs}
            assert len(shas) == 1, f"{cell.graph}×{cell.solver} diverged"
            for r in cell.runs:
                assert r.violation is None
                assert r.missed_wakeups == 0
                if r.perturb_seed is not None:
                    assert r.replay_ok is True
            if cell.perturbed:
                assert all(r.checked_ops > 0 for r in cell.runs)

    def test_perturbed_solvers_are_the_checkable_ones(self):
        report = run_check("small", schedules=0, replay=False)
        for cell in report.cells:
            assert cell.perturbed == (cell.solver in CHECKABLE_SOLVERS)


class TestFaultDetection:
    """A sanitizer that has never seen a bug is untested tooling: every
    injected protocol fault must fail the run under its own invariant."""

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_fault_is_caught(self, fault):
        report = run_check(
            entries=one_entry(),
            schedules=1,
            replay=False,
            checker_factory=lambda: FaultyChecker(fault),
        )
        assert not report.ok
        text = "\n".join(p for c in report.cells for p in c.problems)
        assert FAULT_TAGS[fault] in text

    def test_violation_message_names_the_seed(self):
        report = run_check(
            entries=one_entry(),
            schedules=1,
            replay=False,
            checker_factory=lambda: FaultyChecker("publish-overlap"),
        )
        text = "\n".join(p for c in report.cells for p in c.problems)
        assert "perturb_seed=" in text

    def test_unknown_fault_rejected(self):
        with pytest.raises(ReproError, match="unknown fault"):
            FaultyChecker("nonsense")


class TestReportPayload:
    def test_json_round_trip_fields(self):
        report = run_check(entries=one_entry(), schedules=1, replay=False)
        payload = report.to_json_dict()
        assert payload["schema"] == 1
        assert payload["ok"] is True
        assert payload["schedules"] == 1
        (cell,) = payload["cells"]
        assert cell["solver"] == "adds"
        assert cell["perturbed"] is True
        assert len(cell["runs"]) == 2  # canonical + 1 perturbed
        for run in cell["runs"]:
            assert len(run["dist_sha256"]) == 64
            assert run["checked_ops"] > 0

    def test_summary_mentions_verdict(self):
        report = run_check(entries=one_entry(), schedules=0, replay=False)
        lines = report.summary_lines()
        assert lines[-1].startswith("PASS")
