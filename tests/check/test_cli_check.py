"""CLI surface of ``python -m repro check``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graphs import grid_road, write_gr


@pytest.fixture
def gr_file(tmp_path):
    p = tmp_path / "road.gr"
    write_gr(grid_road(10, 8, seed=3), p)
    return str(p)


class TestCheckCommand:
    def test_graph_pass(self, gr_file, capsys):
        assert main(["check", "--schedules", "2", "--graph", gr_file]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "2 perturbed schedules" in out

    def test_inject_fails_with_nonzero_exit(self, gr_file, capsys):
        rc = main(
            ["check", "--schedules", "1", "--graph", gr_file,
             "--inject", "publish-overlap", "--no-replay"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "publish-bounds" in out

    def test_json_output(self, gr_file, capsys):
        assert main(
            ["check", "--schedules", "1", "--graph", gr_file, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["ok"] is True

    def test_unknown_matrix_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--matrix", "nonsense"])
