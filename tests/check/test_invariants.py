"""Unit tests for ProtocolChecker: clean solves pass, broken protocol
state trips the right invariant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import default_gpu
from repro.check import ProtocolChecker
from repro.core.adds import solve_adds
from repro.core.bucket_queue import BucketQueue
from repro.core.config import AddsConfig
from repro.errors import InvariantViolation
from repro.gpu.device import Device
from repro.gpu.memory import GlobalPool, SimMemory


def make_checked_queue(**cfgkw):
    """A direct queue + attached checker; all ops run as host code (no
    current block), so role checks are exempt and the structural
    invariants are what's under test."""
    cfg = AddsConfig(
        n_buckets=4,
        segment_size=4,
        slots_per_block=32,
        pool_blocks=64,
        max_active_buckets=4,
        **cfgkw,
    )
    mem = SimMemory()
    pool = GlobalPool(cfg.pool_blocks, words_per_block=32)
    q = BucketQueue(mem, pool, cfg, initial_delta=10.0)
    for s in range(4):
        q.storage[s].ensure_capacity(128)
    dev = Device(default_gpu())
    checker = ProtocolChecker()
    checker.attach(device=dev, queue=q)
    return q, checker


class TestCleanSolve:
    def test_checked_solve_passes_and_finalizes(self, small_road, oracle):
        checker = ProtocolChecker()
        r = solve_adds(small_road, 0, checker=checker)
        assert np.allclose(r.dist, oracle(small_road, 0))
        assert checker.checked_ops > 0
        assert checker.violations == []
        # conservation held: every reserved item was published, read
        # and completed exactly once
        assert (
            checker.reserved_total
            == checker.published_total
            == checker.read_total
            == checker.completed_total
            > 0
        )

    def test_checker_is_passive(self, small_road):
        plain = solve_adds(small_road, 0)
        checked = solve_adds(small_road, 0, checker=ProtocolChecker())
        assert np.array_equal(plain.dist, checked.dist)
        assert plain.work_count == checked.work_count
        assert plain.time_us == checked.time_us

    def test_checked_perturbed_solve_passes(self, small_road):
        r = solve_adds(small_road, 0, checker=ProtocolChecker(), perturb_seed=5)
        assert r.stats["perturb_seed"] == 5

    def test_attach_is_single_use(self, small_road):
        checker = ProtocolChecker()
        solve_adds(small_road, 0, checker=checker)
        with pytest.raises(InvariantViolation, match="one solve"):
            solve_adds(small_road, 0, checker=checker)


class TestStructuralInvariants:
    def test_publish_outside_reservation(self):
        q, _ = make_checked_queue()
        q.reserve(0, 4)
        with pytest.raises(InvariantViolation, match="publish-bounds"):
            q.publish(0, 2, np.arange(4, dtype=np.int64), np.arange(4.0))

    def test_double_publish(self):
        q, _ = make_checked_queue()
        start = q.reserve(0, 2)
        v, d = np.arange(2, dtype=np.int64), np.arange(2.0)
        q.publish(0, start, v, d)
        # re-reserving different slots then republishing the old ones
        q.reserve(0, 2)
        with pytest.raises(InvariantViolation, match="publish-bounds"):
            q.publish(0, start, v, d)

    def test_unsafe_rotation_caught(self):
        """unsafe_rotation disables the queue's own CWC guard; the
        checker's rotate-guard still fires on unread/uncompleted work."""
        q, _ = make_checked_queue(unsafe_rotation=True)
        start = q.reserve(0, 3)
        q.publish(0, start, np.arange(3, dtype=np.int64), np.arange(3.0))
        with pytest.raises(InvariantViolation, match="rotate-guard"):
            q.rotate()

    def test_safe_rotation_passes(self):
        q, checker = make_checked_queue()
        start = q.reserve(0, 3)
        q.publish(0, start, np.arange(3, dtype=np.int64), np.arange(3.0))
        assert q.readable_upper(0)[0] == 3
        q.advance_read(0, 3)
        q.read_items(0, 0, 3)
        q.complete(0, 3, q.epoch.item(0))
        q.rotate()
        assert checker.violations == []

    def test_conservation_failure_at_finalize(self):
        q, checker = make_checked_queue()
        start = q.reserve(0, 3)
        q.publish(0, start, np.arange(3, dtype=np.int64), np.arange(3.0))
        # published but never read/completed
        with pytest.raises(InvariantViolation, match="no-lost-work"):
            checker.finalize()


class TestMemoryInvariants:
    def test_atomic_min_batch_increase_detected(self):
        checker = ProtocolChecker()
        arr = np.array([5.0, 7.0])
        idx = np.array([0, 1])
        before = np.array([5.0, 3.0])  # claims index 1 was 3.0, now 7.0
        with pytest.raises(InvariantViolation, match="dist-monotone"):
            checker.on_atomic_min_batch(arr, idx, np.array([9.0, 9.0]), before, None)

    def test_atomic_min_batch_false_winner_detected(self):
        checker = ProtocolChecker()
        arr = np.array([5.0])
        with pytest.raises(InvariantViolation, match="dist-monotone"):
            checker.on_atomic_min_batch(
                arr,
                np.array([0]),
                np.array([6.0]),  # claims to have won with 6.0, stored is 5.0
                np.array([5.0]),
                np.array([True]),
            )

    def test_atomic_min_through_memory_is_checked(self):
        mem = SimMemory()
        checker = ProtocolChecker()
        mem.attach_checker(checker)
        arr = np.array([np.inf, 4.0])
        before = checker.checked_ops
        mem.atomic_min(arr, 0, 2.0)
        assert checker.checked_ops == before + 1
