"""The seeded schedule perturber: off means bit-identical, on means
deterministic per seed — and distances never depend on the schedule."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.adds import solve_adds
from repro.gpu.device import Device


def sha(dist):
    buf = np.ascontiguousarray(dist, dtype=np.float64).astype("<f8")
    return hashlib.sha256(buf.tobytes()).hexdigest()


class TestPerturbOff:
    def test_default_is_unperturbed(self, small_road):
        r = solve_adds(small_road, 0)
        assert "perturb_seed" not in r.stats

    def test_off_is_bit_reproducible(self, small_road):
        a = solve_adds(small_road, 0)
        b = solve_adds(small_road, 0, perturb_seed=None)
        assert sha(a.dist) == sha(b.dist)
        assert a.work_count == b.work_count
        assert a.time_us == b.time_us

    def test_device_without_seed_has_no_rng(self):
        from repro.calibration import default_gpu

        dev = Device(default_gpu())
        assert dev.perturb_seed is None


class TestPerturbOn:
    def test_same_seed_is_bit_reproducible(self, small_road):
        a = solve_adds(small_road, 0, perturb_seed=42)
        b = solve_adds(small_road, 0, perturb_seed=42)
        assert sha(a.dist) == sha(b.dist)
        assert a.work_count == b.work_count
        assert a.time_us == b.time_us

    def test_seed_recorded_in_stats(self, small_road):
        r = solve_adds(small_road, 0, perturb_seed=7)
        assert r.stats["perturb_seed"] == 7

    def test_distances_schedule_invariant(self, small_road, oracle):
        ref = oracle(small_road, 0)
        canonical = solve_adds(small_road, 0)
        for seed in (1, 2, 3):
            r = solve_adds(small_road, 0, perturb_seed=seed)
            assert sha(r.dist) == sha(canonical.dist)
            assert np.allclose(r.dist, ref)

    def test_some_seed_changes_the_schedule(self, small_road):
        """The perturber must actually perturb: across a handful of seeds
        at least one schedule differs from the canonical one (observable
        as a different simulated finish time or work count)."""
        canonical = solve_adds(small_road, 0)
        outcomes = set()
        for s in range(4):
            r = solve_adds(small_road, 0, perturb_seed=s)
            outcomes.add((r.time_us, r.work_count))
        assert outcomes != {(canonical.time_us, canonical.work_count)}

    def test_no_missed_wakeups_under_perturbation(self, small_road):
        for seed in (0, 1):
            r = solve_adds(small_road, 0, perturb_seed=seed)
            assert r.stats.get("missed_wakeups", 0) == 0
