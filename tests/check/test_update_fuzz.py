"""Update-stream fuzz: incremental re-solves must be bit-identical to
from-scratch solves across seeds, schedulers, and perturbed schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check import UpdateLane, run_update_check, schedule_seed
from repro.core.adds import solve_adds
from repro.dynamic import apply_updates
from repro.graphs import generators
from repro.graphs.generators import update_stream
from repro.graphs.suite import SuiteEntry

FUZZ_SEEDS = list(range(8))


def _entry(seed: int) -> SuiteEntry:
    return SuiteEntry(
        name=f"fuzz-grid-{seed}",
        category="fuzz",
        factory=lambda seed=seed: generators.grid_road(6, 6, seed=seed),
        source=0,
    )


@pytest.mark.parametrize("scheduler", ["bucket", "mlmq"])
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_incremental_bit_equal_across_seeds(seed, scheduler):
    """Direct fuzz loop: one graph, one scheduler, one stream seed."""
    g = generators.grid_road(6, 6, seed=seed).prepare()
    warm = solve_adds(g, source=0, scheduler=scheduler).dist
    for batch in update_stream(g, batches=2, batch_size=6, seed=seed * 31 + 7):
        res = apply_updates(g, batch)
        g = res.graph.prepare()
        full = solve_adds(g, source=0, scheduler=scheduler)
        inc = solve_adds(
            g, source=0, scheduler=scheduler, warm_from=warm, updates=res.deltas
        )
        assert np.array_equal(full.dist, inc.dist)
        warm = inc.dist


def test_run_update_check_report_shape_and_pass():
    """The runner itself: both schedulers + a perturbed lane, all green."""
    report = run_update_check(
        entries=[_entry(0), _entry(1)],
        batches=2,
        batch_size=6,
        schedules=1,
        seed=3,
    )
    assert report.ok
    assert len(report.cells) == 2
    for cell in report.cells:
        assert len(cell.batches) == 2
        # lanes: dijkstra + (bucket, mlmq) × (canonical + 1 perturbed)
        assert len(cell.lanes) == 5
        for bc in cell.batches:
            assert bc.oracle_sha256 is not None
            # every lane reported a sha, and all of them match the oracle
            assert set(bc.lane_sha256) == set(cell.lanes)
            assert all(s == bc.oracle_sha256 for s in bc.lane_sha256.values())
    payload = report.to_json_dict()
    assert payload["schema"] == 1
    assert payload["ok"] is True


def test_run_update_check_detects_divergence(monkeypatch):
    """Sanity that the oracle is live: sabotage the incremental path and
    the report must flag it."""
    import repro.check.dynamic as dynmod

    real = dynmod._dist_sha256
    calls = {"n": 0}

    def skewed(dist):
        calls["n"] += 1
        if calls["n"] == 3:  # corrupt one lane's sha (call 1 is the oracle)
            return "deadbeef" * 8
        return real(dist)

    monkeypatch.setattr(dynmod, "_dist_sha256", skewed)
    report = run_update_check(
        entries=[_entry(2)], batches=1, batch_size=5, schedules=0, seed=1
    )
    assert not report.ok
    assert any("diverged" in p for c in report.cells for p in c.problems)


def test_lane_labels_and_default_lanes():
    from repro.check import default_update_lanes

    lanes = default_update_lanes(schedules=1, seed=0)
    labels = [lane.label for lane in lanes]
    assert labels[0] == "dijkstra/canonical"
    assert "adds/bucket/canonical" in labels
    assert "adds/mlmq/canonical" in labels
    assert f"adds/bucket/seed={schedule_seed(0, 0)}" in labels
    assert len(labels) == len(set(labels))


def test_perturbed_lane_objects():
    lane = UpdateLane(solver="adds", scheduler="mlmq", perturb_seed=42)
    assert lane.label == "adds/mlmq/seed=42"
