"""BENCH_*.json schema, round-trip, and determinism of the pinned matrix."""

from __future__ import annotations

import json

import pytest

from repro.baselines.common import RESULT_SCHEMA_VERSION, get_solver
from repro.bench import (
    BENCH_SCHEMA_VERSION,
    load_report,
    matrix_entries,
    matrix_solvers,
    run_bench,
    write_report,
)
from repro.errors import ReproError
from repro.validation import assert_results_match

from tests.bench.conftest import TINY_MATRIX, TINY_NAME

CELL_FIELDS = {
    "graph", "category", "solver", "source", "wall_s", "wall_s_runs",
    "time_us", "cycles", "work_count", "reached", "n_vertices",
    "dist_sha256", "peak_rss_kb", "atomics", "fences",
}


class TestSchema:
    def test_payload_is_schema_versioned(self, tiny_report):
        payload = tiny_report.to_json_dict()
        assert payload["schema"] == RESULT_SCHEMA_VERSION
        assert payload["bench_schema"] == BENCH_SCHEMA_VERSION
        assert payload["tag"] == "seed"
        assert payload["matrix"] == TINY_NAME
        assert payload["repeats"] == 2
        assert payload["totals"]["wall_s"] == pytest.approx(
            sum(c["wall_s"] for c in payload["cells"])
        )

    def test_cell_fields_complete(self, tiny_report):
        payload = tiny_report.to_json_dict()
        assert len(payload["cells"]) == 2  # 1 graph x 2 solvers
        for cell in payload["cells"]:
            assert set(cell) == CELL_FIELDS
            assert cell["wall_s"] == min(cell["wall_s_runs"])
            assert len(cell["wall_s_runs"]) == 2
            assert len(cell["dist_sha256"]) == 64
            assert cell["n_vertices"] == 144

    def test_write_and_load_round_trip(self, tiny_report, tmp_path):
        path = write_report(tiny_report, tmp_path)
        assert path.name == "BENCH_seed.json"
        payload = load_report(path)
        assert payload == tiny_report.to_json_dict()

    def test_load_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ReproError, match="not a bench report"):
            load_report(p)

    def test_load_rejects_future_schema(self, tiny_report, tmp_path):
        payload = tiny_report.to_json_dict()
        payload["bench_schema"] = BENCH_SCHEMA_VERSION + 1
        p = tmp_path / "BENCH_future.json"
        p.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="schema"):
            load_report(p)


class TestPeakRss:
    """ru_maxrss has no portable unit; the report must pin one."""

    def test_linux_kib_passthrough(self):
        from repro.bench.runner import _peak_rss_kb

        assert _peak_rss_kb(getrusage=lambda: 4096, sys_platform="linux") == 4096

    def test_darwin_bytes_normalized(self):
        from repro.bench.runner import _peak_rss_kb

        assert (
            _peak_rss_kb(getrusage=lambda: 4096 * 1024, sys_platform="darwin")
            == 4096
        )

    def test_monkeypatched_getrusage(self, monkeypatch):
        import resource

        from repro.bench.runner import _peak_rss_kb

        class FakeUsage:
            ru_maxrss = 12345

        monkeypatch.setattr(resource, "getrusage", lambda who: FakeUsage())
        assert _peak_rss_kb(sys_platform="linux") == 12345
        assert _peak_rss_kb(sys_platform="darwin") == 12345 // 1024

    def test_report_records_rss_unit(self, tiny_report):
        from repro.bench.runner import RSS_UNIT

        payload = tiny_report.to_json_dict()
        assert payload["host"]["rss_unit"] == RSS_UNIT == "KiB"


class TestMatrices:
    def test_pinned_matrices_exist(self):
        assert set(matrix_solvers("small")) == {"adds", "nf"}
        assert len(matrix_entries("small")) == 3
        assert len(matrix_entries("medium")) == 6

    def test_unknown_matrix_rejected(self):
        with pytest.raises(ReproError, match="unknown bench matrix"):
            matrix_entries("nope")

    def test_bad_repeats_rejected(self, tiny_matrix):
        with pytest.raises(ReproError, match="repeats"):
            run_bench(tiny_matrix, repeats=0)


class TestDeterminism:
    def test_rerun_reproduces_simulated_outputs(self, tiny_report, tiny_matrix):
        """Two independent bench runs of a pinned matrix agree on every
        simulated metric (wall-clock may differ; that is the point)."""
        again = run_bench(tiny_matrix, tag="again", repeats=1)
        for cell in tiny_report.cells:
            other = again.cell(cell.graph, cell.solver)
            assert other.time_us == cell.time_us
            assert other.work_count == cell.work_count
            assert other.dist_sha256 == cell.dist_sha256
            assert other.atomics == cell.atomics
            assert other.fences == cell.fences

    def test_solver_results_match_across_runs(self):
        """The harness invariant at the result level: identical distances
        and metric equality for repeated solves of a pinned cell."""
        _, entries = TINY_MATRIX
        _, _, spec = entries[0]
        graph = spec.build()
        fn = get_solver("adds").fn
        a = fn(graph, source=0)
        b = fn(graph, source=0)
        assert_results_match(a, b)
        assert a.work_count == b.work_count
        assert a.time_us == b.time_us
