"""Shared fixtures: a one-graph matrix small enough to run per-test.

The real matrices are pinned (that is their whole point), so tests
register a throwaway matrix under a reserved name instead of shrinking
``small``.  Registration goes through the module-level ``MATRICES`` dict,
which the CLI reads at parser-build time, so ``--matrix tiny-test`` works
end to end.
"""

from __future__ import annotations

import pytest

from repro.bench.matrix import MATRICES
from repro.bench.runner import run_bench
from repro.graphs.suite import GraphSpec

TINY_NAME = "tiny-test"

TINY_MATRIX = (
    ("adds", "nf"),
    [
        (
            "bench-tiny-road",
            "road",
            GraphSpec.make("grid_road", width=12, height=12, max_weight=64, seed=7),
        ),
    ],
)


@pytest.fixture()
def tiny_matrix():
    MATRICES[TINY_NAME] = TINY_MATRIX
    try:
        yield TINY_NAME
    finally:
        MATRICES.pop(TINY_NAME, None)


@pytest.fixture(scope="session")
def tiny_report():
    """One bench run of the tiny matrix, shared by read-only tests."""
    MATRICES[TINY_NAME] = TINY_MATRIX
    try:
        return run_bench(TINY_NAME, tag="seed", repeats=2)
    finally:
        MATRICES.pop(TINY_NAME, None)
