"""The --compare regression gate, over hand-built payloads (no solves)."""

from __future__ import annotations

import pytest

from repro.bench import compare_reports
from repro.errors import ReproError


def payload(cells):
    """A minimal bench payload: cells = {(graph, solver): wall_s or dict}."""
    out = []
    for (graph, solver), spec in cells.items():
        cell = {
            "graph": graph,
            "solver": solver,
            "wall_s": spec if isinstance(spec, (int, float)) else spec["wall_s"],
            "work_count": 100,
            "time_us": 42.0,
            "dist_sha256": "a" * 64,
        }
        if isinstance(spec, dict):
            cell.update(spec)
        out.append(cell)
    return {"bench_schema": 1, "cells": out}


BASE = {("g1", "adds"): 1.0, ("g2", "adds"): 2.0}


class TestGate:
    def test_identical_ok(self):
        cmp = compare_reports(payload(BASE), payload(BASE), threshold_pct=10)
        assert cmp.ok
        assert cmp.summary_lines()[-1] == "OK"
        assert not cmp.regressions and not cmp.mismatches and not cmp.missing

    def test_improvement_ok(self):
        cur = payload({("g1", "adds"): 0.5, ("g2", "adds"): 1.0})
        cmp = compare_reports(payload(BASE), cur, threshold_pct=10)
        assert cmp.ok
        assert cmp.total_change_pct == pytest.approx(-50.0)

    def test_injected_slowdown_fails(self):
        cur = payload({("g1", "adds"): 1.5, ("g2", "adds"): 2.0})
        cmp = compare_reports(payload(BASE), cur, threshold_pct=10)
        assert not cmp.ok
        assert [d.graph for d in cmp.regressions] == ["g1"]
        assert cmp.summary_lines()[-1] == "FAIL"
        assert any("REGRESSION" in l for l in cmp.summary_lines())

    def test_slowdown_within_threshold_ok(self):
        cur = payload({("g1", "adds"): 1.05, ("g2", "adds"): 2.0})
        assert compare_reports(payload(BASE), cur, threshold_pct=10).ok

    def test_total_regression_fails_even_without_cell_regression(self):
        # every cell creeps up 8% (< 10%), but so does the total... use an
        # asymmetric threshold: total moves +8% which stays OK at 10, and
        # fails at 5.
        cur = payload({("g1", "adds"): 1.08, ("g2", "adds"): 2.16})
        assert compare_reports(payload(BASE), cur, threshold_pct=10).ok
        cmp = compare_reports(payload(BASE), cur, threshold_pct=5)
        assert cmp.total_regressed and not cmp.ok

    def test_simulated_mismatch_is_fatal_regardless_of_speed(self):
        cur = payload({("g1", "adds"): {"wall_s": 0.1, "work_count": 999},
                       ("g2", "adds"): 2.0})
        cmp = compare_reports(payload(BASE), cur, threshold_pct=50)
        assert not cmp.ok
        assert any("work_count" in m for m in cmp.mismatches)

    def test_dist_hash_mismatch_is_fatal(self):
        cur = payload({("g1", "adds"): {"wall_s": 1.0, "dist_sha256": "b" * 64},
                       ("g2", "adds"): 2.0})
        assert not compare_reports(payload(BASE), cur).ok

    def test_missing_cell_is_fatal(self):
        cur = payload({("g1", "adds"): 1.0})
        cmp = compare_reports(payload(BASE), cur)
        assert cmp.missing == [("g2", "adds")]
        assert not cmp.ok

    def test_added_cell_is_informational(self):
        cur = payload({**BASE, ("g3", "nf"): 9.0})
        cmp = compare_reports(payload(BASE), cur)
        assert cmp.added == [("g3", "nf")]
        assert cmp.ok  # new coverage never fails the gate

    def test_negative_threshold_rejected(self):
        with pytest.raises(ReproError, match="non-negative"):
            compare_reports(payload(BASE), payload(BASE), threshold_pct=-1)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ReproError, match="cells"):
            compare_reports({"bench_schema": 1}, payload(BASE))


class TestFieldGaps:
    """Cells lacking a required field are diagnosed per-cell and fail the
    gate cleanly instead of raising a bare KeyError (e.g. an old-schema
    baseline compared against a grown matrix)."""

    def test_missing_baseline_field_is_diagnosed_not_keyerror(self):
        base = payload(BASE)
        for cell in base["cells"]:
            del cell["dist_sha256"]
        cmp = compare_reports(base, payload(BASE), threshold_pct=10)
        assert not cmp.ok
        assert len(cmp.field_gaps) == 2
        assert all(
            "missing in baseline" in m and "dist_sha256" in m
            for m in cmp.field_gaps
        )
        lines = cmp.summary_lines()
        assert any("missing in baseline" in l for l in lines)
        assert lines[-1] == "FAIL"

    def test_missing_current_field_is_diagnosed(self):
        cur = payload(BASE)
        del cur["cells"][0]["work_count"]
        cmp = compare_reports(payload(BASE), cur, threshold_pct=10)
        assert not cmp.ok
        assert cmp.field_gaps == ["g1/adds: field 'work_count' missing in current"]
        # the intact cell still compares normally
        assert [d.graph for d in cmp.deltas] == ["g2"]

    def test_gapped_cell_skips_value_comparison(self):
        base = payload(BASE)
        del base["cells"][0]["time_us"]
        cur = payload({("g1", "adds"): 99.0, ("g2", "adds"): 2.0})
        cmp = compare_reports(base, cur, threshold_pct=10)
        assert cmp.field_gaps and not cmp.ok
        # g1 is incomparable: neither a delta nor a regression is recorded
        assert [d.graph for d in cmp.deltas] == ["g2"]
        assert not cmp.regressions

    def test_malformed_cell_raises_reproerror(self):
        bad = payload(BASE)
        del bad["cells"][0]["graph"]
        with pytest.raises(ReproError):
            compare_reports(bad, payload(BASE))
