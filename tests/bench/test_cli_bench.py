"""End-to-end `repro bench` CLI: emit, compare, exit codes."""

from __future__ import annotations

import json

from repro.cli import main


def run_bench_cli(tmp_path, *extra, tag="cli"):
    return main([
        "bench", "--tag", tag, "--matrix", "tiny-test",
        "--repeats", "1", "--out", str(tmp_path), *extra,
    ])


class TestBenchCommand:
    def test_emits_schema_versioned_report(self, tiny_matrix, tmp_path, capsys):
        assert run_bench_cli(tmp_path) == 0
        payload = json.loads((tmp_path / "BENCH_cli.json").read_text())
        assert payload["bench_schema"] == 1
        assert len(payload["cells"]) == 2
        assert "BENCH_cli.json" in capsys.readouterr().out

    def test_compare_against_self_passes(self, tiny_matrix, tmp_path, capsys):
        assert run_bench_cli(tmp_path, tag="base") == 0
        code = run_bench_cli(
            tmp_path, "--compare", str(tmp_path / "BENCH_base.json"),
            "--threshold", "400",
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_slowdown_exits_nonzero(self, tiny_matrix, tmp_path, capsys):
        assert run_bench_cli(tmp_path, tag="base") == 0
        base = json.loads((tmp_path / "BENCH_base.json").read_text())
        # Injected slowdown: shrink the baseline walls so the (honest)
        # current run looks >threshold slower than the doctored past.
        for cell in base["cells"]:
            cell["wall_s"] /= 100.0
        doctored = tmp_path / "BENCH_doctored.json"
        doctored.write_text(json.dumps(base))
        code = run_bench_cli(tmp_path, "--compare", str(doctored),
                             "--threshold", "10")
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "FAIL" in out

    def test_json_mode_carries_compare_verdict(self, tiny_matrix, tmp_path, capsys):
        assert run_bench_cli(tmp_path, tag="base") == 0
        capsys.readouterr()
        code = run_bench_cli(
            tmp_path, "--compare", str(tmp_path / "BENCH_base.json"),
            "--threshold", "400", "--json",
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["compare"]["ok"] is True
        assert payload["compare"]["threshold_pct"] == 400.0

    def test_unknown_baseline_is_a_clean_error(self, tiny_matrix, tmp_path, capsys):
        code = run_bench_cli(tmp_path, "--compare", str(tmp_path / "missing.json"))
        assert code == 2
        assert "error" in capsys.readouterr().err
