"""Tests for the verify_against analog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.common import SSSPResult
from repro.errors import ValidationError
from repro.validation import (
    MismatchReport,
    assert_results_match,
    read_dist_file,
    verify_dist_files,
    verify_results,
    write_dist_file,
)


def result(dist, name="g", solver="x", source=0):
    return SSSPResult(
        solver=solver,
        graph_name=name,
        source=source,
        dist=np.asarray(dist, dtype=np.float64),
        work_count=1,
        time_us=1.0,
    )


class TestVerifyResults:
    def test_identical_pass(self):
        a = result([0, 1, np.inf])
        b = result([0, 1, np.inf])
        assert verify_results(a, b) == []

    def test_value_mismatch_reported(self):
        m = verify_results(result([0, 1, 2]), result([0, 9, 2]))
        assert len(m) == 1
        assert m[0].vertex == 1
        assert m[0].dist_a == 1 and m[0].dist_b == 9

    def test_reachability_mismatch_reported(self):
        m = verify_results(result([0, np.inf]), result([0, 5]))
        assert len(m) == 1

    def test_atol_tolerates_nv_rounding(self):
        """The artifact: NV distances can differ by 1 on int graphs."""
        a = result([0, 1000])
        b = result([0, 1001])
        assert verify_results(a, b, atol=1.0) == []
        assert len(verify_results(a, b)) == 1

    def test_rtol(self):
        a = result([0, 1e6])
        b = result([0, 1e6 * 1.0001])
        assert verify_results(a, b, rtol=1e-3) == []

    def test_different_graphs_rejected(self):
        with pytest.raises(ValidationError, match="different graphs"):
            verify_results(result([0], name="a"), result([0], name="b"))

    def test_different_sources_rejected(self):
        with pytest.raises(ValidationError, match="sources"):
            verify_results(result([0], source=0), result([0], source=1))

    def test_different_lengths_rejected(self):
        with pytest.raises(ValidationError, match="length"):
            verify_results(result([0]), result([0, 1]))

    def test_max_report_caps_output(self):
        a = result(list(range(100)))
        b = result([x + 1 for x in range(100)])
        assert len(verify_results(a, b, max_report=5)) == 5

    def test_assert_raises_with_listing(self):
        with pytest.raises(ValidationError, match="mismatch"):
            assert_results_match(result([0, 1]), result([0, 2]))


class TestMismatchTotal:
    """max_report truncates the listing, never the count."""

    def test_total_survives_truncation(self):
        a = result(list(range(100)))
        b = result([x + 1 for x in range(100)])
        m = verify_results(a, b, max_report=5)
        assert isinstance(m, MismatchReport)
        assert len(m) == 5
        assert m.total == 100
        assert m.truncated

    def test_total_matches_len_when_untruncated(self):
        m = verify_results(result([0, 1, 2]), result([0, 9, 7]))
        assert m.total == len(m) == 2
        assert not m.truncated

    def test_clean_compare_has_zero_total(self):
        m = verify_results(result([0, 1]), result([0, 1]))
        assert m == [] and m.total == 0

    def test_assert_message_reports_real_total(self):
        a = result(list(range(100)))
        b = result([x + 1 for x in range(100)])
        with pytest.raises(ValidationError, match="100 mismatches"):
            assert_results_match(a, b, max_report=5)

    def test_assert_raises_even_when_listing_empty(self):
        # max_report=0 yields an empty listing, but the compare still failed
        with pytest.raises(ValidationError, match="1 mismatches"):
            assert_results_match(result([0, 1]), result([0, 2]), max_report=0)


class TestDistFiles:
    def test_roundtrip(self, tmp_path):
        r = result([0, 2.5, np.inf, 7])
        p = tmp_path / "d"
        write_dist_file(r, p)
        back = read_dist_file(p)
        assert back[0] == 0 and back[1] == 2.5 and np.isinf(back[2]) and back[3] == 7

    def test_integer_formatting(self, tmp_path):
        p = tmp_path / "d"
        write_dist_file(result([0, 7]), p)
        assert "1 7\n" in p.read_text()

    def test_verify_dist_files(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        write_dist_file(result([0, 1, np.inf]), a)
        write_dist_file(result([0, 2, np.inf]), b)
        m = verify_dist_files(a, b)
        assert len(m) == 1 and m[0].vertex == 1

    def test_verify_dist_files_length_mismatch(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        write_dist_file(result([0]), a)
        write_dist_file(result([0, 1]), b)
        with pytest.raises(ValidationError, match="vertex count"):
            verify_dist_files(a, b)

    def test_bad_line_rejected(self, tmp_path):
        p = tmp_path / "d"
        p.write_text("0 1 extra\n")
        with pytest.raises(ValidationError, match="bad dist line"):
            read_dist_file(p)

    def test_end_to_end_with_real_solvers(self, tmp_path, small_road):
        """The full artifact flow: run two solvers, dump, verify on disk."""
        from repro.baselines import solve_dijkstra, solve_nf

        a = solve_nf(small_road, 0)
        b = solve_dijkstra(small_road, 0)
        pa, pb = tmp_path / "nf", tmp_path / "dij"
        write_dist_file(a, pa)
        write_dist_file(b, pb)
        assert verify_dist_files(pa, pb) == []


class TestNaNIsAlwaysAMismatch:
    """A solver emitting NaN is corrupt; NaN must never pass as INF."""

    def test_nan_vs_inf_mismatch(self):
        m = verify_results(result([0, np.nan]), result([0, np.inf]))
        assert len(m) == 1 and m[0].vertex == 1

    def test_nan_vs_value_mismatch(self):
        assert len(verify_results(result([0, np.nan]), result([0, 5.0]))) == 1

    def test_nan_vs_nan_mismatch(self):
        assert len(verify_results(result([0, np.nan]), result([0, np.nan]))) == 1

    def test_nan_fails_even_with_tolerances(self):
        a, b = result([0, np.nan]), result([0, np.nan])
        assert len(verify_results(a, b, atol=1e9, rtol=1.0)) == 1

    def test_assert_results_match_raises_on_nan(self):
        with pytest.raises(ValidationError):
            assert_results_match(result([0, np.nan]), result([0, np.nan]))

    def test_dist_files_nan_mismatch(self, tmp_path):
        pa, pb = tmp_path / "a_dist", tmp_path / "b_dist"
        pa.write_text("0 0\n1 nan\n")
        pb.write_text("0 0\n1 INF\n")
        assert len(verify_dist_files(pa, pb)) == 1

    def test_dist_files_nan_vs_nan_mismatch(self, tmp_path):
        pa, pb = tmp_path / "a_dist", tmp_path / "b_dist"
        pa.write_text("0 0\n1 nan\n")
        pb.write_text("0 0\n1 nan\n")
        assert len(verify_dist_files(pa, pb, atol=10.0)) == 1
