"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graphs import grid_road, read_gr, write_gr


@pytest.fixture
def gr_file(tmp_path):
    p = tmp_path / "road.gr"
    write_gr(grid_road(12, 9, seed=3), p)
    return str(p)


class TestGenerate:
    @pytest.mark.parametrize(
        "args",
        [
            ["road", "--width", "10", "--height", "8"],
            ["rmat", "--scale", "8"],
            ["gnm", "--n", "300", "--m", "900"],
            ["mesh", "--n", "300", "--band", "12"],
            ["geo", "--n", "300", "--k", "4"],
            ["cliques", "--cliques", "4", "--clique-size", "10"],
        ],
        ids=["road", "rmat", "gnm", "mesh", "geo", "cliques"],
    )
    def test_generate_each_kind(self, tmp_path, args, capsys):
        out = str(tmp_path / "g.gr")
        assert main(["generate", args[0], out] + args[1:]) == 0
        g = read_gr(out)
        assert g.num_vertices > 0
        assert "wrote" in capsys.readouterr().out


class TestInfo:
    def test_info_prints_stats(self, gr_file, capsys):
        assert main(["info", gr_file]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "pseudo-diameter" in out
        assert "108" in out  # 12*9 vertices

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent/g.gr"]) == 2
        assert "error" in capsys.readouterr().err


class TestSolve:
    def test_solve_default_adds(self, gr_file, capsys):
        assert main(["solve", gr_file]) == 0
        out = capsys.readouterr().out
        assert "reached 108/108" in out

    @pytest.mark.parametrize("alg", ["nf", "gun-bf", "cpu-ds", "dijkstra"])
    def test_solve_other_algorithms(self, gr_file, alg, capsys):
        assert main(["solve", gr_file, "-a", alg]) == 0
        assert "work" in capsys.readouterr().out

    def test_solve_with_path(self, gr_file, capsys):
        assert main(["solve", gr_file, "--path-to", "107"]) == 0
        out = capsys.readouterr().out
        assert "path to 107" in out
        assert "->" in out

    def test_solve_multi_source(self, gr_file, capsys):
        assert main(["solve", gr_file, "--sources", "0,5,9"]) == 0

    def test_solve_writes_dist_file(self, gr_file, tmp_path, capsys):
        dist = str(tmp_path / "dist")
        assert main(["solve", gr_file, "--dist-out", dist]) == 0
        from repro.validation import read_dist_file

        assert read_dist_file(dist).size == 108

    def test_solve_3090_device(self, gr_file):
        assert main(["solve", gr_file, "--device", "3090"]) == 0

    def test_solve_with_delta(self, gr_file):
        assert main(["solve", gr_file, "-a", "nf", "--delta", "500"]) == 0

    def test_solve_json_output(self, gr_file, capsys):
        assert main(["solve", gr_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["solver"] == "adds"
        assert payload["reached"] == 108
        assert payload["stats"]["kernel_launches"] == 1
        assert "dist" not in payload

    def test_solve_json_with_dist_and_path(self, gr_file, capsys):
        assert main(
            ["solve", gr_file, "--json", "--json-dist", "--path-to", "107"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["dist"]) == 108
        assert payload["dist"][0] == 0.0
        assert payload["path_to"][0] == 0
        assert payload["path_to"][-1] == 107


class TestVerify:
    def test_matching_files(self, gr_file, tmp_path, capsys):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        main(["solve", gr_file, "-a", "dijkstra", "--dist-out", a])
        main(["solve", gr_file, "-a", "nf", "--dist-out", b])
        capsys.readouterr()
        assert main(["verify", a, b]) == 0
        assert "OK" in capsys.readouterr().out

    def test_mismatching_files(self, tmp_path, capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_text("0 0\n1 5\n")
        b.write_text("0 0\n1 7\n")
        assert main(["verify", str(a), str(b)]) == 1
        assert "mismatch" in capsys.readouterr().out


class TestConvert:
    def test_gr_to_dimacs_roundtrip(self, gr_file, tmp_path, capsys):
        dimacs = str(tmp_path / "g.dimacs")
        back = str(tmp_path / "back.gr")
        assert main(["convert", gr_file, dimacs]) == 0
        assert main(["convert", dimacs, back]) == 0
        import numpy as np

        a, b = read_gr(gr_file), read_gr(back)
        assert np.array_equal(a.col_indices, b.col_indices)
        assert np.array_equal(a.weights, b.weights)


class TestSuite:
    def test_small_suite_run(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        rc = main([
            "suite", "--solvers", "adds,nf", "--categories", "road",
            "--scale", "0.25", "--max-graphs", "2", "--out", out,
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "speedup of adds over nf" in printed
        assert (tmp_path / "results" / "adds_result").exists()

    def test_suite_json_output(self, capsys):
        rc = main([
            "suite", "--solvers", "adds,nf", "--categories", "road",
            "--scale", "0.25", "--max-graphs", "1", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["solvers"] == ["adds", "nf"]
        rec = payload["records"][0]
        assert set(rec["results"]) == {"adds", "nf"}
        assert rec["results"]["adds"]["time_us"] > 0
        assert payload["speedup"]["baseline"] == "nf"
        assert payload["verification_failures"] == []
        assert payload["failures"] == []
        assert payload["resumed"] == 0

    def test_suite_parallel_matches_serial(self, capsys):
        args = [
            "suite", "--solvers", "adds,nf", "--categories", "road",
            "--scale", "0.25", "--max-graphs", "2", "--json",
        ]
        assert main(args) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--jobs", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial["records"] == parallel["records"]
        assert serial["speedup"]["values"] == parallel["speedup"]["values"]

    def test_suite_resume_store(self, tmp_path, capsys):
        store = str(tmp_path / "sweep.jsonl")
        args = [
            "suite", "--solvers", "dijkstra", "--categories", "road",
            "--scale", "0.25", "--max-graphs", "2", "--json",
            "--resume", store,
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["resumed"] == 0
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["resumed"] == 2
        assert second["records"] == first["records"]


class TestTrace:
    def test_trace_writes_artifacts(self, gr_file, tmp_path, capsys):
        out = tmp_path / "tr"
        assert main(["trace", gr_file, "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "trace events" in printed
        doc = json.loads((out / "trace.json").read_text())
        thread_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "MTB" in thread_names
        assert any(n.startswith("WTB") for n in thread_names)
        assert (out / "counters.csv").exists()
        assert (out / "summary.txt").exists()

    def test_trace_bsp_solver(self, gr_file, tmp_path):
        out = tmp_path / "tr"
        assert main(["trace", gr_file, "-a", "nf", "--out", str(out)]) == 0
        assert (out / "trace.json").exists()

    def test_trace_rejects_cpu_solver(self, gr_file):
        with pytest.raises(SystemExit):
            main(["trace", gr_file, "-a", "dijkstra"])

    def test_trace_json_output(self, gr_file, tmp_path, capsys):
        out = tmp_path / "tr"
        assert main(["trace", gr_file, "--json", "--out", str(out)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["solver"] == "adds"
        assert payload["trace"]["events"] > 0
        assert any(p.endswith("trace.json") for p in payload["artifacts"])


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_algorithm_rejected_by_argparse(self, gr_file):
        with pytest.raises(SystemExit):
            main(["solve", gr_file, "-a", "warp-speed"])
