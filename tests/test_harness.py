"""Tests for the run_all-style experiment driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.common import SSSPResult
from repro.errors import SolverError
from repro.graphs import build_suite
from repro.graphs.suite import SuiteEntry
from repro.graphs.generators import grid_road
from repro.harness import RunRecord, run_suite, write_result_files


@pytest.fixture
def tiny_suite():
    return [
        SuiteEntry(name="r1", category="road", factory=lambda: grid_road(8, 6, seed=1)),
        SuiteEntry(name="r2", category="road", factory=lambda: grid_road(10, 5, seed=2)),
    ]


class TestRunSuite:
    def test_records_per_graph(self, tiny_suite):
        run = run_suite(solvers=("adds", "nf"), suite=tiny_suite)
        assert len(run.records) == 2
        assert set(run.records[0].results) == {"adds", "nf"}

    def test_verification_clean(self, tiny_suite):
        run = run_suite(solvers=("adds", "nf", "dijkstra"), suite=tiny_suite)
        assert run.verification_failures == []

    def test_unknown_solver_fails_fast(self, tiny_suite):
        with pytest.raises(SolverError):
            run_suite(solvers=("quantum",), suite=tiny_suite)

    def test_speedups_and_distribution(self, tiny_suite):
        run = run_suite(solvers=("adds", "nf"), suite=tiny_suite)
        sp = run.speedups("adds", "nf")
        assert len(sp) == 2 and all(s > 0 for s in sp)
        dist = run.speedup_distribution("adds", "nf")
        assert dist.total == 2

    def test_work_ratio_convention(self, tiny_suite):
        """Table 4 reports ADDS's vertex count normalized to the baseline:
        a value < 1 means ADDS processed fewer vertices."""
        run = run_suite(solvers=("adds", "nf"), suite=tiny_suite)
        (rec,) = run.records[:1]
        expected = (
            rec.results["adds"].work_count / rec.results["nf"].work_count
        )
        assert run.work_ratios("adds", "nf")[0] == pytest.approx(expected)

    def test_solver_options_forwarded(self, tiny_suite):
        from repro.core import AddsConfig

        run = run_suite(
            solvers=("adds",),
            suite=tiny_suite,
            solver_options={"adds": {"config": AddsConfig(n_wtbs=2)}},
        )
        assert run.records[0].results["adds"].stats["n_wtbs"] == 2

    def test_progress_callback(self, tiny_suite):
        seen = []
        run_suite(solvers=("nf",), suite=tiny_suite, progress=seen.append)
        assert len(seen) == 2

    def test_by_category(self, tiny_suite):
        run = run_suite(solvers=("nf",), suite=tiny_suite)
        assert set(run.by_category()) == {"road"}

    def test_ratio_unknown_metric(self, tiny_suite):
        run = run_suite(solvers=("adds", "nf"), suite=tiny_suite)
        with pytest.raises(SolverError):
            run.records[0].ratio("energy", "adds", "nf")

    def test_clean_sweep_has_no_failures(self, tiny_suite):
        run = run_suite(solvers=("adds", "nf"), suite=tiny_suite)
        assert run.failures == []
        assert run.resumed == 0


def _fake_result(solver, time_us, work_count):
    return SSSPResult(
        solver=solver, graph_name="g", source=0,
        dist=np.zeros(4), work_count=work_count, time_us=time_us,
    )


class TestRatioValidation:
    """A zero-time/zero-work operand must raise, never be clamped into a
    fabricated ratio that silently poisons downstream means."""

    def _record(self, a, b):
        return RunRecord(graph="g", category="road", results={"a": a, "b": b})

    def test_zero_time_raises(self):
        rec = self._record(_fake_result("a", 0.0, 5), _fake_result("b", 3.0, 5))
        with pytest.raises(SolverError, match="time ratio"):
            rec.ratio("time", "a", "b")

    def test_zero_work_raises(self):
        rec = self._record(_fake_result("a", 2.0, 0), _fake_result("b", 3.0, 5))
        with pytest.raises(SolverError, match="work ratio"):
            rec.ratio("work", "a", "b")

    def test_valid_ratio_unclamped(self):
        rec = self._record(_fake_result("a", 2.0, 4), _fake_result("b", 3.0, 8))
        assert rec.ratio("time", "a", "b") == pytest.approx(1.5)
        assert rec.ratio("work", "a", "b") == pytest.approx(2.0)

    def test_default_suite_is_corpus(self):
        assert len(build_suite()) >= 40  # run_suite defaults to this


class TestResultFiles:
    def test_artifact_format(self, tiny_suite, tmp_path):
        run = run_suite(solvers=("adds", "nf"), suite=tiny_suite)
        paths = write_result_files(run, tmp_path)
        assert sorted(p.name for p in paths) == ["adds_result", "nf_result"]
        lines = (tmp_path / "adds_result").read_text().strip().split("\n")
        assert len(lines) == 2
        name, t, w = lines[0].split()
        assert name == "r1"
        assert float(t) > 0 and int(w) > 0
