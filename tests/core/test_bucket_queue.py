"""Unit tests for the SRMW bucket queue: the §5.2/§5.4 protocol itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bucket_queue import BucketQueue, decode_dist, encode_dist
from repro.core.config import AddsConfig
from repro.errors import ProtocolError
from repro.gpu.memory import GlobalPool, SimMemory


def make_queue(
    n_buckets=4, segment_size=4, slots_per_block=32, delta=10.0, **cfgkw
):
    cfg = AddsConfig(
        n_buckets=n_buckets,
        segment_size=segment_size,
        slots_per_block=slots_per_block,
        pool_blocks=max(64, n_buckets),
        max_active_buckets=min(8, n_buckets),
        **cfgkw,
    )
    mem = SimMemory()
    pool = GlobalPool(cfg.pool_blocks, words_per_block=slots_per_block)
    q = BucketQueue(mem, pool, cfg, initial_delta=delta)
    for s in range(n_buckets):
        q.storage[s].ensure_capacity(4 * slots_per_block)
    return q


class TestDistCodec:
    def test_roundtrip(self):
        d = np.array([0.0, 1.5, 1e300, 3.25])
        assert np.array_equal(decode_dist(encode_dist(d)), d)

    def test_integers_exact(self):
        d = np.arange(1000, dtype=np.float64)
        assert np.array_equal(decode_dist(encode_dist(d)), d)


class TestBandMapping:
    def test_bands_by_delta(self):
        q = make_queue(delta=10.0)
        rel = q.rel_bands_for(np.array([0.0, 9.9, 10.0, 25.0]))
        assert rel.tolist() == [0, 0, 1, 2]

    def test_high_clip_to_tail(self):
        q = make_queue(n_buckets=4, delta=10.0)
        rel = q.rel_bands_for(np.array([1000.0]))
        assert rel.tolist() == [3]
        assert q.high_clips == 1

    def test_low_clip_to_head(self):
        q = make_queue(delta=10.0)
        q.base_dist = 50.0
        rel = q.rel_bands_for(np.array([5.0]))
        assert rel.tolist() == [0]
        assert q.low_clips == 1

    def test_slot_wraps_circularly(self):
        q = make_queue(n_buckets=4)
        q.head = 3
        assert q.slot_of(0) == 3
        assert q.slot_of(1) == 0
        assert q.rel_of(0) == 1


class TestWriterProtocol:
    def test_reserve_returns_consecutive_ranges(self):
        q = make_queue()
        assert q.reserve(0, 3) == 0
        assert q.reserve(0, 2) == 3
        assert q.resv[0] == 5

    def test_publish_updates_wcc_per_segment(self):
        q = make_queue(segment_size=4)
        start = q.reserve(0, 6)
        q.publish(0, start, np.arange(6, dtype=np.int64), np.arange(6.0))
        assert q.wcc[0][0] == 4
        assert q.wcc[0][1] == 2

    def test_publish_fences_before_wcc(self):
        q = make_queue()
        fences_before = q.mem.stats.fences
        start = q.reserve(0, 2)
        q.publish(0, start, np.arange(2, dtype=np.int64), np.arange(2.0))
        assert q.mem.stats.fences > fences_before

    def test_wcc_overflow_detected(self):
        q = make_queue(segment_size=4)
        q.reserve(0, 4)
        q.publish(0, 0, np.arange(4, dtype=np.int64), np.arange(4.0))
        with pytest.raises(ProtocolError, match="exceeds N"):
            q.publish(0, 0, np.arange(4, dtype=np.int64), np.arange(4.0))

    def test_reserve_non_positive(self):
        q = make_queue()
        with pytest.raises(ProtocolError):
            q.reserve(0, 0)

    def test_tail_push_counter(self):
        q = make_queue(n_buckets=4)
        q.reserve(3, 5)  # rel 3 == tail
        q.reserve(0, 5)
        assert q.tail_push_fraction() == pytest.approx(0.5)
        q.reset_push_window()
        assert q.tail_push_fraction() == 0.0


class TestReadableRange:
    """§5.2's rules, case by case."""

    def test_nothing_reserved(self):
        q = make_queue()
        upper, _ = q.readable_upper(0)
        assert upper == 0

    def test_full_segments_readable(self):
        q = make_queue(segment_size=4)
        start = q.reserve(0, 8)
        q.publish(0, start, np.arange(8, dtype=np.int64), np.arange(8.0))
        upper, scanned = q.readable_upper(0)
        assert upper == 8
        assert scanned >= 2

    def test_partial_segment_complete_iff_wcc_matches_resv(self):
        q = make_queue(segment_size=4)
        start = q.reserve(0, 2)
        q.publish(0, start, np.arange(2, dtype=np.int64), np.arange(2.0))
        upper, _ = q.readable_upper(0)
        assert upper == 2  # seg_base(0) + WCC(2) == resv(2) -> readable

    def test_gap_blocks_reading(self):
        """Reserved-but-unwritten slots must never be readable: writer A
        reserved [0,2), writer B reserved [2,4) and published first."""
        q = make_queue(segment_size=4)
        a = q.reserve(0, 2)
        b = q.reserve(0, 2)
        q.publish(0, b, np.arange(2, dtype=np.int64), np.arange(2.0))
        upper, _ = q.readable_upper(0)
        # WCC == 2 but seg_base + WCC != resv would be 0+2 != 4: nothing
        # in the segment can be trusted
        assert upper == 0
        # once A publishes, the whole segment opens
        q.publish(0, a, np.arange(2, dtype=np.int64), np.arange(2.0))
        upper, _ = q.readable_upper(0)
        assert upper == 4

    def test_full_segment_then_partial(self):
        q = make_queue(segment_size=4)
        start = q.reserve(0, 7)
        q.publish(0, start, np.arange(7, dtype=np.int64), np.arange(7.0))
        upper, _ = q.readable_upper(0)
        assert upper == 7

    def test_full_segment_then_gap(self):
        q = make_queue(segment_size=4)
        a = q.reserve(0, 4)
        q.publish(0, a, np.arange(4, dtype=np.int64), np.arange(4.0))
        b = q.reserve(0, 3)
        c = q.reserve(0, 1)
        q.publish(0, c, np.array([9], dtype=np.int64), np.array([9.0]))
        upper, _ = q.readable_upper(0)
        assert upper == 4  # second segment has a hole

    def test_read_items_roundtrip(self):
        q = make_queue()
        start = q.reserve(1, 3)
        q.publish(1, start, np.array([5, 6, 7], dtype=np.int64), np.array([1.5, 2.5, 3.5]))
        verts, dists = q.read_items(1, 0, 3)
        assert verts.tolist() == [5, 6, 7]
        assert dists.tolist() == [1.5, 2.5, 3.5]

    def test_advance_read_monotone(self):
        q = make_queue()
        q.reserve(0, 4)
        q.publish(0, 0, np.arange(4, dtype=np.int64), np.arange(4.0))
        q.advance_read(0, 4)
        with pytest.raises(ProtocolError):
            q.advance_read(0, 2)


class TestCompletionAndRotation:
    def fill_and_drain(self, q, slot, k):
        start = q.reserve(slot, k)
        q.publish(slot, start, np.arange(k, dtype=np.int64), np.arange(float(k)))
        q.advance_read(slot, start + k)
        q.complete(slot, k, epoch=int(q.epoch[slot]))

    def test_bucket_drained(self):
        q = make_queue()
        assert q.bucket_drained(0)  # empty counts as drained
        start = q.reserve(0, 3)
        q.publish(0, start, np.arange(3, dtype=np.int64), np.arange(3.0))
        assert not q.bucket_drained(0)  # not read
        q.advance_read(0, 3)
        assert not q.bucket_drained(0)  # not completed
        q.complete(0, 3, epoch=0)
        assert q.bucket_drained(0)

    def test_rotation_advances_window(self):
        q = make_queue(n_buckets=4, delta=10.0)
        self.fill_and_drain(q, 0, 3)
        q.rotate()
        assert q.head == 1
        assert q.base_dist == 10.0
        assert q.rotations == 1
        assert q.resv[0] == 0 and q.read[0] == 0 and q.cwc[0] == 0

    def test_rotation_requires_read_out(self):
        q = make_queue()
        start = q.reserve(0, 2)
        q.publish(0, start, np.arange(2, dtype=np.int64), np.arange(2.0))
        with pytest.raises(ProtocolError, match="unread"):
            q.rotate()

    def test_rotation_requires_cwc_match(self):
        """§5.4's guard: rotating while assigned work is in flight is the
        'continuous cramming' bug."""
        q = make_queue()
        start = q.reserve(0, 2)
        q.publish(0, start, np.arange(2, dtype=np.int64), np.arange(2.0))
        q.advance_read(0, 2)
        with pytest.raises(ProtocolError, match="CWC"):
            q.rotate()

    def test_unsafe_rotation_allows_it(self):
        q = make_queue(unsafe_rotation=True)
        start = q.reserve(0, 2)
        q.publish(0, start, np.arange(2, dtype=np.int64), np.arange(2.0))
        q.advance_read(0, 2)
        q.rotate()  # no error
        assert q.head == 1

    def test_late_completion_after_unsafe_rotation_dropped(self):
        q = make_queue(unsafe_rotation=True)
        start = q.reserve(0, 2)
        q.publish(0, start, np.arange(2, dtype=np.int64), np.arange(2.0))
        q.advance_read(0, 2)
        old_epoch = int(q.epoch[0])
        q.rotate()
        q.complete(0, 2, epoch=old_epoch)
        assert q.cwc[0] == 0  # recycled bucket's CWC untouched
        assert q.total_completed == 2  # but globally accounted

    def test_outstanding_counter(self):
        q = make_queue()
        start = q.reserve(0, 5)
        q.publish(0, start, np.arange(5, dtype=np.int64), np.arange(5.0))
        assert q.outstanding() == 5
        q.advance_read(0, 5)
        q.complete(0, 5, epoch=0)
        assert q.outstanding() == 0

    def test_delta_change(self):
        q = make_queue(delta=10.0)
        q.set_delta(20.0)
        assert q.rel_bands_for(np.array([25.0])).tolist() == [1]
        with pytest.raises(ProtocolError):
            q.set_delta(0)

    def test_snapshot_keys(self):
        q = make_queue()
        snap = q.snapshot()
        for key in ("head", "base_dist", "delta", "rotations", "total_pushed"):
            assert key in snap


class TestWccThroughSimMemory:
    """WCC bumps must be visible to SimMemory's atomic accounting, like
    every other atomic in the codebase (not a raw counter increment)."""

    def test_single_segment_publish_counts_one_atomic(self):
        q = make_queue(segment_size=4)
        before = q.mem.stats.atomics
        start = q.reserve(0, 3)  # one atomic (resv bump)
        segs = q.publish(0, start, np.arange(3), np.zeros(3))
        assert segs == 1
        # reserve's resv bump + one WCC atomic for the single segment
        assert q.mem.stats.atomics - before == 2

    def test_multi_segment_publish_counts_one_atomic_per_segment(self):
        q = make_queue(segment_size=4)
        before = q.mem.stats.atomics
        start = q.reserve(0, 10)  # spans segments 0,1,2
        segs = q.publish(0, start, np.arange(10), np.zeros(10))
        assert segs == 3
        assert q.mem.stats.atomics - before == 1 + 3

    def test_publish_fences_before_wcc(self):
        q = make_queue(segment_size=4)
        fences = q.mem.stats.fences
        start = q.reserve(0, 2)
        q.publish(0, start, np.arange(2), np.zeros(2))
        assert q.mem.stats.fences == fences + 1

    def test_wcc_overflow_detected(self):
        q = make_queue(segment_size=4)
        start = q.reserve(0, 2)
        q.publish(0, start, np.arange(2), np.zeros(2))
        with pytest.raises(ProtocolError, match="exceeds N"):
            q.publish(0, start, np.arange(4), np.zeros(4))  # re-publish overlap
