"""Conformance suite for every registered WorkScheduler.

Each scheduler plugs its slot-mapping policy into the shared SRMW
machinery of :class:`repro.core.scheduler.WorkScheduler`; these tests
run the *same* protocol assertions against all of them, so a new
scheduler registered tomorrow is checked for free by parameterization.

Two oracles anchor the suite to the outside world:

- **cross-scheduler bit-equality** — ADDS is label-correcting, so final
  distances must not depend on the work schedule; every scheduler must
  produce bit-identical distance arrays (work counts may differ).
- **golden schedule** — the default bucket scheduler must still produce
  exactly the distances, simulated times and work counts pinned in the
  checked-in ``BENCH_pr4.json`` (the refactor moved its code, not its
  behavior).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.common import SolveRequest, get_solver_info
from repro.bench.matrix import MATRICES
from repro.bench.runner import _dist_sha256
from repro.calibration import default_cost, default_gpu
from repro.core.config import AddsConfig
from repro.core.scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    WorkScheduler,
    get_scheduler_info,
    scheduler_names,
)
from repro.errors import ProtocolError, SolverError
from repro.gpu.memory import GlobalPool, SimMemory
from repro.graphs import grid_road, rmat

ALL_SCHEDULERS = scheduler_names()


def make_scheduler(name: str, delta: float = 10.0, **cfgkw) -> WorkScheduler:
    cfg = AddsConfig(
        segment_size=4,
        slots_per_block=32,
        pool_blocks=256,
        **cfgkw,
    )
    mem = SimMemory()
    pool = GlobalPool(cfg.pool_blocks, words_per_block=cfg.slots_per_block)
    q = get_scheduler_info(name).create(mem, pool, cfg, initial_delta=delta)
    for s in range(q.n_buckets):
        q.storage[s].ensure_capacity(4 * cfg.slots_per_block)
    return q


def fill_and_drain(q: WorkScheduler, slot: int, k: int) -> None:
    start = q.reserve(slot, k)
    q.publish(slot, start, np.arange(k, dtype=np.int64), np.arange(float(k)))
    q.advance_read(slot, start + k)
    q.complete(slot, k, epoch=int(q.epoch[slot]))


class TestRegistry:
    def test_builtins_registered(self):
        assert "bucket" in ALL_SCHEDULERS
        assert "mlmq" in ALL_SCHEDULERS
        assert DEFAULT_SCHEDULER in ALL_SCHEDULERS

    def test_unknown_name_rejected(self):
        with pytest.raises(SolverError, match="unknown scheduler"):
            get_scheduler_info("fifo")

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_info_metadata(self, name):
        info = SCHEDULERS[name]
        assert info.name == name
        assert info.cls.name == name
        assert issubclass(info.cls, WorkScheduler)
        assert info.description


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
class TestProtocolConformance:
    """The SRMW reserve/publish/read/complete contract, per scheduler."""

    def test_policy_attributes(self, name):
        q = make_scheduler(name)
        assert q.n_buckets >= 1
        assert 0 <= q._band_limit
        assert 1 <= q.max_rotate_burst

    def test_seed_slot_is_in_head_group(self, name):
        q = make_scheduler(name)
        heads = q.head_slots()
        assert q.seed_slot() in heads
        for h in heads:
            assert q.rel_of(h) == 0

    def test_head_slots_lead_assignment_order(self, name):
        q = make_scheduler(name)
        heads = q.head_slots()
        order = q.assign_slots(1)
        assert tuple(order[: len(heads)]) == heads
        assert all(0 <= s < q.n_buckets for s in order)
        assert len(set(order)) == len(order)  # no slot scanned twice

    def test_reserve_publish_read_roundtrip(self, name):
        q = make_scheduler(name)
        slot = q.seed_slot()
        start = q.reserve(slot, 3)
        assert start == 0
        verts = np.array([5, 6, 7], dtype=np.int64)
        dists = np.array([1.5, 2.5, 3.5])
        q.publish(slot, start, verts, dists)
        upper, _ = q.readable_upper(slot)
        assert upper == 3
        rv, rd = q.read_items(slot, 0, 3)
        assert rv.tolist() == [5, 6, 7]
        assert rd.tolist() == [1.5, 2.5, 3.5]
        q.advance_read(slot, 3)
        q.complete(slot, 3, epoch=int(q.epoch[slot]))
        assert q.bucket_drained(slot)
        assert q.outstanding() == 0

    def test_reservation_gap_blocks_reading(self, name):
        """Publish order ≠ reserve order: the later reservation's publish
        must not open the earlier one's unwritten slots."""
        q = make_scheduler(name)
        slot = q.seed_slot()
        a = q.reserve(slot, 2)
        b = q.reserve(slot, 2)
        q.publish(slot, b, np.arange(2, dtype=np.int64), np.arange(2.0))
        upper, _ = q.readable_upper(slot)
        assert upper == 0
        q.publish(slot, a, np.arange(2, dtype=np.int64), np.arange(2.0))
        upper, _ = q.readable_upper(slot)
        assert upper == 4

    def test_advance_read_monotone(self, name):
        q = make_scheduler(name)
        slot = q.seed_slot()
        q.reserve(slot, 4)
        q.publish(slot, 0, np.arange(4, dtype=np.int64), np.arange(4.0))
        q.advance_read(slot, 4)
        with pytest.raises(ProtocolError):
            q.advance_read(slot, 2)

    def test_rotate_guard_unread_work(self, name):
        q = make_scheduler(name)
        slot = q.seed_slot()
        start = q.reserve(slot, 2)
        q.publish(slot, start, np.arange(2, dtype=np.int64), np.arange(2.0))
        with pytest.raises(ProtocolError, match="unread"):
            q.rotate()

    def test_rotate_guard_inflight_completions(self, name):
        q = make_scheduler(name)
        slot = q.seed_slot()
        start = q.reserve(slot, 2)
        q.publish(slot, start, np.arange(2, dtype=np.int64), np.arange(2.0))
        q.advance_read(slot, 2)
        with pytest.raises(ProtocolError, match="CWC"):
            q.rotate()

    def test_rotate_recycles_every_head_slot(self, name):
        q = make_scheduler(name, delta=10.0)
        heads = q.head_slots()
        for slot in heads:
            fill_and_drain(q, slot, 3)
        epochs_before = [int(q.epoch[s]) for s in heads]
        q.rotate()
        assert q.base_dist == 10.0
        assert q.rotations == 1
        for slot, e0 in zip(heads, epochs_before):
            assert q.resv[slot] == 0
            assert q.read[slot] == 0
            assert q.cwc[slot] == 0
            assert int(q.epoch[slot]) == e0 + 1
        # the recycled group is no longer the head group
        assert set(q.head_slots()).isdisjoint(heads) or len(heads) == q.n_buckets

    def test_push_slots_land_in_valid_slots(self, name):
        q = make_scheduler(name, delta=10.0)
        verts = np.arange(8, dtype=np.int64)
        dists = np.array([0.0, 5.0, 10.0, 15.0, 25.0, 35.0, 95.0, 1e6])
        slots = q.push_slots_list(verts, dists)
        assert len(slots) == 8
        assert all(0 <= s < q.n_buckets for s in slots)
        # same-band pushes of the same vertex are stable
        assert slots[0] == q.push_slots_list(verts[:1], dists[:1])[0]

    def test_high_clip_lands_in_tail_slot(self, name):
        q = make_scheduler(name, delta=10.0)
        [slot] = q.push_slots_list(
            np.array([1], dtype=np.int64), np.array([1e12])
        )
        assert q.high_clips == 1
        assert q._is_tail_slot(slot)

    def test_low_clip_lands_in_head_group(self, name):
        q = make_scheduler(name, delta=10.0)
        q.base_dist = 50.0
        [slot] = q.push_slots_list(
            np.array([0], dtype=np.int64), np.array([5.0])
        )
        assert q.low_clips == 1
        assert slot in q.head_slots()

    def test_clip_counting_matches_across_paths(self, name):
        """Scalar, list and vectorized band mapping share one clip rule."""
        qa = make_scheduler(name, delta=10.0)
        qb = make_scheduler(name, delta=10.0)
        dists = np.array([-5.0, 0.0, 15.0, 1e12])
        bands_vec = qa.rel_bands_for(dists).tolist()
        bands_list = qb.rel_bands_list(dists)
        assert bands_vec == bands_list
        assert (qa.low_clips, qa.high_clips) == (qb.low_clips, qb.high_clips)
        assert qa.low_clips == 1 and qa.high_clips == 1

    def test_snapshot_has_uniform_keys(self, name):
        q = make_scheduler(name)
        snap = q.snapshot()
        ref = make_scheduler(DEFAULT_SCHEDULER).snapshot()
        assert set(snap) == set(ref)
        for key in ("head", "base_dist", "delta", "rotations", "total_pushed"):
            assert key in snap


class TestCrossSchedulerEquality:
    """Label-correcting ⇒ final distances are schedule-invariant: every
    scheduler must produce bit-identical distance arrays."""

    @pytest.mark.parametrize(
        "graph",
        [
            grid_road(24, 24, max_weight=512, seed=7),
            rmat(9, edge_factor=8, max_weight=100, seed=8),
        ],
        ids=["road-24x24", "rmat-9"],
    )
    def test_distances_bit_identical(self, graph):
        spec = default_gpu()
        cost = default_cost(spec)
        info = get_solver_info("adds")
        results = {}
        for name in ALL_SCHEDULERS:
            results[name] = info.solve(
                SolveRequest(
                    graph=graph, source=0, spec=spec, cost=cost, scheduler=name
                )
            )
        ref = results[DEFAULT_SCHEDULER]
        assert ref.stats["scheduler"] == DEFAULT_SCHEDULER
        for name, res in results.items():
            assert res.stats["scheduler"] == name
            assert np.array_equal(res.dist, ref.dist), (
                f"scheduler {name} changed the distances"
            )


class TestGoldenSchedule:
    """The default scheduler must reproduce the pinned BENCH_pr4 numbers:
    the WorkScheduler extraction moved the bucket queue's code, and this
    pins that it moved nothing about its behavior."""

    BASELINE = Path(__file__).resolve().parents[2] / "BENCH_pr4.json"

    @pytest.fixture(scope="class")
    def baseline_cells(self):
        payload = json.loads(self.BASELINE.read_text())
        return {
            (c["graph"], c["solver"]): c
            for c in payload["cells"]
            if c["solver"] == "adds"
        }

    def test_bucket_matches_pinned_report(self, baseline_cells):
        spec = default_gpu()
        cost = default_cost(spec)
        info = get_solver_info("adds")
        _solver_list, graphs = MATRICES["medium"]
        checked = 0
        for graph_name, _category, gspec in graphs:
            cell = baseline_cells.get((graph_name, "adds"))
            if cell is None:
                continue
            graph = gspec.build()
            result = info.solve(
                SolveRequest(
                    graph=graph,
                    source=int(cell["source"]),
                    spec=spec,
                    cost=cost,
                    scheduler=DEFAULT_SCHEDULER,
                )
            )
            assert _dist_sha256(result.dist) == cell["dist_sha256"], graph_name
            assert float(result.time_us) == cell["time_us"], graph_name
            assert int(result.work_count) == cell["work_count"], graph_name
            checked += 1
        assert checked == len(baseline_cells) == 6
