"""Targeted scheduler tests: MTB/WTB behaviours observed through small,
fully controlled ADDS runs (chunking, assignment priority, termination,
allocator interplay, stats plumbing)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.adds as adds_mod
from repro.core import AddsConfig, solve_adds
from repro.errors import AllocationError
from repro.graphs import clique_chain, from_edge_list, grid_road


def run_with_device(graph, config=None, **kw):
    """solve_adds but also returns the Device for inspection."""
    captured = {}
    orig = adds_mod.Device

    class Capturing(orig):
        def __init__(self, *a, **k):
            super().__init__(*a, **k)
            captured["device"] = self

    adds_mod.Device = Capturing
    try:
        result = solve_adds(graph, 0, config=config, **kw)
    finally:
        adds_mod.Device = orig
    return result, captured["device"]


class TestChunkSizing:
    def test_edge_budget_chunks_beat_item_chunks_on_dense_graphs(self):
        """High-degree graphs must get small item chunks so bursts spread
        over many WTBs; forcing whole-burst assignments (huge edge budget)
        hands the device to a single 256-thread block and slows down."""
        dense = clique_chain(8, 40, seed=1)  # degree ~39
        budgeted = solve_adds(dense, 0)
        monolithic = solve_adds(
            dense, 0,
            config=AddsConfig(target_chunk_edges=10**6, max_chunk=256),
        )
        assert monolithic.time_us > budgeted.time_us

    def test_explicit_chunk_target(self):
        g = grid_road(20, 15, seed=1)
        r = solve_adds(g, 0, config=AddsConfig(target_chunk_edges=8, max_chunk=4))
        assert r.work_count > 0  # tiny chunks still terminate correctly


class TestTermination:
    def test_all_blocks_finish(self):
        g = grid_road(12, 10, seed=2)
        _, dev = run_with_device(g)
        assert all(b["finished"] for b in dev.block_report())

    def test_single_vertex(self):
        g = from_edge_list(1, [])
        r = solve_adds(g, 0)
        assert r.dist[0] == 0.0 and r.work_count == 1

    def test_no_outgoing_edges_from_source(self):
        g = from_edge_list(3, [(1, 2, 5)])
        r = solve_adds(g, 0)
        assert r.dist[0] == 0.0
        assert np.isinf(r.dist[1]) and np.isinf(r.dist[2])

    def test_termination_sweeps_config(self):
        g = grid_road(8, 8, seed=3)
        fast = solve_adds(g, 0, config=AddsConfig(termination_sweeps=1))
        slow = solve_adds(g, 0, config=AddsConfig(termination_sweeps=5))
        np.testing.assert_array_equal(fast.dist, slow.dist)
        assert slow.time_us >= fast.time_us  # extra idle sweeps cost time


class TestWorkerCounts:
    @pytest.mark.parametrize("n_wtbs", [1, 2, 7, 15])
    def test_any_worker_count_correct(self, n_wtbs, oracle):
        g = grid_road(14, 11, seed=4)
        r = solve_adds(g, 0, config=AddsConfig(n_wtbs=n_wtbs))
        np.testing.assert_allclose(r.dist, oracle(g, 0))

    def test_single_worker_is_slowest(self):
        g = grid_road(25, 20, seed=5)
        one = solve_adds(g, 0, config=AddsConfig(n_wtbs=1))
        many = solve_adds(g, 0, config=AddsConfig(n_wtbs=15))
        assert one.time_us > many.time_us


class TestAllocatorInterplay:
    def test_small_blocks_force_allocator_traffic(self, oracle):
        """Tiny blocks make buckets span many blocks; the MTB must grow
        and retire them continuously without any protocol violation."""
        g = grid_road(20, 16, seed=6)
        cfg = AddsConfig(slots_per_block=64, segment_size=16, pool_blocks=256)
        r = solve_adds(g, 0, config=cfg)
        np.testing.assert_allclose(r.dist, oracle(g, 0))
        assert r.stats["pool_high_water"] > 4  # allocator genuinely cycled

    def test_pool_exhaustion_is_loud(self):
        g = clique_chain(6, 25, seed=7)
        cfg = AddsConfig(slots_per_block=32, segment_size=16, pool_blocks=33)
        with pytest.raises(AllocationError):
            solve_adds(g, 0, config=cfg)

    def test_blocks_recycled_through_pool(self):
        g = grid_road(24, 18, seed=8)
        cfg = AddsConfig(slots_per_block=128, segment_size=32, pool_blocks=512)
        r = solve_adds(g, 0, config=cfg)
        # high water far below total pushes / slots_per_block implies reuse
        blocks_if_never_freed = r.stats["total_pushed"] / cfg.slots_per_block
        assert r.stats["pool_high_water"] < blocks_if_never_freed + 3 * cfg.n_buckets


class TestPriorityOrder:
    def test_head_bucket_assigned_first(self):
        """With one worker and one active bucket, items must be consumed
        in band order — verify via monotone non-decreasing processed
        distances on a path graph where order is fully determined."""
        edges = [(i, i + 1, 10) for i in range(30)]
        g = from_edge_list(31, edges)
        cfg = AddsConfig(
            n_wtbs=1, min_active_buckets=1, max_active_buckets=1,
            dynamic_delta=False,
        )
        r = solve_adds(g, 0, config=cfg, delta=10.0)
        # exactly one expansion per vertex: band order == priority order
        assert r.work_count == 31

    def test_rotations_track_band_progress(self):
        edges = [(i, i + 1, 10) for i in range(64)]
        g = from_edge_list(65, edges)
        cfg = AddsConfig(dynamic_delta=False, n_wtbs=2)
        r = solve_adds(g, 0, config=cfg, delta=10.0)
        # distance range 640 over delta 10 = 64 bands; 32 fit in the
        # window, the rest need rotations
        assert r.stats["rotations"] >= 64 - 32


class TestStatsPlumbing:
    def test_delta_trace_times_monotone(self):
        g = grid_road(30, 20, seed=9)
        r = solve_adds(g, 0, config=AddsConfig(warmup_passes=5, settle_passes=5))
        times = [t for t, _ in r.stats["delta_trace"]]
        assert times == sorted(times)

    def test_head_switches_equal_rotations(self):
        g = grid_road(20, 20, seed=10)
        r = solve_adds(g, 0)
        assert r.stats["head_switches"] == r.stats["rotations"]

    def test_outstanding_edges_settles_to_zero(self):
        g = grid_road(15, 15, seed=11)
        captured = {}
        orig = adds_mod.AddsState

        class Capturing(orig):
            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                captured["state"] = self

        adds_mod.AddsState = Capturing
        try:
            solve_adds(g, 0)
        finally:
            adds_mod.AddsState = orig
        assert captured["state"].outstanding_edges == pytest.approx(0.0)
