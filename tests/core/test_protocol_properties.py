"""Property-based tests (hypothesis) for the core protocol invariants.

The paper's §5.2 safety argument is exactly a property: *whatever order
the writers' reservations and publications interleave in, the manager
never reads a slot that has not been fully written*.  Here hypothesis
drives randomized interleavings directly against the queue, plus
value-level properties of the codec, the batch atomics and the solver.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket_queue import BucketQueue, decode_dist, encode_dist
from repro.core.config import AddsConfig
from repro.gpu.memory import GlobalPool, SimMemory


def fresh_queue(segment_size=4):
    cfg = AddsConfig(
        n_buckets=4,
        segment_size=segment_size,
        slots_per_block=32,
        pool_blocks=64,
        max_active_buckets=4,
    )
    pool = GlobalPool(64, words_per_block=32)
    q = BucketQueue(SimMemory(), pool, cfg, initial_delta=10.0)
    q.storage[0].ensure_capacity(512)
    return q


class TestReadableRangeSafety:
    """§5.2: the reader's bound never covers an unpublished slot."""

    @given(
        sizes=st.lists(st.integers(1, 7), min_size=1, max_size=20),
        order=st.randoms(use_true_random=False),
        segment_size=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_reads_unwritten(self, sizes, order, segment_size):
        q = fresh_queue(segment_size=segment_size)
        # every writer reserves up front (worst case for the protocol)
        reservations = [(q.reserve(0, k), k) for k in sizes]
        published = np.zeros(sum(sizes), dtype=bool)
        pending = list(reservations)
        order.shuffle(pending)
        for start, k in pending:
            upper, _ = q.readable_upper(0)
            assert published[:upper].all(), (
                f"readable_upper exposed unwritten slot below {upper}"
            )
            q.publish(
                0, start, np.arange(k, dtype=np.int64), np.arange(float(k))
            )
            published[start : start + k] = True
        upper, _ = q.readable_upper(0)
        assert upper == sum(sizes)  # everything published -> all readable

    @given(
        sizes=st.lists(st.integers(1, 5), min_size=2, max_size=12),
        publish_count=st.integers(0, 11),
    )
    @settings(max_examples=200, deadline=None)
    def test_upper_monotone_under_publication(self, sizes, publish_count):
        q = fresh_queue()
        reservations = [(q.reserve(0, k), k) for k in sizes]
        publish_count = min(publish_count, len(reservations))
        prev = 0
        for start, k in reservations[:publish_count]:
            q.publish(0, start, np.arange(k, dtype=np.int64), np.arange(float(k)))
            upper, _ = q.readable_upper(0)
            assert upper >= prev
            prev = upper

    @given(sizes=st.lists(st.integers(1, 9), min_size=1, max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_in_order_publication_fully_readable(self, sizes):
        """When writers happen to publish in reservation order, the whole
        prefix is always readable (no false negatives... beyond segment
        rounding, which the resv_ptr comparison removes)."""
        q = fresh_queue()
        for k in sizes:
            start = q.reserve(0, k)
            q.publish(0, start, np.arange(k, dtype=np.int64), np.arange(float(k)))
            upper, _ = q.readable_upper(0)
            assert upper == start + k


class TestCodecProperties:
    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e15, allow_nan=False),
            max_size=50,
        )
    )
    def test_roundtrip(self, values):
        d = np.asarray(values, dtype=np.float64)
        assert np.array_equal(decode_dist(encode_dist(d)), d)

    @given(st.lists(st.integers(0, 2**40), min_size=1, max_size=50))
    def test_integer_distances_exact(self, values):
        d = np.asarray(values, dtype=np.float64)
        assert decode_dist(encode_dist(d)).tolist() == d.tolist()


class TestBandMappingProperties:
    @given(
        dists=st.lists(
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        delta=st.floats(min_value=0.01, max_value=1e6),
        base=st.floats(min_value=0, max_value=1e6),
    )
    @settings(max_examples=200)
    def test_bands_in_range_and_monotone(self, dists, delta, base):
        q = fresh_queue()
        q.set_delta(delta)
        q.base_dist = base
        arr = np.sort(np.asarray(dists))
        rel = q.rel_bands_for(arr)
        assert (rel >= 0).all() and (rel <= q.n_buckets - 1).all()
        assert (np.diff(rel) >= 0).all()  # clipping preserves order


class TestAtomicMinBatchProperties:
    @given(
        n=st.integers(1, 20),
        updates=st.lists(
            st.tuples(st.integers(0, 19), st.floats(0, 100, allow_nan=False)),
            max_size=100,
        ),
    )
    @settings(max_examples=200)
    def test_matches_serial_min(self, n, updates):
        mem = SimMemory()
        dist = np.full(n, 50.0)
        idx = np.array([i % n for i, _ in updates], dtype=np.int64)
        vals = np.array([v for _, v in updates], dtype=np.float64)
        expect = dist.copy()
        for i, v in zip(idx, vals):
            expect[i] = min(expect[i], v)
        winners = mem.atomic_min_batch(dist, idx, vals)
        assert np.array_equal(dist, expect)
        # at most one winner per improved index, none per unimproved one
        if idx.size:
            for i in np.unique(idx):
                won = winners[idx == i].sum()
                assert won == (1 if expect[i] < 50.0 else 0)


class TestSolverProperties:
    @given(
        n=st.integers(2, 24),
        edges=st.lists(
            st.tuples(st.integers(0, 23), st.integers(0, 23), st.integers(1, 50)),
            min_size=1,
            max_size=120,
        ),
        delta=st.floats(min_value=0.5, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_adds_matches_dijkstra_on_random_graphs(self, n, edges, delta):
        from repro.baselines import solve_dijkstra
        from repro.core import solve_adds
        from repro.graphs import from_edge_list

        es = [(u % n, v % n, w) for u, v, w in edges if u % n != v % n]
        if not es:
            es = [(0, 1 % n, 1)]
        g = from_edge_list(n, es, dedupe=True)
        cfg = AddsConfig(n_wtbs=4, warmup_passes=5, settle_passes=10)
        r = solve_adds(g, 0, config=cfg, delta=delta)
        ref = solve_dijkstra(g, 0)
        np.testing.assert_allclose(
            np.nan_to_num(r.dist, posinf=-1.0),
            np.nan_to_num(ref.dist, posinf=-1.0),
        )
        # conservation: all spawned work consumed
        assert r.stats["total_pushed"] == r.stats["total_completed"]

    @given(
        n=st.integers(2, 16),
        edges=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15), st.integers(1, 9)),
            min_size=1,
            max_size=60,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_near_far_matches_dijkstra_on_random_graphs(self, n, edges):
        from repro.baselines import solve_dijkstra, solve_nf
        from repro.graphs import from_edge_list

        es = [(u % n, v % n, w) for u, v, w in edges if u % n != v % n]
        if not es:
            es = [(0, 1 % n, 1)]
        g = from_edge_list(n, es, dedupe=True)
        r = solve_nf(g, 0)
        ref = solve_dijkstra(g, 0)
        np.testing.assert_allclose(
            np.nan_to_num(r.dist, posinf=-1.0),
            np.nan_to_num(ref.dist, posinf=-1.0),
        )
