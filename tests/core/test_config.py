"""Validation and ablation helpers of AddsConfig."""

from __future__ import annotations

import pytest

from repro.core import AddsConfig
from repro.errors import SolverError


class TestDefaults:
    def test_paper_defaults(self):
        cfg = AddsConfig()
        assert cfg.n_buckets == 32  # §5.4
        assert cfg.dynamic_delta is True
        assert cfg.clip_fraction == 0.65  # §5.5's empirical bound
        assert cfg.termination_sweeps == 2  # §5.4

    def test_frozen(self):
        with pytest.raises(Exception):
            AddsConfig().n_buckets = 5

    def test_replace(self):
        cfg = AddsConfig().replace(n_buckets=8)
        assert cfg.n_buckets == 8
        assert AddsConfig().n_buckets == 32


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"n_buckets": 1},
            {"segment_size": 0},
            {"slots_per_block": 16, "segment_size": 32},
            {"slots_per_block": 100, "segment_size": 32},
            {"pool_blocks": 8},
            {"max_chunk": 0},
            {"util_low": 0.0},
            {"util_low": 2.0, "util_high": 1.0},
            {"clip_fraction": 0.0},
            {"clip_fraction": 1.5},
            {"delta_growth": 1.0},
            {"min_active_buckets": 0},
            {"min_active_buckets": 5, "max_active_buckets": 3},
            {"max_active_buckets": 64},
            {"termination_sweeps": 0},
            {"settle_passes": 0},
            {"ewma_alpha": 0.0},
            {"warmup_passes": -1},
        ],
    )
    def test_invalid_configs_rejected(self, kw):
        with pytest.raises(SolverError):
            AddsConfig(**kw)


class TestAblations:
    def test_static_delta_ablation(self):
        cfg = AddsConfig().static_delta_ablation()
        assert cfg.dynamic_delta is False
        assert cfg.n_buckets == 32
        # §5.5's fine-grained mechanism is part of the dynamic scheme:
        # the ablation pins the assignment window to the head bucket
        assert cfg.min_active_buckets == cfg.max_active_buckets == 1

    def test_two_buckets_ablation(self):
        cfg = AddsConfig().two_buckets_ablation()
        assert cfg.dynamic_delta is False
        assert cfg.n_buckets == 2
        assert cfg.max_active_buckets == 1

    def test_ablations_do_not_mutate_base(self):
        base = AddsConfig()
        base.two_buckets_ablation()
        assert base.n_buckets == 32
