"""Batch execution mode: bit-identity against event stepping, plus the
edge cases the coordinator must not trip over (warm starts with nothing
to do, single-vertex graphs) across both registered schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import solve_adds
from repro.dynamic import EdgeDeltas
from repro.errors import SolverError
from repro.graphs import from_edge_list, grid_road
from repro.graphs.generators import fem_mesh, rmat

SCHEDULERS = ("bucket", "mlmq")
MODES = ("events", "batch")


def _identical(g, **kw):
    """Solve in both modes; assert every simulated output is bit-equal
    and return the batch result for extra assertions."""
    ev = solve_adds(g, 0, exec_mode="events", **kw)
    ba = solve_adds(g, 0, exec_mode="batch", **kw)
    np.testing.assert_array_equal(ev.dist, ba.dist)
    assert ev.work_count == ba.work_count
    assert ev.time_us == ba.time_us
    skip = {"exec_mode", "fused_groups", "fused_blocks"}
    diffs = {
        k: (ev.stats.get(k), ba.stats.get(k))
        for k in ev.stats
        if k not in skip and ev.stats.get(k) != ba.stats.get(k)
    }
    assert not diffs, f"stats diverged between exec modes: {diffs}"
    return ba


class TestBitIdentity:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_grid_canonical(self, scheduler):
        g = grid_road(24, 24, seed=5)
        ba = _identical(g, scheduler=scheduler)
        assert ba.stats["exec_mode"] == "batch"

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_grid_perturbed(self, scheduler, seed):
        g = grid_road(24, 24, seed=5)
        _identical(g, scheduler=scheduler, perturb_seed=seed)

    def test_rmat(self):
        _identical(rmat(9, seed=7))

    def test_mesh_fuses(self):
        ba = _identical(fem_mesh(1200, seed=3))
        # the point of the mode: multi-worker commits actually fuse
        assert ba.stats["fused_groups"] > 0
        assert ba.stats["fused_blocks"] >= 2 * ba.stats["fused_groups"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(SolverError):
            solve_adds(grid_road(4, 4), 0, exec_mode="turbo")


class TestWarmStartEdgeCases:
    """A warm start whose dirty frontier is empty must re-solve to the
    same fixpoint without the coordinator ever seeing a dispatch."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("mode", MODES)
    def test_empty_dirty_frontier(self, scheduler, mode):
        g = grid_road(10, 10, seed=9)
        warm = solve_adds(g, 0, scheduler=scheduler).dist
        res = solve_adds(
            g, 0, scheduler=scheduler, exec_mode=mode,
            warm_from=warm, updates=EdgeDeltas.empty(),
        )
        np.testing.assert_array_equal(res.dist, warm)
        assert res.stats["exec_mode"] == mode

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_empty_frontier_modes_identical(self, scheduler):
        g = grid_road(10, 10, seed=9)
        warm = solve_adds(g, 0, scheduler=scheduler).dist
        _identical(
            g, scheduler=scheduler,
            warm_from=warm, updates=EdgeDeltas.empty(),
        )


class TestSingleVertex:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("mode", MODES)
    def test_single_vertex(self, scheduler, mode):
        g = from_edge_list(1, [])
        r = solve_adds(g, 0, scheduler=scheduler, exec_mode=mode)
        assert r.dist[0] == 0.0
        assert r.work_count == 1

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("mode", MODES)
    def test_single_vertex_self_loop(self, scheduler, mode):
        g = from_edge_list(1, [(0, 0, 3)])
        r = solve_adds(g, 0, scheduler=scheduler, exec_mode=mode)
        assert r.dist[0] == 0.0

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_single_vertex_modes_identical(self, scheduler):
        _identical(from_edge_list(1, []), scheduler=scheduler)
