"""End-to-end tests of the ADDS solver: correctness covered in
tests/baselines/test_solver_correctness.py; here we test ADDS-specific
behaviour — protocol stats, ablations, the cramming failure mode,
configuration handling, resource accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import davidson_delta, solve_nf
from repro.core import AddsConfig, solve_adds
from repro.errors import SolverError
from repro.graphs import from_edge_list


class TestConfigHandling:
    def test_default_uses_davidson_initial_delta(self, small_road):
        r = solve_adds(small_road, 0)
        assert r.stats["initial_delta"] == pytest.approx(davidson_delta(small_road))

    def test_delta_argument_overrides(self, small_road):
        r = solve_adds(small_road, 0, delta=123.0)
        assert r.stats["initial_delta"] == 123.0

    def test_config_initial_delta(self, small_road):
        r = solve_adds(small_road, 0, config=AddsConfig(initial_delta=77.0))
        assert r.stats["initial_delta"] == 77.0

    def test_invalid_delta(self, small_road):
        with pytest.raises(SolverError):
            solve_adds(small_road, 0, delta=-5)

    def test_empty_graph_rejected(self):
        with pytest.raises(SolverError):
            solve_adds(from_edge_list(0, []), 0)

    def test_explicit_wtb_count(self, small_road):
        r = solve_adds(small_road, 0, config=AddsConfig(n_wtbs=3))
        assert r.stats["n_wtbs"] == 3

    def test_too_many_wtbs_rejected(self, small_road):
        with pytest.raises(SolverError, match="resident"):
            solve_adds(small_road, 0, config=AddsConfig(n_wtbs=10_000))


class TestProtocolStats:
    def test_pushed_equals_completed_at_exit(self, small_road):
        """Termination requires all in-flight work accounted (§5.4)."""
        r = solve_adds(small_road, 0)
        assert r.stats["total_pushed"] == r.stats["total_completed"]

    def test_work_not_more_than_pushed(self, small_road):
        r = solve_adds(small_road, 0)
        assert r.work_count <= r.stats["total_pushed"]

    def test_fences_used(self, small_road):
        r = solve_adds(small_road, 0)
        assert r.stats["fences"] > 0

    def test_translation_cache_mostly_hits(self, small_mesh):
        r = solve_adds(small_mesh, 0)
        hits, misses = r.stats["translation_hits"], r.stats["translation_misses"]
        assert hits / max(1, hits + misses) > 0.9

    def test_pool_high_water_reported(self, small_road):
        r = solve_adds(small_road, 0)
        assert r.stats["pool_high_water"] >= 1

    def test_timeline_nonempty_and_ends_idle(self, small_road):
        r = solve_adds(small_road, 0)
        ts, vs = r.timeline.series()
        assert len(ts) > 2
        assert vs[-1] == 0.0

    def test_deterministic(self, small_rmat):
        a = solve_adds(small_rmat, 0)
        b = solve_adds(small_rmat, 0)
        assert a.time_us == b.time_us
        assert a.work_count == b.work_count
        assert np.array_equal(a.dist, b.dist)


class TestDynamicDelta:
    def test_static_mode_never_adjusts(self, small_road):
        r = solve_adds(small_road, 0, config=AddsConfig().static_delta_ablation())
        assert r.stats["delta_adjustments"] == 0
        assert r.stats["final_delta"] == r.stats["initial_delta"]

    def test_dynamic_mode_records_trace(self, small_mesh):
        r = solve_adds(small_mesh, 0, config=AddsConfig(warmup_passes=10, settle_passes=10))
        assert r.stats["delta_adjustments"] == len(r.stats["delta_trace"])

    def test_tiny_initial_delta_recovers_via_clip_guard(self, small_mesh, oracle):
        """Start in the Figure 6(b) clipping regime; the 65 % guard must
        pull Δ back up and the answer must stay exact."""
        r = solve_adds(
            small_mesh, 0, delta=0.5,
            config=AddsConfig(warmup_passes=10, settle_passes=10),
        )
        assert r.stats["final_delta"] > 0.5
        np.testing.assert_allclose(
            np.nan_to_num(r.dist, posinf=-1),
            np.nan_to_num(oracle(small_mesh, 0), posinf=-1),
        )

    def test_huge_initial_delta_still_exact(self, small_road, oracle):
        r = solve_adds(small_road, 0, delta=1e12)
        np.testing.assert_allclose(
            np.nan_to_num(r.dist, posinf=-1),
            np.nan_to_num(oracle(small_road, 0), posinf=-1),
        )


class TestAblations:
    def test_two_buckets_does_more_work(self, small_mesh):
        """Fewer buckets -> coarser priority -> more redundant work, on an
        ordering-sensitive graph (the §6.3 mechanism)."""
        full = solve_adds(small_mesh, 0, config=AddsConfig().static_delta_ablation())
        two = solve_adds(small_mesh, 0, config=AddsConfig().two_buckets_ablation())
        assert two.work_count >= full.work_count

    def test_ablations_remain_correct(self, small_road, oracle):
        for cfg in (
            AddsConfig().static_delta_ablation(),
            AddsConfig().two_buckets_ablation(),
        ):
            r = solve_adds(small_road, 0, config=cfg)
            np.testing.assert_allclose(
                np.nan_to_num(r.dist, posinf=-1),
                np.nan_to_num(oracle(small_road, 0), posinf=-1),
            )


class TestUnsafeRotation:
    def test_cramming_costs_work_but_stays_correct(self, small_road, oracle):
        """§5.4: rotating before CWC matches resv_ptr crams spawned work
        into lower-priority buckets.  The result stays correct (clipping
        only degrades ordering) but work must not improve."""
        safe = solve_adds(small_road, 0, config=AddsConfig(n_wtbs=4))
        unsafe = solve_adds(
            small_road, 0, config=AddsConfig(n_wtbs=4, unsafe_rotation=True)
        )
        np.testing.assert_allclose(
            np.nan_to_num(unsafe.dist, posinf=-1),
            np.nan_to_num(oracle(small_road, 0), posinf=-1),
        )
        assert unsafe.stats["low_clips"] >= safe.stats["low_clips"]


class TestDeviceChoice:
    def test_custom_scaled_device(self, small_road):
        from repro.calibration import sim_cost, sim_gpu
        from repro.gpu.specs import RTX_3090

        spec = sim_gpu(RTX_3090)
        r = solve_adds(small_road, 0, spec=spec, cost=sim_cost(spec))
        assert r.time_us > 0

    def test_3090_not_slower_when_saturated(self, small_rmat):
        from repro.calibration import sim_cost, sim_gpu
        from repro.gpu.specs import RTX_2080TI, RTX_3090

        t2080 = solve_adds(
            small_rmat, 0, spec=sim_gpu(RTX_2080TI), cost=sim_cost(sim_gpu(RTX_2080TI))
        ).time_us
        t3090 = solve_adds(
            small_rmat, 0, spec=sim_gpu(RTX_3090), cost=sim_cost(sim_gpu(RTX_3090))
        ).time_us
        assert t3090 <= t2080 * 1.05
