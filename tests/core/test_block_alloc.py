"""Tests for the §5.3 FIFO block allocator and translation caches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.block_alloc import BucketStorage, TranslationCache
from repro.errors import AllocationError, ProtocolError
from repro.gpu.memory import GlobalPool


@pytest.fixture
def pool():
    return GlobalPool(16, words_per_block=64)


@pytest.fixture
def storage(pool):
    return BucketStorage(pool, slots_per_block=64, name="t")


class TestCapacity:
    def test_starts_empty(self, storage):
        assert storage.capacity == 0
        assert storage.live_blocks == 0

    def test_ensure_capacity_allocates_blocks(self, storage):
        added = storage.ensure_capacity(100)
        assert added == 2
        assert storage.capacity == 128
        assert storage.live_blocks == 2

    def test_ensure_capacity_idempotent(self, storage):
        storage.ensure_capacity(100)
        assert storage.ensure_capacity(100) == 0

    def test_pool_exhaustion_propagates(self, pool):
        s = BucketStorage(pool, slots_per_block=64)
        with pytest.raises(AllocationError, match="exhausted"):
            s.ensure_capacity(64 * 17)

    def test_block_size_must_fit_pool(self, pool):
        with pytest.raises(AllocationError):
            BucketStorage(pool, slots_per_block=128)


class TestIndexSplit:
    """The paper's 16/16-bit split, generalized to (block, offset)."""

    def test_write_read_across_block_boundary(self, storage):
        storage.ensure_capacity(128)
        verts = np.arange(60, 70, dtype=np.int64)
        pays = np.arange(160, 170, dtype=np.int64)
        storage.write_range(60, verts, pays)  # spans blocks 0 and 1
        v, p = storage.read_range(60, 70)
        assert np.array_equal(v, verts)
        assert np.array_equal(p, pays)

    def test_single_slot(self, storage):
        storage.ensure_capacity(1)
        storage.write_slot(5, 42, 99)
        v, p = storage.read_range(5, 6)
        assert v[0] == 42 and p[0] == 99

    def test_write_beyond_capacity_rejected(self, storage):
        storage.ensure_capacity(64)
        with pytest.raises(ProtocolError, match="outside allocated"):
            storage.write_range(
                60, np.arange(10, dtype=np.int64), np.arange(10, dtype=np.int64)
            )

    def test_read_unallocated_rejected(self, storage):
        with pytest.raises(ProtocolError, match="unallocated"):
            storage.read_range(0, 4)

    def test_empty_ranges(self, storage):
        v, p = storage.read_range(10, 10)
        assert v.size == p.size == 0
        storage.write_range(0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


class TestFifoRetire:
    def test_retire_whole_blocks_only(self, storage, pool):
        storage.ensure_capacity(192)  # 3 blocks
        assert storage.retire_below(63) == 0  # partial block: keep
        assert storage.retire_below(64) == 1
        assert storage.retire_below(190) == 1  # only block 1 fully below
        assert pool.free_blocks == 16 - 1

    def test_data_above_retire_point_survives(self, storage):
        storage.ensure_capacity(192)
        storage.write_slot(130, 7, 8)
        storage.retire_below(128)
        v, p = storage.read_range(130, 131)
        assert v[0] == 7

    def test_read_below_retire_point_fails(self, storage):
        storage.ensure_capacity(128)
        storage.retire_below(64)
        with pytest.raises(ProtocolError):
            storage.read_range(0, 4)

    def test_reset_frees_everything(self, storage, pool):
        storage.ensure_capacity(256)
        storage.reset()
        assert pool.free_blocks == 16
        assert storage.capacity == 0
        # reusable after reset
        storage.ensure_capacity(64)
        storage.write_slot(0, 1, 2)

    def test_grow_shrink_grow_reuses_pool(self, pool):
        """The FIFO usage pattern: blocks cycle through the arena."""
        s = BucketStorage(pool, slots_per_block=64)
        for epoch in range(10):
            s.ensure_capacity((epoch + 1) * 640)  # keeps growing virtually
            s.retire_below(epoch * 640 + 600)
        assert s.live_blocks <= 2
        assert pool.high_water < pool.num_blocks


class TestTranslationCache:
    def test_miss_then_hit(self):
        c = TranslationCache(n_sets=4)
        assert c.access(3) is False
        assert c.access(3) is True
        assert c.hits == 1 and c.misses == 1

    def test_direct_mapped_conflict(self):
        c = TranslationCache(n_sets=4)
        c.access(1)
        c.access(5)  # same set (5 % 4 == 1): evicts
        assert c.access(1) is False

    def test_invalidate(self):
        c = TranslationCache(n_sets=2)
        c.access(0)
        c.invalidate()
        assert c.access(0) is False

    def test_bad_sets(self):
        with pytest.raises(AllocationError):
            TranslationCache(n_sets=0)

    def test_sequential_scan_mostly_hits(self):
        """FIFO access pattern: each block is touched many times in a row,
        so the direct-mapped cache almost always hits — the paper's reason
        the extra indirection is cheap."""
        c = TranslationCache(n_sets=8)
        for i in range(1000):
            c.access(i // 100)
        assert c.hits / (c.hits + c.misses) > 0.98
