"""Tests for the §5.5 Δ controller logic (pure, no device)."""

from __future__ import annotations

import pytest

from repro.core.config import AddsConfig
from repro.core.delta_controller import DeltaController
from repro.gpu.specs import RTX_2080TI


def make_ctrl(delta=100.0, **cfgkw):
    cfg = AddsConfig(warmup_passes=0, **cfgkw)
    return DeltaController(
        config=cfg, spec=RTX_2080TI.scaled(1 / 16), avg_degree=8.0, delta=delta,
        delta_floor=0.01,
    )


def settle(ctrl, u_edges, passes=None):
    """Feed a steady utilization until the controller may act."""
    n = passes if passes is not None else ctrl.config.settle_passes
    for _ in range(n):
        ctrl.observe(u_edges)


class TestTargets:
    def test_low_degree_needs_fewer_edges(self):
        lo = make_ctrl()
        lo.avg_degree = 2.0
        hi = make_ctrl()
        hi.avg_degree = 64.0
        assert lo.target_edges() < hi.target_edges()

    def test_utilization_normalized(self):
        c = make_ctrl()
        assert c.utilization(c.target_edges()) == pytest.approx(1.0)


class TestActiveBuckets:
    def test_starved_widens_window(self):
        c = make_ctrl()
        settle(c, 0.0, passes=30)
        before = c.active_buckets
        c.adjust_active_buckets()
        assert c.active_buckets == before + 1

    def test_saturated_narrows_window(self):
        c = make_ctrl()
        c.active_buckets = 4
        settle(c, 100 * c.target_edges(), passes=30)
        c.adjust_active_buckets()
        assert c.active_buckets == 3

    def test_bounds_respected(self):
        c = make_ctrl()
        for _ in range(50):
            settle(c, 0.0, passes=5)
            c.adjust_active_buckets()
        assert c.active_buckets == c.config.max_active_buckets
        for _ in range(50):
            settle(c, 100 * c.target_edges(), passes=5)
            c.adjust_active_buckets()
        assert c.active_buckets == c.config.min_active_buckets


class TestSettling:
    def test_warmup_blocks_everything(self):
        c = make_ctrl()
        c.config = AddsConfig(warmup_passes=1000)
        settle(c, 0.0, passes=500)
        assert not c.settled(rotations=100)

    def test_rotation_criterion(self):
        c = make_ctrl()
        settle(c, 0.0, passes=1)
        assert not c.settled(rotations=1)
        assert c.settled(rotations=2)  # settle_switches default 2

    def test_pass_fallback(self):
        c = make_ctrl()
        settle(c, 0.0, passes=c.config.settle_passes)
        assert c.settled(rotations=0)

    def test_not_settled_right_after_change(self):
        c = make_ctrl()
        settle(c, 0.0)
        c.maybe_adjust_delta(0.0, rotations=10)
        assert not c.settled(rotations=10)
        assert not c.settled(rotations=11)
        assert c.settled(rotations=12)


class TestDeltaMoves:
    def test_starved_grows(self):
        c = make_ctrl(delta=100.0)
        settle(c, 0.0)
        assert c.maybe_adjust_delta(0.0, rotations=5) == 200.0

    def test_saturated_shrinks(self):
        c = make_ctrl(delta=100.0)
        settle(c, 100 * c.target_edges())
        assert c.maybe_adjust_delta(0.0, rotations=5) == 50.0

    def test_in_band_no_change(self):
        c = make_ctrl(delta=100.0)
        u_mid = 0.4 * c.target_edges()  # between util_low and util_high
        settle(c, u_mid)
        assert c.maybe_adjust_delta(0.0, rotations=5) == 100.0

    def test_clip_guard_overrides_saturation(self):
        """§5.5: below the clipping bound, Δ must grow even if work looks
        plentiful."""
        c = make_ctrl(delta=100.0)
        settle(c, 100 * c.target_edges())
        assert c.maybe_adjust_delta(tail_fraction=0.7, rotations=5) == 200.0

    def test_clip_guard_threshold_is_65_percent(self):
        c = make_ctrl(delta=100.0)
        u_mid = 0.4 * c.target_edges()
        settle(c, u_mid)
        assert c.maybe_adjust_delta(tail_fraction=0.64, rotations=5) == 100.0
        settle(c, u_mid)
        assert c.maybe_adjust_delta(tail_fraction=0.65, rotations=5) == 200.0

    def test_dynamic_disabled_never_moves(self):
        c = make_ctrl(delta=100.0, dynamic_delta=False)
        settle(c, 0.0)
        assert c.maybe_adjust_delta(0.9, rotations=50) == 100.0

    def test_delta_floor_respected(self):
        c = make_ctrl(delta=0.03)
        settle(c, 100 * c.target_edges())
        c.maybe_adjust_delta(0.0, rotations=5)
        assert c.delta >= 0.01

    def test_history_records_changes(self):
        c = make_ctrl(delta=100.0)
        settle(c, 0.0)
        c.maybe_adjust_delta(0.0, rotations=5)
        assert c.history[-1][1] == 200.0
        assert c.adjustments == 1


class TestGrowthPlateau:
    def test_unhelpful_growth_reverted_and_frozen(self):
        """Growing Δ without gaining utilization must stop — otherwise a
        starved high-diameter graph degenerates to Bellman-Ford (§6.4)."""
        c = make_ctrl(delta=100.0)
        u0 = 0.1 * c.target_edges()  # starved, but work is flowing
        settle(c, u0)
        c.maybe_adjust_delta(0.0, rotations=5)  # grow to 200
        assert c.delta == 200.0
        settle(c, u0)  # ...same utilization: growth didn't help
        c.maybe_adjust_delta(0.0, rotations=10)
        assert c.delta == 100.0  # reverted
        assert c.growth_frozen
        settle(c, u0)
        c.maybe_adjust_delta(0.0, rotations=15)
        assert c.delta == 100.0  # frozen: no more growth

    def test_growth_at_zero_baseline_never_freezes(self):
        """Regression: growth applied while ``util_ewma == 0`` (start-up,
        before any work is in flight) used to satisfy the plateau test
        vacuously and freeze Δ growth permanently.  A zero baseline can't
        judge a growth step; the controller must keep growing."""
        c = make_ctrl(delta=100.0)
        settle(c, 0.0)
        c.maybe_adjust_delta(0.0, rotations=5)  # grow at zero utilization
        assert c.delta == 200.0
        assert c.util_at_growth == 0.0
        settle(c, 0.0)  # still nothing in flight
        c.maybe_adjust_delta(0.0, rotations=10)
        assert not c.growth_frozen
        assert c.delta == 400.0  # kept growing, not reverted

    def test_helpful_growth_continues(self):
        c = make_ctrl(delta=100.0)
        settle(c, 0.0)
        c.maybe_adjust_delta(0.0, rotations=5)
        # utilization doubled after the growth: keep going
        settle(c, 0.2 * c.target_edges())
        c.maybe_adjust_delta(0.0, rotations=10)
        assert c.delta == 400.0

    def test_saturation_unfreezes(self):
        c = make_ctrl(delta=100.0)
        u0 = 0.1 * c.target_edges()
        settle(c, u0)
        c.maybe_adjust_delta(0.0, rotations=5)
        settle(c, u0)
        c.maybe_adjust_delta(0.0, rotations=10)  # revert + freeze
        assert c.growth_frozen
        settle(c, 100 * c.target_edges())
        c.maybe_adjust_delta(0.0, rotations=15)  # shrink
        assert not c.growth_frozen
