"""QueryExecutor: inline + pooled dispatch, logging, lifecycle, spans."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import Cell, QueryExecutor
from repro.errors import EngineError
from repro.graphs.suite import GraphSpec


def _cell(graph, solver="dijkstra", source=0, **kw):
    return Cell(
        graph_name=graph.name or "g",
        category="test",
        solver=solver,
        source=source,
        graph=graph,
        **kw,
    )


class TestInlineMode:
    def test_submit_returns_resolved_future(self, small_road):
        with QueryExecutor() as ex:
            fut = ex.submit(_cell(small_road))
            assert fut.done()  # inline mode executes before returning
            kind, result, elapsed, span = fut.result()
            assert kind == "ok"
            assert result.dist[0] == 0.0
            assert elapsed >= 0.0

    def test_span_is_wall_clock_ordered(self, small_road):
        with QueryExecutor() as ex:
            _, _, _, (started, ended) = ex.execute(_cell(small_road))
            assert 0 < started <= ended

    def test_solver_error_is_an_outcome_not_an_exception(self, small_road, fault_solvers):
        with QueryExecutor() as ex:
            kind, detail, _, _ = ex.execute(_cell(small_road, solver="eng-crash"))
            assert kind == "error"
            assert "injected failure" in detail

    def test_dispatch_counter(self, small_road):
        with QueryExecutor() as ex:
            for _ in range(3):
                ex.execute(_cell(small_road))
            assert ex.dispatched == 3

    def test_jobs_validation(self):
        with pytest.raises(EngineError):
            QueryExecutor(jobs=0)

    def test_closed_executor_rejects_submissions(self, small_road):
        ex = QueryExecutor()
        ex.close()
        with pytest.raises(EngineError, match="closed"):
            ex.submit(_cell(small_road))
        ex.close()  # idempotent


class TestResultLog:
    def test_ok_outcomes_are_appended_as_store_records(
        self, small_road, tmp_path, fault_solvers
    ):
        log = tmp_path / "served.jsonl"
        with QueryExecutor(store_path=log) as ex:
            ex.execute(_cell(small_road, source=0))
            ex.execute(_cell(small_road, source=3))
            ex.execute(_cell(small_road, solver="eng-crash"))  # not logged
        lines = [json.loads(l) for l in log.read_text().splitlines() if l.strip()]
        records = [l for l in lines if l.get("kind") == "result"]
        assert len(records) == 2
        assert {r["result"]["source"] for r in records} == {0, 3}


class TestPooledMode:
    def test_pool_solves_spec_backed_cells(self):
        spec = GraphSpec.make("grid_road", width=8, height=6, seed=3)
        cell = Cell(
            graph_name="grid", category="test", solver="dijkstra",
            source=0, graph_spec=spec,
        )
        with QueryExecutor(jobs=2) as ex:
            outs = [ex.submit(cell) for _ in range(4)]
            dists = []
            for fut in outs:
                kind, result, _, _ = fut.result(timeout=120)
                assert kind == "ok"
                dists.append(result.dist)
            for d in dists[1:]:
                assert np.array_equal(d, dists[0])


class TestSuiteSpanPlumbing:
    def test_run_suite_records_spans(self, small_road):
        from repro.graphs.suite import SuiteEntry
        from repro.harness import run_suite

        entry = SuiteEntry(
            name="road", category="road", factory=lambda: small_road
        )
        run = run_suite(solvers=("dijkstra", "gun-bf"), suite=[entry], verify=False)
        rec = run.records[0]
        for solver in ("dijkstra", "gun-bf"):
            span = rec.wall_clock(solver)
            assert span is not None
            assert span[0] <= span[1]
        # the two cells ran serially in submission order
        assert rec.spans["dijkstra"][1] <= rec.spans["gun-bf"][0] + 1e-9
