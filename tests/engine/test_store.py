"""JSONL result store: exact round-trips and corruption handling."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.common import get_solver
from repro.engine import FailedRun, ResultStore, result_from_json, result_to_json
from repro.errors import EngineError


def _result(graph, solver="dijkstra"):
    return get_solver(solver)(graph, 0)


class TestResultRoundTrip:
    def test_dist_is_bit_exact(self, small_road):
        res = _result(small_road)
        back = result_from_json(result_to_json(res))
        assert np.array_equal(back.dist, res.dist)
        assert back.dist.dtype == np.float64
        assert back.solver == res.solver
        assert back.graph_name == res.graph_name
        assert back.work_count == res.work_count
        assert back.time_us == res.time_us
        assert back.stats == res.stats

    def test_inf_distances_survive(self, tiny_graph):
        # fig1 is directed: nothing reaches S, so dist has a 0/finite mix;
        # craft an unreachable vertex by solving from a sink instead.
        res = _result(tiny_graph)
        res.dist[1] = np.inf
        back = result_from_json(result_to_json(res))
        assert np.isinf(back.dist[1])
        assert np.array_equal(back.dist, res.dist)

    def test_corrupt_payload_raises(self):
        with pytest.raises(EngineError, match="corrupt result record"):
            result_from_json({"solver": "dijkstra"})  # no dist_b64


class TestResultStore:
    def test_append_and_load(self, small_road, tmp_path):
        path = tmp_path / "sweep.jsonl"
        res = _result(small_road)
        with ResultStore(path) as store:
            store.append_result("road", res)
            store.append_failure(
                FailedRun(
                    graph="g2", category="road", solver="nf",
                    kind="timeout", message="too slow",
                    attempts=2, elapsed_s=1.5,
                )
            )
        contents = ResultStore(path).load()
        assert len(contents) == 1
        category, back = contents.results[(small_road.name, "dijkstra")]
        assert category == "road"
        assert np.array_equal(back.dist, res.dist)
        (failure,) = contents.failures
        assert failure.kind == "timeout" and failure.attempts == 2

    def test_missing_file_is_empty(self, tmp_path):
        contents = ResultStore(tmp_path / "never-written.jsonl").load()
        assert len(contents) == 0 and contents.failures == []

    def test_torn_final_line_is_ignored(self, small_road, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with ResultStore(path) as store:
            store.append_result("road", _result(small_road))
        with open(path, "a") as fh:
            fh.write('{"schema": 1, "kind": "resu')  # killed mid-append
        contents = ResultStore(path).load()
        assert len(contents) == 1

    def test_malformed_middle_line_raises(self, small_road, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with ResultStore(path) as store:
            store.append_result("road", _result(small_road))
        with open(path, "a") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"schema": 1, "kind": "failure",
                                 "graph": "g", "category": "c", "solver": "s",
                                 "kind_": "x"}) + "\n")
        with pytest.raises(EngineError, match="malformed store line"):
            ResultStore(path).load()

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"schema": 99, "kind": "result", "result": {}}\n')
        with pytest.raises(EngineError, match="schema"):
            ResultStore(path).load()

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"schema": 1, "kind": "telemetry"}\n')
        with pytest.raises(EngineError, match="unknown store record kind"):
            ResultStore(path).load()

    def test_truncate_starts_fresh(self, small_road, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with ResultStore(path) as store:
            store.append_result("road", _result(small_road))
        with ResultStore(path, truncate=True) as store:
            pass
        assert len(ResultStore(path).load()) == 0

    def test_later_line_supersedes_earlier(self, small_road, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = _result(small_road)
        second = _result(small_road)
        second.dist = second.dist + 1.0
        with ResultStore(path) as store:
            store.append_result("road", first)
            store.append_result("road", second)
        _, back = ResultStore(path).load().results[(small_road.name, "dijkstra")]
        assert np.array_equal(back.dist, second.dist)
