"""On-disk graph cache: content addressing, hits/misses, corruption."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import CACHE_FORMAT_VERSION, GraphCache
from repro.graphs.suite import GraphSpec


@pytest.fixture
def spec():
    return GraphSpec.make("grid_road", width=8, height=6, seed=3)


class TestGraphCache:
    def test_miss_then_hit(self, spec, tmp_path):
        cache = GraphCache(tmp_path)
        g1 = cache.get_or_build(spec)
        assert (cache.hits, cache.misses) == (0, 1)
        g2 = cache.get_or_build(spec)
        assert (cache.hits, cache.misses) == (1, 1)
        assert np.array_equal(g1.row_offsets, g2.row_offsets)
        assert np.array_equal(g1.col_indices, g2.col_indices)
        assert np.array_equal(g1.weights, g2.weights)
        assert len(cache) == 1

    def test_hit_across_instances(self, spec, tmp_path):
        GraphCache(tmp_path).get_or_build(spec)
        cache = GraphCache(tmp_path)
        cache.get_or_build(spec)
        assert (cache.hits, cache.misses) == (1, 0)

    def test_cached_graph_matches_direct_build(self, spec, tmp_path):
        direct = spec.build()
        GraphCache(tmp_path).get_or_build(spec)
        cached = GraphCache(tmp_path).get_or_build(spec)
        assert np.array_equal(direct.row_offsets, cached.row_offsets)
        assert np.array_equal(direct.weights, cached.weights)

    def test_params_change_the_key(self, spec, tmp_path):
        other = GraphSpec.make("grid_road", width=8, height=6, seed=4)
        assert spec.cache_key() != other.cache_key()
        cache = GraphCache(tmp_path)
        cache.get_or_build(spec)
        cache.get_or_build(other)
        assert len(cache) == 2 and cache.misses == 2

    def test_rename_applies(self, spec, tmp_path):
        g = GraphCache(tmp_path).get_or_build(spec, name="renamed")
        assert g.name == "renamed"

    def test_version_prefix_in_path(self, spec, tmp_path):
        path = GraphCache(tmp_path).path_for(spec)
        assert path.name.startswith(f"v{CACHE_FORMAT_VERSION}-")

    def test_corrupt_entry_rebuilt(self, spec, tmp_path):
        cache = GraphCache(tmp_path)
        cache.get_or_build(spec)
        cache.path_for(spec).write_bytes(b"junk, not an npz")
        fresh = GraphCache(tmp_path)
        g = fresh.get_or_build(spec)
        assert fresh.misses == 1  # corrupt file dropped, rebuilt
        assert g.num_vertices == spec.build().num_vertices
