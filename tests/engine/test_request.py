"""The uniform SolveRequest entry point and capability flags."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.common import (
    SOLVERS,
    SolveRequest,
    get_solver,
    get_solver_info,
    solver_names,
)
from repro.calibration import default_cost, default_gpu
from repro.errors import SolverError
from repro.trace import Tracer


class TestSolveRequest:
    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_request_matches_legacy_call(self, name, small_road):
        """Every registered solver gives bit-identical results through the
        request path and the legacy keyword path."""
        info = get_solver_info(name)
        spec = default_gpu()
        cost = default_cost(spec)
        kwargs = {}
        if info.needs_device:
            kwargs = {"spec": spec, "cost": cost}
        legacy = info(small_road, 0, **kwargs)
        via_request = info.solve(
            SolveRequest(graph=small_road, source=0, spec=spec, cost=cost)
        )
        assert np.array_equal(legacy.dist, via_request.dist)
        assert legacy.work_count == via_request.work_count
        assert legacy.time_us == via_request.time_us

    def test_sources_forwarded(self, small_road):
        info = get_solver_info("dijkstra")
        res = info.solve(
            SolveRequest(graph=small_road, source=0, sources=[0, 5])
        )
        assert res.dist[0] == 0.0 and res.dist[5] == 0.0

    def test_delta_forwarded(self, small_road):
        info = get_solver_info("cpu-ds")
        a = info.solve(SolveRequest(graph=small_road, delta=3.0))
        b = info.solve(SolveRequest(graph=small_road, delta=200.0))
        assert np.array_equal(a.dist, b.dist)  # same answer, different Δ

    def test_options_reach_the_solver(self, small_road):
        from repro.core import AddsConfig

        spec = default_gpu()
        res = get_solver("adds").solve(
            SolveRequest(
                graph=small_road,
                spec=spec,
                cost=default_cost(spec),
                options={"config": AddsConfig(n_wtbs=2)},
            )
        )
        assert res.stats["n_wtbs"] == 2

    def test_tracer_rejected_by_untraceable(self, small_road):
        with pytest.raises(SolverError, match="does not support tracing"):
            get_solver("dijkstra").solve(
                SolveRequest(graph=small_road, tracer=Tracer())
            )

    def test_delta_rejected_without_capability(self, small_road):
        with pytest.raises(SolverError, match="delta"):
            get_solver("dijkstra").solve(
                SolveRequest(graph=small_road, delta=5.0)
            )

    def test_config_rejected_without_capability(self, small_road):
        spec = default_gpu()
        with pytest.raises(SolverError, match="config"):
            get_solver("nf").solve(
                SolveRequest(graph=small_road, spec=spec, config=object())
            )


class TestCapabilityFlags:
    def test_device_solvers(self):
        assert solver_names(needs_device=True) == [
            "adds", "gun-bf", "gun-nf", "nf", "nv",
        ]

    def test_traceable_solvers(self):
        assert solver_names(traceable=True) == [
            "adds", "gun-bf", "gun-nf", "nf", "nv",
        ]
        assert "dijkstra" not in solver_names(traceable=True)

    def test_delta_family(self):
        names = solver_names(accepts_delta=True)
        assert "adds" in names and "cpu-ds" in names
        assert "gun-bf" not in names

    def test_deprecated_name_sets_still_importable(self):
        from repro import harness

        assert harness.GPU_SOLVERS == frozenset(solver_names(needs_device=True))
        assert harness.TRACEABLE_SOLVERS == frozenset(solver_names(traceable=True))
        with pytest.raises(AttributeError):
            harness.NO_SUCH_SET

    def test_registry_values_are_callable(self):
        for name, info in SOLVERS.items():
            assert callable(info)
            assert info.name == name
