"""Engine execution: parallel parity, failure paths, retry, resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import default_cost, default_gpu
from repro.engine import Cell, EngineConfig, ResultStore, plan_cells, run_cells
from repro.errors import EngineError
from repro.harness import run_suite

FAULT_MODULES = ("repro.engine.testing",)


def _plan(suite, solvers, config, **kw):
    return plan_cells(suite, solvers, config=config, **kw)


class TestConfigValidation:
    def test_bad_jobs(self):
        with pytest.raises(EngineError):
            EngineConfig(jobs=0)

    def test_bad_attempts(self):
        with pytest.raises(EngineError):
            EngineConfig(max_attempts=0)

    def test_bad_timeout(self):
        with pytest.raises(EngineError):
            EngineConfig(timeout_s=-1.0)

    def test_resume_needs_store(self):
        with pytest.raises(EngineError):
            EngineConfig(resume=True)


class TestParallelParity:
    def test_jobs2_matches_serial(self, mini_suite):
        """The acceptance bar: a parallel sweep is bit-identical to the
        serial reference path, device solvers included."""
        spec = default_gpu()
        cost = default_cost(spec)

        def sweep(jobs):
            config = EngineConfig(jobs=jobs)
            cells = _plan(mini_suite, ("adds", "dijkstra"), config,
                          spec=spec, cost=cost)
            return run_cells(cells, config)

        serial, parallel = sweep(1), sweep(2)
        assert serial.failures == [] and parallel.failures == []
        assert set(serial.results) == set(parallel.results)
        for key, res in serial.results.items():
            other = parallel.results[key]
            assert np.array_equal(res.dist, other.dist)
            assert res.work_count == other.work_count
            assert res.time_us == other.time_us

    def test_run_suite_jobs2_matches_serial(self, mini_suite):
        a = run_suite(solvers=("adds", "nf"), suite=mini_suite, jobs=1)
        b = run_suite(solvers=("adds", "nf"), suite=mini_suite, jobs=2)
        assert [r.graph for r in a.records] == [r.graph for r in b.records]
        for ra, rb in zip(a.records, b.records):
            for name in ra.results:
                assert np.array_equal(ra.results[name].dist, rb.results[name].dist)
                assert ra.results[name].time_us == rb.results[name].time_us


class TestFailurePaths:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_crashing_cell_degrades_gracefully(self, mini_suite, fault_solvers, jobs):
        config = EngineConfig(jobs=jobs, max_attempts=2,
                              solver_modules=FAULT_MODULES)
        cells = _plan(mini_suite, ("eng-const", "eng-crash"), config)
        out = run_cells(cells, config)
        # the sweep completed: every good cell has a result...
        assert {k for k in out.results} == {
            (e.name, "eng-const") for e in mini_suite
        }
        # ...and every crashing cell is a structured record, not an abort
        assert len(out.failures) == len(mini_suite)
        for failed in out.failures:
            assert failed.kind == "error"
            assert failed.solver == "eng-crash"
            assert failed.attempts == 2
            assert "eng-crash" in failed.message

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_hanging_cell_times_out(self, mini_suite, fault_solvers, jobs):
        config = EngineConfig(jobs=jobs, timeout_s=0.2, max_attempts=1,
                              solver_modules=FAULT_MODULES)
        cells = _plan(mini_suite[:1], ("eng-hang",), config)
        out = run_cells(cells, config)
        assert out.results == {}
        (failed,) = out.failures
        assert failed.kind == "timeout"
        assert "0.2" in failed.message

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_flaky_cell_succeeds_on_retry(self, mini_suite, fault_solvers,
                                          tmp_path, jobs):
        latch = tmp_path / "latch"
        config = EngineConfig(jobs=jobs, max_attempts=2,
                              solver_modules=FAULT_MODULES)
        cells = _plan(mini_suite[:1], ("eng-flaky",), config,
                      solver_options={"eng-flaky": {"latch": str(latch)}})
        out = run_cells(cells, config)
        assert out.failures == []
        assert len(out.results) == 1
        assert latch.exists()  # first attempt really did run and fail

    def test_unknown_solver_fails_fast(self, mini_suite):
        config = EngineConfig()
        cells = _plan(mini_suite, ("dijkstra",), config)
        bad = [Cell(graph_name="g", category="c", solver="quantum")]
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            run_cells(cells + bad, config)


class TestResume:
    def test_interrupted_sweep_resumes(self, mini_suite, tmp_path):
        store_path = tmp_path / "sweep.jsonl"
        config = EngineConfig(store_path=store_path)
        cells = _plan(mini_suite, ("dijkstra",), config)

        # "interrupt" after the first cell: only run a prefix
        first = run_cells(cells[:1], config)
        assert len(first.results) == 1
        assert len(ResultStore(store_path).load()) == 1

        # resume the full sweep against the same store
        config2 = EngineConfig(store_path=store_path, resume=True)
        out = run_cells(cells, config2)
        assert out.resumed == 1
        assert out.executed == len(cells) - 1
        assert len(out.results) == len(cells)

        # the restored result is the persisted one, bit-exact
        fresh = run_cells(cells[:1], EngineConfig())
        key = cells[0].key
        assert np.array_equal(out.results[key].dist, fresh.results[key].dist)

    def test_failed_cells_are_retried_on_resume(self, mini_suite, fault_solvers,
                                                tmp_path):
        store_path = tmp_path / "sweep.jsonl"
        latch = tmp_path / "latch"
        config = EngineConfig(store_path=store_path, max_attempts=1,
                              solver_modules=FAULT_MODULES)
        cells = _plan(mini_suite[:1], ("eng-flaky",), config,
                      solver_options={"eng-flaky": {"latch": str(latch)}})
        first = run_cells(cells, config)
        assert len(first.failures) == 1  # one attempt, latch now set

        config2 = EngineConfig(store_path=store_path, resume=True,
                               max_attempts=1, solver_modules=FAULT_MODULES)
        out = run_cells(cells, config2)
        assert out.resumed == 0  # failures are not "completed": re-run
        assert out.failures == []
        assert len(out.results) == 1

    def test_fresh_run_truncates_store(self, mini_suite, tmp_path):
        store_path = tmp_path / "sweep.jsonl"
        config = EngineConfig(store_path=store_path)
        cells = _plan(mini_suite, ("dijkstra",), config)
        run_cells(cells, config)
        run_cells(cells[:1], EngineConfig(store_path=store_path))
        assert len(ResultStore(store_path).load()) == 1


class TestGraphTransport:
    def test_spec_cells_ship_no_arrays(self, mini_suite):
        config = EngineConfig()
        cells = _plan(mini_suite, ("dijkstra",), config)
        assert all(c.graph is None and c.graph_spec is not None for c in cells)

    def test_factory_cells_ship_arrays(self):
        from repro.graphs.generators import grid_road
        from repro.graphs.suite import SuiteEntry

        suite = [SuiteEntry(name="f", category="road",
                            factory=lambda: grid_road(6, 5, seed=1))]
        config = EngineConfig(jobs=2)
        cells = _plan(suite, ("dijkstra",), config)
        assert cells[0].graph is not None
        out = run_cells(cells, config)  # prebuilt arrays pickle to workers
        assert len(out.results) == 1

    def test_cache_dir_prewarms_and_serves_workers(self, mini_suite, tmp_path):
        config = EngineConfig(jobs=2, cache_dir=tmp_path / "gcache")
        cells = _plan(mini_suite, ("dijkstra",), config)
        assert all(c.cache_dir is not None for c in cells)
        from repro.engine import GraphCache

        assert len(GraphCache(tmp_path / "gcache")) == len(mini_suite)
        out = run_cells(cells, config)
        assert len(out.results) == len(cells)
        serial = run_cells(
            _plan(mini_suite, ("dijkstra",), EngineConfig()), EngineConfig()
        )
        for key, res in serial.results.items():
            assert np.array_equal(res.dist, out.results[key].dist)
