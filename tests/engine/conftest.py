"""Engine-test fixtures.

The fault-injection solvers (``repro.engine.testing``) must never leak
into the global registry: suite-wide tests iterate every registered
solver and actually call it, and ``eng-hang`` would hang them.  So the
module is imported *inside* the fixture and unregistered on teardown.
"""

from __future__ import annotations

import pytest

from repro.graphs.suite import GraphSpec, SuiteEntry


@pytest.fixture
def fault_solvers():
    """Register the eng-* fault solvers for one test, then remove them."""
    from repro.engine import testing

    testing.register()
    yield testing
    testing.unregister()


@pytest.fixture
def mini_suite():
    """Two small spec-based entries — enough to exercise fan-out."""
    return [
        SuiteEntry(
            name="mini-road",
            category="road",
            spec=GraphSpec.make("grid_road", width=8, height=6, seed=3),
        ),
        SuiteEntry(
            name="mini-gnm",
            category="gnm",
            spec=GraphSpec.make("random_gnm", n=60, m=240, seed=3),
        ),
    ]
