"""The update model: EdgeUpdate/UpdateBatch validation, batch
application (in-place weight patch vs CSR rebuild), and EdgeDeltas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic import (
    EdgeDeltas,
    EdgeUpdate,
    UpdateBatch,
    apply_updates,
)
from repro.errors import DynamicError
from repro.graphs.csr import from_edge_list


def _line_graph():
    """0 -> 1 -> 2 -> 3, weights 1, 2, 3."""
    return from_edge_list(4, [(0, 1, 1), (1, 2, 2), (2, 3, 3)])


class TestEdgeUpdateValidation:
    def test_unknown_kind(self):
        with pytest.raises(DynamicError):
            EdgeUpdate(kind="tweak", src=0, dst=1, weight=1.0)

    def test_weight_required_for_weight_kinds(self):
        for kind in ("increase", "decrease", "insert"):
            with pytest.raises(DynamicError):
                EdgeUpdate(kind=kind, src=0, dst=1)

    def test_delete_takes_no_weight(self):
        with pytest.raises(DynamicError):
            EdgeUpdate(kind="delete", src=0, dst=1, weight=1.0)

    def test_weight_must_be_finite_non_negative(self):
        for w in (float("nan"), float("inf"), -1.0):
            with pytest.raises(DynamicError):
                EdgeUpdate(kind="insert", src=0, dst=1, weight=w)

    def test_out_of_range_vertex_rejected_at_apply(self):
        g = _line_graph()
        for src, dst in ((-1, 1), (0, 99)):
            with pytest.raises(DynamicError):
                apply_updates(
                    g,
                    UpdateBatch(
                        [EdgeUpdate(kind="increase", src=src, dst=dst, weight=9.0)]
                    ),
                )


class TestWeightOnlyBatch:
    def test_in_place_patch_and_prepared_twin(self):
        g = _line_graph().prepare()
        res = apply_updates(
            g, UpdateBatch([EdgeUpdate(kind="increase", src=1, dst=2, weight=5.0)])
        )
        assert res.graph is g  # patched in place, no rebuild
        assert not res.topology_changed
        # both the public weights and the prepared float64 twin see it
        assert float(g.weights[1]) == 5.0
        assert float(g.prepared().w64[1]) == 5.0

    def test_wrong_direction_rejected(self):
        g = _line_graph()
        with pytest.raises(DynamicError):
            apply_updates(
                g,
                UpdateBatch([EdgeUpdate(kind="increase", src=1, dst=2, weight=1.0)]),
            )

    def test_unknown_edge_rejected(self):
        g = _line_graph()
        with pytest.raises(DynamicError):
            apply_updates(
                g,
                UpdateBatch([EdgeUpdate(kind="decrease", src=0, dst=3, weight=0.5)]),
            )

    def test_invalid_batch_leaves_graph_untouched(self):
        g = _line_graph()
        before = g.weights.copy()
        batch = UpdateBatch(
            [
                EdgeUpdate(kind="increase", src=0, dst=1, weight=9.0),  # valid
                EdgeUpdate(kind="increase", src=1, dst=2, weight=1.0),  # invalid
            ]
        )
        with pytest.raises(DynamicError):
            apply_updates(g, batch)
        assert np.array_equal(g.weights, before)  # nothing half-patched

    def test_sequential_within_batch(self):
        # the second update sees the first one's new weight
        g = _line_graph()
        batch = UpdateBatch(
            [
                EdgeUpdate(kind="increase", src=0, dst=1, weight=10.0),
                EdgeUpdate(kind="decrease", src=0, dst=1, weight=4.0),
            ]
        )
        res = apply_updates(g, batch)
        assert float(g.weights[0]) == 4.0
        # net deltas record the original old weight and the final new one
        assert res.deltas.size == 1
        assert float(res.deltas.old_w[0]) == 1.0
        assert float(res.deltas.new_w[0]) == 4.0

    def test_stats_cache_dropped_on_weight_change(self):
        g = _line_graph()
        before = g.max_weight()
        apply_updates(
            g, UpdateBatch([EdgeUpdate(kind="increase", src=2, dst=3, weight=50.0)])
        )
        assert g.max_weight() == 50.0 != before


class TestTopologyBatch:
    def test_insert(self):
        g = _line_graph()
        res = apply_updates(
            g, UpdateBatch([EdgeUpdate(kind="insert", src=0, dst=3, weight=7.0)])
        )
        assert res.topology_changed
        assert res.graph is not g
        assert res.graph.num_edges == 4
        assert np.isnan(res.deltas.old_w[0])  # inserted: no old weight
        assert float(res.deltas.new_w[0]) == 7.0

    def test_duplicate_insert_rejected(self):
        g = _line_graph()
        with pytest.raises(DynamicError):
            apply_updates(
                g,
                UpdateBatch([EdgeUpdate(kind="insert", src=0, dst=1, weight=1.0)]),
            )

    def test_delete(self):
        g = _line_graph()
        res = apply_updates(
            g, UpdateBatch([EdgeUpdate(kind="delete", src=1, dst=2)])
        )
        assert res.topology_changed
        assert res.graph.num_edges == 2
        assert np.isnan(res.deltas.new_w[0])  # deleted: no new weight

    def test_delete_unknown_edge_rejected(self):
        g = _line_graph()
        with pytest.raises(DynamicError):
            apply_updates(g, UpdateBatch([EdgeUpdate(kind="delete", src=3, dst=0)]))

    def test_insert_then_delete_is_net_noop(self):
        g = _line_graph()
        res = apply_updates(
            g,
            UpdateBatch(
                [
                    EdgeUpdate(kind="insert", src=0, dst=3, weight=7.0),
                    EdgeUpdate(kind="delete", src=0, dst=3),
                ]
            ),
        )
        assert res.topology_changed  # a rebuild happened...
        assert res.graph.num_edges == 3
        assert res.deltas.size == 0  # ...but the net deltas are empty

    def test_delete_then_reinsert_same_weight_is_net_noop(self):
        g = _line_graph()
        res = apply_updates(
            g,
            UpdateBatch(
                [
                    EdgeUpdate(kind="delete", src=1, dst=2),
                    EdgeUpdate(kind="insert", src=1, dst=2, weight=2.0),
                ]
            ),
        )
        assert res.deltas.size == 0


class TestEdgeDeltas:
    def test_merge_keeps_earliest_old_latest_new(self):
        d1 = EdgeDeltas.from_map({(0, 1): (1.0, 5.0)})
        d2 = EdgeDeltas.from_map({(0, 1): (5.0, 2.0), (1, 2): (2.0, 9.0)})
        merged = d1.merge(d2)
        assert merged.size == 2
        i = int(np.flatnonzero((merged.src == 0) & (merged.dst == 1))[0])
        assert float(merged.old_w[i]) == 1.0
        assert float(merged.new_w[i]) == 2.0

    def test_empty_batch_is_noop(self):
        g = _line_graph()
        res = apply_updates(g, UpdateBatch([]))
        assert res.graph is g
        assert res.deltas.size == 0
        assert res.n_updates == 0

    def test_csr_method_delegates(self):
        g = _line_graph()
        res = g.apply_updates(
            UpdateBatch([EdgeUpdate(kind="increase", src=0, dst=1, weight=3.0)])
        )
        assert float(res.graph.weights[0]) == 3.0


class TestMergeUpdateStreamChains:
    """Property: folding per-batch deltas with ``merge`` (in either
    association) equals the direct diff of the endpoint graphs.  In
    particular an edge inserted in one batch and deleted in a later one
    resolves to absent — it never shows up carrying the stale inserted
    weight."""

    @staticmethod
    def _edge_map(g):
        ro, ci, w = g.row_offsets, g.col_indices, g.weights
        out = {}
        for u in range(ro.size - 1):
            for j in range(int(ro[u]), int(ro[u + 1])):
                out[(u, int(ci[j]))] = float(w[j])
        return out

    @staticmethod
    def _fold_left(deltas):
        acc = deltas[0]
        for d in deltas[1:]:
            acc = acc.merge(d)
        return acc

    @staticmethod
    def _fold_right(deltas):
        acc = deltas[-1]
        for d in reversed(deltas[:-1]):
            acc = d.merge(acc)
        return acc

    def test_insert_then_delete_annihilates(self):
        nan = float("nan")
        a = EdgeDeltas.from_map({(0, 1): (nan, 5.0)})
        b = EdgeDeltas.from_map({(0, 1): (5.0, nan)})
        assert a.merge(b).size == 0
        c = EdgeDeltas.from_map({(2, 3): (1.0, 4.0)})
        for m in (a.merge(b).merge(c), a.merge(b.merge(c))):
            keys = {(int(m.src[i]), int(m.dst[i])) for i in range(m.size)}
            assert keys == {(2, 3)}

    @pytest.mark.parametrize("seed", range(6))
    def test_chain_matches_endpoint_diff(self, seed):
        import math

        from repro.graphs.generators import grid_road, update_stream

        g0 = grid_road(4, 4, seed=seed)
        before = self._edge_map(g0)  # capture first: weight-only batches
        # patch the graph in place
        g = g0
        deltas = []
        for batch in update_stream(
            g0, batches=5, batch_size=10, seed=seed,
            p_insert=0.45, p_delete=0.45,
        ):
            res = apply_updates(g, batch)
            g = res.graph
            deltas.append(res.deltas)
        after = self._edge_map(g)

        nan = float("nan")
        expect = {}
        for k in set(before) | set(after):
            o = before.get(k, nan)
            n = after.get(k, nan)
            if (math.isnan(o) and math.isnan(n)) or o == n:
                continue
            expect[k] = (o, n)

        for merged in (self._fold_left(deltas), self._fold_right(deltas)):
            got = {
                (int(merged.src[i]), int(merged.dst[i])): (
                    float(merged.old_w[i]),
                    float(merged.new_w[i]),
                )
                for i in range(merged.size)
            }
            # same key set: no dropped changes, and no phantom entries
            # (an insert-then-delete edge must not reappear)
            assert set(got) == set(expect)
            for k, (o, n) in expect.items():
                go, gn = got[k]
                assert (math.isnan(o) and math.isnan(go)) or o == go
                assert (math.isnan(n) and math.isnan(gn)) or n == gn
