"""The dirty-frontier rule: seeding, invalidation, changes_affect, and
end-to-end incremental == full bit-equality on small graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import solve_dijkstra
from repro.dynamic import (
    EdgeDeltas,
    EdgeUpdate,
    UpdateBatch,
    apply_updates,
    changes_affect,
    incremental_seed,
)
from repro.errors import DynamicError, SolverError
from repro.graphs import generators
from repro.graphs.csr import from_edge_list
from repro.graphs.generators import update_stream


def _diamond():
    """0 -> {1, 2} -> 3; the 0->1->3 path (cost 2) beats 0->2->3 (cost 4)."""
    return from_edge_list(
        4, [(0, 1, 1), (0, 2, 2), (1, 3, 1), (2, 3, 2)]
    )


class TestSeeding:
    def test_empty_deltas_empty_frontier(self):
        g = _diamond()
        dist = solve_dijkstra(g, source=0).dist
        warm, frontier, fd, info = incremental_seed(
            g, dist, EdgeDeltas.empty(), 0
        )
        assert frontier.size == 0 and fd.size == 0
        assert info == {"roots": 0, "invalidated": 0, "frontier": 0}
        assert np.array_equal(warm, dist)

    def test_idempotent_batch_empty_frontier(self):
        g = _diamond()
        dist = solve_dijkstra(g, source=0).dist
        res = apply_updates(
            g,
            UpdateBatch(
                [
                    EdgeUpdate(kind="increase", src=0, dst=1, weight=9.0),
                    EdgeUpdate(kind="decrease", src=0, dst=1, weight=1.0),
                ]
            ),
        )
        assert res.deltas.size == 0  # net no-op
        _, frontier, _, info = incremental_seed(res.graph, dist, res.deltas, 0)
        assert frontier.size == 0 and info["invalidated"] == 0

    def test_decrease_seeds_tail_without_invalidation(self):
        g = _diamond()
        dist = solve_dijkstra(g, source=0).dist
        res = apply_updates(
            g, UpdateBatch([EdgeUpdate(kind="decrease", src=0, dst=2, weight=1.0)])
        )
        warm, frontier, fd, info = incremental_seed(res.graph, dist, res.deltas, 0)
        assert info["invalidated"] == 0  # nothing got worse
        # the cheaper edge now violates: its tail is the frontier
        assert 0 in frontier.tolist()
        assert np.array_equal(warm, dist)  # upper bounds kept verbatim

    def test_tight_increase_invalidates_downstream(self):
        g = _diamond()
        dist = solve_dijkstra(g, source=0).dist
        res = apply_updates(
            g, UpdateBatch([EdgeUpdate(kind="increase", src=0, dst=1, weight=5.0)])
        )
        warm, frontier, _, info = incremental_seed(res.graph, dist, res.deltas, 0)
        assert info["roots"] == 1
        # 1 and its downstream 3 are reset; source stays 0
        assert np.isinf(warm[1]) or warm[1] > dist[1] or frontier.size
        assert warm[0] == 0.0

    def test_non_tight_increase_keeps_distances(self):
        g = _diamond()
        dist = solve_dijkstra(g, source=0).dist
        # 2->3 is slack (dist[3]=2 via 1); raising it moves nothing
        res = apply_updates(
            g, UpdateBatch([EdgeUpdate(kind="increase", src=2, dst=3, weight=9.0)])
        )
        warm, frontier, _, info = incremental_seed(res.graph, dist, res.deltas, 0)
        assert info["invalidated"] == 0
        assert frontier.size == 0
        assert np.array_equal(warm, dist)

    def test_bad_warm_array_rejected(self):
        g = _diamond()
        with pytest.raises(DynamicError):
            incremental_seed(g, np.zeros(3), None, 0)  # wrong size
        with pytest.raises(DynamicError):
            incremental_seed(g, np.full(4, np.nan), None, 0)
        with pytest.raises(DynamicError):
            incremental_seed(g, np.array([0.0, -1.0, 0.0, 0.0]), None, 0)


class TestChangesAffect:
    def test_empty_deltas_never_affect(self):
        dist = np.array([0.0, 1.0])
        assert changes_affect(dist, EdgeDeltas.empty()) is False

    def test_slack_increase_does_not_affect(self):
        g = _diamond()
        dist = solve_dijkstra(g, source=0).dist
        deltas = EdgeDeltas.from_map({(2, 3): (2.0, 9.0)})
        assert changes_affect(dist, deltas) is False

    def test_tight_increase_affects(self):
        g = _diamond()
        dist = solve_dijkstra(g, source=0).dist
        deltas = EdgeDeltas.from_map({(0, 1): (1.0, 5.0)})
        assert changes_affect(dist, deltas) is True

    def test_relaxable_decrease_affects(self):
        g = _diamond()
        dist = solve_dijkstra(g, source=0).dist
        deltas = EdgeDeltas.from_map({(0, 2): (2.0, 0.5)})
        assert changes_affect(dist, deltas) is True

    def test_useless_insert_does_not_affect(self):
        g = _diamond()
        dist = solve_dijkstra(g, source=0).dist
        deltas = EdgeDeltas.from_map({(3, 0): (np.nan, 50.0)})
        assert changes_affect(dist, deltas) is False


class TestWarmSolvers:
    def test_updates_without_warm_rejected(self):
        g = _diamond()
        with pytest.raises(SolverError):
            solve_dijkstra(g, source=0, updates=EdgeDeltas.empty())

    def test_adds_updates_without_warm_rejected(self):
        from repro.core.adds import solve_adds

        g = _diamond()
        with pytest.raises(SolverError):
            solve_adds(g, source=0, updates=EdgeDeltas.empty())

    def test_warm_no_deltas_is_noop_resolve(self):
        g = _diamond()
        dist = solve_dijkstra(g, source=0).dist
        res = solve_dijkstra(g, source=0, warm_from=dist)
        assert np.array_equal(res.dist, dist)
        assert res.stats["warm_frontier"] == 0
        assert res.work_count == 0  # nothing to expand

    def test_dijkstra_incremental_matches_full_over_stream(self):
        g = generators.grid_road(8, 8, seed=2).prepare()
        warm = solve_dijkstra(g, source=0).dist
        for batch in update_stream(g, batches=4, batch_size=6, seed=13):
            res = apply_updates(g, batch)
            g = res.graph.prepare()
            full = solve_dijkstra(g, source=0)
            inc = solve_dijkstra(g, source=0, warm_from=warm, updates=res.deltas)
            assert np.array_equal(full.dist, inc.dist)  # bit-equal
            warm = inc.dist

    def test_adds_incremental_matches_full_over_stream(self):
        from repro.core.adds import solve_adds

        g = generators.grid_road(6, 6, seed=4).prepare()
        warm = solve_adds(g, source=0).dist
        for batch in update_stream(g, batches=3, batch_size=5, seed=21):
            res = apply_updates(g, batch)
            g = res.graph.prepare()
            full = solve_adds(g, source=0)
            inc = solve_adds(g, source=0, warm_from=warm, updates=res.deltas)
            assert np.array_equal(full.dist, inc.dist)
            assert inc.stats["warm_start"] is True
            warm = inc.dist
