"""Tests for graph metrics (BFS levels, pseudo-diameter, Table 2 bins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import compute_stats, grid_road, pseudo_diameter, reachable_fraction
from repro.graphs.metrics import (
    DEGREE_BINS,
    DIAMETER_BINS,
    bfs_levels,
    degree_bin,
    diameter_bin,
)


class TestBfsLevels:
    def test_line_graph_levels(self, line_graph):
        assert bfs_levels(line_graph, 0).tolist() == [0, 1, 2, 3, 4, 5]

    def test_unreachable_marked(self, disconnected_graph):
        lv = bfs_levels(disconnected_graph, 0)
        assert lv.tolist()[:3] == [0, 1, 2]
        assert lv[3] == -1 and lv[4] == -1

    def test_source_level_zero(self, small_road):
        assert bfs_levels(small_road, 7)[7] == 0

    def test_grid_levels_are_manhattan(self):
        g = grid_road(5, 5, seed=1)
        lv = bfs_levels(g, 0)
        # hop distance on a 4-connected grid == Manhattan distance
        for v in range(25):
            assert lv[v] == (v % 5) + (v // 5)


class TestPseudoDiameter:
    def test_line_graph(self, line_graph):
        assert pseudo_diameter(line_graph, 0) == 5

    def test_grid_exact(self):
        # double sweep finds the corner-to-corner path on a grid
        assert pseudo_diameter(grid_road(10, 7), 0) == 9 + 6

    def test_lower_bound_property(self, small_gnm):
        # pseudo-diameter from more sweeps can only grow
        d2 = pseudo_diameter(small_gnm, 0, sweeps=2)
        d4 = pseudo_diameter(small_gnm, 0, sweeps=4)
        assert d4 >= d2

    def test_single_vertex(self):
        from repro.graphs import from_edge_list

        g = from_edge_list(1, [])
        assert pseudo_diameter(g, 0) == 0


class TestReachableFraction:
    def test_connected_graph(self, small_road):
        assert reachable_fraction(small_road) == 1.0

    def test_disconnected(self, disconnected_graph):
        assert reachable_fraction(disconnected_graph, 0) == pytest.approx(3 / 5)

    def test_source_matters(self, disconnected_graph):
        assert reachable_fraction(disconnected_graph, 3) == pytest.approx(2 / 5)


class TestBins:
    def test_degree_bins_match_table2(self):
        assert degree_bin(2.0) == "<4"
        assert degree_bin(4.0) == "4-8"
        assert degree_bin(7.9) == "4-8"
        assert degree_bin(16.0) == "8-32"
        assert degree_bin(40.0) == "32-64"
        assert degree_bin(64.0) == ">=64"
        assert degree_bin(500.0) == ">=64"

    def test_diameter_bins_match_table2(self):
        assert diameter_bin(10) == "<40"
        assert diameter_bin(40) == "40-320"
        assert diameter_bin(319) == "40-320"
        assert diameter_bin(320) == "320-640"
        assert diameter_bin(640) == ">=640"

    def test_bin_edges_are_the_papers(self):
        assert DEGREE_BINS == (4.0, 8.0, 32.0, 64.0)
        assert DIAMETER_BINS == (40.0, 320.0, 640.0)


class TestComputeStats:
    def test_stats_fields(self, small_road):
        st = compute_stats(small_road)
        assert st.num_vertices == small_road.num_vertices
        assert st.num_edges == small_road.num_edges
        assert st.avg_degree == pytest.approx(small_road.average_degree())
        assert st.max_degree == int(small_road.out_degree().max())
        assert st.reachable == 1.0
        assert st.diameter >= 16 + 12 - 2

    def test_bin_labels(self, small_road):
        st = compute_stats(small_road)
        assert st.degree_bin_label() == "<4"
        assert st.diameter_bin_label() == "<40" or st.diameter_bin_label() == "40-320"
