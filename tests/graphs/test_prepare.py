"""CSRGraph.prepare(): hoisted 64-bit twins and adjacency cache.

The PR 6 satellite: a serving session pays the int64/float64 twin casts
and adjacency-cache allocation once at graph load, while solvers keep
the lazy per-solve fallback — and both paths produce bit-identical
results (the casts are exact widenings).
"""

from __future__ import annotations

import numpy as np

from repro.calibration import sim_cost, sim_gpu
from repro.graphs.csr import CSRGraph, PreparedArrays


class TestPrepare:
    def test_prepare_builds_exact_twins(self, small_road):
        prep = small_road.prepare().prepared()
        assert isinstance(prep, PreparedArrays)
        assert prep.col64.dtype == np.int64
        assert prep.w64.dtype == np.float64
        assert np.array_equal(prep.col64, small_road.col_indices)
        assert np.array_equal(prep.w64, small_road.weights)
        assert len(prep.adj) == small_road.num_vertices

    def test_prepare_is_idempotent(self, small_road):
        first = small_road.prepare().prepared()
        second = small_road.prepare().prepared()
        assert first is second

    def test_unprepared_graph_reports_none(self, small_road):
        fresh = CSRGraph(
            row_offsets=small_road.row_offsets,
            col_indices=small_road.col_indices,
            weights=small_road.weights,
            name="fresh",
        )
        assert fresh.prepared() is None

    def test_prepared_and_lazy_solves_bit_match(self, small_road):
        """ADDS consumes the prepared arrays (the WTB relax path); the
        lazy fallback must produce the identical result."""
        from repro.baselines.common import get_solver_info

        spec = sim_gpu()
        cost = sim_cost(spec)
        lazy = CSRGraph(
            row_offsets=small_road.row_offsets,
            col_indices=small_road.col_indices,
            weights=small_road.weights,
            name=small_road.name,
        )
        prepared = CSRGraph(
            row_offsets=small_road.row_offsets,
            col_indices=small_road.col_indices,
            weights=small_road.weights,
            name=small_road.name,
        ).prepare()
        info = get_solver_info("adds")
        a = info(lazy, 0, spec=spec, cost=cost)
        b = info(prepared, 0, spec=spec, cost=cost)
        assert np.array_equal(a.dist, b.dist)
        assert np.array_equal(a.predecessors, b.predecessors)
        assert a.work_count == b.work_count
        assert a.time_us == b.time_us
