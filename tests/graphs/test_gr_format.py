"""Round-trip and error-handling tests for the GR / DIMACS formats."""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import grid_road, read_gr, rmat, write_gr
from repro.graphs.gr_format import read_dimacs, write_dimacs


def assert_same_graph(a, b):
    assert np.array_equal(a.row_offsets, b.row_offsets)
    assert np.array_equal(a.col_indices, b.col_indices)
    assert np.array_equal(a.weights, b.weights)


class TestGrRoundTrip:
    def test_int_roundtrip(self, tmp_path, small_road):
        p = tmp_path / "g.gr"
        write_gr(small_road, p)
        assert_same_graph(small_road, read_gr(p))

    def test_float_roundtrip(self, tmp_path, small_road):
        p = tmp_path / "g.gr"
        f = small_road.as_float()
        write_gr(f, p)
        g = read_gr(p, float_weights=True)
        assert g.weights.dtype == np.float32
        assert_same_graph(f, g)

    def test_odd_edge_count_padding(self, tmp_path, tiny_graph):
        assert tiny_graph.num_edges % 2 == 1
        p = tmp_path / "odd.gr"
        write_gr(tiny_graph, p)
        assert_same_graph(tiny_graph, read_gr(p))
        # header(32) + outIdx(3*8) + outs(3*4) + pad(4) + weights(3*4)
        assert p.stat().st_size == 32 + 24 + 12 + 4 + 12

    def test_even_edge_count_no_padding(self, tmp_path):
        from repro.graphs import from_edge_list

        g = from_edge_list(2, [(0, 1, 3), (1, 0, 4)])
        p = tmp_path / "even.gr"
        write_gr(g, p)
        assert p.stat().st_size == 32 + 16 + 8 + 8
        assert_same_graph(g, read_gr(p))

    def test_empty_graph_roundtrip(self, tmp_path):
        from repro.graphs import from_edge_list

        g = from_edge_list(4, [])
        p = tmp_path / "empty.gr"
        write_gr(g, p)
        g2 = read_gr(p)
        assert g2.num_vertices == 4
        assert g2.num_edges == 0

    def test_name_defaults_to_stem(self, tmp_path, small_road):
        p = tmp_path / "myroad.gr"
        write_gr(small_road, p)
        assert read_gr(p).name == "myroad"

    def test_rmat_roundtrip(self, tmp_path, small_rmat):
        p = tmp_path / "r.gr"
        write_gr(small_rmat, p)
        assert_same_graph(small_rmat, read_gr(p))

    def test_unweighted_roundtrip(self, tmp_path, small_road):
        p = tmp_path / "u.gr"
        write_gr(small_road, p, unweighted=True)
        # edge_data_size = 0 on disk, no weight payload
        version, edata, n, m = struct.unpack_from("<QQQQ", p.read_bytes(), 0)
        assert edata == 0
        pad = 4 if m % 2 == 1 else 0
        assert p.stat().st_size == 32 + 8 * n + 4 * m + pad
        g = read_gr(p)
        assert np.array_equal(g.row_offsets, small_road.row_offsets)
        assert np.array_equal(g.col_indices, small_road.col_indices)
        assert np.all(g.weights == 1)

    def test_unweighted_rejects_float_weights(self, tmp_path, small_road):
        with pytest.raises(GraphFormatError, match="unweighted"):
            write_gr(small_road, tmp_path / "u.gr",
                     unweighted=True, float_weights=True)


class TestGrErrors:
    def test_truncated_header(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_bytes(b"\x01\x00")
        with pytest.raises(GraphFormatError, match="truncated"):
            read_gr(p)

    def test_wrong_version(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_bytes(struct.pack("<QQQQ", 9, 4, 0, 0))
        with pytest.raises(GraphFormatError, match="version"):
            read_gr(p)

    def test_bad_edge_data_size(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_bytes(struct.pack("<QQQQ", 1, 16, 0, 0))
        with pytest.raises(GraphFormatError, match="edge data size"):
            read_gr(p)

    def test_truncated_body(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_bytes(struct.pack("<QQQQ", 1, 4, 100, 500))
        with pytest.raises(GraphFormatError, match="too short"):
            read_gr(p)

    def test_col_index_out_of_range(self, tmp_path):
        # 2 vertices, 2 edges; second edge targets vertex 7 (>= num_nodes)
        p = tmp_path / "bad.gr"
        body = struct.pack("<QQQQ", 1, 4, 2, 2)
        body += struct.pack("<QQ", 1, 2)  # valid out_idx ends
        body += struct.pack("<II", 1, 7)  # cols: 1 ok, 7 out of range
        body += struct.pack("<II", 1, 1)  # weights
        p.write_bytes(body)
        with pytest.raises(GraphFormatError, match=r"col_indices\[1\] = 7"):
            read_gr(p)

    def test_col_index_huge_not_wrapped(self, tmp_path):
        # a u32 that would go negative under a blind int32 cast must be
        # reported with its real value, not silently wrapped
        p = tmp_path / "bad.gr"
        body = struct.pack("<QQQQ", 1, 4, 2, 2)
        body += struct.pack("<QQ", 1, 2)
        body += struct.pack("<II", 0, 2**31 + 5)
        body += struct.pack("<II", 1, 1)
        p.write_bytes(body)
        with pytest.raises(GraphFormatError, match=str(2**31 + 5)):
            read_gr(p)

    def test_corrupt_out_idx(self, tmp_path):
        p = tmp_path / "bad.gr"
        body = struct.pack("<QQQQ", 1, 4, 2, 2)
        body += struct.pack("<QQ", 5, 2)  # decreasing / wrong total
        body += struct.pack("<II", 0, 1)
        body += struct.pack("<II", 1, 1)
        p.write_bytes(body)
        with pytest.raises(GraphFormatError, match="out_idx"):
            read_gr(p)


class TestDimacs:
    def test_roundtrip(self, tmp_path, tiny_graph):
        p = tmp_path / "g.dimacs"
        write_dimacs(tiny_graph, p)
        g = read_dimacs(p)
        assert sorted(g.edges()) == sorted(tiny_graph.edges())

    def test_read_from_stream(self):
        text = "c comment\np sp 3 2\na 1 2 5\na 2 3 7\n"
        g = read_dimacs(io.StringIO(text))
        assert g.num_vertices == 3
        assert sorted(g.edges()) == [(0, 1, 5), (1, 2, 7)]

    def test_missing_problem_line(self):
        with pytest.raises(GraphFormatError, match="problem line"):
            read_dimacs(io.StringIO("a 1 2 5\n"))

    def test_unknown_record(self):
        with pytest.raises(GraphFormatError, match="unknown record"):
            read_dimacs(io.StringIO("p sp 2 1\nx 1 2\n"))

    def test_bad_arc_line(self):
        with pytest.raises(GraphFormatError, match="bad arc"):
            read_dimacs(io.StringIO("p sp 2 1\na 1 2\n"))

    def test_float_weights(self):
        text = "p sp 2 1\na 1 2 2.5\n"
        g = read_dimacs(io.StringIO(text), dtype="float32")
        assert g.weights[0] == pytest.approx(2.5)
