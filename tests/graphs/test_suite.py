"""Tests for the benchmark corpus builder."""

from __future__ import annotations

import pytest

from repro.errors import GraphConstructionError
from repro.graphs import build_suite, named_graph, reachable_fraction
from repro.graphs.metrics import compute_stats
from repro.graphs.suite import NAMED_STANDINS


class TestBuildSuite:
    def test_default_size(self):
        suite = build_suite()
        assert len(suite) >= 40

    def test_lazy_and_cached(self):
        e = build_suite()[0]
        g1 = e.graph()
        assert e.graph() is g1  # cached

    def test_graph_named_after_entry(self):
        e = build_suite()[0]
        assert e.graph().name == e.name

    def test_unique_names(self):
        names = [e.name for e in build_suite()]
        assert len(names) == len(set(names))

    def test_category_filter(self):
        suite = build_suite(categories=["road"])
        assert suite
        assert all(e.category == "road" for e in suite)

    def test_max_graphs(self):
        assert len(build_suite(max_graphs=5)) == 5

    def test_exclude_named(self):
        suite = build_suite(include_named=False)
        names = {e.name for e in suite}
        assert not names.intersection(NAMED_STANDINS)

    def test_exclude_float(self):
        suite = build_suite(include_float=False)
        assert all(e.category != "float" for e in suite)

    def test_scale_grows_graphs(self):
        small = build_suite(scale=0.25, categories=["road"])[0].graph()
        big = build_suite(scale=1.0, categories=["road"])[0].graph()
        assert big.num_vertices > small.num_vertices

    def test_invalid_scale(self):
        with pytest.raises(GraphConstructionError):
            build_suite(scale=0)

    def test_float_entries_are_float(self):
        suite = build_suite(categories=["float"])
        for e in suite:
            assert not e.graph().is_integer_weighted

    def test_covers_table2_degree_spread(self):
        """The corpus must span low and high degree bins like Table 2."""
        suite = build_suite(include_float=False, include_named=False)
        labels = set()
        for e in suite:
            g = e.graph()
            labels.add(compute_stats(g).degree_bin_label())
        assert "<4" in labels
        assert any(l in labels for l in ("32-64", ">=64"))
        assert len(labels) >= 3


class TestNamedGraphs:
    @pytest.mark.parametrize("name", NAMED_STANDINS)
    def test_named_graphs_build_and_reach(self, name):
        g = named_graph(name)
        assert g.name == name
        assert g.num_vertices > 500
        # the paper's selection criterion
        assert reachable_fraction(g, 0) >= 0.75

    def test_unknown_name(self):
        with pytest.raises(GraphConstructionError):
            named_graph("no-such-graph")

    def test_road_standin_has_high_diameter_low_degree(self):
        st = compute_stats(named_graph("road-usa-mini"))
        assert st.avg_degree < 4.5
        assert st.diameter > 100

    def test_rmat_standin_is_power_law(self):
        g = named_graph("rmat22-mini")
        deg = g.out_degree()
        assert int(deg.max()) > 20 * max(1.0, float(deg.mean()))

    def test_cbig_standin_is_shallow(self):
        from repro.graphs import pseudo_diameter

        g = named_graph("c-big-mini")
        assert pseudo_diameter(g) < 60
