"""Unit tests for CSR graph construction and views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graphs import CSRGraph, from_edge_list
from repro.graphs.csr import INF_FLOAT32, INF_INT32, expand_frontier


class TestFromEdgeList:
    def test_basic_construction(self, tiny_graph):
        assert tiny_graph.num_vertices == 3
        assert tiny_graph.num_edges == 3
        assert tiny_graph.is_integer_weighted

    def test_row_offsets_are_prefix_sums(self, tiny_graph):
        assert tiny_graph.row_offsets.tolist() == [0, 2, 2, 3]

    def test_neighbors_sorted_by_destination(self):
        g = from_edge_list(4, [(0, 3, 1), (0, 1, 2), (0, 2, 3)])
        dsts, ws = g.neighbors(0)
        assert dsts.tolist() == [1, 2, 3]
        assert ws.tolist() == [2, 3, 1]

    def test_empty_graph(self):
        g = from_edge_list(5, [])
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.out_degree(2) == 0

    def test_zero_vertices(self):
        g = from_edge_list(0, [])
        assert g.num_vertices == 0

    def test_float_dtype(self):
        g = from_edge_list(2, [(0, 1, 2.5)], dtype="float32")
        assert not g.is_integer_weighted
        assert g.weights[0] == pytest.approx(2.5)

    def test_int_dtype_rounds(self):
        g = from_edge_list(2, [(0, 1, 2.6)], dtype="int32")
        assert g.weights[0] == 3

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphConstructionError):
            from_edge_list(2, [(0, 1, -5)])

    def test_negative_weight_negated_like_paper(self):
        g = from_edge_list(2, [(0, 1, -5)], negate_negative_weights=True)
        assert g.weights[0] == 5

    def test_out_of_range_source(self):
        with pytest.raises(GraphConstructionError):
            from_edge_list(2, [(2, 0, 1)])

    def test_out_of_range_destination(self):
        with pytest.raises(GraphConstructionError):
            from_edge_list(2, [(0, 5, 1)])

    def test_dedupe_keeps_min_weight(self):
        g = from_edge_list(2, [(0, 1, 7), (0, 1, 3), (0, 1, 9)], dedupe=True)
        assert g.num_edges == 1
        assert g.weights[0] == 3

    def test_without_dedupe_parallel_edges_kept(self):
        g = from_edge_list(2, [(0, 1, 7), (0, 1, 3)])
        assert g.num_edges == 2

    def test_bad_dtype_rejected(self):
        with pytest.raises(GraphConstructionError):
            from_edge_list(2, [(0, 1, 1)], dtype="float64")

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphConstructionError):
            from_edge_list(2, np.ones((3, 2)))


class TestCSRGraphValidation:
    def test_inconsistent_offsets_rejected(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(
                row_offsets=np.array([0, 5], dtype=np.int64),
                col_indices=np.array([0], dtype=np.int32),
                weights=np.array([1], dtype=np.int32),
            )

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(
                row_offsets=np.array([0, 2, 1, 2], dtype=np.int64),
                col_indices=np.array([0, 1], dtype=np.int32),
                weights=np.array([1, 1], dtype=np.int32),
            )

    def test_col_index_out_of_range(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(
                row_offsets=np.array([0, 1], dtype=np.int64),
                col_indices=np.array([7], dtype=np.int32),
                weights=np.array([1], dtype=np.int32),
            )

    def test_weight_length_mismatch(self):
        with pytest.raises(GraphConstructionError):
            CSRGraph(
                row_offsets=np.array([0, 1], dtype=np.int64),
                col_indices=np.array([0], dtype=np.int32),
                weights=np.array([1, 2], dtype=np.int32),
            )


class TestProperties:
    def test_degrees(self, tiny_graph):
        assert tiny_graph.out_degree(0) == 2
        assert tiny_graph.out_degree(1) == 0
        assert tiny_graph.out_degree().tolist() == [2, 0, 1]

    def test_average_statistics(self, tiny_graph):
        assert tiny_graph.average_degree() == pytest.approx(1.0)
        assert tiny_graph.average_weight() == pytest.approx((10 + 1 + 2) / 3)
        assert tiny_graph.max_weight() == 10

    def test_infinity_sentinels(self, tiny_graph):
        assert tiny_graph.infinity == INF_INT32
        assert tiny_graph.as_float().infinity == INF_FLOAT32

    def test_edges_iterator(self, tiny_graph):
        assert sorted(tiny_graph.edges()) == [(0, 1, 10), (0, 2, 1), (2, 1, 2)]


class TestTransforms:
    def test_reversed_roundtrip(self, small_road):
        rev = small_road.reversed()
        assert rev.num_edges == small_road.num_edges
        back = rev.reversed()
        fwd = sorted(small_road.edges())
        assert sorted(back.edges()) == fwd

    def test_reversed_edges(self, tiny_graph):
        rev = tiny_graph.reversed()
        assert sorted(rev.edges()) == [(1, 0, 10), (1, 2, 2), (2, 0, 1)]

    def test_as_float_preserves_topology(self, tiny_graph):
        f = tiny_graph.as_float()
        assert not f.is_integer_weighted
        assert np.array_equal(f.col_indices, tiny_graph.col_indices)
        assert f.weights.tolist() == [10.0, 1.0, 2.0]

    def test_as_float_idempotent(self, tiny_graph):
        f = tiny_graph.as_float()
        assert f.as_float() is f

    def test_with_weights(self, tiny_graph):
        w = np.array([5, 5, 5], dtype=np.int32)
        g = tiny_graph.with_weights(w)
        assert g.weights.tolist() == [5, 5, 5]
        assert np.array_equal(g.col_indices, tiny_graph.col_indices)


class TestExpandFrontier:
    def test_empty_frontier(self, tiny_graph):
        src, dst, w = expand_frontier(tiny_graph, np.array([], dtype=np.int64))
        assert src.size == dst.size == w.size == 0

    def test_single_vertex(self, tiny_graph):
        src, dst, w = expand_frontier(tiny_graph, np.array([0]))
        assert src.tolist() == [0, 0]
        assert dst.tolist() == [1, 2]
        assert w.tolist() == [10, 1]

    def test_vertex_without_edges(self, tiny_graph):
        src, dst, w = expand_frontier(tiny_graph, np.array([1]))
        assert src.size == 0

    def test_multi_vertex_matches_manual(self, small_road):
        frontier = np.array([0, 5, 17, 100])
        src, dst, w = expand_frontier(small_road, frontier)
        exp_src, exp_dst, exp_w = [], [], []
        for v in frontier.tolist():
            d, ww = small_road.neighbors(v)
            exp_src += [v] * d.size
            exp_dst += d.tolist()
            exp_w += ww.tolist()
        assert src.tolist() == exp_src
        assert dst.tolist() == exp_dst
        assert w.tolist() == exp_w

    def test_duplicate_frontier_vertices_expand_twice(self, tiny_graph):
        src, dst, _ = expand_frontier(tiny_graph, np.array([2, 2]))
        assert src.tolist() == [2, 2]
        assert dst.tolist() == [1, 1]
