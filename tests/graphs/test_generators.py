"""Tests for the synthetic graph generators.

Each generator must (a) be deterministic under a seed, (b) produce the
structural signature of its class (degree, diameter shape), and (c) keep
enough of the graph reachable to satisfy the paper's §6.1.1 selection
criterion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graphs import (
    clique_chain,
    fem_mesh,
    grid_road,
    pseudo_diameter,
    random_geometric,
    random_gnm,
    reachable_fraction,
    rmat,
)


def edges_set(g):
    return sorted(g.edges())


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: grid_road(12, 9, seed=s),
            lambda s: rmat(8, seed=s),
            lambda s: random_gnm(300, 900, seed=s),
            lambda s: random_geometric(300, k=4, seed=s),
            lambda s: fem_mesh(300, band=12, stride=3, seed=s),
            lambda s: clique_chain(4, 12, seed=s),
        ],
        ids=["road", "rmat", "gnm", "geo", "mesh", "clique"],
    )
    def test_same_seed_same_graph(self, factory):
        assert edges_set(factory(3)) == edges_set(factory(3))

    def test_different_seed_different_weights(self):
        a = grid_road(10, 10, seed=1)
        b = grid_road(10, 10, seed=2)
        assert not np.array_equal(a.weights, b.weights)


class TestGridRoad:
    def test_vertex_count(self):
        g = grid_road(7, 5)
        assert g.num_vertices == 35

    def test_degree_bounded_by_four(self):
        g = grid_road(20, 20)
        assert int(g.out_degree().max()) <= 4

    def test_edge_count_formula(self):
        w, h = 9, 6
        g = grid_road(w, h)
        undirected = (w - 1) * h + w * (h - 1)
        assert g.num_edges == 2 * undirected

    def test_high_diameter(self):
        g = grid_road(40, 4)
        assert pseudo_diameter(g) >= 40  # ≈ width + height

    def test_fully_reachable(self):
        assert reachable_fraction(grid_road(15, 15)) == 1.0

    def test_symmetric(self):
        g = grid_road(6, 6, seed=5)
        es = set((u, v, w) for u, v, w in g.edges())
        assert all((v, u, w) in es for u, v, w in es)

    def test_diagonals_increase_edges(self):
        base = grid_road(20, 20, seed=3).num_edges
        diag = grid_road(20, 20, seed=3, diagonal_fraction=0.5).num_edges
        assert diag > base

    def test_rejects_empty(self):
        with pytest.raises(GraphConstructionError):
            grid_road(0, 5)


class TestRmat:
    def test_vertex_count_power_of_two(self):
        assert rmat(8).num_vertices == 256

    def test_power_law_skew(self):
        g = rmat(11, edge_factor=8, seed=1)
        deg = np.sort(g.out_degree())[::-1]
        # top 1% of vertices own far more than 1% of the edges
        top = deg[: max(1, deg.size // 100)].sum()
        assert top > 0.035 * g.num_edges
        assert deg[0] > 7 * max(1.0, np.median(deg))

    def test_reachability_meets_paper_criterion(self):
        g = rmat(11, seed=5)
        assert reachable_fraction(g, 0) >= 0.75

    def test_no_self_loops(self):
        g = rmat(8, seed=2)
        assert all(u != v for u, v, _ in g.edges())

    def test_no_duplicate_edges(self):
        g = rmat(8, seed=2)
        pairs = [(u, v) for u, v, _ in g.edges()]
        assert len(pairs) == len(set(pairs))

    def test_bidirectional_flag(self):
        g = rmat(7, bidirectional=True, seed=3)
        es = {(u, v) for u, v, _ in g.edges()}
        assert all((v, u) in es for u, v in es)

    def test_invalid_probabilities(self):
        with pytest.raises(GraphConstructionError):
            rmat(8, a=0.6, b=0.3, c=0.2)

    def test_invalid_scale(self):
        with pytest.raises(GraphConstructionError):
            rmat(0)


class TestRandomGnm:
    def test_edge_count_close_to_requested(self):
        g = random_gnm(1000, 4000, bidirectional=False, seed=1)
        assert 0.95 * 4000 <= g.num_edges <= 4000

    def test_binomial_degree_no_heavy_tail(self):
        g = random_gnm(2000, 16000, seed=1)
        deg = g.out_degree()
        assert deg.max() < deg.mean() * 4

    def test_low_diameter(self):
        g = random_gnm(2000, 16000, seed=1)
        assert pseudo_diameter(g) < 15

    def test_no_self_loops(self):
        g = random_gnm(100, 400, seed=1)
        assert all(u != v for u, v, _ in g.edges())

    def test_needs_two_vertices(self):
        with pytest.raises(GraphConstructionError):
            random_gnm(1, 0)


class TestRandomGeometric:
    def test_bounded_degree(self):
        g = random_geometric(800, k=5, seed=1)
        # k out-neighbours plus reverse copies; spatial graphs stay low degree
        assert g.out_degree().mean() < 14

    def test_high_diameter_scaling(self):
        small = pseudo_diameter(random_geometric(300, k=5, seed=1))
        large = pseudo_diameter(random_geometric(2700, k=5, seed=1))
        assert large > small * 1.8  # ~sqrt(9)=3x in theory

    def test_mostly_reachable(self):
        assert reachable_fraction(random_geometric(1000, k=6, seed=2)) >= 0.75

    def test_weights_positive(self):
        g = random_geometric(300, k=4, seed=3)
        assert int(g.weights.min()) >= 1

    def test_needs_enough_points(self):
        with pytest.raises(GraphConstructionError):
            random_geometric(4, k=6)


class TestFemMesh:
    def test_band_structure(self):
        g = fem_mesh(500, band=20, stride=4, seed=1)
        for u, v, _ in g.edges():
            assert abs(u - v) <= 20

    def test_regular_degree(self):
        g = fem_mesh(2000, band=24, stride=3, seed=1)
        deg = g.out_degree()
        interior = deg[30:-30]
        assert interior.std() < 1e-9  # interior vertices all identical

    def test_connected(self):
        assert reachable_fraction(fem_mesh(600, band=12, stride=3)) == 1.0

    def test_mid_diameter(self):
        g = fem_mesh(4000, band=40, stride=2, seed=1)
        d = pseudo_diameter(g)
        assert 50 < d < 500

    def test_rejects_tiny(self):
        with pytest.raises(GraphConstructionError):
            fem_mesh(10, band=24)


class TestCliqueChain:
    def test_vertex_count(self):
        assert clique_chain(5, 10).num_vertices == 50

    def test_low_diameter(self):
        g = clique_chain(8, 30, seed=1)
        assert pseudo_diameter(g) <= 2 * 8 + 2

    def test_dense_inside(self):
        g = clique_chain(2, 20, seed=1)
        # each clique contributes k*(k-1) directed edges plus 2 bridges
        assert g.num_edges == 2 * (20 * 19) + 2

    def test_connected(self):
        assert reachable_fraction(clique_chain(6, 12)) == 1.0

    def test_rejects_degenerate(self):
        with pytest.raises(GraphConstructionError):
            clique_chain(0, 5)
        with pytest.raises(GraphConstructionError):
            clique_chain(3, 1)
