"""Tests for the weight-distribution styles (uniform vs heavy-tailed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graphs import clique_chain, fem_mesh, random_gnm, rmat

HEAVY_FACTORIES = [
    lambda: fem_mesh(600, band=12, stride=3, max_weight=65535,
                     weight_style="heavy", seed=5),
    lambda: clique_chain(5, 15, max_weight=65535, weight_style="heavy", seed=5),
    lambda: random_gnm(500, 2000, max_weight=65535, weight_style="heavy", seed=5),
    lambda: rmat(9, max_weight=65535, weight_style="heavy", seed=5),
]


class TestHeavyTails:
    @pytest.mark.parametrize("factory", HEAVY_FACTORIES,
                             ids=["mesh", "clique", "gnm", "rmat"])
    def test_mean_far_above_median(self, factory):
        """The property the Δ-heuristic analysis needs: a tail-dominated
        average (DESIGN.md / Figure 4 regime)."""
        g = factory()
        w = g.weights.astype(np.float64)
        assert w.mean() > 8 * np.median(w)

    @pytest.mark.parametrize("factory", HEAVY_FACTORIES,
                             ids=["mesh", "clique", "gnm", "rmat"])
    def test_weights_in_range(self, factory):
        g = factory()
        assert int(g.weights.min()) >= 1
        assert int(g.weights.max()) <= 65535

    def test_median_stays_small(self):
        g = fem_mesh(600, band=12, stride=3, max_weight=65535,
                     weight_style="heavy", seed=1)
        assert np.median(g.weights) <= 10  # lognormal median ~4

    def test_deterministic(self):
        a = fem_mesh(300, band=12, stride=3, weight_style="heavy", seed=9)
        b = fem_mesh(300, band=12, stride=3, weight_style="heavy", seed=9)
        assert np.array_equal(a.weights, b.weights)

    def test_unknown_style_rejected(self):
        with pytest.raises(GraphConstructionError, match="weight style"):
            fem_mesh(300, band=12, stride=3, weight_style="pareto")

    def test_uniform_vs_heavy_differ(self):
        u = random_gnm(400, 1600, max_weight=65535, seed=3)
        h = random_gnm(400, 1600, max_weight=65535, weight_style="heavy", seed=3)
        assert not np.array_equal(u.weights, h.weights)
        assert np.median(h.weights) < np.median(u.weights)


class TestSuiteSkewCategory:
    def test_skew_entries_present(self):
        from repro.graphs import build_suite

        skew = build_suite(categories=["skew"])
        assert len(skew) >= 4

    def test_skew_entries_are_heavy(self):
        from repro.graphs import build_suite

        for e in build_suite(categories=["skew"])[:3]:
            g = e.graph()
            w = g.weights.astype(np.float64)
            assert w.mean() > 5 * np.median(w), e.name
