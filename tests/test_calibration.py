"""Tests for the simulation-scale calibration layer."""

from __future__ import annotations

import pytest

from repro.calibration import (
    BANDWIDTH_SCALE,
    LAUNCH_SCALE,
    SIM_SCALE,
    default_cost,
    default_gpu,
    resolve_device,
    sim_cost,
    sim_gpu,
)
from repro.gpu.costmodel import CostModel
from repro.gpu.specs import RTX_2080TI, RTX_3090


class TestScaledDevices:
    def test_default_gpu_is_scaled_2080(self):
        d = default_gpu()
        assert "2080" in d.name
        assert d.sm_count == max(1, round(68 * SIM_SCALE))
        assert d.total_threads < RTX_2080TI.total_threads

    def test_default_gpu_cached(self):
        assert default_gpu() is default_gpu()

    def test_bandwidth_scales_by_sqrt(self):
        d = sim_gpu(RTX_2080TI)
        assert d.dram_bandwidth_gbs == pytest.approx(
            RTX_2080TI.dram_bandwidth_gbs * BANDWIDTH_SCALE
        )

    def test_relative_3090_advantage_preserved(self):
        """Table 5's premise: the scaled 3090 keeps its bandwidth edge."""
        a = sim_gpu(RTX_2080TI)
        b = sim_gpu(RTX_3090)
        assert b.dram_bandwidth_gbs / a.dram_bandwidth_gbs == pytest.approx(
            RTX_3090.dram_bandwidth_gbs / RTX_2080TI.dram_bandwidth_gbs
        )
        assert b.total_threads > a.total_threads

    def test_per_sm_limits_untouched(self):
        d = sim_gpu(RTX_2080TI)
        assert d.threads_per_sm == RTX_2080TI.threads_per_sm
        assert d.max_clock_ghz == RTX_2080TI.max_clock_ghz
        assert d.scratchpad_kb_per_sm == RTX_2080TI.scratchpad_kb_per_sm

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            RTX_2080TI.scaled(0)


class TestScaledCost:
    def test_launch_scaled(self):
        cost = sim_cost(sim_gpu(RTX_2080TI))
        assert cost.kernel_launch_us == pytest.approx(6.0 * LAUNCH_SCALE)

    def test_overrides_pass_through(self):
        cost = sim_cost(sim_gpu(RTX_2080TI), atomic_cycles=999.0)
        assert cost.atomic_cycles == 999.0

    def test_default_cost_matches_default_gpu(self):
        c = default_cost()
        assert c.spec == default_gpu()


class TestResolveDevice:
    def test_neither_given(self):
        spec, cost = resolve_device(None, None)
        assert spec is default_gpu()
        assert cost.kernel_launch_us == pytest.approx(6.0 * LAUNCH_SCALE)

    def test_spec_given_gets_stock_cost(self):
        """A full-size card keeps the full 6 us launch."""
        spec, cost = resolve_device(RTX_2080TI, None)
        assert spec is RTX_2080TI
        assert cost.kernel_launch_us == 6.0

    def test_both_given_used_as_is(self):
        my_cost = CostModel(RTX_3090, kernel_launch_us=1.0)
        spec, cost = resolve_device(RTX_3090, my_cost)
        assert spec is RTX_3090 and cost is my_cost
