"""Unit tests for the MetricsRegistry and its metric types."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.trace import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    UNIFORM_SOLVER_KEYS,
)


def test_counter_monotonic():
    c = Counter("atomics")
    c.inc()
    c.inc(4)
    assert c.value == 5.0
    with pytest.raises(TraceError):
        c.inc(-1)


def test_gauge_last_value_wins():
    g = Gauge("delta")
    g.set(32)
    g.set(64)
    assert g.value == 64


def test_histogram_streaming_stats():
    h = Histogram("batch")
    for v in (4, 8, 12):
        h.observe(v)
    assert h.count == 3
    assert h.mean == pytest.approx(8.0)
    assert h.min == 4.0
    assert h.max == 12.0
    assert Histogram("empty").mean == 0.0


def test_registry_get_or_create_and_type_guard():
    m = MetricsRegistry()
    assert m.counter("a") is m.counter("a")
    with pytest.raises(TraceError):
        m.gauge("a")  # already a counter
    assert "a" in m
    assert "b" not in m


def test_registry_convenience_and_snapshot():
    m = MetricsRegistry()
    m.inc("atomics", 3)
    m.set("delta", 16.0)
    m.observe("batch", 10)
    m.observe("batch", 30)
    m.update({"n_wtbs": 17})
    snap = m.snapshot()
    assert snap["atomics"] == 3.0
    assert snap["delta"] == 16.0
    assert snap["n_wtbs"] == 17
    assert snap["batch_count"] == 2
    assert snap["batch_mean"] == pytest.approx(20.0)
    assert snap["batch_min"] == 10.0
    assert snap["batch_max"] == 30.0
    assert m.value("atomics") == 3.0
    assert m.value("batch") == pytest.approx(20.0)
    assert len(m) == 4
    assert m.names() == ["atomics", "batch", "delta", "n_wtbs"]


def test_rows_for_csv():
    m = MetricsRegistry()
    m.inc("c", 2)
    m.set("g", 7)
    m.observe("h", 5)
    rows = m.rows()
    kinds = {name: kind for name, kind, _ in rows}
    assert kinds["c"] == "counter"
    assert kinds["g"] == "gauge"
    assert kinds["h_count"] == "histogram"
    assert ("h_mean", "histogram", 5.0) in rows


def test_uniform_solver_keys_contract():
    assert UNIFORM_SOLVER_KEYS == (
        "atomics", "fences", "kernel_launches", "work_count"
    )
