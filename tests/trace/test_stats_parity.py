"""Every registered solver reports the uniform stats vocabulary.

The paper's cross-solver tables (3 and 4) compare atomics / kernel
launches / work across algorithms; this only works if every solver
spells those keys the same way.  The MetricsRegistry enforces the
vocabulary — this test enforces that every solver uses it.
"""

from __future__ import annotations

import pytest

from repro.baselines.common import SOLVERS, get_solver
from repro.trace import MetricsRegistry, UNIFORM_SOLVER_KEYS


@pytest.mark.parametrize("name", sorted(SOLVERS))
def test_solver_reports_uniform_keys(name, small_road):
    result = get_solver(name)(small_road, 0)
    missing = [k for k in UNIFORM_SOLVER_KEYS if k not in result.stats]
    assert not missing, f"{name} stats missing {missing}"
    assert isinstance(result.metrics, MetricsRegistry)
    for k in UNIFORM_SOLVER_KEYS:
        assert k in result.metrics


@pytest.mark.parametrize("name", sorted(SOLVERS))
def test_kernel_launch_semantics(name, small_road):
    """BSP solvers launch one kernel per superstep, ADDS launches one
    persistent kernel, CPU solvers launch none."""
    result = get_solver(name)(small_road, 0)
    launches = result.stats["kernel_launches"]
    if name == "adds":
        assert launches == 1
    elif name in ("nf", "gun-nf", "gun-bf", "nv"):
        assert launches >= 1
        assert launches == result.stats["supersteps"]
    else:
        assert launches == 0


def test_work_count_matches_stats(small_road):
    for name in sorted(SOLVERS):
        result = get_solver(name)(small_road, 0)
        assert result.stats["work_count"] == result.work_count
