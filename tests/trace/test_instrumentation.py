"""End-to-end tracing over the simulated GPU.

The acceptance contract: a traced run is bit-identical to an untraced
one, events are monotonically ordered per track, and the trace contains
the MTB / WTB / Δ-controller activity the paper's figures discuss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.nearfar import solve_nf
from repro.core.adds import solve_adds
from repro.errors import SolverError
from repro.graphs import clique_chain, grid_road
from repro.harness import TRACEABLE_SOLVERS, run_traced_solve
from repro.trace import Tracer
from repro.trace.tracer import SPAN


@pytest.fixture(scope="module")
def road():
    return grid_road(24, 24, max_weight=8192, seed=3)


@pytest.fixture(scope="module")
def traced_road(road):
    tracer = Tracer()
    result = solve_adds(road, 0, tracer=tracer)
    return result, tracer


def test_traced_adds_bit_identical_to_untraced(road, traced_road):
    traced, _ = traced_road
    plain = solve_adds(road, 0)
    assert np.array_equal(plain.dist, traced.dist)
    assert plain.work_count == traced.work_count
    assert plain.time_us == traced.time_us  # bit-identical, not approx
    assert plain.stats == traced.stats


def test_events_monotonic_per_track(traced_road):
    _, tracer = traced_road
    assert len(tracer) > 0
    for track in tracer.tracks():
        ts = [ev.ts_us for ev in tracer.events_for(track)]
        assert ts == sorted(ts), f"track {track} out of order"


def test_trace_contains_mtb_wtb_and_queue_activity(traced_road):
    _, tracer = traced_road
    tracks = set(tracer.tracks())
    assert "MTB" in tracks
    assert any(t.startswith("WTB") for t in tracks)
    names = {ev.name for ev in tracer.events}
    assert {"mtb_pass", "assign", "relax_batch", "bucket_push",
            "kernel_launch"} <= names
    # WTB relax batches are spans with positive duration on WTB tracks
    batches = [e for e in tracer.by_name("relax_batch") if e.kind == SPAN]
    assert batches and all(e.dur_us > 0 for e in batches)
    assert all(e.track.startswith("WTB") for e in batches)


def test_delta_retune_events_match_counter():
    # the long-chain cliques graph forces at least one Δ adjustment
    g = clique_chain(12, 40, seed=0)
    tracer = Tracer()
    result = solve_adds(g, 0, tracer=tracer)
    retunes = tracer.by_name("delta_retune")
    assert result.stats["delta_adjustments"] >= 1
    assert len(retunes) == result.stats["delta_adjustments"]
    for ev in retunes:
        assert ev.track == "controller"
        assert ev.args["old"] != ev.args["new"]


def test_bsp_solver_traces_supersteps(road):
    tracer = Tracer()
    result = solve_nf(road, 0, tracer=tracer)
    steps = tracer.by_name("superstep")
    assert steps
    assert len(steps) == result.stats["supersteps"]
    assert result.stats["kernel_launches"] == result.stats["supersteps"]


def test_run_traced_solve_writes_artifacts(road, tmp_path):
    result, tracer, paths = run_traced_solve(road, "adds", out_dir=tmp_path)
    assert result.reached() == road.num_vertices
    assert len(tracer) > 0
    assert {p.name for p in paths} == {"trace.json", "counters.csv", "summary.txt"}


def test_run_traced_solve_rejects_untraceable_solver(road):
    assert "dijkstra" not in TRACEABLE_SOLVERS
    with pytest.raises(SolverError):
        run_traced_solve(road, "dijkstra")
