"""Unit tests for repro.trace.tracer: event types, ordering, null sink."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.trace import NULL_TRACER, NullTracer, TraceEvent, Tracer, coalesce
from repro.trace.tracer import COUNTER, INSTANT, SPAN


def test_span_instant_counter_recorded():
    t = Tracer()
    t.span("WTB0", "relax_batch", 1.0, 2.5, cat="relax", items=8)
    t.instant("MTB", "assign", 3.0, wtb=0)
    t.counter("edges_in_flight", 4.0, 17)
    assert len(t) == 3
    kinds = [ev.kind for ev in t.events]
    assert kinds == [SPAN, INSTANT, COUNTER]
    span = t.events[0]
    assert span.end_us == pytest.approx(3.5)
    assert span.args["items"] == 8
    assert t.events[2].args["value"] == 17.0


def test_per_track_ordering_enforced():
    t = Tracer()
    t.instant("WTB0", "a", 5.0)
    # a different track may lag behind
    t.instant("WTB1", "b", 1.0)
    # same timestamp is fine (ties are common at dispatch boundaries)
    t.instant("WTB0", "c", 5.0)
    with pytest.raises(TraceError):
        t.instant("WTB0", "backwards", 4.0)


def test_negative_span_duration_rejected():
    t = Tracer()
    with pytest.raises(TraceError):
        t.span("WTB0", "bad", 1.0, -0.5)


def test_tracks_in_first_appearance_order():
    t = Tracer()
    t.instant("MTB", "x", 0.0)
    t.instant("WTB1", "x", 0.0)
    t.instant("MTB", "y", 1.0)
    t.instant("WTB0", "x", 0.5)
    assert t.tracks() == ["MTB", "WTB1", "WTB0"]
    assert [e.name for e in t.events_for("MTB")] == ["x", "y"]
    assert len(t.by_name("x")) == 3


def test_duration_is_latest_event_end():
    t = Tracer()
    assert t.duration_us() == 0.0
    t.span("A", "s", 1.0, 10.0)
    t.instant("B", "i", 5.0)
    assert t.duration_us() == pytest.approx(11.0)


def test_null_tracer_is_inert():
    n = NullTracer()
    assert not n.enabled
    n.span("A", "s", 0.0, 1.0)
    n.instant("A", "i", 0.0)
    n.counter("c", 0.0, 1)
    n.record(TraceEvent(SPAN, "A", "s", 0.0))
    assert len(n) == 0
    assert n.tracks() == []


def test_coalesce():
    t = Tracer()
    assert coalesce(t) is t
    assert coalesce(None) is NULL_TRACER
    assert not NULL_TRACER.enabled


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    t.span("A", "s", 0.0, 1.0)
    assert len(t) == 0
