"""Exporter tests: Perfetto JSON, counters CSV, summary, artifact set."""

from __future__ import annotations

import json

import numpy as np

from repro.trace import (
    MetricsRegistry,
    Tracer,
    counters_csv,
    text_summary,
    to_perfetto,
    write_trace_artifacts,
)


def make_tracer():
    t = Tracer()
    t.span("MTB", "mtb_pass", 0.0, 2.0, cat="compute", items=4)
    t.span("WTB0", "relax_batch", 0.5, 1.5, cat="relax", edges=np.int64(12))
    t.instant("MTB", "assign", 2.0, wtb=0)
    t.counter("edges_in_flight", 1.0, 12)
    return t


def test_perfetto_round_trips_through_json_loads():
    doc = to_perfetto(make_tracer())
    parsed = json.loads(json.dumps(doc))
    assert parsed == doc
    evs = parsed["traceEvents"]
    # one process_name + one thread_name per track + the 4 events
    meta = [e for e in evs if e["ph"] == "M"]
    assert meta[0]["args"]["name"] == "repro-sim"
    thread_names = {e["args"]["name"] for e in meta[1:]}
    assert {"MTB", "WTB0", "counters"} <= thread_names


def test_perfetto_phase_mapping():
    evs = to_perfetto(make_tracer())["traceEvents"]
    by_name = {e["name"]: e for e in evs if e["ph"] != "M"}
    assert by_name["mtb_pass"]["ph"] == "X"
    assert by_name["mtb_pass"]["dur"] == 2.0
    assert by_name["assign"]["ph"] == "i"
    assert by_name["edges_in_flight"]["ph"] == "C"
    assert by_name["edges_in_flight"]["args"]["value"] == 12.0
    # numpy scalar args must be coerced to JSON-native types
    assert by_name["relax_batch"]["args"]["edges"] == 12
    assert not isinstance(by_name["relax_batch"]["args"]["edges"], np.integer)
    # spans on the same track share a tid; different tracks differ
    assert by_name["mtb_pass"]["tid"] == by_name["assign"]["tid"]
    assert by_name["mtb_pass"]["tid"] != by_name["relax_batch"]["tid"]


def test_counters_csv_format():
    m = MetricsRegistry()
    m.inc("atomics", 7)
    m.set("delta", 32.0)
    lines = counters_csv(m).strip().splitlines()
    assert lines[0] == "name,kind,value"
    assert "atomics,counter,7" in lines
    assert "delta,gauge,32" in lines


def test_text_summary_mentions_tracks_and_metrics():
    m = MetricsRegistry()
    m.inc("atomics", 3)
    out = text_summary(make_tracer(), m, title="unit test")
    assert "unit test" in out
    assert "MTB" in out and "WTB0" in out
    assert "atomics" in out


def test_write_trace_artifacts(tmp_path):
    m = MetricsRegistry()
    m.inc("work_count", 5)
    paths = write_trace_artifacts(tmp_path / "out", make_tracer(), m)
    names = {p.name for p in paths}
    assert names == {"trace.json", "counters.csv", "summary.txt"}
    for p in paths:
        assert p.exists() and p.stat().st_size > 0
    doc = json.loads((tmp_path / "out" / "trace.json").read_text())
    assert "traceEvents" in doc
