"""Tests for shortest-path trees (predecessors) and multi-source SSSP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    solve_cpu_ds,
    solve_dijkstra,
    solve_gun_bf,
    solve_gun_nf,
    solve_nf,
    solve_nv,
)
from repro.core import solve_adds
from repro.errors import SolverError
from repro.graphs import from_edge_list

TREE_SOLVERS = [
    solve_dijkstra,
    solve_cpu_ds,
    solve_nf,
    solve_gun_nf,
    solve_gun_bf,
    solve_nv,
    solve_adds,
]


def path_length(graph, path):
    """Sum of edge weights along an explicit path (validates edges exist)."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        dsts, ws = graph.neighbors(u)
        hits = np.flatnonzero(dsts == v)
        assert hits.size, f"path uses missing edge {u}->{v}"
        total += float(ws[hits].min())
    return total


class TestPredecessorTree:
    @pytest.mark.parametrize("solver", TREE_SOLVERS, ids=lambda f: f.__name__)
    def test_tree_consistent_with_distances(self, solver, small_road):
        r = solver(small_road, 0)
        assert r.predecessors is not None
        pred = r.predecessors
        for v in range(small_road.num_vertices):
            if v == 0 or not np.isfinite(r.dist[v]):
                continue
            p = int(pred[v])
            assert p >= 0, f"reached vertex {v} lacks a predecessor"
            # dist[v] == dist[p] + w(p, v) for some edge p->v
            dsts, ws = small_road.neighbors(p)
            hits = np.flatnonzero(dsts == v)
            assert hits.size
            assert r.dist[v] == pytest.approx(
                r.dist[p] + float(ws[hits].min()), rel=1e-3, abs=1e-3
            )

    @pytest.mark.parametrize("solver", TREE_SOLVERS, ids=lambda f: f.__name__)
    def test_path_to_reconstructs_shortest_path(self, solver, small_road, oracle):
        r = solver(small_road, 0)
        ref = oracle(small_road, 0)
        for target in (1, 50, small_road.num_vertices - 1):
            path = r.path_to(target)
            assert path[0] == 0 and path[-1] == target
            tol = 1.0 if solver is solve_nv else 1e-6
            assert path_length(small_road, path) == pytest.approx(
                ref[target], abs=tol
            )

    def test_path_to_source_itself(self, small_road):
        r = solve_dijkstra(small_road, 0)
        assert r.path_to(0) == [0]

    def test_path_to_unreachable_is_none(self, disconnected_graph):
        r = solve_dijkstra(disconnected_graph, 0)
        assert r.path_to(4) is None

    def test_path_to_out_of_range(self, small_road):
        r = solve_dijkstra(small_road, 0)
        with pytest.raises(SolverError):
            r.path_to(10**9)

    def test_path_to_without_tree_raises(self, small_road):
        from repro.baselines.common import SSSPResult

        r = SSSPResult(
            solver="x", graph_name="g", source=0,
            dist=np.zeros(3), work_count=1, time_us=1.0,
        )
        with pytest.raises(SolverError, match="no predecessor"):
            r.path_to(1)

    def test_corrupted_tree_detected(self, small_road):
        r = solve_dijkstra(small_road, 0)
        r.predecessors[5] = 5  # self-loop: walk can never terminate
        r.dist[5] = 1.0
        with pytest.raises(SolverError, match="inconsistent"):
            r.path_to(5)


class TestMultiSource:
    @pytest.mark.parametrize("solver", TREE_SOLVERS, ids=lambda f: f.__name__)
    def test_distances_are_min_over_sources(self, solver, small_road, oracle):
        sources = [0, 37, 150]
        r = solver(small_road, 0, sources=sources)
        expect = np.minimum.reduce([oracle(small_road, s) for s in sources])
        tol = 1.0 if solver is solve_nv else 1e-6
        np.testing.assert_allclose(
            np.nan_to_num(r.dist, posinf=-1),
            np.nan_to_num(expect, posinf=-1),
            atol=tol,
        )

    def test_every_source_at_distance_zero(self, small_road):
        r = solve_adds(small_road, 0, sources=[0, 5, 9])
        assert r.dist[[0, 5, 9]].tolist() == [0.0, 0.0, 0.0]

    def test_paths_root_at_nearest_source(self, small_road):
        sources = [0, small_road.num_vertices - 1]
        r = solve_dijkstra(small_road, 0, sources=sources)
        for target in (3, small_road.num_vertices - 3):
            path = r.path_to(target)
            assert path[0] in sources
            assert path[-1] == target

    def test_duplicate_sources_collapsed(self, small_road, oracle):
        r = solve_nf(small_road, 0, sources=[0, 0, 0])
        np.testing.assert_allclose(
            np.nan_to_num(r.dist, posinf=-1),
            np.nan_to_num(oracle(small_road, 0), posinf=-1),
        )

    def test_primary_must_be_in_sources(self, small_road):
        with pytest.raises(SolverError, match="primary"):
            solve_dijkstra(small_road, 0, sources=[1, 2])

    def test_empty_sources_rejected(self, small_road):
        with pytest.raises(SolverError):
            solve_dijkstra(small_road, 0, sources=[])

    def test_out_of_range_source_rejected(self, small_road):
        with pytest.raises(SolverError):
            solve_adds(small_road, 0, sources=[0, 10**7])

    def test_multi_source_work_not_more_than_sum(self, small_mesh):
        """Sharing one pass over the graph beats solving per source."""
        multi = solve_dijkstra(small_mesh, 0, sources=[0, 400])
        single = solve_dijkstra(small_mesh, 0)
        assert multi.work_count <= 2 * single.work_count
