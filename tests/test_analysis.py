"""Tests for distribution binning, efficiency regions, and rendering."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    SPEEDUP_BINS,
    WORK_BINS,
    ascii_scatter,
    ascii_series,
    bin_ratios,
    classify_region,
    efficiency_points,
    format_distribution_table,
    format_table,
    geometric_mean,
)
from repro.baselines.common import SSSPResult


def result(name="g", work=10, time=100.0, solver="x"):
    return SSSPResult(
        solver=solver,
        graph_name=name,
        source=0,
        dist=np.array([0.0]),
        work_count=work,
        time_us=time,
    )


class TestBins:
    def test_speedup_bins_match_table3(self):
        labels = [lab for _, _, lab in SPEEDUP_BINS]
        assert labels == [
            "<0.9x", "0.9x-1.1x", "1.1x-1.5x", "1.5x-2x", "2x-3x", "3x-5x", ">=5x",
        ]

    def test_work_bins_match_table4(self):
        labels = [lab for _, _, lab in WORK_BINS]
        assert labels == [
            "<0.25x", "0.25x-0.5x", "0.5x-0.75x", "0.75x-1x", "1x-1.5x",
            "1.5x-3x", ">3x",
        ]

    def test_binning_right_open(self):
        d = bin_ratios([0.9, 1.1, 1.5, 2.0, 3.0, 5.0])
        assert d.count("<0.9x") == 0
        assert d.count("0.9x-1.1x") == 1
        assert d.count("1.1x-1.5x") == 1
        assert d.count(">=5x") == 1

    def test_counts_sum_to_total(self):
        vals = [0.1, 0.95, 1.2, 1.7, 2.5, 4.0, 100.0]
        d = bin_ratios(vals)
        assert sum(d.counts) == d.total == len(vals)

    def test_fraction_at_least(self):
        d = bin_ratios([1.0, 1.5, 2.0, 10.0])
        assert d.fraction_at_least(1.5) == pytest.approx(0.75)

    def test_means(self):
        d = bin_ratios([1.0, 4.0])
        assert d.arithmetic_mean == pytest.approx(2.5)
        assert d.geomean == pytest.approx(2.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            bin_ratios([float("nan")])
        with pytest.raises(ValueError):
            bin_ratios([-1.0])

    def test_row_cells_format(self):
        d = bin_ratios([2.5, 2.6, 4.0], label="NF")
        cells = d.row_cells()
        assert cells[4] == "2 (67%)"
        assert cells[5] == "1 (33%)"

    def test_unknown_bin_label(self):
        with pytest.raises(KeyError):
            bin_ratios([1.0]).count("7x-9x")

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0


class TestEfficiency:
    def test_region_classification(self):
        assert classify_region(1.0, 3.0) == "parallelism"  # road-USA-like
        assert classify_region(2.0, 2.1) == "work"  # rmat22-like
        assert classify_region(3.35, 1.6) == "underparallel"  # c-big-like

    def test_paper_examples(self):
        """Figures 11-15's (s, w) pairs must land in the regions §6.4 names."""
        assert classify_region(0.19, 3.09) == "parallelism"  # A.road-USA
        assert classify_region(2.12, 4.0) == "parallelism"  # B.BenElechi1 (both)
        assert classify_region(2.18, 2.29) == "work"  # D.rmat22
        assert classify_region(3.35, 1.6) == "underparallel"  # E.c-big

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            classify_region(0.0, 1.0)

    def test_efficiency_points_from_results(self):
        adds = result("g1", work=100, time=50.0, solver="adds")
        nf = result("g1", work=200, time=200.0, solver="nf")
        (pt,) = efficiency_points([(adds, nf)])
        assert pt.work_gain == pytest.approx(2.0)
        assert pt.speedup == pytest.approx(4.0)
        assert pt.region == "parallelism"

    def test_mismatched_pair_rejected(self):
        with pytest.raises(ValueError):
            efficiency_points([(result("a"), result("b"))])

    def test_non_result_rejected(self):
        with pytest.raises(TypeError):
            efficiency_points([(result("a"), "nope")])


class TestRendering:
    def test_format_table_alignment(self):
        out = format_table(["name", "x"], [["aa", 1], ["b", 22]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[2].startswith("----")

    def test_distribution_table(self):
        d1 = bin_ratios([2.5], label="NF")
        d2 = bin_ratios([0.5], label="NV")
        out = format_distribution_table([d1, d2], title="Table 3")
        assert "NF" in out and "NV" in out and "2x-3x" in out

    def test_distribution_table_requires_same_bins(self):
        a = bin_ratios([1.0])
        b = bin_ratios([1.0], bins=WORK_BINS)
        with pytest.raises(ValueError):
            format_distribution_table([a, b])

    def test_ascii_scatter_renders_points(self):
        out = ascii_scatter([1, 10, 100], [1, 2, 3], log_x=True, title="fig")
        assert out.startswith("fig")
        assert out.count("*") == 3

    def test_ascii_scatter_labels(self):
        out = ascii_scatter([1, 2], [1, 2], labels=["A.road", "B.mesh"])
        assert "A" in out and "B" in out

    def test_ascii_scatter_validates(self):
        with pytest.raises(ValueError):
            ascii_scatter([], [])
        with pytest.raises(ValueError):
            ascii_scatter([1], [1, 2])

    def test_ascii_series_renders_legend(self):
        out = ascii_series(
            {"adds": [(0, 10), (5, 0)], "nf": [(0, 5), (9, 1)]}, title="t"
        )
        assert "a = adds" in out and "n = nf" in out

    def test_ascii_series_log_scale(self):
        out = ascii_series({"x": [(0, 1), (1, 1000)]}, log_y=True)
        assert "|" in out
