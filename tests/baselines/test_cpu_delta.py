"""CPU-DS specifics: bucket ordering, rounds, multicore timing."""

from __future__ import annotations

import pytest

from repro.baselines import solve_cpu_ds, solve_dijkstra
from repro.errors import SolverError
from repro.gpu.costmodel import CpuCostModel
from repro.gpu.specs import CPU_I9_7900X, CpuSpec


class TestOrdering:
    def test_fine_buckets_near_optimal_work(self, small_road):
        """Real delta-stepping with unbounded fine buckets should stay
        close to Dijkstra's work on ordering-sensitive graphs."""
        ds = solve_cpu_ds(small_road, 0, delta=16.0)
        dij = solve_dijkstra(small_road, 0)
        assert ds.work_count <= 1.6 * dij.work_count

    def test_coarse_delta_more_work(self, small_mesh):
        fine = solve_cpu_ds(small_mesh, 0, delta=4.0)
        coarse = solve_cpu_ds(small_mesh, 0, delta=1e9)
        assert coarse.work_count >= fine.work_count

    def test_no_clipping_ever(self, small_mesh):
        """Unlike ADDS's 32-bucket window, CPU-DS buckets are unbounded —
        any delta yields exact results with bounded redundancy."""
        r = solve_cpu_ds(small_mesh, 0, delta=0.5)
        dij = solve_dijkstra(small_mesh, 0)
        import numpy as np

        np.testing.assert_allclose(r.dist, dij.dist)


class TestRounds:
    def test_rounds_reported(self, small_road):
        r = solve_cpu_ds(small_road, 0)
        assert r.stats["rounds"] >= 1

    def test_inner_rounds_for_intra_bucket_chains(self, oracle):
        """A chain of tiny edges inside one bucket forces multiple inner
        rounds (the Meyer-Sanders light-edge loop)."""
        from repro.graphs import from_edge_list

        edges = [(i, i + 1, 1) for i in range(10)]
        g = from_edge_list(11, edges)
        r = solve_cpu_ds(g, 0, delta=100.0)
        assert r.stats["rounds"] >= 10  # one hop resolves per round

    def test_invalid_delta(self, small_road):
        with pytest.raises(SolverError):
            solve_cpu_ds(small_road, 0, delta=-1)


class TestTiming:
    def test_sync_overhead_per_round(self, line_graph):
        cost = CpuCostModel(CPU_I9_7900X)
        r = solve_cpu_ds(line_graph, 0, delta=1.0)
        assert r.time_us >= r.stats["rounds"] * cost.round_sync_us * 0.99

    def test_more_threads_faster_on_parallel_work(self, small_gnm):
        one_core = CpuCostModel(CpuSpec(name="uni", cores=1, threads=1, clock_ghz=3.3))
        many = CpuCostModel(CPU_I9_7900X)
        slow = solve_cpu_ds(small_gnm, 0, cost=one_core)
        fast = solve_cpu_ds(small_gnm, 0, cost=many)
        assert slow.time_us > fast.time_us
        assert slow.work_count == fast.work_count
