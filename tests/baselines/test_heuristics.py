"""Tests for the Davidson Δ heuristic shared by all parallel solvers."""

from __future__ import annotations

import pytest

from repro.baselines import NEAR_FAR_C, davidson_delta
from repro.errors import SolverError
from repro.graphs import from_edge_list, grid_road


class TestFormula:
    def test_formula_c_w_over_d(self):
        # two vertices, one edge of weight 10 -> W=10, D=0.5
        g = from_edge_list(2, [(0, 1, 10)])
        assert davidson_delta(g, 4.0) == pytest.approx(4.0 * 10 / 0.5)

    def test_default_constant(self, small_road):
        assert davidson_delta(small_road) == pytest.approx(
            davidson_delta(small_road, NEAR_FAR_C)
        )

    def test_scales_linearly_with_c(self, small_road):
        assert davidson_delta(small_road, 64) == pytest.approx(
            2 * davidson_delta(small_road, 32)
        )

    def test_floor_at_one(self):
        # tiny weights + high degree would give delta << 1
        g = from_edge_list(3, [(0, 1, 1), (0, 2, 1), (1, 0, 1), (1, 2, 1), (2, 0, 1), (2, 1, 1)])
        assert davidson_delta(g, 0.001) == 1.0

    def test_empty_graph(self):
        g = from_edge_list(5, [])
        assert davidson_delta(g) == 1.0

    def test_invalid_constant(self, small_road):
        with pytest.raises(SolverError):
            davidson_delta(small_road, 0)

    def test_heavy_tail_inflates_delta(self):
        """The Figure 4 mechanism: a tail-dominated average weight pushes
        the heuristic far from the typical edge weight."""
        from repro.graphs import fem_mesh

        uniform = fem_mesh(500, band=12, stride=3, max_weight=16, seed=1)
        heavy = fem_mesh(
            500, band=12, stride=3, max_weight=65535, weight_style="heavy", seed=1
        )
        import numpy as np

        assert davidson_delta(heavy) > 3 * davidson_delta(uniform)
        assert np.median(heavy.weights) < 10  # typical edge stays small
