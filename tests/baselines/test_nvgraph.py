"""NV stand-in: float32 internals, setup charge, opaque work counts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import solve_gun_bf, solve_nv
from repro.baselines.nvgraph import NV_SETUP_US


class TestFloatInternals:
    def test_distances_are_float32_rounded(self, small_road):
        r = solve_nv(small_road, 0)
        finite = r.dist[np.isfinite(r.dist)]
        assert np.array_equal(finite, finite.astype(np.float32).astype(np.float64))

    def test_graph_name_preserved_for_int_input(self, small_road):
        r = solve_nv(small_road, 0)
        assert r.graph_name == small_road.name


class TestOverheads:
    def test_setup_charge_included(self, tiny_graph):
        r = solve_nv(tiny_graph, 0)
        assert r.time_us >= NV_SETUP_US

    def test_slowest_gpu_baseline(self, small_road):
        """The paper's ordering: NV is the weakest GPU implementation."""
        nv = solve_nv(small_road, 0)
        bf = solve_gun_bf(small_road, 0)
        assert nv.time_us > bf.time_us


class TestOpaqueness:
    def test_work_count_not_publicly_reported(self, small_road):
        """Table 4 has no NV row: 'without the source code, we cannot
        obtain this metric'."""
        r = solve_nv(small_road, 0)
        assert r.stats["work_count_public"] is None
