"""Dijkstra-specific behaviour: work optimality, heap accounting, timing."""

from __future__ import annotations

import pytest

from repro.baselines import solve_dijkstra
from repro.gpu.costmodel import CpuCostModel
from repro.gpu.specs import CPU_I9_7900X


class TestWorkOptimality:
    def test_each_reachable_vertex_expanded_once(self, small_road):
        r = solve_dijkstra(small_road, 0)
        assert r.work_count == small_road.num_vertices  # connected graph

    def test_unreachable_not_expanded(self, disconnected_graph):
        r = solve_dijkstra(disconnected_graph, 0)
        assert r.work_count == 3

    def test_lowest_work_of_all_solvers(self, small_mesh):
        from repro.baselines import solve_gun_bf, solve_nf

        dij = solve_dijkstra(small_mesh, 0)
        assert dij.work_count <= solve_nf(small_mesh, 0).work_count
        assert dij.work_count <= solve_gun_bf(small_mesh, 0).work_count


class TestStats:
    def test_stale_pops_accounted(self, small_rmat):
        r = solve_dijkstra(small_rmat, 0)
        assert r.stats["stale_pops"] >= 0
        assert r.stats["heap_ops"] > r.work_count
        assert r.stats["edges_relaxed"] > 0

    def test_line_graph_exact_counts(self, line_graph):
        r = solve_dijkstra(line_graph, 0)
        assert r.work_count == 6
        assert r.stats["edges_relaxed"] == 5
        assert r.stats["stale_pops"] == 0


class TestTiming:
    def test_time_scales_with_size(self):
        from repro.graphs import grid_road

        small = solve_dijkstra(grid_road(10, 10, seed=1), 0)
        large = solve_dijkstra(grid_road(40, 40, seed=1), 0)
        assert large.time_us > small.time_us * 4

    def test_custom_cost_model(self, small_road):
        slow = CpuCostModel(CPU_I9_7900X).with_overrides(edge_ns=1000.0)
        fast = CpuCostModel(CPU_I9_7900X)
        r_slow = solve_dijkstra(small_road, 0, cost=slow)
        r_fast = solve_dijkstra(small_road, 0, cost=fast)
        assert r_slow.time_us > r_fast.time_us
        assert r_slow.work_count == r_fast.work_count  # timing only

    def test_deterministic(self, small_rmat):
        a = solve_dijkstra(small_rmat, 0)
        b = solve_dijkstra(small_rmat, 0)
        assert a.time_us == b.time_us
        assert a.work_count == b.work_count
