"""Near-Far specifics: dedup filter, far splits, delta sensitivity, BSP cost."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import davidson_delta, solve_gun_nf, solve_nf
from repro.errors import SolverError


class TestDeltaBehaviour:
    def test_huge_delta_degenerates_to_bellman_ford(self, small_mesh):
        """With Δ ≥ the whole distance range, Near-Far *is* Bellman-Ford."""
        from repro.baselines import solve_gun_bf

        nf = solve_nf(small_mesh, 0, delta=1e12)
        bf = solve_gun_bf(small_mesh, 0)
        assert nf.work_count == bf.work_count

    def test_small_delta_improves_work(self, small_mesh):
        h = davidson_delta(small_mesh)
        coarse = solve_nf(small_mesh, 0, delta=h * 64)
        fine = solve_nf(small_mesh, 0, delta=max(1.0, h / 8))
        assert fine.work_count < coarse.work_count

    def test_small_delta_more_supersteps(self, small_road):
        h = davidson_delta(small_road)
        coarse = solve_nf(small_road, 0, delta=h)
        fine = solve_nf(small_road, 0, delta=max(1.0, h / 16))
        assert fine.stats["supersteps"] > coarse.stats["supersteps"]

    def test_invalid_delta(self, small_road):
        with pytest.raises(SolverError):
            solve_nf(small_road, 0, delta=0)

    def test_default_delta_is_davidson(self, small_road):
        r = solve_nf(small_road, 0)
        assert r.stats["delta"] == pytest.approx(davidson_delta(small_road))


class TestDedupFilter:
    def test_nf_filters_gun_nf_does_not(self, small_mesh):
        """NF dedups the near pile each superstep; Gun-NF re-expands
        duplicates, so it can never do less work (§6.1.2 / §6.3)."""
        nf = solve_nf(small_mesh, 0)
        gun = solve_gun_nf(small_mesh, 0)
        assert gun.work_count >= nf.work_count

    def test_filter_counter_populated(self, small_cliques):
        nf = solve_nf(small_cliques, 0)
        assert nf.stats["duplicates_filtered"] >= 0
        gun = solve_gun_nf(small_cliques, 0)
        assert gun.stats["duplicates_filtered"] == 0


class TestGunrockOverhead:
    def test_gun_nf_slower_per_superstep(self, small_road):
        nf = solve_nf(small_road, 0)
        gun = solve_gun_nf(small_road, 0)
        # same delta, same algorithm minus the filter: Gunrock's framework
        # overhead must show up in time
        assert gun.time_us > nf.time_us


class TestFarSplits:
    def test_far_splits_happen_on_wide_range(self, small_road):
        r = solve_nf(small_road, 0)
        assert r.stats["far_splits"] >= 1

    def test_no_splits_when_delta_covers_range(self, small_road):
        r = solve_nf(small_road, 0, delta=1e12)
        assert r.stats["far_splits"] == 0

    def test_timeline_reflects_supersteps(self, small_road):
        r = solve_nf(small_road, 0)
        # two samples per superstep (start and end)
        assert len(r.timeline) >= r.stats["supersteps"]


class TestDistancesExact:
    def test_stale_far_entries_dropped_correctly(self, oracle):
        """A vertex that is improved into an earlier band after being
        pushed far must not lose its better distance at the far split."""
        from repro.graphs import from_edge_list

        # 0->1 long direct edge (pushed far), 0->2->1 short path that
        # overtakes it within the first band
        g = from_edge_list(4, [(0, 1, 100), (0, 2, 1), (2, 1, 2), (1, 3, 1)])
        r = solve_nf(g, 0, delta=10)
        assert r.dist[1] == 3
        assert r.dist[3] == 4
