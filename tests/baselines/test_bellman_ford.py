"""Gun-BF specifics: unordered worklist costs, BSP supersteps."""

from __future__ import annotations

import pytest

from repro.baselines import solve_gun_bf, solve_dijkstra, solve_nf


class TestRedundantWork:
    def test_never_less_work_than_dijkstra(self, small_mesh):
        bf = solve_gun_bf(small_mesh, 0)
        dij = solve_dijkstra(small_mesh, 0)
        assert bf.work_count >= dij.work_count

    def test_high_diameter_graphs_suffer(self, small_mesh, small_gnm):
        """§3.1: ordering matters most for high-diameter graphs; the
        work blow-up of BF relative to Dijkstra must be far larger on the
        mesh than on the low-diameter random graph."""
        mesh_ratio = (
            solve_gun_bf(small_mesh, 0).work_count
            / solve_dijkstra(small_mesh, 0).work_count
        )
        gnm_ratio = (
            solve_gun_bf(small_gnm, 0).work_count
            / solve_dijkstra(small_gnm, 0).work_count
        )
        assert mesh_ratio > 3 * gnm_ratio

    def test_ordered_nf_beats_bf_on_work(self, small_mesh):
        assert (
            solve_nf(small_mesh, 0).work_count
            < solve_gun_bf(small_mesh, 0).work_count
        )


class TestSupersteps:
    def test_superstep_count_at_most_hop_depth_plus_margin(self, line_graph):
        r = solve_gun_bf(line_graph, 0)
        # a path graph needs exactly one superstep per hop (+ final empty)
        assert r.stats["supersteps"] == pytest.approx(6, abs=1)

    def test_supersteps_bounded_by_diameter_like_quantity(self, small_gnm):
        from repro.graphs import pseudo_diameter

        r = solve_gun_bf(small_gnm, 0)
        d = pseudo_diameter(small_gnm, 0)
        # BF frontier advances >= one hop per superstep, but distance
        # corrections can add extra rounds; 4x hop-diameter is generous
        assert r.stats["supersteps"] <= 4 * (d + 2)

    def test_timeline_peak_at_most_total_edges(self, small_rmat):
        r = solve_gun_bf(small_rmat, 0)
        assert r.timeline.peak() <= small_rmat.num_edges
