"""Cross-solver correctness: every implementation must agree with Dijkstra.

This is the repo's analog of the artifact's ``verify_against_*`` scripts,
run over every structural class in the corpus.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    solve_cpu_ds,
    solve_dijkstra,
    solve_gun_bf,
    solve_gun_nf,
    solve_nf,
    solve_nv,
)
from repro.core import solve_adds

ALL_SOLVERS = [
    solve_dijkstra,
    solve_cpu_ds,
    solve_nf,
    solve_gun_nf,
    solve_gun_bf,
    solve_nv,
    solve_adds,
]

GRAPH_FIXTURES = [
    "tiny_graph",
    "line_graph",
    "small_road",
    "small_rmat",
    "small_mesh",
    "small_gnm",
    "small_cliques",
]


def check(result, graph, oracle, source, *, atol=1e-9):
    ref = oracle(graph, source)
    got = np.nan_to_num(result.dist, posinf=-1.0)
    exp = np.nan_to_num(ref, posinf=-1.0)
    np.testing.assert_allclose(got, exp, atol=atol)


@pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
@pytest.mark.parametrize("fixture", GRAPH_FIXTURES)
def test_solver_matches_oracle(solver, fixture, request, oracle):
    graph = request.getfixturevalue(fixture)
    result = solver(graph, 0)
    # NV computes in float32 internally (artifact appendix: distances can
    # differ by rounding on int graphs)
    atol = 1e-2 * max(1.0, float(np.nanmax(np.where(np.isinf(result.dist), 0, result.dist)))) \
        if result.solver == "nv" else 1e-9
    check(result, graph, oracle, 0, atol=atol)


@pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
def test_nonzero_source(solver, small_road, oracle):
    result = solver(small_road, 37)
    check(result, small_road, oracle, 37, atol=1e-2 if result.solver == "nv" else 1e-9)


@pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
def test_disconnected_graph_unreachable_inf(solver, disconnected_graph):
    result = solver(disconnected_graph, 0)
    assert np.isinf(result.dist[3]) and np.isinf(result.dist[4])
    assert result.dist[0] == 0.0


@pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
def test_float_weights(solver, small_road, oracle):
    g = small_road.as_float()
    result = solver(g, 0)
    check(result, g, oracle, 0, atol=1e-2 if result.solver == "nv" else 1e-6)


@pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
def test_single_vertex_graph(solver):
    from repro.graphs import from_edge_list

    g = from_edge_list(1, [])
    result = solver(g, 0)
    assert result.dist[0] == 0.0


@pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
def test_parallel_edges_take_minimum(solver, oracle):
    from repro.graphs import from_edge_list

    g = from_edge_list(3, [(0, 1, 9), (0, 1, 2), (1, 2, 9), (1, 2, 4)])
    result = solver(g, 0)
    assert result.dist[1] == pytest.approx(2, abs=1e-6)
    assert result.dist[2] == pytest.approx(6, abs=1e-6)


@pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
def test_zero_weight_edges(solver, oracle):
    from repro.graphs import from_edge_list

    g = from_edge_list(4, [(0, 1, 0), (1, 2, 0), (2, 3, 5)])
    result = solver(g, 0)
    assert result.dist[2] == pytest.approx(0.0, abs=1e-9)
    assert result.dist[3] == pytest.approx(5.0, abs=1e-6)


class TestResultMetadata:
    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
    def test_provenance_and_positivity(self, solver, small_road):
        r = solver(small_road, 0)
        assert r.graph_name == small_road.name
        assert r.source == 0
        assert r.work_count > 0
        assert r.time_us > 0
        assert len(r.timeline) >= 1

    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda f: f.__name__)
    def test_work_at_least_reached_vertices(self, solver, line_graph):
        """Every reached vertex (minus leaves with no outgoing work) must
        have been processed at least once; work below n-1 on a path graph
        would mean skipped relaxations."""
        r = solver(line_graph, 0)
        assert r.work_count >= line_graph.num_vertices - 1
