"""Tests for the shared result type and solver registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.common import (
    SOLVERS,
    SSSPResult,
    get_solver,
    init_distances,
    register_solver,
)
from repro.errors import SolverError


class TestRegistry:
    def test_all_seven_solvers_registered(self):
        import repro.core  # noqa: F401 - registers adds

        expected = {"adds", "nf", "gun-nf", "gun-bf", "nv", "cpu-ds", "dijkstra"}
        assert expected.issubset(SOLVERS.keys())

    def test_get_solver_unknown(self):
        with pytest.raises(SolverError, match="unknown solver"):
            get_solver("quantum-sssp")

    def test_get_solver_returns_callable(self):
        assert callable(get_solver("dijkstra"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SolverError, match="duplicate"):
            register_solver("dijkstra")(lambda g, s: None)


class TestInitDistances:
    def test_source_zero_rest_inf(self):
        d = init_distances(4, 1)
        assert d[1] == 0.0
        assert np.isinf(d[[0, 2, 3]]).all()

    def test_bad_source(self):
        with pytest.raises(SolverError):
            init_distances(3, 3)
        with pytest.raises(SolverError):
            init_distances(3, -1)


class TestSSSPResult:
    def make(self, work=10):
        return SSSPResult(
            solver="x",
            graph_name="g",
            source=0,
            dist=np.array([0.0, 2.0, np.inf]),
            work_count=work,
            time_us=1500.0,
        )

    def test_work_efficiency_is_inverse(self):
        assert self.make(4).work_efficiency == pytest.approx(0.25)

    def test_work_efficiency_zero_work(self):
        assert self.make(0).work_efficiency == float("inf")

    def test_reached_counts_finite(self):
        assert self.make().reached() == 2

    def test_result_line_format(self):
        """The artifact's 'graph run_time work_count' line (seconds)."""
        line = self.make(7).result_line()
        name, t, w = line.split()
        assert name == "g"
        assert float(t) == pytest.approx(1500.0 / 1e6)
        assert int(w) == 7
