"""Tests for simulated memory: atomics, batch atomic-min, the block pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AllocationError
from repro.gpu import SimMemory
from repro.gpu.memory import WORDS_PER_BLOCK, GlobalPool


@pytest.fixture
def mem():
    return SimMemory()


class TestAtomics:
    def test_atomic_add_returns_old(self, mem):
        a = np.array([5], dtype=np.int64)
        assert mem.atomic_add(a, 0, 3) == 5
        assert a[0] == 8

    def test_atomic_min_improves(self, mem):
        a = np.array([10], dtype=np.int64)
        assert mem.atomic_min(a, 0, 7) is True
        assert a[0] == 7

    def test_atomic_min_no_change(self, mem):
        a = np.array([5], dtype=np.int64)
        assert mem.atomic_min(a, 0, 9) is False
        assert a[0] == 5

    def test_atomic_cas_success(self, mem):
        a = np.array([1], dtype=np.int64)
        assert mem.atomic_cas(a, 0, 1, 42) == 1
        assert a[0] == 42

    def test_atomic_cas_failure(self, mem):
        a = np.array([2], dtype=np.int64)
        assert mem.atomic_cas(a, 0, 1, 42) == 2
        assert a[0] == 2

    def test_counters(self, mem):
        a = np.array([0], dtype=np.int64)
        mem.atomic_add(a, 0, 1)
        mem.atomic_min(a, 0, -1)
        mem.fence()
        mem.read(3)
        mem.write(2, scratchpad=True)
        s = mem.stats.snapshot()
        assert s["atomics"] == 2
        assert s["fences"] == 1
        assert s["global_reads"] == 3
        assert s["scratchpad_writes"] == 2


class TestAtomicMinBatch:
    def test_simple_batch(self, mem):
        dist = np.array([10, 10, 10], dtype=np.float64)
        winners = mem.atomic_min_batch(
            dist, np.array([0, 2]), np.array([5.0, 20.0])
        )
        assert dist.tolist() == [5, 10, 10]
        assert winners.tolist() == [True, False]

    def test_duplicate_indices_single_winner(self, mem):
        dist = np.array([100.0])
        winners = mem.atomic_min_batch(
            dist, np.array([0, 0, 0]), np.array([7.0, 3.0, 7.0])
        )
        assert dist[0] == 3.0
        assert winners.sum() == 1
        assert winners[1]  # the value that holds the final minimum

    def test_tied_duplicates_one_winner(self, mem):
        dist = np.array([100.0])
        winners = mem.atomic_min_batch(
            dist, np.array([0, 0]), np.array([4.0, 4.0])
        )
        assert winners.sum() == 1

    def test_no_improvement_no_winners(self, mem):
        dist = np.array([1.0, 2.0])
        winners = mem.atomic_min_batch(
            dist, np.array([0, 1]), np.array([5.0, 5.0])
        )
        assert not winners.any()

    def test_empty_batch(self, mem):
        dist = np.array([1.0])
        winners = mem.atomic_min_batch(dist, np.array([], dtype=np.int64), np.array([]))
        assert winners.size == 0

    def test_counts_every_atomic(self, mem):
        dist = np.full(4, 9.0)
        mem.atomic_min_batch(dist, np.array([0, 1, 2]), np.array([1.0, 2.0, 3.0]))
        assert mem.stats.atomics == 3

    def test_matches_serial_semantics(self, mem):
        rng = np.random.default_rng(0)
        dist = rng.uniform(0, 100, size=50)
        idx = rng.integers(0, 50, size=500)
        vals = rng.uniform(0, 100, size=500)
        expect = dist.copy()
        for i, v in zip(idx, vals):
            expect[i] = min(expect[i], v)
        mem.atomic_min_batch(dist, idx, vals)
        assert np.allclose(dist, expect)

    @pytest.mark.parametrize("sizes", [(3, 5), (20, 30), (30, 40, 50)])
    def test_fused_call_contract(self, mem, sizes):
        """One call over a disjoint-across-sub-batch concatenation must be
        bit-equivalent to the sequential per-sub-batch calls — winner mask
        slices, array contents, payload and atomics counter alike (the
        batch execution mode's commit fusion rests on this)."""
        rng = np.random.default_rng(7)
        n_vert = sum(sizes) * 2
        # disjoint index pools per sub-batch; duplicates *within* each one
        pools = []
        lo = 0
        for s in sizes:
            pools.append(rng.integers(lo, lo + s, size=s))
            lo += 2 * s
        values = [rng.uniform(0, 100, size=p.size) for p in pools]
        payloads = [rng.integers(0, 1000, size=p.size) for p in pools]

        solo_dist = rng.uniform(0, 100, size=n_vert)
        fused_dist = solo_dist.copy()
        solo_pred = np.full(n_vert, -1, dtype=np.int64)
        fused_pred = solo_pred.copy()

        solo = SimMemory()
        masks = [
            solo.atomic_min_batch(
                solo_dist, p, v, payload=pl, payload_out=solo_pred
            )
            for p, v, pl in zip(pools, values, payloads)
        ]
        fused_mask = mem.atomic_min_batch(
            fused_dist,
            np.concatenate(pools),
            np.concatenate(values),
            payload=np.concatenate(payloads),
            payload_out=fused_pred,
        )
        np.testing.assert_array_equal(
            fused_mask, np.concatenate(masks)
        )
        np.testing.assert_array_equal(fused_dist, solo_dist)
        np.testing.assert_array_equal(fused_pred, solo_pred)
        assert mem.stats.atomics == solo.stats.atomics


class TestGlobalPool:
    def test_acquire_release_cycle(self):
        pool = GlobalPool(3, words_per_block=16)
        a = pool.acquire()
        b = pool.acquire()
        assert a != b
        assert pool.free_blocks == 1
        pool.release(a)
        assert pool.free_blocks == 2

    def test_exhaustion_raises(self):
        pool = GlobalPool(1, words_per_block=16)
        pool.acquire()
        with pytest.raises(AllocationError, match="exhausted"):
            pool.acquire()

    def test_double_free_raises(self):
        pool = GlobalPool(2, words_per_block=16)
        a = pool.acquire()
        pool.release(a)
        with pytest.raises(AllocationError, match="double free"):
            pool.release(a)

    def test_unknown_block_release(self):
        pool = GlobalPool(2, words_per_block=16)
        with pytest.raises(AllocationError, match="unknown block"):
            pool.release(99)

    def test_default_block_size_is_the_papers(self):
        pool = GlobalPool(1)
        assert pool.words_per_block == WORDS_PER_BLOCK == 65536

    def test_high_water_mark(self):
        pool = GlobalPool(4, words_per_block=8)
        a = pool.acquire()
        b = pool.acquire()
        pool.release(a)
        pool.release(b)
        pool.acquire()
        assert pool.high_water == 2

    def test_storage_shape(self):
        pool = GlobalPool(2, words_per_block=32)
        assert pool.storage.shape == (2, 32, 2)

    def test_zero_blocks_rejected(self):
        with pytest.raises(AllocationError):
            GlobalPool(0)


class _CountingList(list):
    """A list that counts membership scans (the O(n) guard we removed)."""

    def __init__(self, items):
        super().__init__(items)
        self.contains_calls = 0

    def __contains__(self, item):
        self.contains_calls += 1
        return super().__contains__(item)


class TestPoolReleaseComplexity:
    def test_release_never_scans_the_free_list(self):
        """The double-free guard must be O(1): release goes through the
        membership set, never ``in`` on the free list itself."""
        pool = GlobalPool(64, words_per_block=8)
        pool._free = _CountingList(pool._free)
        blocks = [pool.acquire() for _ in range(64)]
        for b in blocks:
            pool.release(b)
        assert pool._free.contains_calls == 0

    def test_set_guard_still_catches_double_free(self):
        pool = GlobalPool(4, words_per_block=8)
        a = pool.acquire()
        b = pool.acquire()
        pool.release(a)
        pool.release(b)
        with pytest.raises(AllocationError, match="double free"):
            pool.release(a)
        # the set and list stay in lockstep across reuse
        c = pool.acquire()
        pool.release(c)
        assert sorted(pool._free) == sorted(pool._free_set)


class TestAtomicAddBatch:
    def test_counts_one_atomic_per_entry(self):
        mem = SimMemory()
        arr = np.zeros(4, dtype=np.int64)
        before = mem.stats.atomics
        mem.atomic_add_batch(arr, np.array([0, 1, 1, 3]), np.array([5, 1, 2, 7]))
        assert mem.stats.atomics - before == 4
        assert arr.tolist() == [5, 3, 0, 7]  # duplicates accumulate
