"""Tests for device specifications (paper Table 1)."""

from __future__ import annotations

import pytest

from repro.gpu import CPU_I9_7900X, RTX_2080TI, RTX_3090, DeviceSpec


class TestPaperTable1:
    """The spec constants must match the paper's Table 1 exactly."""

    def test_2080ti(self):
        s = RTX_2080TI
        assert s.sm_count == 68
        assert s.threads_per_sm == 1024
        assert s.max_clock_ghz == pytest.approx(1.75)
        assert s.dram_bandwidth_gbs == pytest.approx(616.0)
        assert s.dram_gb == pytest.approx(11.0)
        assert s.l2_mb == pytest.approx(5.5)
        assert s.scratchpad_kb_per_sm == 48
        assert s.compute_capability == "7.5"

    def test_3090(self):
        s = RTX_3090
        assert s.sm_count == 82
        assert s.threads_per_sm == 1536
        assert s.max_clock_ghz == pytest.approx(1.8)
        assert s.dram_bandwidth_gbs == pytest.approx(936.0)
        assert s.dram_gb == pytest.approx(24.0)
        assert s.compute_capability == "8.6"

    def test_3090_has_52_percent_more_bandwidth(self):
        """§6.5: the 3090 has '52% greater peak DRAM bandwidth'."""
        ratio = RTX_3090.dram_bandwidth_gbs / RTX_2080TI.dram_bandwidth_gbs
        assert ratio == pytest.approx(1.52, abs=0.01)

    def test_total_threads_is_the_papers_68k(self):
        """§4.2 says 'a RTX 2080 GPU has 68K hardware threads'."""
        assert RTX_2080TI.total_threads == 68 * 1024

    def test_cpu_spec(self):
        assert CPU_I9_7900X.cores == 10
        assert CPU_I9_7900X.threads == 20
        assert CPU_I9_7900X.clock_ghz == pytest.approx(3.3)


class TestDerivedQuantities:
    def test_max_resident_blocks(self):
        assert RTX_2080TI.max_resident_blocks == 68 * (1024 // 256)

    def test_cycle_time_roundtrip(self):
        us = 12.5
        assert RTX_2080TI.cycles_to_us(RTX_2080TI.us_to_cycles(us)) == pytest.approx(us)

    def test_bytes_per_cycle(self):
        # 616 GB/s at 1.75 GHz = 352 bytes per cycle
        assert RTX_2080TI.bytes_per_cycle == pytest.approx(352.0)

    def test_custom_spec(self):
        s = DeviceSpec(
            name="toy",
            sm_count=2,
            threads_per_sm=512,
            max_clock_ghz=1.0,
            dram_bandwidth_gbs=100.0,
            dram_gb=1.0,
            l2_mb=1.0,
            scratchpad_kb_per_sm=48,
            compute_capability="0.0",
        )
        assert s.total_threads == 1024
        assert s.max_resident_blocks == 4
