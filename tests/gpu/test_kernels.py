"""Tests for the BSP machine (superstep accounting)."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.gpu import BspMachine, CostModel, RTX_2080TI


@pytest.fixture
def machine():
    return BspMachine(RTX_2080TI, label="t")


class TestSuperstep:
    def test_accumulates_time(self, machine):
        d1 = machine.superstep(100, 800, 8.0)
        d2 = machine.superstep(100, 800, 8.0)
        assert machine.cycles == pytest.approx(d1 + d2)
        assert machine.supersteps == 2

    def test_matches_cost_model(self, machine):
        dur = machine.superstep(50, 400, 8.0)
        expect = machine.cost.bsp_superstep_cycles(50, 400, 8.0)
        assert dur == pytest.approx(expect)

    def test_overhead_multiplier_scales_launch_only(self):
        lean = BspMachine(RTX_2080TI)
        heavy = BspMachine(RTX_2080TI, overhead_multiplier=2.0)
        d_lean = lean.superstep(10, 80, 8.0)
        d_heavy = heavy.superstep(10, 80, 8.0)
        launch = lean.cost.kernel_launch_cycles()
        assert d_heavy - d_lean == pytest.approx(launch)

    def test_elapsed_us_conversion(self, machine):
        machine.superstep(10, 80, 8.0)
        assert machine.elapsed_us == pytest.approx(
            RTX_2080TI.cycles_to_us(machine.cycles)
        )

    def test_negative_work_rejected(self, machine):
        with pytest.raises(DeviceError):
            machine.superstep(-1, 0, 8.0)
        with pytest.raises(DeviceError):
            machine.superstep(1, -5, 8.0)

    def test_empty_superstep_still_costs_launch(self, machine):
        dur = machine.superstep(0, 0, 8.0)
        assert dur == pytest.approx(machine.cost.kernel_launch_cycles())

    def test_float_weights_slower(self, machine):
        di = machine.superstep(500, 4000, 8.0)
        df = machine.superstep(500, 4000, 8.0, float_weights=True)
        assert df > di


class TestTimelineRecording:
    def test_records_available_work_per_superstep(self, machine):
        machine.superstep(10, 123, 8.0)
        machine.superstep(10, 456, 8.0)
        ts, vs = machine.timeline.series()
        assert 123.0 in vs and 456.0 in vs
        assert vs[-1] == 0.0  # drops to zero after the last superstep

    def test_times_monotone(self, machine):
        for i in range(5):
            machine.superstep(10, 100 * (i + 1), 8.0)
        ts, _ = machine.timeline.series()
        assert list(ts) == sorted(ts)


class TestCharge:
    def test_charge_us(self, machine):
        machine.charge_us(10.0)
        assert machine.elapsed_us == pytest.approx(10.0)

    def test_negative_charge_rejected(self, machine):
        with pytest.raises(DeviceError):
            machine.charge_us(-1.0)

    def test_custom_cost_model(self):
        cost = CostModel(RTX_2080TI, kernel_launch_us=100.0)
        m = BspMachine(RTX_2080TI, cost)
        m.superstep(1, 1, 1.0)
        assert m.elapsed_us >= 100.0
