"""Wake-channel semantics: targeted wakeups must be observationally
identical to the predicate-rescan engine they replaced.

The deterministic MTB/WTB interleaving test below pins down the three
things the rescan engine guaranteed — resume order (registration order
among simultaneously-satisfied waiters), the af_poll charge on every
channel resume, and trace span order — plus the failure modes: spurious
notifies, missed notifies (rescued, counted), and deadlock detection with
the same ``DeviceError``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu import Device, RTX_2080TI
from repro.gpu.costmodel import CostModel
from repro.trace.tracer import Tracer


def make_device(**kw):
    return Device(RTX_2080TI, **kw)


class TestTargetedWakeups:
    def test_notify_wakes_only_the_target_channel(self):
        flags = np.zeros(2, dtype=np.int64)
        evals = {"a": 0, "b": 0}
        order = []

        def waiter(dev, key, idx):
            def pred():
                evals[key] += 1
                return flags[idx] == 1
            yield ("wait", pred, ("ch", key))
            order.append(key)

        def writer(dev):
            yield ("busy", 100)
            flags[0] = 1
            dev.notify(("ch", "a"))
            yield ("busy", 100)
            flags[1] = 1
            dev.notify(("ch", "b"))

        d = make_device()
        d.add_block("wa", waiter(d, "a", 0))
        d.add_block("wb", waiter(d, "b", 1))
        d.add_block("writer", writer(d))
        d.run()
        assert order == ["a", "b"]
        # one failed evaluation at registration + one successful on its
        # own notify — and crucially NOT one per event in the run
        assert evals == {"a": 2, "b": 2}
        assert d.spurious_wakeups == 0
        assert d.fallback_polls == 0

    def test_simultaneous_waiters_wake_in_registration_order(self):
        flag = np.zeros(1, dtype=np.int64)
        order = []

        def waiter(name):
            yield ("wait", lambda: flag[0] == 1, "gate")
            order.append(name)

        def writer(dev):
            yield ("busy", 50)
            flag[0] = 1
            dev.notify("gate")

        d = make_device()
        # registration order is add order (they all register at t=0)
        for name in ("w2", "w0", "w1"):
            d.add_block(name, waiter(name))
        d.add_block("writer", writer(d))
        d.run()
        assert order == ["w2", "w0", "w1"]

    def test_channel_resume_charges_af_poll(self):
        flag = np.zeros(1, dtype=np.int64)
        woke_at = []

        def waiter(dev):
            yield ("wait", lambda: flag[0] == 1, "gate")
            woke_at.append(dev.now)

        def writer(dev):
            yield ("busy", 300)
            flag[0] = 1
            dev.notify("gate")

        d = make_device()
        w = d.add_block("w", waiter(d))
        d.add_block("writer", writer(d))
        d.run()
        # the notify lands at t=300; the waiter resumes one poll later
        assert woke_at == [pytest.approx(300 + d.cost.af_poll_cycles)]
        assert w.idle_cycles == pytest.approx(300)
        assert d.wakeups == 1

    def test_spurious_notify_is_counted_not_resumed(self):
        flag = np.zeros(1, dtype=np.int64)
        order = []

        def waiter():
            yield ("wait", lambda: flag[0] == 2, "gate")
            order.append("woke")

        def writer(dev):
            yield ("busy", 10)
            flag[0] = 1  # not what the waiter wants
            dev.notify("gate")
            order.append("first notify")
            yield ("busy", 10)
            flag[0] = 2
            dev.notify("gate")
            order.append("second notify")

        d = make_device()
        d.add_block("w", waiter())
        d.add_block("writer", writer(d))
        d.run()
        assert order == ["first notify", "second notify", "woke"]
        assert d.spurious_wakeups == 1
        assert d.wakeups == 1

    def test_notify_without_waiters_is_a_cheap_no_op(self):
        def writer(dev):
            yield ("busy", 5)
            dev.notify("nobody-home")

        d = make_device()
        d.add_block("writer", writer(d))
        d.run()
        assert d.wakeups == 0
        assert d.spurious_wakeups == 0
        assert not d.has_waiters("nobody-home")


class TestMtbWtbInterleaving:
    """A miniature MTB/WTB protocol with fully deterministic timing."""

    @staticmethod
    def _build(tracer=None):
        # af[w] == 1 means "assigned"; af[w] == 2 means STOP
        af = np.zeros(2, dtype=np.int64)
        log = []

        def mtb(dev):
            yield ("busy", 100)
            af[0] = 1
            dev.notify(("af", 0))
            log.append(("assign", 0, dev.now))
            yield ("busy", 100)
            af[1] = 1
            dev.notify(("af", 1))
            log.append(("assign", 1, dev.now))
            yield ("busy", 400)
            af[:] = 2
            dev.notify(("af", 0))
            dev.notify(("af", 1))
            log.append(("stop", None, dev.now))

        def wtb(dev, w):
            while True:
                yield ("wait", lambda: af[w] != 0, ("af", w))
                if af[w] == 2:
                    log.append(("exit", w, dev.now))
                    return
                log.append(("work", w, dev.now))
                yield ("busy", 50)
                af[w] = 0

        # a small poll cost keeps the golden schedule readable (the
        # default 400 cycles would reorder wakeups past later assigns)
        cost = CostModel(RTX_2080TI, af_poll_cycles=10.0)
        d = Device(RTX_2080TI, cost, tracer=tracer)
        d.add_block("MTB", mtb(d))
        d.add_block("WTB0", wtb(d, 0))
        d.add_block("WTB1", wtb(d, 1))
        return d, log

    def test_event_order_matches_rescan_engine(self):
        d, log = self._build()
        d.run()
        poll = d.cost.af_poll_cycles
        # the rescan engine produced exactly this schedule: each WTB
        # resumes one af_poll after its assignment lands, works 50
        # cycles, then re-blocks; STOP at t=600 releases both in
        # registration order at 600 + poll.
        assert log == [
            ("assign", 0, 100.0),
            ("work", 0, pytest.approx(100 + poll)),
            ("assign", 1, 200.0),
            ("work", 1, pytest.approx(200 + poll)),
            ("stop", None, 600.0),
            ("exit", 0, pytest.approx(600 + poll)),
            ("exit", 1, pytest.approx(600 + poll)),
        ]
        assert d.wakeups == 4
        assert d.spurious_wakeups == 0
        assert d.missed_wakeups == 0

    def test_trace_span_order_is_stable(self):
        tracer = Tracer()
        d, _log = self._build(tracer=tracer)
        d.run()
        # every wait that actually blocked produced one idle span, in
        # wake order — WTB0's assignment, WTB1's, then both STOP waits
        idle = [
            (ev.track, ev.ts_us) for ev in tracer.events
            if ev.name == "idle"
        ]
        assert [t for t, _ in idle] == ["WTB0", "WTB1", "WTB0", "WTB1"]
        starts = [ts for _, ts in idle]
        assert starts[0] == pytest.approx(0.0)  # WTB0 blocked at t=0
        assert starts[1] == pytest.approx(0.0)  # so did WTB1
        # wakeup counters were exported for the trace viewer
        assert tracer.by_name("wakeups")
        assert tracer.by_name("spurious_wakeups")

    def test_unnotified_flag_write_is_rescued_and_counted(self):
        af = np.zeros(1, dtype=np.int64)

        def buggy_mtb(dev):
            yield ("busy", 100)
            af[0] = 2  # writer "forgot" dev.notify(("af", 0))

        def wtb(dev):
            yield ("wait", lambda: af[0] != 0, ("af", 0))

        d = make_device()
        d.add_block("MTB", buggy_mtb(d))
        d.add_block("WTB0", wtb(d))
        d.run()  # completes despite the missing notify
        assert d.missed_wakeups == 1
        assert d.wake_stats()["missed_wakeups"] == 1


class TestDeadlock:
    def test_channel_waiters_deadlock_lists_blocks_in_order(self):
        def forever(key):
            yield ("wait", lambda: False, key)

        d = make_device()
        d.add_block("stuck-a", forever("ka"))
        d.add_block("stuck-b", forever("kb"))
        with pytest.raises(
            DeviceError,
            match=r"deadlock: blocks waiting forever: stuck-a, stuck-b",
        ):
            d.run()

    def test_mixed_channel_and_fallback_deadlock(self):
        def chan():
            yield ("wait", lambda: False, "k")

        def fb():
            yield ("wait", lambda: False)

        d = make_device()
        d.add_block("chan", chan())
        d.add_block("fb", fb())
        with pytest.raises(
            DeviceError, match=r"deadlock: blocks waiting forever: chan, fb"
        ):
            d.run()
