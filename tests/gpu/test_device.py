"""Tests for the discrete-event engine: ordering, waiting, deadlock, timeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu import Device, RTX_2080TI


def make_device(**kw):
    return Device(RTX_2080TI, **kw)


class TestBasicExecution:
    def test_single_block_runs_to_completion(self):
        log = []

        def prog():
            yield ("busy", 100)
            log.append("a")
            yield ("busy", 50)
            log.append("b")

        d = make_device()
        d.add_block("p", prog())
        total = d.run()
        assert log == ["a", "b"]
        assert total == pytest.approx(150)

    def test_blocks_interleave_by_time(self):
        order = []

        def fast():
            yield ("busy", 10)
            order.append("fast1")
            yield ("busy", 10)
            order.append("fast2")

        def slow():
            yield ("busy", 15)
            order.append("slow1")

        d = make_device()
        d.add_block("f", fast())
        d.add_block("s", slow())
        d.run()
        assert order == ["fast1", "slow1", "fast2"]

    def test_now_advances_monotonically(self):
        seen = []

        def prog(dev):
            for _ in range(5):
                yield ("busy", 7)
                seen.append(dev.now)

        d = make_device()
        d.add_block("p", prog(d))
        d.run()
        assert seen == sorted(seen)
        assert seen[-1] == pytest.approx(35)

    def test_empty_program(self):
        def prog():
            return
            yield  # pragma: no cover

        d = make_device()
        d.add_block("p", prog())
        assert d.run() == 0.0

    def test_cannot_run_twice(self):
        d = make_device()
        d.add_block("p", iter([]))
        d.run()
        with pytest.raises(DeviceError):
            d.run()

    def test_cannot_add_after_run(self):
        d = make_device()
        d.run()
        with pytest.raises(DeviceError):
            d.add_block("late", iter([]))

    def test_resident_block_limit(self):
        d = make_device()
        for i in range(RTX_2080TI.max_resident_blocks):
            d.add_block(f"b{i}", iter([]))
        with pytest.raises(DeviceError, match="resident blocks"):
            d.add_block("overflow", iter([]))


class TestEventValidation:
    def test_unknown_event(self):
        def prog():
            yield ("frobnicate", 1)

        d = make_device()
        d.add_block("p", prog())
        with pytest.raises(DeviceError, match="unknown event"):
            d.run()

    def test_negative_busy(self):
        def prog():
            yield ("busy", -5)

        d = make_device()
        d.add_block("p", prog())
        with pytest.raises(DeviceError, match="negative"):
            d.run()

    def test_non_callable_wait(self):
        def prog():
            yield ("wait", 42)

        d = make_device()
        d.add_block("p", prog())
        with pytest.raises(DeviceError, match="callable"):
            d.run()

    def test_event_budget_livelock_guard(self):
        def spinner():
            while True:
                yield ("busy", 1)

        d = make_device(max_events=1000)
        d.add_block("p", spinner())
        with pytest.raises(DeviceError, match="event budget"):
            d.run()


class TestWaiting:
    def test_wait_until_flag_set(self):
        flag = np.zeros(1, dtype=np.int64)
        order = []

        def setter():
            yield ("busy", 500)
            flag[0] = 1
            order.append("set")

        def waiter():
            yield ("wait", lambda: flag[0] == 1)
            order.append("woke")

        d = make_device()
        d.add_block("w", waiter())
        d.add_block("s", setter())
        d.run()
        assert order == ["set", "woke"]

    def test_fallback_wait_already_true_is_free(self):
        # There was never anything to wait for: no poll charge, no heap
        # round-trip (the pre-wake-channel engine charged af_poll_cycles
        # here — the regression this pins down).
        def prog():
            yield ("wait", lambda: True)
            yield ("busy", 10)

        d = make_device()
        d.add_block("p", prog())
        total = d.run()
        assert total == pytest.approx(10.0)
        assert d.wakeups == 0

    def test_channel_wait_already_true_charges_one_poll(self):
        # A channel wait models spinning on a hardware flag: the flag
        # being set before the first poll still costs that poll, so
        # migrating a wait onto a channel never changes simulated cycles.
        def prog():
            yield ("wait", lambda: True, ("af", 0))

        d = make_device()
        d.add_block("p", prog())
        total = d.run()
        assert total == pytest.approx(d.cost.af_poll_cycles)
        assert d.wakeups == 1

    def test_inline_true_wait_spin_trips_event_budget(self):
        # A program spinning on an always-true fallback wait must still
        # hit the livelock guard even though it never touches the heap.
        def spinner():
            while True:
                yield ("wait", lambda: True)

        d = make_device(max_events=1000)
        d.add_block("p", spinner())
        with pytest.raises(DeviceError, match="event budget"):
            d.run()

    def test_deadlock_detected(self):
        def forever():
            yield ("wait", lambda: False)

        d = make_device()
        d.add_block("stuck", forever())
        with pytest.raises(DeviceError, match="deadlock"):
            d.run()

    def test_idle_time_accounted(self):
        flag = np.zeros(1, dtype=np.int64)

        def setter():
            yield ("busy", 1000)
            flag[0] = 1

        def waiter():
            yield ("wait", lambda: flag[0] == 1)

        d = make_device()
        w = d.add_block("w", waiter())
        d.add_block("s", setter())
        d.run()
        assert w.idle_cycles == pytest.approx(1000)


class TestRelaxTracking:
    def test_edges_in_flight(self):
        observed = []

        def worker(dev, edges, dur):
            yield ("relax", dur, edges)
            observed.append(dev.active_relax_edges())

        d = make_device()
        d.add_block("w1", worker(d, 100, 50))
        d.add_block("w2", worker(d, 200, 80))
        d.run()
        # when w1 finishes at t=50, w2 (200 edges) still in flight;
        # when w2 finishes, nothing is left
        assert observed == [200.0, 0.0]

    def test_concurrent_relax_blocks_counter(self):
        counts = []

        def observer(dev):
            yield ("busy", 25)
            counts.append(dev.active_relax_blocks())

        def worker():
            yield ("relax", 100, 10)

        d = make_device()
        d.add_block("o", observer(d))
        d.add_block("w1", worker())
        d.add_block("w2", worker())
        d.run()
        assert counts == [2]

    def test_timeline_records_parallelism(self):
        def worker():
            yield ("relax", 1000, 500)

        d = make_device()
        d.add_block("w", worker())
        d.run()
        ts, vs = d.timeline.series()
        assert 500.0 in vs
        assert vs[-1] == 0.0

    def test_negative_relax_rejected(self):
        def prog():
            yield ("relax", 10, -1)

        d = make_device()
        d.add_block("p", prog())
        with pytest.raises(DeviceError, match="negative"):
            d.run()


class TestSharedState:
    def test_atomic_communication_between_blocks(self):
        d = make_device()
        counter = np.zeros(1, dtype=np.int64)

        def incrementer():
            for _ in range(10):
                yield ("busy", 7)
                d.mem.atomic_add(counter, 0, 1)

        d.add_block("a", incrementer())
        d.add_block("b", incrementer())
        d.run()
        assert counter[0] == 20
        assert d.mem.stats.atomics == 20

    def test_block_report(self):
        def prog():
            yield ("busy", 10)

        d = make_device()
        d.add_block("p", prog())
        d.run()
        (rep,) = d.block_report()
        assert rep["name"] == "p"
        assert rep["finished"]
        assert rep["busy_cycles"] == pytest.approx(10)


class TestRescueWaiterDedupe:
    """A waiter reachable through several registrations (a keyed channel
    entry plus a fallback entry) must be rescued exactly once: one wake,
    one ``wakeups``/``missed_wakeups`` increment, one heap entry."""

    def _park(self, d, name):
        def prog():
            yield ("wait", lambda: True, "chan")

        ctx = d.add_block(name, prog())
        next(ctx.program)  # advance to the wait, as _step would
        ctx._wait_started = 0.0
        return ctx

    def test_dual_registration_rescued_once(self):
        d = make_device()
        ctx = self._park(d, "W")
        pred = lambda: True  # noqa: E731
        d._channels.setdefault("chan", []).append((0, ctx, pred))
        d._fallback.append((1, ctx, pred))
        d._rescue_or_deadlock()
        assert d.wakeups == 1
        assert d.missed_wakeups == 1
        assert sum(1 for e in d._heap if e[2] is ctx) == 1
        assert not d._channels and not d._fallback

    def test_stale_keyed_entry_dropped_when_woken_via_fallback(self):
        # The keyed predicate looks unsatisfied but the fallback one is
        # satisfied: the block wakes once and its stale keyed
        # registration must not survive into the next rescan round.
        d = make_device()
        ctx = self._park(d, "W")
        d._channels.setdefault("chan", []).append((0, ctx, lambda: False))
        d._fallback.append((1, ctx, lambda: True))
        d._rescue_or_deadlock()
        assert d.wakeups == 1
        assert d.missed_wakeups == 1
        assert sum(1 for e in d._heap if e[2] is ctx) == 1
        assert not d._fallback

    def test_distinct_waiters_still_rescued_independently(self):
        d = make_device()
        a = self._park(d, "A")
        b = self._park(d, "B")
        d._channels.setdefault("c1", []).append((0, a, lambda: True))
        d._channels.setdefault("c2", []).append((1, b, lambda: False))
        d._rescue_or_deadlock()
        assert d.wakeups == 1 and d.missed_wakeups == 1
        assert [it[1] is b for it in d._fallback] == [True]
