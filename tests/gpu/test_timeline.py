"""Tests for the parallelism timeline."""

from __future__ import annotations

import pytest

from repro.gpu import Timeline


class TestRecord:
    def test_basic_series(self):
        tl = Timeline("x")
        tl.record(0.0, 10)
        tl.record(5.0, 20)
        ts, vs = tl.series()
        assert ts == (0.0, 5.0)
        assert vs == (10.0, 20.0)

    def test_same_time_overwrites(self):
        tl = Timeline()
        tl.record(1.0, 5)
        tl.record(1.0, 9)
        assert tl.series() == ((1.0,), (9.0,))

    def test_out_of_order_clamped(self):
        tl = Timeline()
        tl.record(10.0, 1)
        tl.record(4.0, 2)  # clamped to t=10
        ts, _ = tl.series()
        assert ts == (10.0,)

    def test_clamps_counted(self):
        tl = Timeline()
        assert tl.clamps == 0
        tl.record(10.0, 1)
        tl.record(4.0, 2)
        tl.record(3.0, 3)
        tl.record(11.0, 4)
        assert tl.clamps == 2

    def test_clamps_surface_in_solver_stats(self):
        from repro.baselines.nearfar import solve_nf
        from repro.graphs import grid_road

        result = solve_nf(grid_road(8, 8, seed=1), 0)
        assert "timeline_clamps" in result.stats
        assert result.stats["timeline_clamps"] == result.timeline.clamps

    def test_len_and_duration(self):
        tl = Timeline()
        assert len(tl) == 0 and tl.duration_us == 0.0
        tl.record(0, 1)
        tl.record(8, 0)
        assert len(tl) == 2 and tl.duration_us == 8.0


class TestQueries:
    def make(self):
        tl = Timeline()
        tl.record(0.0, 100)
        tl.record(10.0, 300)
        tl.record(20.0, 0)
        return tl

    def test_value_at(self):
        tl = self.make()
        assert tl.value_at(-1) == 0.0
        assert tl.value_at(0) == 100
        assert tl.value_at(9.99) == 100
        assert tl.value_at(10) == 300
        assert tl.value_at(50) == 0

    def test_time_average(self):
        tl = self.make()
        # 100 for 10us, 300 for 10us → 200
        assert tl.time_average() == pytest.approx(200.0)

    def test_time_average_single_sample(self):
        tl = Timeline()
        tl.record(3.0, 42)
        assert tl.time_average() == 42.0

    def test_peak(self):
        assert self.make().peak() == 300

    def test_peak_survives_tied_timestamp_overwrite(self):
        """A transient spike overwritten at the same timestamp (e.g.
        assign-then-complete within one event) must still show in peak()."""
        tl = Timeline()
        tl.record(1.0, 7)
        tl.record(1.0, 2)
        assert tl.series() == ((1.0,), (2.0,))  # step series keeps the last
        assert tl.peak() == 7.0

    def test_peak_empty(self):
        assert Timeline().peak() == 0.0

    def test_empty_average(self):
        assert Timeline().time_average() == 0.0

    def test_resample(self):
        tl = self.make()
        ts, vs = tl.resample(5)
        assert len(ts) == len(vs) == 5
        assert ts[0] == 0.0 and ts[-1] == 20.0
        assert vs[0] == 100 and vs[-1] == 0

    def test_resample_empty(self):
        assert Timeline().resample(4) == ([], [])

    def test_to_rows(self):
        assert self.make().to_rows() == [(0.0, 100.0), (10.0, 300.0), (20.0, 0.0)]
