"""Tests for the cycle cost model.

The assertions here pin the *qualitative* behaviours the paper's analysis
depends on, not absolute constants: launch overhead dominating tiny BSP
iterations, bandwidth bounding saturated ones, divergence penalizing
low-degree graphs.
"""

from __future__ import annotations

import pytest

from repro.gpu import CPU_I9_7900X, RTX_2080TI, RTX_3090, CostModel
from repro.gpu.costmodel import CpuCostModel


@pytest.fixture
def cm():
    return CostModel(RTX_2080TI)


class TestEdgeTraffic:
    def test_divergence_penalty_for_low_degree(self, cm):
        assert cm.effective_edge_bytes(2.0) > cm.effective_edge_bytes(32.0)

    def test_high_degree_approaches_base(self, cm):
        assert cm.effective_edge_bytes(1e6) == pytest.approx(cm.base_edge_bytes, rel=0.01)

    def test_degree_below_one_clamped(self, cm):
        assert cm.effective_edge_bytes(0.1) == cm.effective_edge_bytes(1.0)

    def test_peak_rate_scales_with_bandwidth(self):
        a = CostModel(RTX_2080TI).peak_edge_rate(8.0)
        b = CostModel(RTX_3090).peak_edge_rate(8.0)
        # 3090 has more bytes/cycle (bandwidth up 52%, clock up 3%)
        assert b > a * 1.4


class TestBspSuperstep:
    def test_empty_superstep_costs_launch(self, cm):
        assert cm.bsp_superstep_cycles(0, 0, 4.0) == pytest.approx(
            cm.kernel_launch_cycles()
        )

    def test_tiny_iteration_dominated_by_launch(self, cm):
        """The paper's road-USA diagnosis: 800 items vs 68K threads."""
        dur = cm.bsp_superstep_cycles(800, 2000, 2.5)
        assert dur < 2.5 * cm.kernel_launch_cycles()
        assert dur > cm.kernel_launch_cycles()

    def test_saturated_iteration_bandwidth_bound(self, cm):
        items, deg = 4_000_000, 8.0
        edges = int(items * deg)
        dur = cm.bsp_superstep_cycles(items, edges, deg)
        bw = edges * cm.effective_edge_bytes(deg) / cm.spec.bytes_per_cycle
        assert dur == pytest.approx(cm.kernel_launch_cycles() + bw, rel=0.15)

    def test_more_items_never_faster(self, cm):
        d1 = cm.bsp_superstep_cycles(1000, 8000, 8.0)
        d2 = cm.bsp_superstep_cycles(100_000, 800_000, 8.0)
        assert d2 >= d1

    def test_float_weights_cost_more(self, cm):
        i = cm.bsp_superstep_cycles(500, 4000, 8.0)
        f = cm.bsp_superstep_cycles(500, 4000, 8.0, float_weights=True)
        assert f > i

    def test_3090_faster_when_saturated(self):
        items, deg = 2_000_000, 8.0
        edges = int(items * deg)
        t_2080 = CostModel(RTX_2080TI).bsp_superstep_cycles(items, edges, deg)
        t_3090 = CostModel(RTX_3090).bsp_superstep_cycles(items, edges, deg)
        us_2080 = RTX_2080TI.cycles_to_us(t_2080)
        us_3090 = RTX_3090.cycles_to_us(t_3090)
        assert us_3090 < us_2080


class TestWtbBatch:
    def test_min_batch_floor(self, cm):
        assert cm.wtb_batch_cycles(1, 4.0) >= cm.min_batch_cycles

    def test_scales_with_edges(self, cm):
        small = cm.wtb_batch_cycles(256, 8.0)
        large = cm.wtb_batch_cycles(25600, 8.0)
        assert large > small * 10

    def test_bandwidth_sharing(self, cm):
        alone = cm.wtb_batch_cycles(200_000, 8.0, concurrent_blocks=1)
        crowded = cm.wtb_batch_cycles(200_000, 8.0, concurrent_blocks=64)
        assert crowded > alone

    def test_empty_batch_cheap(self, cm):
        assert cm.wtb_batch_cycles(0, 8.0) < cm.min_batch_cycles

    def test_float_atomic_surcharge(self, cm):
        i = cm.wtb_batch_cycles(256, 8.0)
        f = cm.wtb_batch_cycles(256, 8.0, float_weights=True)
        assert f > i


class TestMtbPass:
    def test_base_cost(self, cm):
        assert cm.mtb_pass_cost(0, 0) == pytest.approx(cm.mtb_pass_cycles)

    def test_scales_with_segments_and_assignments(self, cm):
        assert cm.mtb_pass_cost(100, 10) > cm.mtb_pass_cost(10, 1)

    def test_is_cheap_relative_to_launch(self, cm):
        """Delegation only pays off if the MTB pass is far cheaper than a
        kernel launch — this is the crux of the paper's design."""
        assert cm.mtb_pass_cost(64, 16) < 0.2 * cm.kernel_launch_cycles()


class TestOverrides:
    def test_with_overrides(self, cm):
        cm2 = cm.with_overrides(kernel_launch_us=12.0)
        assert cm2.kernel_launch_us == 12.0
        assert cm.kernel_launch_us == 6.0  # original untouched
        assert cm2.spec is cm.spec


class TestCpuCostModel:
    def test_dijkstra_scales_with_work(self):
        cm = CpuCostModel(CPU_I9_7900X)
        t1 = cm.dijkstra_us(10_000, 5_000, 10_000)
        t2 = cm.dijkstra_us(100_000, 50_000, 10_000)
        assert t2 > 5 * t1

    def test_delta_round_has_sync_floor(self):
        cm = CpuCostModel(CPU_I9_7900X)
        assert cm.delta_round_us(0, 0) == pytest.approx(cm.round_sync_us)

    def test_parallelism_capped_by_threads(self):
        cm = CpuCostModel(CPU_I9_7900X)
        # 1M edges over 20 threads vs over "1M threads" — same result,
        # because usable concurrency is capped at spec.threads
        wide = cm.delta_round_us(1_000_000, 10_000_000)
        narrow = cm.delta_round_us(1_000_000, 20)
        assert wide == pytest.approx(narrow)
