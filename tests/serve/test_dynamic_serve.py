"""The serve/cache correctness belt: bounds-checked targets, copy-on-put
ownership, selective invalidation, warm re-solves, and the mid-flight
generation guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic import EdgeUpdate, UpdateBatch
from repro.errors import ServeError
from repro.graphs import generators
from repro.serve import DistanceCache
from repro.serve.session import Session


@pytest.fixture
def grid():
    return generators.grid_road(8, 8, seed=1)


class TestCacheTargets:
    def test_out_of_range_target_raises_with_id(self):
        c = DistanceCache(4)
        c.put("g", 0, np.arange(5, dtype=np.float64))
        with pytest.raises(ServeError, match="7"):
            c.targets("g", 0, [1, 7])

    def test_negative_target_raises_instead_of_wrapping(self):
        c = DistanceCache(4)
        c.put("g", 0, np.arange(5, dtype=np.float64))
        # numpy would silently answer dist[-1]; the cache must not
        with pytest.raises(ServeError, match="-1"):
            c.targets("g", 0, [-1])

    def test_in_range_targets_still_served(self):
        c = DistanceCache(4)
        c.put("g", 0, np.arange(5, dtype=np.float64))
        got = c.targets("g", 0, [4, 0])
        assert np.array_equal(got, [4.0, 0.0])


class TestCachePutOwnership:
    def test_mutating_submitted_array_after_put_does_not_corrupt(self):
        c = DistanceCache(4)
        arr = np.array([1.0, 2.0, 3.0])
        c.put("g", 0, arr)
        arr[0] = 99.0  # caller keeps writing their array
        assert float(c.peek("g", 0)[0]) == 1.0

    def test_mutating_base_of_submitted_view_does_not_corrupt(self):
        c = DistanceCache(4)
        base = np.array([1.0, 2.0, 3.0])
        c.put("g", 0, base[:])  # a view: the old freeze-the-view bug path
        base[0] = 99.0
        assert float(c.peek("g", 0)[0]) == 1.0

    def test_own_freezes_in_place_without_copy(self):
        c = DistanceCache(4)
        arr = np.array([1.0, 2.0])
        stored = c.put("g", 0, arr, own=True)
        assert stored is arr  # no copy
        assert not arr.flags.writeable  # and the producer's handle froze

    def test_owned_view_still_copies(self):
        c = DistanceCache(4)
        base = np.array([1.0, 2.0, 3.0])
        stored = c.put("g", 0, base[:], own=True)
        base[0] = 99.0
        assert float(stored[0]) == 1.0

    def test_entries_always_read_only(self):
        c = DistanceCache(4)
        c.put("g", 0, np.array([1.0]))
        with pytest.raises(ValueError):
            c.get("g", 0)[0] = 2.0


class TestSelectiveInvalidation:
    def test_weight_only_update_keeps_unaffected_sources(self, grid):
        with Session(autostart=False) as s:
            s.add_graph("g", grid)
            s.query("g", 0)
            s.query("g", 63)
            assert len(s.cache) == 2
            # raise a slack edge far from being tight for either source:
            # pick any edge and bump it sky-high; at least assert the
            # session only drops entries changes_affect says move
            g = s.graph("g")
            src = int(np.repeat(
                np.arange(g.num_vertices), np.diff(g.row_offsets)
            )[0])
            dst = int(g.col_indices[0])
            w = float(g.weights[0])
            s.apply_updates(
                "g",
                UpdateBatch(
                    [EdgeUpdate(kind="increase", src=src, dst=dst, weight=w + 1)]
                ),
            )
            kept = len(s.cache)
            stashed = len(s._warm)
            assert kept + stashed == 2  # every entry kept or stashed
            # stashed sources answer correctly (and incrementally)
            r = s.query("g", 0)
            from repro.baselines.dijkstra import solve_dijkstra

            direct = solve_dijkstra(s.graph("g"), source=0)
            assert np.array_equal(r.dist, direct.dist)

    def test_topology_update_drops_whole_graph_but_stashes(self, grid):
        with Session(autostart=False) as s:
            s.add_graph("g", grid)
            s.query("g", 0)
            s.apply_updates(
                "g", UpdateBatch([EdgeUpdate(kind="delete", src=0, dst=1)])
            )
            assert len(s.cache) == 0
            assert ("g", 0) in s._warm
            r = s.query("g", 0)
            from repro.baselines.dijkstra import solve_dijkstra

            direct = solve_dijkstra(s.graph("g"), source=0)
            assert np.array_equal(r.dist, direct.dist)
            assert s.counters()["serve_incremental"] == 1.0

    def test_incremental_false_never_warm_solves(self, grid):
        with Session(autostart=False, incremental=False) as s:
            s.add_graph("g", grid)
            s.query("g", 0)
            s.apply_updates(
                "g", UpdateBatch([EdgeUpdate(kind="delete", src=0, dst=1)])
            )
            s.query("g", 0)
            assert s.counters()["serve_incremental"] == 0.0

    def test_unknown_graph_id(self, grid):
        with Session(autostart=False) as s:
            with pytest.raises(ServeError):
                s.apply_updates("nope", UpdateBatch([]))


class TestGenerationGuard:
    def test_update_mid_flight_fails_stale_answers(self, grid):
        with Session(autostart=False) as s:
            s.add_graph("g", grid)
            fut = s.submit("g", 5)
            # simulate an update racing the solve: bump the generation
            # between dispatch and demux by patching the executor
            real_submit = s.executor.submit

            def racing_submit(cell):
                f = real_submit(cell)
                s.apply_updates(
                    "g", UpdateBatch([EdgeUpdate(kind="delete", src=0, dst=1)])
                )
                return f

            s.executor.submit = racing_submit
            try:
                s.serve_pending()
            finally:
                s.executor.submit = real_submit
            with pytest.raises(ServeError, match="updated while"):
                fut.result()
            assert s.counters()["serve_stale"] == 1.0
            # the torn answer must not have been cached
            assert s.cache.peek("g", 5) is None

    def test_add_graph_bumps_generation(self, grid):
        with Session(autostart=False) as s:
            s.add_graph("g", grid)
            g0 = s._generation["g"]
            s.add_graph("g", generators.grid_road(8, 8, seed=2))
            assert s._generation["g"] == g0 + 1

    def test_remove_graph_drops_warm_stash(self, grid):
        with Session(autostart=False) as s:
            s.add_graph("g", grid)
            s.query("g", 0)
            s.apply_updates(
                "g", UpdateBatch([EdgeUpdate(kind="delete", src=0, dst=1)])
            )
            assert s._warm
            s.remove_graph("g")
            assert not s._warm
